//! Transparent distribution (§3.4): a directory tree spanning two
//! directory servers and two file servers.
//!
//! The path `/projects/amoeba/paper.txt` is resolved hop by hop; the
//! middle directory lives on a *different* directory server, and the
//! files live on two different flat file servers. The client never
//! notices: every capability routes itself.
//!
//! Run with: `cargo run --example distributed_directory`

use amoeba::prelude::*;

fn main() {
    let net = Network::new();

    // Two directory servers and two file servers, all independent
    // processes on their own machines.
    let dir1 = ServiceRunner::spawn_open(&net, DirServer::new(SchemeKind::Commutative));
    let dir2 = ServiceRunner::spawn_open(&net, DirServer::new(SchemeKind::OneWay));
    let fs1 = ServiceRunner::spawn_open(&net, FlatFsServer::new(SchemeKind::Commutative));
    let fs2 = ServiceRunner::spawn_open(&net, FlatFsServer::new(SchemeKind::Encrypted));
    println!(
        "dir servers on {} and {}; file servers on {} and {}",
        dir1.put_port(),
        dir2.put_port(),
        fs1.put_port(),
        fs2.put_port()
    );

    let dirs = DirClient::open(&net, dir1.put_port());
    let files1 = FlatFsClient::open(&net, fs1.put_port());
    let files2 = FlatFsClient::open(&net, fs2.put_port());

    // Build: / (server 1) → projects (server 1) → amoeba (server 2!)
    let root = dirs.create_dir_on(dir1.put_port()).unwrap();
    let projects = dirs.create_dir_on(dir1.put_port()).unwrap();
    let amoeba_dir = dirs.create_dir_on(dir2.put_port()).unwrap();
    dirs.enter(&root, "projects", &projects).unwrap();
    dirs.enter(&projects, "amoeba", &amoeba_dir).unwrap();

    // Two files on two different file servers, both named in the same
    // directory on server 2.
    let paper = files1.create().unwrap();
    files1
        .write(&paper, 0, b"Using Sparse Capabilities in a DOS")
        .unwrap();
    let notes = files2.create().unwrap();
    files2.write(&notes, 0, b"port = F(get-port)").unwrap();
    dirs.enter(&amoeba_dir, "paper.txt", &paper).unwrap();
    dirs.enter(&amoeba_dir, "notes.txt", &notes).unwrap();

    // Walk the path. Hops: dir1 → dir1 → dir2, then the file cap points
    // at fs1. The client code is one line.
    let found = dirs.walk(&root, "projects/amoeba/paper.txt").unwrap();
    println!(
        "walk('/projects/amoeba/paper.txt') -> {} (server field: {})",
        found, found.port
    );
    assert_eq!(found, paper);
    assert_ne!(root.port, amoeba_dir.port, "middle hop crossed servers");
    assert_ne!(paper.port, notes.port, "files live on different servers");

    // Read through whichever server the capability names.
    let reader = FlatFsClient::open(&net, found.port);
    let text = reader.read(&found, 0, 100).unwrap();
    println!("read: {:?}", String::from_utf8_lossy(&text));

    // Directory listing shows both entries, wherever they live.
    let listing = dirs.list(&amoeba_dir).unwrap();
    println!("ls /projects/amoeba -> {listing:?}");
    assert_eq!(listing, vec!["notes.txt", "paper.txt"]);

    println!("distribution was completely transparent — §3.4 reproduced");
    dir1.stop();
    dir2.stop();
    fs1.stop();
    fs2.stop();
}
