//! An interactive shell over the whole Amoeba stack — the kind of
//! user-facing program the paper's services exist to support.
//!
//! Boots a bank, a directory service and a flat file service on one
//! simulated network, then interprets commands:
//!
//! ```text
//! ls [path]              list a directory
//! mkdir <path>           create a directory
//! put <path> <text...>   create/overwrite a file with text
//! cat <path>             print a file
//! rm <path>              remove a directory entry
//! mv <path> <newname>    rename within a directory
//! share <path>           print a read-only capability (hex) for a file
//! use <hex>              cat a file directly from a pasted capability
//! revoke <path>          revoke all outstanding capabilities for a file
//! balance                show the wallet
//! pay <amount>           transfer to the landlord account
//! help / quit
//! ```
//!
//! Run interactively: `cargo run --example amoeba_shell`
//! Scripted demo:     `cargo run --example amoeba_shell -- --demo`

use amoeba::prelude::*;
use std::io::BufRead;

struct Shell {
    dirs: DirClient,
    fs: FlatFsClient,
    bank: BankClient,
    wallet: Capability,
    landlord: Capability,
    root: Capability,
}

fn main() {
    let net = Network::new();

    let (bank_server, treasury_rx) = BankServer::new(
        vec![Currency::convertible("dollar", 1)],
        SchemeKind::Commutative,
    );
    let bank_runner = ServiceRunner::spawn_open(&net, bank_server);
    let dir_runner = ServiceRunner::spawn_open(&net, DirServer::new(SchemeKind::Commutative));
    let fs_runner = ServiceRunner::spawn_open(&net, FlatFsServer::new(SchemeKind::Commutative));

    let bank = BankClient::open(&net, bank_runner.put_port());
    let treasury = treasury_rx.recv().expect("treasury");
    let wallet = bank.open_account().expect("wallet");
    let landlord = bank.open_account().expect("landlord");
    bank.mint(&treasury, &wallet, CurrencyId(0), 100)
        .expect("allowance");

    let dirs = DirClient::open(&net, dir_runner.put_port());
    let fs = FlatFsClient::open(&net, fs_runner.put_port());
    let root = dirs.create_dir().expect("root");

    let mut shell = Shell {
        dirs,
        fs,
        bank,
        wallet,
        landlord,
        root,
    };

    let demo = std::env::args().any(|a| a == "--demo");
    if demo {
        let script = [
            "mkdir docs",
            "put docs/hello.txt greetings from amoeba",
            "ls",
            "ls docs",
            "cat docs/hello.txt",
            "mv docs/hello.txt welcome.txt",
            "cat docs/welcome.txt",
            "share docs/welcome.txt",
            "balance",
            "pay 30",
            "balance",
            "revoke docs/welcome.txt",
            "rm docs/welcome.txt",
            "ls docs",
            "quit",
        ];
        for line in script {
            println!("amoeba$ {line}");
            if !shell.execute(line) {
                break;
            }
        }
    } else {
        println!("amoeba shell — type 'help'");
        let stdin = std::io::stdin();
        print_prompt();
        for line in stdin.lock().lines() {
            let Ok(line) = line else { break };
            if !shell.execute(&line) {
                break;
            }
            print_prompt();
        }
    }

    fs_runner.stop();
    dir_runner.stop();
    bank_runner.stop();
}

fn print_prompt() {
    use std::io::Write;
    print!("amoeba$ ");
    let _ = std::io::stdout().flush();
}

impl Shell {
    /// Executes one command line; returns `false` on `quit`.
    fn execute(&mut self, line: &str) -> bool {
        let mut parts = line.split_whitespace();
        let Some(cmd) = parts.next() else { return true };
        let result = match cmd {
            "quit" | "exit" => return false,
            "help" => {
                println!("commands: ls mkdir put cat rm mv share use revoke balance pay quit");
                Ok(())
            }
            "ls" => self.ls(parts.next().unwrap_or("")),
            "mkdir" => self.mkdir(parts.next()),
            "put" => {
                let path = parts.next();
                let text = parts.collect::<Vec<_>>().join(" ");
                self.put(path, &text)
            }
            "cat" => self.cat(parts.next()),
            "rm" => self.rm(parts.next()),
            "mv" => self.mv(parts.next(), parts.next()),
            "share" => self.share(parts.next()),
            "use" => self.use_cap(parts.next()),
            "revoke" => self.revoke(parts.next()),
            "balance" => {
                println!(
                    "wallet: {} dollars (landlord holds {})",
                    self.bank.balance(&self.wallet, CurrencyId(0)).unwrap_or(0),
                    self.bank
                        .balance(&self.landlord, CurrencyId(0))
                        .unwrap_or(0)
                );
                Ok(())
            }
            "pay" => self.pay(parts.next()),
            other => {
                println!("unknown command: {other} (try 'help')");
                Ok(())
            }
        };
        if let Err(e) = result {
            println!("error: {e}");
        }
        true
    }

    /// Splits `a/b/c` into (capability of a/b, "c").
    fn resolve_parent<'p>(&self, path: &'p str) -> Result<(Capability, &'p str), ClientError> {
        match path.rsplit_once('/') {
            Some((dir_path, name)) => Ok((self.dirs.walk(&self.root, dir_path)?, name)),
            None => Ok((self.root, path)),
        }
    }

    fn ls(&self, path: &str) -> Result<(), ClientError> {
        let dir = self.dirs.walk(&self.root, path)?;
        let names = self.dirs.list(&dir)?;
        if names.is_empty() {
            println!("(empty)");
        } else {
            println!("{}", names.join("  "));
        }
        Ok(())
    }

    fn mkdir(&self, path: Option<&str>) -> Result<(), ClientError> {
        let path = path.ok_or(ClientError::Malformed)?;
        let (parent, name) = self.resolve_parent(path)?;
        let new_dir = self.dirs.create_dir()?;
        self.dirs.enter(&parent, name, &new_dir)
    }

    fn put(&self, path: Option<&str>, text: &str) -> Result<(), ClientError> {
        let path = path.ok_or(ClientError::Malformed)?;
        let (parent, name) = self.resolve_parent(path)?;
        match self.dirs.lookup(&parent, name) {
            Ok(existing) => {
                self.fs.write(&existing, 0, text.as_bytes())?;
            }
            Err(ClientError::Status(Status::NotFound)) => {
                let file = self.fs.create()?;
                self.fs.write(&file, 0, text.as_bytes())?;
                self.dirs.enter(&parent, name, &file)?;
            }
            Err(e) => return Err(e),
        }
        Ok(())
    }

    fn cat(&self, path: Option<&str>) -> Result<(), ClientError> {
        let path = path.ok_or(ClientError::Malformed)?;
        let file = self.dirs.walk(&self.root, path)?;
        let size = self.fs.size(&file)?;
        let data = self.fs.read(&file, 0, size as u32)?;
        println!("{}", String::from_utf8_lossy(&data));
        Ok(())
    }

    fn rm(&self, path: Option<&str>) -> Result<(), ClientError> {
        let path = path.ok_or(ClientError::Malformed)?;
        let (parent, name) = self.resolve_parent(path)?;
        self.dirs.remove(&parent, name)
    }

    fn mv(&self, path: Option<&str>, new_name: Option<&str>) -> Result<(), ClientError> {
        let (path, new_name) = match (path, new_name) {
            (Some(p), Some(n)) => (p, n),
            _ => return Err(ClientError::Malformed),
        };
        let (parent, name) = self.resolve_parent(path)?;
        self.dirs.rename(&parent, name, new_name)
    }

    fn share(&self, path: Option<&str>) -> Result<(), ClientError> {
        let path = path.ok_or(ClientError::Malformed)?;
        let file = self.dirs.walk(&self.root, path)?;
        // Scheme 3: diminish locally, print the bits. Anyone can paste
        // them into `use` — capabilities are bearer tokens.
        let scheme = CommutativeScheme::standard();
        let ro = scheme
            .diminish(&file, Rights::ALL.without(Rights::READ))
            .map_err(|_| ClientError::Malformed)?;
        println!("read-only capability: {}", ro.to_hex());
        Ok(())
    }

    fn use_cap(&self, hex: Option<&str>) -> Result<(), ClientError> {
        let hex = hex.ok_or(ClientError::Malformed)?;
        let cap = Capability::from_hex(hex).ok_or(ClientError::Malformed)?;
        let size = self.fs.size(&cap)?;
        let data = self.fs.read(&cap, 0, size as u32)?;
        println!("{}", String::from_utf8_lossy(&data));
        Ok(())
    }

    fn revoke(&self, path: Option<&str>) -> Result<(), ClientError> {
        let path = path.ok_or(ClientError::Malformed)?;
        let (parent, name) = self.resolve_parent(path)?;
        let file = self.dirs.lookup(&parent, name)?;
        let fresh = self.fs.service().revoke(&file)?;
        // Re-enter the fresh capability under the same name.
        self.dirs.remove(&parent, name)?;
        self.dirs.enter(&parent, name, &fresh)?;
        println!("revoked; all shared capabilities for {path} are dead");
        Ok(())
    }

    fn pay(&self, amount: Option<&str>) -> Result<(), ClientError> {
        let amount: u64 = amount
            .and_then(|a| a.parse().ok())
            .ok_or(ClientError::Malformed)?;
        self.bank
            .transfer(&self.wallet, &self.landlord, CurrencyId(0), amount)?;
        println!("paid {amount} dollars");
        Ok(())
    }
}
