//! §2.4 end to end: capability protection **without F-boxes**.
//!
//! A freshly booted file server announces itself, a client establishes
//! conventional keys through the public-key handshake, and from then on
//! capabilities cross the wire DES-encrypted under the (source,
//! destination) key — so a wiretapping intruder who replays a captured
//! message is betrayed by his own unforgeable source address.
//!
//! Run with: `cargo run --example software_protection`

use amoeba::prelude::*;
use amoeba::softprot::matrix::SealError;
use amoeba::softprot::Announcement;
use bytes::Bytes;
use rand::SeedableRng;

fn main() {
    let net = Network::new();
    // Plain interfaces everywhere: nothing protects the wire itself.
    let server_ep = net.attach_open();
    let client_ep = net.attach_open();
    let intruder_ep = net.attach_open();
    let wire = net.tap();
    let mut rng = rand::rngs::StdRng::from_entropy();

    // --- Boot + announcement ----------------------------------------------
    let service_port = Port::new(0xF11E).unwrap();
    server_ep.claim(service_port);
    let boot = ServerBoot::new(service_port, &mut rng);
    server_ep.send(
        Header::to(Port::BROADCAST),
        Bytes::copy_from_slice(&boot.announcement().encode()),
    );
    println!("server booted; broadcast announcement (port + public key)");

    // --- Client handshake ---------------------------------------------------
    let ann_pkt = client_ep.recv().expect("hear the announcement");
    let ann = Announcement::decode(&ann_pkt.payload).expect("well-formed");
    let (session, keyreq) = ClientSession::start(ann, &mut rng);
    let reply_port = Port::new(0xC0DE).unwrap();
    client_ep.claim(reply_port);
    client_ep.send(
        Header::to(ann.port).with_reply(reply_port),
        Bytes::from(keyreq),
    );

    // Server answers the key request.
    let req_pkt = server_ep.recv().expect("key request");
    let (keyrep, k_cs, k_sc) = boot
        .handle_keyreq(&req_pkt.payload, &mut rng)
        .expect("well-formed key request");
    server_ep.send(Header::to(req_pkt.header.reply), Bytes::from(keyrep));

    let rep_pkt = client_ep.recv().expect("key reply");
    let k_reverse = session.finish(&rep_pkt.payload).expect("server authentic");
    println!("handshake complete: server authenticated, fresh keys installed");

    // --- Install keys in both sealers --------------------------------------
    let mut client_keys = MachineKeysView::new(client_ep.id());
    client_keys
        .0
        .learn_send_key(server_ep.id(), session.client_key());
    client_keys.0.learn_recv_key(server_ep.id(), k_reverse);
    let client_sealer = CapSealer::new(client_keys.0);

    let mut server_keys = MachineKeysView::new(server_ep.id());
    server_keys.0.learn_recv_key(req_pkt.source, k_cs);
    server_keys.0.learn_send_key(req_pkt.source, k_sc);
    let server_sealer = CapSealer::new(server_keys.0);

    // --- Protected traffic ---------------------------------------------------
    let precious = Capability::new(
        service_port,
        ObjectNum::new(7).unwrap(),
        Rights::READ | Rights::WRITE,
        0x00AB_CDEF_0123,
    );
    let sealed = client_sealer.seal(&precious, server_ep.id()).unwrap();
    client_ep.send(
        Header::to(service_port),
        Bytes::copy_from_slice(&sealed.0.to_be_bytes()),
    );
    let data_pkt = server_ep.recv().unwrap();
    let received = SealedCap(u128::from_be_bytes(
        data_pkt.payload[..16].try_into().unwrap(),
    ));
    let opened = server_sealer.unseal(received, data_pkt.source).unwrap();
    assert_eq!(opened, precious);
    println!("capability crossed the wire sealed and unsealed correctly");

    // --- The intruder -----------------------------------------------------
    // 1. Wiretap: the capability never appeared in the clear.
    let mut saw_plaintext = false;
    while let Ok(pkt) = wire.try_recv() {
        if pkt.payload.len() >= 16 && pkt.payload[..16] == precious.encode() {
            saw_plaintext = true;
        }
    }
    println!("wiretap saw plaintext capability: {saw_plaintext}");
    assert!(!saw_plaintext);

    // 2. Replay: same bytes, intruder's source => wrong matrix key.
    intruder_ep.send(
        Header::to(service_port),
        Bytes::copy_from_slice(&sealed.0.to_be_bytes()),
    );
    let replay_pkt = server_ep.recv().unwrap();
    assert_eq!(replay_pkt.source, intruder_ep.id(), "source is unforgeable");
    match server_sealer.unseal(
        SealedCap(u128::from_be_bytes(
            replay_pkt.payload[..16].try_into().unwrap(),
        )),
        replay_pkt.source,
    ) {
        Err(SealError::NoKey) => {
            println!("replay rejected: no key for the intruder's machine pair")
        }
        Err(SealError::Garbage) => {
            println!("replay decrypted to garbage under M[intruder][server]")
        }
        Ok(c) => {
            assert_ne!(c, precious);
            println!("replay decrypted to a junk capability (≠ original) — harmless");
        }
    }

    println!("§2.4 software protection reproduced — no F-box required");
}

/// Thin wrapper so the example reads top-down (MachineKeys is built
/// piecewise as the handshake yields keys).
struct MachineKeysView(amoeba::softprot::MachineKeys);

impl MachineKeysView {
    fn new(me: MachineId) -> Self {
        MachineKeysView(amoeba::softprot::MachineKeys::empty(me))
    }
}
