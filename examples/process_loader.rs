//! The memory server in action (§3.1): building a child process on a
//! remote machine, plus the "electronic disk".
//!
//! A parent process constructs text, data and stack segments on a
//! *remote* memory server — avoiding the copy-everything dance of
//! FORK+EXEC — then MAKE PROCESS turns them into a runnable child it
//! can start, stop and kill through the process capability.
//!
//! Run with: `cargo run --example process_loader`

use amoeba::prelude::*;

fn main() {
    let net = Network::new();

    // A memory server per machine; the parent picks the remote one.
    let local_mem = ServiceRunner::spawn_open(&net, MemServer::new(SchemeKind::Commutative));
    let remote_mem = ServiceRunner::spawn_open(&net, MemServer::new(SchemeKind::Commutative));
    println!(
        "memory servers: local {} / remote {}",
        local_mem.put_port(),
        remote_mem.put_port()
    );

    let mem = MemClient::open(&net, remote_mem.put_port());

    // --- Build the child's segments on the remote machine ----------------
    let text = mem.create_segment(4096).expect("text segment");
    mem.write(&text, 0, b"\x7fELF amoeba-child code ...")
        .expect("load text");
    let data = mem.create_segment(2048).expect("data segment");
    mem.write(&data, 0, b"initialised data").expect("load data");
    let stack = mem.create_segment(8192).expect("stack segment");
    println!("created and loaded text/data/stack segments remotely");

    // --- MAKE PROCESS ------------------------------------------------------
    let child = mem
        .make_process(&[text, data, stack])
        .expect("make process");
    println!("child process capability: {child}");
    assert_eq!(mem.status(&child).unwrap(), ProcState::Constructed);

    mem.start(&child).expect("start child");
    println!("child started: {:?}", mem.status(&child).unwrap());
    mem.stop(&child).expect("stop child");
    println!("child stopped: {:?}", mem.status(&child).unwrap());
    mem.start(&child).expect("restart child");

    // A process capability with only READ rights can observe but not
    // control the child.
    let observer_cap = mem
        .service()
        .restrict(&child, Rights::READ)
        .expect("observer capability");
    assert_eq!(mem.status(&observer_cap).unwrap(), ProcState::Running);
    assert!(matches!(
        mem.stop(&observer_cap).unwrap_err(),
        ClientError::Status(Status::RightsViolation)
    ));
    println!("observer capability can read state but not stop the child");

    mem.kill(&child).expect("kill child");
    println!("child killed");

    // --- The electronic disk ------------------------------------------------
    // "An electronic disk of the required size is created using CREATE
    // SEGMENT, and then can be read and written, either by local or
    // remote processes."
    let local = MemClient::open(&net, local_mem.put_port());
    let disk = local
        .create_segment(1 << 20)
        .expect("1 MiB electronic disk");
    local.write(&disk, 0, b"superblock").expect("format");
    // A remote process mounts it by capability alone.
    let remote_user = MemClient::open(&net, local_mem.put_port());
    let super_block = remote_user.read(&disk, 0, 10).expect("remote read");
    assert_eq!(&super_block, b"superblock");
    println!("electronic disk written locally, read remotely — §3.1 reproduced");

    local_mem.stop();
    remote_mem.stop();
}
