//! A tour of the UNIX-like file server (§3.5) over the block server —
//! directories, files spanning disk blocks, unlink semantics and
//! truncation, all through capabilities.

use amoeba::prelude::*;
use amoeba_block::DiskConfig;

fn main() {
    let net = Network::new();
    let disk = ServiceRunner::spawn_open(
        &net,
        BlockServer::new(
            DiskConfig {
                block_size: 128,
                capacity_blocks: 64,
            },
            SchemeKind::OneWay,
        ),
    );
    let fs_server = UnixFsServer::new(&net, disk.put_port(), SchemeKind::Commutative);
    // The §3.5 server runs on a 4-worker dispatch pool: handlers are
    // `&self` and the striped object table carries the i-nodes.
    let fs_runner = ServiceRunner::spawn_open_workers(&net, fs_server, 4);
    let fs = UnixFsClient::open(&net, fs_runner.put_port());
    let stats = BlockClient::open(&net, disk.put_port());

    let root = fs.root().unwrap();
    let home = fs.mkdir(&root, "home").unwrap();
    let notes = fs.create(&home, "notes.txt").unwrap();

    // A write spanning several 128-byte blocks.
    let text: Vec<u8> = (b'a'..=b'z').cycle().take(400).collect();
    fs.write(&notes, 0, &text).unwrap();
    assert_eq!(fs.read(&notes, 0, 400).unwrap(), text);
    let st = fs.stat(&notes).unwrap();
    println!(
        "notes.txt: {} bytes in {} disk blocks (disk in use: {})",
        st.size,
        st.blocks,
        stats.statfs().unwrap().allocated_blocks
    );

    // Duplicate names are refused atomically.
    match fs.create(&home, "notes.txt") {
        Err(e) => println!("duplicate create refused: {e}"),
        Ok(_) => panic!("duplicate name accepted"),
    }

    // Path walk through the directory tree.
    let found = fs.lookup_path(&root, "home/notes.txt").unwrap();
    assert_eq!(&fs.read(&found, 0, 3).unwrap(), b"abc");

    // Truncation frees whole blocks past the cut.
    fs.truncate(&notes, 100).unwrap();
    println!(
        "after truncate to 100 bytes: disk in use = {}",
        stats.statfs().unwrap().allocated_blocks
    );

    // Non-empty directories refuse unlink; files give blocks back.
    match fs.unlink(&root, "home") {
        Err(e) => println!("unlink of non-empty /home refused: {e}"),
        Ok(()) => panic!("non-empty directory unlinked"),
    }
    fs.unlink(&home, "notes.txt").unwrap();
    fs.unlink(&root, "home").unwrap();
    println!(
        "after unlinks: disk in use = {}",
        stats.statfs().unwrap().allocated_blocks
    );

    fs_runner.stop();
    disk.stop();
    println!("§3.5 UNIX-like file system reproduced — done");
}
