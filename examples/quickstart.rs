//! Quickstart: the capability lifecycle of §2.3, end to end.
//!
//! A client creates a file on the flat file server, writes data into it,
//! and gives another client permission to read — but not modify — the
//! file, first by asking the server (schemes 1/2 style) and then by
//! diminishing the capability locally (scheme 3). Finally the owner
//! revokes everything.
//!
//! Run with: `cargo run --example quickstart`

use amoeba::prelude::*;

fn main() {
    // A broadcast network where every machine sits behind an F-box.
    let net = Network::new();

    // The file server, using the commutative-one-way-function scheme.
    let runner = ServiceRunner::spawn_fbox(&net, FlatFsServer::new(SchemeKind::Commutative));
    println!("file server listening on put-port {}", runner.put_port());

    // --- The owner's machine -------------------------------------------
    let owner = FlatFsClient::with_service(ServiceClient::fbox(&net), runner.put_port());
    let cap = owner.create().expect("create file");
    println!("owner minted {cap}");
    owner
        .write(&cap, 0, b"pay alice 100 guilders")
        .expect("write file");

    // --- Delegation, way 1: ask the server to fabricate a sub-capability
    let read_only = owner
        .service()
        .restrict(&cap, Rights::READ)
        .expect("server-side restrict");
    println!("server fabricated read-only {read_only}");

    // --- Delegation, way 2: scheme 3 lets us do it *locally* -----------
    let scheme = CommutativeScheme::standard();
    let read_only_local = scheme
        .diminish(&cap, Rights::ALL.without(Rights::READ))
        .expect("local diminish");
    assert_eq!(
        read_only, read_only_local,
        "both roads mint the identical capability"
    );
    println!("local diminish produced the same bits — no server round trip needed");

    // --- The friend's machine -------------------------------------------
    let friend = FlatFsClient::with_service(ServiceClient::fbox(&net), runner.put_port());
    let contents = friend.read(&read_only, 0, 100).expect("friend reads");
    println!("friend read: {:?}", String::from_utf8_lossy(&contents));

    match friend.write(&read_only, 4, b"mallory") {
        Err(ClientError::Status(Status::RightsViolation)) => {
            println!("friend's write attempt: rejected (insufficient rights) — as designed")
        }
        other => panic!("write should have been refused, got {other:?}"),
    }

    // Tampering the rights field back on does not help.
    let forged = read_only.with_rights(Rights::ALL);
    match friend.write(&forged, 4, b"mallory") {
        Err(ClientError::Status(Status::Forged)) => {
            println!("friend's forged-rights attempt: rejected (capability does not validate)")
        }
        other => panic!("forgery should have been detected, got {other:?}"),
    }

    // --- Revocation -------------------------------------------------------
    let fresh = owner.service().revoke(&cap).expect("revoke");
    match friend.read(&read_only, 0, 100) {
        Err(ClientError::Status(Status::Forged)) => {
            println!("after revocation the friend's capability is dead")
        }
        other => panic!("revoked capability should fail, got {other:?}"),
    }
    let contents = owner.read(&fresh, 0, 100).expect("owner still reads");
    assert_eq!(&contents, b"pay alice 100 guilders");
    println!("owner's fresh capability still works — done");

    runner.stop();
}
