//! Fig 1 as a runnable demo: clients, servers, intruders, and F-boxes.
//!
//! An intruder with full network access — wiretap, injection, replay —
//! attacks a protected echo service four ways. Every attack fails for
//! exactly the reason the paper gives; the honest client's RPC works
//! throughout.
//!
//! Run with: `cargo run --example intruder_demo`

use amoeba::net::NetworkInterface;
use amoeba::prelude::*;
use bytes::Bytes;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let f = ShaOneWay;
    let net = Network::new();

    // --- The server: GET(G), publish P = F(G) ---------------------------
    let server_ep = net.attach(Arc::new(FBox::hardware(f.clone())));
    let g = Port::random(&mut rand::thread_rng());
    let g_value = g.value(); // kept for the "did G ever leak?" check
    let server = ServerPort::bind(server_ep, g);
    let p = server.put_port();
    println!("server: secret get-port G (never on the wire); published P = F(G) = {p}");

    let server_thread = std::thread::spawn(move || {
        while let Ok(req) = server.next_request_timeout(Duration::from_secs(2)) {
            let stop = &req.payload[..] == b"STOP";
            server.reply(&req, req.payload.clone());
            if stop {
                break;
            }
        }
    });

    // --- The intruder: wiretap + its own (F-boxed) machine --------------
    let wire = net.tap();
    let intruder_ep = net.attach(Arc::new(FBox::hardware(f.clone())));

    // Attack 1: impersonation. GET(P) makes the intruder's F-box listen
    // on F(P), a useless port.
    intruder_ep.claim(p);
    println!("\n[attack 1] intruder does GET(P) to impersonate the server…");

    let client = Client::new(net.attach(Arc::new(FBox::hardware(f.clone()))));
    let reply = client
        .trans(p, Bytes::from_static(b"sensitive request"))
        .expect("honest RPC succeeds");
    assert_eq!(&reply[..], b"sensitive request");
    let mut stolen = 0;
    while intruder_ep.try_recv().is_some() {
        stolen += 1;
    }
    assert_eq!(stolen, 0);
    println!("  honest RPC completed; intruder intercepted {stolen} packets");

    // Attack 2: learn G from sniffed traffic. Only P = F(G) and the
    // transformed reply ports ever appear on the wire.
    println!("\n[attack 2] intruder sniffs the wire looking for G…");
    let mut frames = 0;
    while let Ok(pkt) = wire.try_recv() {
        frames += 1;
        for field in [pkt.header.dest, pkt.header.reply, pkt.header.signature] {
            assert_ne!(field.value(), g_value, "the secret get-port leaked!");
        }
    }
    println!("  {frames} frames captured; no header field ever equalled G");

    // Attack 3: replay a captured request through the intruder's F-box.
    // The reply field, already F(G'), is transformed *again* to
    // F(F(G')) — the server's answer goes to a port nobody claims.
    println!("\n[attack 3] intruder replays a captured request…");
    let reply2 = client
        .trans(p, Bytes::from_static(b"second request"))
        .unwrap();
    assert_eq!(&reply2[..], b"second request");
    let captured = wire.try_recv().expect("captured the request frame");
    let replayer = net.attach(Arc::new(FBox::hardware(f.clone())));
    replayer.send(captured.header, captured.payload.clone());
    std::thread::sleep(Duration::from_millis(50));
    assert!(replayer.try_recv().is_none());
    println!(
        "  server may have executed the echo, but the reply went to F(F(G')) — heard by nobody"
    );

    // Attack 4: signature forgery. The client's secret is S; everyone
    // knows F(S). The intruder can only put F(S) in the signature
    // field, which its F-box transmits as F(F(S)) ≠ F(S).
    println!("\n[attack 4] intruder forges the client's signature…");
    let s = Port::random(&mut rand::thread_rng());
    let published = amoeba::fbox::put_port_of(&f, s);
    let honest_box = FBox::hardware(f.clone());
    let mut honest_hdr = Header::to(p).with_signature(s);
    honest_box.egress(&mut honest_hdr);
    let mut forged_hdr = Header::to(p).with_signature(published);
    honest_box.egress(&mut forged_hdr);
    assert_eq!(honest_hdr.signature, published);
    assert_ne!(forged_hdr.signature, published);
    println!("  honest messages arrive bearing F(S); the forgery arrives as F(F(S)) — rejected");

    client.trans(p, Bytes::from_static(b"STOP")).unwrap();
    server_thread.join().unwrap();
    println!("\nall four attacks failed; honest traffic unaffected — Fig 1 reproduced");
}
