//! Resource control with the bank server (§3.6).
//!
//! The file server charges dollars per kilobyte of quota; CPU time is
//! priced in francs; the two currencies convert at the bank. A client
//! that runs out of dollars simply cannot create more file space —
//! "quotas can be implemented by limiting how many dollars each client
//! has".
//!
//! Run with: `cargo run --example bank_quota`

use amoeba::prelude::*;

const DOLLAR: CurrencyId = CurrencyId(0);
const FRANC: CurrencyId = CurrencyId(1);
const PAGE: CurrencyId = CurrencyId(2);

fn main() {
    let net = Network::new();

    // --- The bank, with three currencies ---------------------------------
    let (bank_server, treasury_rx) = BankServer::new(
        vec![
            Currency::convertible("dollar", 6), // 6 base units
            Currency::convertible("franc", 1),  // 1 base unit
            Currency::inconvertible("typesetter-page"),
        ],
        SchemeKind::Commutative,
    );
    let bank_runner = ServiceRunner::spawn_open(&net, bank_server);
    let treasury = treasury_rx.recv().expect("treasury capability");
    let bank = BankClient::open(&net, bank_runner.put_port());
    println!("bank running on {}", bank_runner.put_port());

    // --- The metered file server: its own account, 2 dollars per KiB ----
    let fs_account = bank.open_account().expect("file server account");
    // Keep a read-only view so the demo can audit earnings at the end.
    let fs_account_audit = bank
        .service()
        .restrict(&fs_account, Rights::READ)
        .expect("audit capability");
    let fs_server = FlatFsServer::with_quota(
        SchemeKind::Commutative,
        QuotaPolicy {
            bank: BankClient::open(&net, bank_runner.put_port()),
            server_account: fs_account,
            currency: DOLLAR,
            price_per_kib: 2,
        },
    );
    let fs_runner = ServiceRunner::spawn_open(&net, fs_server);
    let fs = FlatFsClient::open(&net, fs_runner.put_port());
    println!("metered file server running; price: 2 dollars per KiB");

    // --- A client with a modest salary -----------------------------------
    let wallet = bank.open_account().expect("client wallet");
    bank.mint(&treasury, &wallet, DOLLAR, 10).expect("salary");
    bank.mint(&treasury, &wallet, FRANC, 120)
        .expect("cpu budget");
    bank.mint(&treasury, &wallet, PAGE, 3).expect("page ration");
    println!(
        "client wallet: {} dollars, {} francs, {} pages",
        bank.balance(&wallet, DOLLAR).unwrap(),
        bank.balance(&wallet, FRANC).unwrap(),
        bank.balance(&wallet, PAGE).unwrap()
    );

    // Pre-pay 8 dollars => 4 KiB of file quota.
    let file = fs.create_paid(&wallet, 8).expect("paid create");
    println!(
        "created a file with a 4 KiB quota; wallet now holds {} dollars",
        bank.balance(&wallet, DOLLAR).unwrap()
    );
    fs.write(&file, 0, &vec![b'x'; 4096])
        .expect("fits in quota");
    match fs.write(&file, 4096, b"over") {
        Err(ClientError::Status(Status::NoSpace)) => {
            println!("write past the paid quota: refused (no space)")
        }
        other => panic!("expected quota refusal, got {other:?}"),
    }

    // Broke: 2 dollars left, the next create needs more.
    match fs.create_paid(&wallet, 8) {
        Err(ClientError::Status(Status::InsufficientFunds)) => {
            println!("second 8-dollar file: refused (insufficient funds)")
        }
        other => panic!("expected insufficient funds, got {other:?}"),
    }

    // Convert unspent CPU francs into dollars (120 francs = 120 base
    // units = 20 dollars) and buy the file after all.
    let dollars = bank.convert(&wallet, FRANC, DOLLAR, 120).expect("convert");
    println!("converted 120 francs into {dollars} dollars");
    let second = fs.create_paid(&wallet, 8).expect("now affordable");
    fs.write(&second, 0, b"bought with converted francs")
        .unwrap();

    // Typesetter pages, however, are inconvertible.
    match bank.convert(&wallet, PAGE, DOLLAR, 1) {
        Err(ClientError::Status(Status::Unsupported)) => {
            println!("typesetter pages are inconvertible — refused, as configured")
        }
        other => panic!("expected unsupported, got {other:?}"),
    }

    // The file server got paid: two 8-dollar creates.
    let earned = bank.balance(&fs_account_audit, DOLLAR).expect("audit");
    println!("file server earned {earned} dollars");
    assert_eq!(earned, 16);

    fs_runner.stop();
    bank_runner.stop();
    println!("done");
}
