//! Experiment F2 — Fig 2: the 48/24/8/48 capability and the §2.3 file
//! story, run over the network under **all four** protection schemes.

use amoeba::prelude::*;
use proptest::prelude::*;

#[test]
fn capability_is_exactly_128_bits_in_fig2_order() {
    let cap = Capability::new(
        Port::new(0x0102_0304_0506).unwrap(),
        ObjectNum::new(0x0A0B0C).unwrap(),
        Rights::from_bits(0xD0),
        0x0E0F_1011_1213,
    );
    let bytes = cap.encode();
    assert_eq!(bytes.len(), 16, "128 bits");
    // Server port: 48 bits.
    assert_eq!(&bytes[0..6], &[1, 2, 3, 4, 5, 6]);
    // Object: 24 bits.
    assert_eq!(&bytes[6..9], &[0x0A, 0x0B, 0x0C]);
    // Rights: 8 bits.
    assert_eq!(bytes[9], 0xD0);
    // Check field: 48 bits.
    assert_eq!(&bytes[10..16], &[0x0E, 0x0F, 0x10, 0x11, 0x12, 0x13]);
}

proptest! {
    #[test]
    fn every_capability_roundtrips_through_fig2_wire_form(
        port in 1u64..(1 << 48) - 1, obj in 0u32..(1 << 24), rights: u8, check: u64)
    {
        let cap = Capability::new(
            Port::new(port).unwrap(),
            ObjectNum::new(obj).unwrap(),
            Rights::from_bits(rights),
            check,
        );
        prop_assert_eq!(Capability::decode(&cap.encode()), Some(cap));
    }
}

/// The §2.3 story: create a file, write data, pass read-only access to a
/// second client, who can read but not write; tampering is caught.
fn file_story(kind: SchemeKind) {
    let net = Network::new();
    let runner = ServiceRunner::spawn_fbox(&net, FlatFsServer::new(kind));
    let owner = FlatFsClient::with_service(ServiceClient::fbox(&net), runner.put_port());

    // CREATE and WRITE.
    let cap = owner.create().unwrap();
    owner.write(&cap, 0, b"the quick brown fox").unwrap();

    // Delegate read-only (server-side restrict works for schemes 1-3;
    // scheme 0 has no rights distinction — share the full capability).
    let (friend_cap, expect_write_ok) = match kind {
        SchemeKind::Simple => (cap, true),
        _ => (owner.service().restrict(&cap, Rights::READ).unwrap(), false),
    };

    // The friend is a different client on a different machine.
    let friend = FlatFsClient::with_service(ServiceClient::fbox(&net), runner.put_port());
    assert_eq!(&friend.read(&friend_cap, 4, 5).unwrap(), b"quick");

    let write_result = friend.write(&friend_cap, 0, b"THE");
    assert_eq!(
        write_result.is_ok(),
        expect_write_ok,
        "{kind}: write permission mismatch"
    );

    // Bit-for-bit copying of a capability works (they are plain bits).
    let copied = Capability::decode(&friend_cap.encode()).unwrap();
    assert!(friend.read(&copied, 0, 3).is_ok());

    // Tampering with rights or check is always detected (schemes 1-3).
    if kind != SchemeKind::Simple {
        let amplified = friend_cap.with_rights(Rights::ALL);
        assert_eq!(
            friend.write(&amplified, 0, b"evil").unwrap_err(),
            ClientError::Status(Status::Forged),
            "{kind}: rights amplification must be detected"
        );
    }
    let check_tampered = friend_cap.with_check(friend_cap.check ^ 0b100);
    assert_eq!(
        friend.read(&check_tampered, 0, 1).unwrap_err(),
        ClientError::Status(Status::Forged),
        "{kind}: check tampering must be detected"
    );

    // Revocation invalidates both outstanding capabilities.
    let fresh = owner.service().revoke(&cap).unwrap();
    assert!(friend.read(&friend_cap, 0, 1).is_err(), "{kind}");
    assert!(owner.read(&fresh, 0, 1).is_ok(), "{kind}");

    runner.stop();
}

#[test]
fn file_story_scheme0_simple() {
    file_story(SchemeKind::Simple);
}

#[test]
fn file_story_scheme1_encrypted() {
    file_story(SchemeKind::Encrypted);
}

#[test]
fn file_story_scheme2_oneway() {
    file_story(SchemeKind::OneWay);
}

#[test]
fn file_story_scheme3_commutative() {
    file_story(SchemeKind::Commutative);
}

#[test]
fn scheme3_delegation_without_server_roundtrip() {
    // The headline feature: a capability restricted entirely client-side
    // is honoured by the server.
    let net = Network::new();
    let runner = ServiceRunner::spawn_fbox(&net, FlatFsServer::new(SchemeKind::Commutative));
    let owner = FlatFsClient::with_service(ServiceClient::fbox(&net), runner.put_port());
    let cap = owner.create().unwrap();
    owner.write(&cap, 0, b"local diminish").unwrap();

    let before = net.stats().snapshot();
    let scheme = CommutativeScheme::standard();
    let ro = scheme
        .diminish(&cap, Rights::ALL.without(Rights::READ))
        .unwrap();
    let after = net.stats().snapshot();
    assert_eq!(
        after.packets_sent - before.packets_sent,
        0,
        "diminish must generate zero network traffic"
    );

    let friend = FlatFsClient::with_service(ServiceClient::fbox(&net), runner.put_port());
    assert_eq!(&friend.read(&ro, 0, 5).unwrap(), b"local");
    assert!(friend.write(&ro, 0, b"x").is_err());
    runner.stop();
}

#[test]
fn capabilities_can_be_stored_in_directories_and_recovered() {
    // Capabilities are data: store one in a directory (a (name, cap)
    // set), look it up from another machine, use it.
    let net = Network::new();
    let fs_runner = ServiceRunner::spawn_fbox(&net, FlatFsServer::new(SchemeKind::OneWay));
    let dir_runner = ServiceRunner::spawn_fbox(&net, DirServer::new(SchemeKind::Commutative));

    let fs = FlatFsClient::with_service(ServiceClient::fbox(&net), fs_runner.put_port());
    let dirs = DirClient::with_service(ServiceClient::fbox(&net), dir_runner.put_port());

    let file = fs.create().unwrap();
    fs.write(&file, 0, b"filed away").unwrap();
    let home = dirs.create_dir().unwrap();
    dirs.enter(&home, "doc.txt", &file).unwrap();

    // A second machine recovers the capability purely by name.
    let other_dirs = DirClient::with_service(ServiceClient::fbox(&net), dir_runner.put_port());
    let other_fs = FlatFsClient::with_service(ServiceClient::fbox(&net), fs_runner.put_port());
    let recovered = other_dirs.lookup(&home, "doc.txt").unwrap();
    assert_eq!(recovered, file);
    assert_eq!(&other_fs.read(&recovered, 0, 10).unwrap(), b"filed away");

    fs_runner.stop();
    dir_runner.stop();
}
