//! Trace causality: every transaction span the flight recorder
//! captures must be internally ordered — event timestamps monotone
//! along the span, and each span phase recorded before the phases it
//! causes (start before wire, wire before demux, demux before the
//! completion wake). The property must hold under all three clock
//! disciplines: wall (real sleeps), virtual (timeline jumps), and the
//! deterministic simulation executor (seeded single-threaded
//! scheduling) — the recorder reads the shared `Clock`, so a clock
//! whose timeline ever ran backwards would fail here.

mod sim_support;

use amoeba::prelude::*;
use amoeba::rpc::Client;
use bytes::Bytes;
use proptest::prelude::*;
use sim_support::EchoService;
use std::cell::Cell;
use std::rc::Rc;
use std::sync::Arc;
use std::time::Duration;

/// Groups the recording into per-trace spans and asserts causal order
/// within each. Returns how many spans were checked.
fn assert_traces_causal(events: &[FlightEvent], context: &str) -> usize {
    use std::collections::BTreeMap;
    let mut spans: BTreeMap<u64, Vec<&FlightEvent>> = BTreeMap::new();
    for e in events {
        if e.trace != 0 {
            // `Obs::events` yields recording order (sorted by seq).
            spans.entry(e.trace).or_default().push(e);
        }
    }
    for (trace, span) in &spans {
        for w in span.windows(2) {
            assert!(
                w[0].t_nanos <= w[1].t_nanos,
                "{context}: trace {trace} ran backwards: {} at {} ns \
                 recorded before {} at {} ns",
                w[0].kind.name(),
                w[0].t_nanos,
                w[1].kind.name(),
                w[1].t_nanos,
            );
        }
        // Parent-before-child along the span's phase chain. Retransmits
        // make FrameOnWire/ReplyDemux repeatable, so compare the FIRST
        // occurrence of each phase.
        let first = |kind: EventKind| span.iter().position(|e| e.kind == kind);
        let chain = [
            EventKind::TransStart,
            EventKind::Encode,
            EventKind::FrameOnWire,
            EventKind::ReplyDemux,
            EventKind::CompletionWake,
        ];
        let mut last_seen: Option<(EventKind, usize)> = None;
        for kind in chain {
            let Some(pos) = first(kind) else {
                // A span may legitimately lack later phases (timed out,
                // still in flight when the recording was taken) — but
                // never earlier ones.
                continue;
            };
            if let Some((parent, parent_pos)) = last_seen {
                assert!(
                    parent_pos < pos,
                    "{context}: trace {trace}: {} recorded before its \
                     parent {}",
                    kind.name(),
                    parent.name(),
                );
            }
            last_seen = Some((kind, pos));
        }
        assert_eq!(
            first(EventKind::TransStart),
            Some(0),
            "{context}: trace {trace} must open with TransStart",
        );
    }
    spans.len()
}

/// A blocking echo workload on a threaded (wall or virtual clock)
/// network; returns the recording.
fn threaded_workload(net: &Network, ops: usize) -> Vec<FlightEvent> {
    net.obs().enable();
    let runner = ServiceRunner::spawn_open(net, EchoService);
    let client = Client::new(net.attach_open());
    for i in 0..ops {
        let tag = format!("op-{i}");
        let body = sim_support::encode_echo(tag.as_bytes());
        let raw = client
            .trans(runner.put_port(), body)
            .expect("echo completes");
        let reply = amoeba::server::proto::Reply::decode(&raw).expect("decodes");
        assert_eq!(&reply.body[..], tag.as_bytes());
    }
    let events = net.obs().events();
    runner.stop();
    events
}

/// A poll-driven echo workload on the deterministic simulation
/// executor; returns the recording.
fn sim_workload(seed: u64, clients: usize, ops: usize) -> Vec<FlightEvent> {
    let net = Network::new_sim(seed);
    net.obs().enable();
    net.set_latency(Duration::from_millis(1));
    let port = Port::new(0x0B5_7ACE).unwrap();
    let pump = Arc::new(SimPump::bind(net.attach_open(), port, EchoService));
    let put_port = pump.put_port();

    let arena: Vec<Client> = (0..clients)
        .map(|i| Client::new(net.attach_open()).with_rng_seed(seed ^ i as u64))
        .collect();
    let done = Rc::new(Cell::new(0usize));
    let mut exec = SimExecutor::new(&net);
    {
        let pump = Arc::clone(&pump);
        exec.spawn_daemon(pump.machine(), move || {
            if pump.poll() {
                ActorPoll::Progress
            } else {
                ActorPoll::Idle
            }
        });
    }
    for (ci, client) in arena.iter().enumerate() {
        let done = Rc::clone(&done);
        let mut op = 0usize;
        let mut current: Option<amoeba::rpc::Completion<'_, Bytes>> = None;
        exec.spawn(client.endpoint().id(), move || loop {
            if let Some(comp) = current.as_mut() {
                match comp.poll() {
                    Some(Ok(_)) => {
                        done.set(done.get() + 1);
                        current = None;
                        op += 1;
                        if op == ops {
                            return ActorPoll::Done;
                        }
                    }
                    Some(Err(e)) => panic!("sim client {ci} op {op}: {e}"),
                    None => return ActorPoll::IdleUntil(comp.deadline()),
                }
            } else {
                let tag = format!("c{ci}.o{op}");
                let body = sim_support::encode_echo(tag.as_bytes());
                current = Some(client.trans_async(put_port, body));
            }
        });
    }
    exec.run().expect("sim workload must not stall");
    drop(exec);
    assert_eq!(done.get(), clients * ops);
    net.obs().events()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Sim clock: seeded schedules, several interleaved clients.
    #[test]
    fn sim_traces_are_causal(seed in any::<u64>()) {
        let events = sim_workload(seed, 3, 2);
        let spans = assert_traces_causal(&events, "sim");
        prop_assert_eq!(spans, 6, "one span per transaction");
    }

    /// Virtual clock: the timeline jumps over modeled latency; spans
    /// must still read forward.
    #[test]
    fn virtual_traces_are_causal(ops in 1usize..4) {
        let events = threaded_workload(&Network::new_virtual(), ops);
        let spans = assert_traces_causal(&events, "virtual");
        prop_assert_eq!(spans, ops);
    }
}

/// Wall clock: real time, real thread scheduling. Not proptest-swept —
/// wall-clock runs cost real milliseconds, one pass is the point.
#[test]
fn wall_traces_are_causal() {
    let events = threaded_workload(&Network::new(), 3);
    let spans = assert_traces_causal(&events, "wall");
    assert_eq!(spans, 3);
}

/// A batched path resolution records one `PathResolve` span event —
/// operands (hops, segments consumed) — threaded under the trace id of
/// its FIRST hop, without breaking span causality.
#[test]
fn resolve_records_a_path_span_under_the_first_hop_trace() {
    let net = Network::new_virtual();
    net.obs().enable();
    let s1 = ServiceRunner::spawn_open(&net, DirServer::new(SchemeKind::OneWay));
    let s2 = ServiceRunner::spawn_open(&net, DirServer::new(SchemeKind::Commutative));
    let dirs = DirClient::open(&net, s1.put_port());

    // root/a on server 1; b/c on server 2 → exactly two hops.
    let root = dirs.create_dir_on(s1.put_port()).unwrap();
    let a = dirs.create_dir_on(s1.put_port()).unwrap();
    let b = dirs.create_dir_on(s2.put_port()).unwrap();
    let c = dirs.create_dir_on(s2.put_port()).unwrap();
    dirs.enter(&root, "a", &a).unwrap();
    dirs.enter(&a, "b", &b).unwrap();
    dirs.enter(&b, "c", &c).unwrap();

    assert_eq!(dirs.resolve(&root, "a/b/c").unwrap(), c);
    let events = net.obs().events();

    let resolves: Vec<&FlightEvent> = events
        .iter()
        .filter(|e| e.kind == EventKind::PathResolve)
        .collect();
    assert_eq!(resolves.len(), 1, "one span event per resolution");
    let span = resolves[0];
    assert_eq!(span.a, 2, "two server hops for the cross-server chain");
    assert_eq!(span.b, 3, "all three segments consumed");
    assert_ne!(span.trace, 0, "threaded from the first hop's trace");
    assert!(
        events
            .iter()
            .any(|e| e.trace == span.trace && e.kind == EventKind::TransStart),
        "the span's trace id must belong to a recorded transaction"
    );
    // The extra span event must not disturb per-transaction causality.
    assert!(assert_traces_causal(&events, "resolve") >= 2);
    s1.stop();
    s2.stop();
}
