//! A real service (the flat file server) running over §2.4 sealed
//! transport, driven through the public API — request capabilities are
//! DES ciphertext on the wire, keyed by the unforgeable source address.

use amoeba::prelude::*;
use bytes::Bytes;
use rand::SeedableRng;
use std::sync::Arc;

/// Builds a sealed flat-file deployment: the flat file server behind a
/// [`SealedServiceRunner`], a client with matching matrix keys, and an
/// intruder machine with its own (useless) keys.
struct SealedWorld {
    net: Network,
    runner: SealedServiceRunner,
    client: SealedServiceClient,
    server_machine: MachineId,
}

fn world() -> SealedWorld {
    let net = Network::new();
    let server_ep = net.attach_open();
    let client_ep = net.attach_open();
    let intruder_ep = net.attach_open();
    let mut rng = rand::rngs::StdRng::seed_from_u64(24);
    let matrix = KeyMatrix::random(
        &[server_ep.id(), client_ep.id(), intruder_ep.id()],
        &mut rng,
    );

    let server_machine = server_ep.id();
    let server_sealer = Arc::new(CapSealer::new(matrix.view_for(server_machine)));
    let client_sealer = Arc::new(CapSealer::new(matrix.view_for(client_ep.id())));

    let runner = SealedServiceRunner::spawn(
        server_ep,
        Port::new(0xF17E5).unwrap(),
        FlatFsServer::new(SchemeKind::Commutative),
        server_sealer,
    );
    // The matrix keys bind to client_ep's machine id, so the sealing
    // client must ride exactly that endpoint.
    let client = SealedServiceClient::with_client(
        Client::new(client_ep),
        Arc::clone(&client_sealer),
        server_machine,
    );
    drop(intruder_ep);
    SealedWorld {
        net,
        runner,
        client,
        server_machine,
    }
}

#[test]
fn flatfs_over_sealed_transport() {
    let w = world();
    // CREATE is anonymous; the *reply* carries the capability in the
    // clear here (the flat file server predates sealing) — the test
    // focuses on request-path sealing, which the runner enforces.
    let body = w
        .client
        .call_anonymous(
            w.runner.put_port(),
            amoeba::flatfs::ops::CREATE,
            Bytes::new(),
        )
        .unwrap();
    let cap = amoeba::server::wire::Reader::new(&body).cap().unwrap();

    // WRITE and READ carry the capability sealed.
    w.client
        .call(
            w.runner.put_port(),
            &cap,
            amoeba::flatfs::ops::WRITE,
            amoeba::server::wire::Writer::new()
                .u64(0)
                .bytes(b"sealed bytes")
                .finish(),
        )
        .unwrap();
    let data = w
        .client
        .call(
            w.runner.put_port(),
            &cap,
            amoeba::flatfs::ops::READ,
            amoeba::server::wire::Writer::new().u64(0).u32(64).finish(),
        )
        .unwrap();
    assert_eq!(&data[..], b"sealed bytes");
    w.runner.stop();
}

#[test]
fn request_capability_is_ciphertext_on_the_wire() {
    let w = world();
    let body = w
        .client
        .call_anonymous(
            w.runner.put_port(),
            amoeba::flatfs::ops::CREATE,
            Bytes::new(),
        )
        .unwrap();
    let cap = amoeba::server::wire::Reader::new(&body).cap().unwrap();

    let wire = w.net.tap();
    w.client
        .call(
            w.runner.put_port(),
            &cap,
            amoeba::flatfs::ops::SIZE,
            Bytes::new(),
        )
        .unwrap();
    let plain = cap.encode();
    let mut request_frames = 0;
    while let Ok(pkt) = wire.try_recv() {
        if pkt.header.dest == w.runner.put_port() {
            request_frames += 1;
            assert!(
                !pkt.payload.windows(16).any(|win| win == plain),
                "plaintext capability in a sealed request"
            );
        }
    }
    assert!(request_frames >= 1, "the request crossed the tap");
    w.runner.stop();
}

#[test]
fn stolen_sealed_bits_are_useless_to_another_machine() {
    let w = world();
    let body = w
        .client
        .call_anonymous(
            w.runner.put_port(),
            amoeba::flatfs::ops::CREATE,
            Bytes::new(),
        )
        .unwrap();
    let cap = amoeba::server::wire::Reader::new(&body).cap().unwrap();
    w.client
        .call(
            w.runner.put_port(),
            &cap,
            amoeba::flatfs::ops::WRITE,
            amoeba::server::wire::Writer::new()
                .u64(0)
                .bytes(b"mine")
                .finish(),
        )
        .unwrap();

    // An intruder machine without matrix keys cannot even form a sealed
    // request for the stolen (plaintext) capability — and injecting the
    // stolen *ciphertext* from its own machine is covered by the
    // in-crate replay test: the server unseals with M[intruder][server]
    // and rejects.
    let intruder_sealer = Arc::new(CapSealer::new(MachineKeys::empty(w.server_machine)));
    let intruder_client = SealedServiceClient::open(&w.net, intruder_sealer, w.server_machine);
    assert!(matches!(
        intruder_client
            .call(
                w.runner.put_port(),
                &cap,
                amoeba::flatfs::ops::READ,
                amoeba::server::wire::Writer::new().u64(0).u32(16).finish(),
            )
            .unwrap_err(),
        ClientError::Malformed
    ));
    w.runner.stop();
}
