//! The zero-cost-when-disabled gate for the observability layer.
//!
//! `Obs::record` on a disabled handle is supposed to cost one atomic
//! load and a branch — no heap allocation, no lock, no pooled buffer.
//! This binary proves it with three meters:
//!
//! * a thread-local counting allocator (exact, immune to other
//!   threads),
//! * the process-wide hot-mutex acquisition counter,
//! * the process-wide pooled-buffer allocation counter.
//!
//! The global counters are only meaningful in a sequential process
//! (see `amoeba_net::sync`), which is why this gate lives alone in its
//! own integration-test binary instead of in `tests/scale.rs`.

use amoeba::prelude::*;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::Mutex;
use std::time::Duration;

/// The hot-mutex and buffer-pool counters are process-wide, so the two
/// gates in this binary must not overlap in time.
static SERIAL: Mutex<()> = Mutex::new(());

/// Counts this thread's heap allocations; delegates to the system
/// allocator. Const-initialized TLS so the counting path itself never
/// allocates (and never recurses).
struct CountingAlloc;

thread_local! {
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

fn thread_allocs() -> u64 {
    THREAD_ALLOCS.with(Cell::get)
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        THREAD_ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn disabled_obs_record_path_adds_zero_allocs_and_zero_locks() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    const RECORDS: u64 = 1_000_000;

    // Build everything that legitimately allocates *before* the
    // measured window: the network (whose obs handle stays disabled)
    // and a warmed metrics probe.
    let net = Network::new_virtual();
    let obs = net.obs().clone();
    assert!(!obs.enabled(), "a fresh network's recorder starts disabled");
    obs.record(EventKind::TransStart, 0, 0, 0, 0);
    assert!(obs.metrics().is_none());

    let allocs0 = thread_allocs();
    let hot0 = net.hot_path();
    for i in 0..RECORDS {
        obs.record(EventKind::FrameOnWire, i, i, i, i);
        if obs.metrics().is_some() {
            unreachable!("the handle is disabled for the whole window");
        }
    }
    let hot = net.hot_path() - hot0;
    let allocs = thread_allocs() - allocs0;

    assert_eq!(
        allocs, 0,
        "disabled record path must not allocate: {allocs} heap \
         allocations over {RECORDS} records"
    );
    assert_eq!(
        hot.lock_acquisitions, 0,
        "disabled record path must not lock: {} hot-mutex acquisitions \
         over {RECORDS} records",
        hot.lock_acquisitions
    );
    assert_eq!(
        hot.buffer_allocs, 0,
        "disabled record path must not touch the buffer pool: {} pooled \
         allocations over {RECORDS} records",
        hot.buffer_allocs
    );

    // And the recorder still works afterwards: enabling is a one-time
    // allocation, not a per-record one.
    obs.enable();
    obs.record(EventKind::TransStart, 7, 42, 1, 2);
    let events = obs.events();
    assert_eq!(events.len(), 1);
    assert_eq!(events[0].trace, 42);
}

#[test]
fn cached_resolve_hit_adds_zero_allocs_and_zero_locks() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    const HITS: u64 = 100_000;

    // Everything that legitimately allocates happens before the
    // window: server, tree, the warming resolve that populates the
    // capability cache, and the recorder ring (enabling is a one-time
    // allocation).
    let net = Network::new_virtual();
    net.obs().enable();
    let runner = ServiceRunner::spawn_open(&net, DirServer::new(SchemeKind::Commutative));
    let dirs = DirClient::open(&net, runner.put_port()).with_cache(Duration::from_secs(3600));
    let root = dirs.create_dir().unwrap();
    let a = dirs.create_dir().unwrap();
    let b = dirs.create_dir().unwrap();
    let leaf = dirs.create_dir().unwrap();
    dirs.enter(&root, "a", &a).unwrap();
    dirs.enter(&a, "b", &b).unwrap();
    dirs.enter(&b, "c", &leaf).unwrap();
    assert_eq!(dirs.resolve(&root, "a/b/c").unwrap(), leaf); // warm

    // The server is STOPPED for the measured window: a cache hit that
    // touched the network at all would error, not just slow down.
    runner.stop();

    let frames0 = net.stats().snapshot().packets_sent;
    let allocs0 = thread_allocs();
    let hot0 = net.hot_path();
    for _ in 0..HITS {
        match dirs.resolve(&root, "a/b/c") {
            Ok(cap) if cap == leaf => {}
            other => panic!("cached resolve must hit: {other:?}"),
        }
    }
    let hot = net.hot_path() - hot0;
    let allocs = thread_allocs() - allocs0;
    let frames = net.stats().snapshot().packets_sent - frames0;

    assert_eq!(frames, 0, "cache hits must not touch the network");
    assert_eq!(
        allocs, 0,
        "cached resolve hit must not allocate: {allocs} heap allocations \
         over {HITS} hits (obs enabled)"
    );
    assert_eq!(
        hot.lock_acquisitions, 0,
        "cached resolve hit must not lock: {} hot-mutex acquisitions \
         over {HITS} hits",
        hot.lock_acquisitions
    );
    assert_eq!(
        hot.buffer_allocs, 0,
        "cached resolve hit must not touch the buffer pool: {} pooled \
         allocations over {HITS} hits",
        hot.buffer_allocs
    );

    // The hits were observable the whole time: PathResolve spans with
    // zero hops landed in the flight recorder.
    let events = net.obs().events();
    assert!(events
        .iter()
        .any(|e| e.kind == EventKind::PathResolve && e.a == 0));
}
