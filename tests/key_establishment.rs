//! Experiment E6 — the §2.4 key-establishment protocol over the real
//! simulated network: broadcast announcement, public-key handshake,
//! server authentication, and per-boot freshness.

use amoeba::prelude::*;
use amoeba::softprot::handshake::HandshakeError;
use amoeba::softprot::Announcement;
use bytes::Bytes;
use rand::SeedableRng;
use std::time::Duration;

/// Runs the server side of one handshake: announce, answer one KEYREQ.
/// Returns the keys the server installed.
fn serve_one_handshake(
    server: Endpoint,
    boot: ServerBoot,
    served_port: Port,
) -> std::thread::JoinHandle<(u64, u64)> {
    std::thread::spawn(move || {
        server.claim(served_port);
        // "it sends a broadcast message announcing its presence"
        server.send(
            Header::to(Port::BROADCAST),
            Bytes::copy_from_slice(&boot.announcement().encode()),
        );
        let mut rng = rand::rngs::StdRng::from_entropy();
        loop {
            let pkt = server.recv().expect("server endpoint alive");
            if pkt.header.dest != served_port || pkt.header.reply.is_null() {
                continue;
            }
            match boot.handle_keyreq(&pkt.payload, &mut rng) {
                Ok((keyrep, k_cs, k_sc)) => {
                    server.send(Header::to(pkt.header.reply), Bytes::from(keyrep));
                    return (k_cs, k_sc);
                }
                Err(_) => continue, // garbage request; keep serving
            }
        }
    })
}

#[test]
fn full_handshake_over_broadcast_network() {
    let net = Network::new();
    let server_ep = net.attach_open();
    let client_ep = net.attach_open();
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);

    let served_port = Port::new(0xF5).unwrap();
    let boot = ServerBoot::new(served_port, &mut rng);
    let server_thread = serve_one_handshake(server_ep, boot, served_port);

    // Client hears the announcement...
    let ann_pkt = client_ep.recv().unwrap();
    let ann = Announcement::decode(&ann_pkt.payload).expect("valid announcement");
    assert_eq!(ann.port, served_port);

    // ...and runs the handshake.
    let (session, keyreq) = ClientSession::start(ann, &mut rng);
    let reply_port = Port::new(0xC11E).unwrap();
    client_ep.claim(reply_port);
    client_ep.send(
        Header::to(ann.port).with_reply(reply_port),
        Bytes::from(keyreq),
    );
    let keyrep = client_ep.recv().unwrap();
    let k_reverse = session.finish(&keyrep.payload).expect("handshake verifies");

    // Both sides agree on both keys.
    let (k_cs, k_sc) = server_thread.join().unwrap();
    assert_eq!(k_cs, session.client_key());
    assert_eq!(k_sc, k_reverse);
}

#[test]
fn replay_of_previous_boot_reply_rejected() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(6);
    let port = Port::new(0xB007).unwrap();

    // Boot 1: intruder records the whole exchange.
    let boot1 = ServerBoot::new(port, &mut rng);
    let (s1, keyreq1) = ClientSession::start(boot1.announcement(), &mut rng);
    let (old_keyrep, _, _) = boot1.handle_keyreq(&keyreq1, &mut rng).unwrap();
    s1.finish(&old_keyrep).expect("boot 1 handshake fine");

    // Server crashes and reboots with fresh keys; the client starts a
    // new handshake against the NEW announcement.
    let boot2 = ServerBoot::new(port, &mut rng);
    let (s2, _keyreq2) = ClientSession::start(boot2.announcement(), &mut rng);

    // Intruder races the real server and plays back boot 1's reply.
    let verdict = s2.finish(&old_keyrep).unwrap_err();
    assert!(
        matches!(
            verdict,
            HandshakeError::BadSignature | HandshakeError::StaleOrForgedReply
        ),
        "old replies must not verify after a reboot: {verdict:?}"
    );
}

#[test]
fn impostor_announcement_cannot_complete_handshake() {
    // An intruder broadcasts an announcement with the REAL server's port
    // but its own public key — clients would send it keys, but the paper
    // requires the reply prove ownership of the ANNOUNCED key. Flip it:
    // the intruder announces the real key (it is public), then cannot
    // sign the reply.
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let port = Port::new(0x1337).unwrap();
    let real = ServerBoot::new(port, &mut rng);
    let intruder = ServerBoot::new(port, &mut rng); // different private key

    let (session, keyreq) = ClientSession::start(real.announcement(), &mut rng);
    match intruder.handle_keyreq(&keyreq, &mut rng) {
        // Usually the intruder cannot even decrypt K (wrong modulus).
        Err(HandshakeError::Malformed) => {}
        // If decryption "succeeds" by chance, the signature still fails.
        Ok((reply, _, _)) => {
            assert!(session.finish(&reply).is_err());
        }
        Err(e) => panic!("unexpected error {e:?}"),
    }
}

#[test]
fn handshake_survives_packet_loss_with_retries() {
    let net = Network::new();
    net.reseed(11);
    let server_ep = net.attach_open();
    let client_ep = net.attach_open();
    let mut rng = rand::rngs::StdRng::seed_from_u64(8);

    let served_port = Port::new(0xFA11).unwrap();
    let boot = ServerBoot::new(served_port, &mut rng);
    let announcement = boot.announcement();
    let server_thread = serve_one_handshake(server_ep, boot, served_port);

    // Drop the announcement broadcast and first attempts.
    net.set_drop_rate(0.5);

    let (session, keyreq) = ClientSession::start(announcement, &mut rng);
    let reply_port = Port::new(0xCAFE).unwrap();
    client_ep.claim(reply_port);
    // Retry the KEYREQ until a verifiable reply arrives.
    let mut k_reverse = None;
    for _ in 0..50 {
        client_ep.send(
            Header::to(announcement.port).with_reply(reply_port),
            Bytes::copy_from_slice(&keyreq),
        );
        if let Ok(pkt) = client_ep.recv_timeout(Duration::from_millis(20)) {
            if let Ok(k) = session.finish(&pkt.payload) {
                k_reverse = Some(k);
                break;
            }
        }
    }
    net.set_drop_rate(0.0);
    let k_reverse = k_reverse.expect("handshake completed despite 50% loss");
    let (k_cs, k_sc) = server_thread.join().unwrap();
    assert_eq!(k_cs, session.client_key());
    assert_eq!(k_sc, k_reverse);
}
