//! Failure injection: the connectionless RPC design under loss, delay
//! and server restart. §2.1's "no connections or virtual circuits or
//! any other long-lived communication structures" means recovery needs
//! no state machinery — a retransmitted request either reaches a server
//! or it does not.
//!
//! The hand-rolled schedules below are kept as smoke tests; the seeded
//! `FaultPlan` variants at the bottom run the same failure classes
//! through the deterministic simulation, where the schedule is exact,
//! replayable, and adversarial (see `tests/sim_fault_plans.rs`).

mod sim_support;

use amoeba::prelude::*;
use sim_support::run_scenario;
use std::time::Duration;

fn patient() -> RpcConfig {
    RpcConfig {
        timeout: Duration::from_millis(40),
        attempts: 50,
    }
}

#[test]
fn rpc_completes_under_heavy_loss() {
    let net = Network::new();
    net.reseed(1);
    let runner = ServiceRunner::spawn_open(&net, FlatFsServer::new(SchemeKind::OneWay));
    let fs = FlatFsClient::with_service(
        ServiceClient::open_with_config(&net, patient()),
        runner.put_port(),
    );

    net.set_drop_rate(0.5);
    let cap = fs.create().expect("create at 50% loss");
    for i in 0..10u64 {
        fs.write(&cap, i * 3, b"abc").expect("write at 50% loss");
    }
    net.set_drop_rate(0.0);
    assert_eq!(fs.size(&cap).unwrap(), 9 * 3 + 3);
    runner.stop();
}

#[test]
fn writes_are_idempotent_under_duplication() {
    // At-least-once delivery duplicates operations; absolute-offset
    // writes are naturally idempotent, which is why the flat file
    // interface uses them (no append).
    let net = Network::new();
    let runner = ServiceRunner::spawn_open(&net, FlatFsServer::new(SchemeKind::Simple));
    let fs = FlatFsClient::with_service(ServiceClient::open(&net), runner.put_port());
    let cap = fs.create().unwrap();
    for _ in 0..5 {
        // The same logical write delivered five times...
        fs.write(&cap, 0, b"exactly these bytes").unwrap();
    }
    // ...leaves exactly one copy of the data.
    assert_eq!(fs.size(&cap).unwrap(), 19);
    assert_eq!(&fs.read(&cap, 0, 100).unwrap(), b"exactly these bytes");
    runner.stop();
}

#[test]
fn stale_capabilities_do_not_survive_a_fresh_server() {
    // Capabilities are pure data and outlive their server process; but
    // a *replacement* server with fresh per-object secrets must reject
    // them — holding the bits is worthless without the secrets.
    let net = Network::new();
    let runner1 = ServiceRunner::spawn_open(&net, FlatFsServer::new(SchemeKind::Commutative));
    let fs1 = FlatFsClient::with_service(ServiceClient::open(&net), runner1.put_port());
    let cap1 = fs1.create().unwrap();
    fs1.write(&cap1, 0, b"persistent?").unwrap();
    runner1.stop();

    let runner2 = ServiceRunner::spawn_open(&net, FlatFsServer::new(SchemeKind::Commutative));
    let fs2 = FlatFsClient::with_service(
        ServiceClient::open_with_config(
            &net,
            RpcConfig {
                timeout: Duration::from_millis(100),
                attempts: 2,
            },
        ),
        runner2.put_port(),
    );
    let rerouted = Capability::new(runner2.put_port(), cap1.object, cap1.rights, cap1.check);
    assert!(
        fs2.read(&rerouted, 0, 4).is_err(),
        "fresh secrets must reject the old capability"
    );
    runner2.stop();
}

#[test]
fn slow_network_still_correct() {
    let net = Network::new();
    net.set_latency(Duration::from_millis(5));
    let runner = ServiceRunner::spawn_open(&net, DirServer::new(SchemeKind::OneWay));
    let dirs = DirClient::with_service(
        ServiceClient::open_with_config(
            &net,
            RpcConfig {
                timeout: Duration::from_millis(500),
                attempts: 3,
            },
        ),
        runner.put_port(),
    );
    let d = dirs.create_dir().unwrap();
    let t = dirs.create_dir().unwrap();
    dirs.enter(&d, "slow", &t).unwrap();
    assert_eq!(dirs.lookup(&d, "slow").unwrap(), t);
    runner.stop();
}

#[test]
fn mixed_loss_and_latency_with_concurrent_clients() {
    let net = Network::new();
    net.reseed(99);
    net.set_latency(Duration::from_millis(1));
    net.set_drop_rate(0.2);
    let runner = ServiceRunner::spawn_open(&net, FlatFsServer::new(SchemeKind::OneWay));
    let port = runner.put_port();

    let mut handles = Vec::new();
    for t in 0..4u64 {
        let net = net.clone();
        handles.push(std::thread::spawn(move || {
            let fs =
                FlatFsClient::with_service(ServiceClient::open_with_config(&net, patient()), port);
            let cap = fs.create().expect("create");
            let body = format!("thread {t} data");
            fs.write(&cap, 0, body.as_bytes()).expect("write");
            assert_eq!(fs.read(&cap, 0, 64).expect("read"), body.as_bytes());
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    runner.stop();
}

// --- Seeded FaultPlan variants -------------------------------------
//
// The same failure classes as above, but the schedule is drawn from a
// seed and injected at the simulated delivery gate: exact, replayable,
// and counted. The harness itself asserts every transaction completes
// and no reply ever aliases across transactions.

/// Heavy loss as a *plan*, not a coin-flip on a live wire: every
/// dropped frame is logged and counted, and the run is replayable.
#[test]
fn seeded_loss_plan_completes_every_transaction() {
    let plan = FaultPlan {
        loss_per_mille: 350,
        jitter_max: Duration::from_micros(500),
        ..FaultPlan::quiet()
    };
    let report = run_scenario(0xFA17_1055, plan, 3, 3, false);
    assert!(
        report.counters.lost > 0,
        "a 35% loss plan must actually drop frames, got {:?}",
        report.counters
    );
}

/// Frame duplication at the delivery gate. The echo body canary inside
/// the harness turns any straggler-reply aliasing into a panic, which
/// is exactly how the sim caught the recycling bug this plan guards.
#[test]
fn seeded_duplication_never_aliases_replies() {
    let plan = FaultPlan {
        dup_per_mille: 250,
        jitter_max: Duration::from_micros(500),
        ..FaultPlan::quiet()
    };
    let report = run_scenario(0xFA17_D0B1, plan, 3, 3, false);
    assert!(
        report.counters.duplicated > 0,
        "a 25% duplication plan must actually fork frames, got {:?}",
        report.counters
    );
}

/// A replica crashes *mid-transaction* and restarts: the window opens
/// one network latency after the first fan-out, so replica 0 has the
/// request on its wire (or in hand) when it dies — the frame is eaten
/// at delivery, or the reply dies with the machine. The surviving
/// replicas answer, the client routes around the corpse, and §2.1's
/// statelessness under restart plays out on an exact schedule instead
/// of a racing thread kill.
#[test]
fn seeded_crash_window_mid_transaction_recovers() {
    let plan = FaultPlan {
        jitter_max: Duration::from_micros(300),
        crashes: vec![CrashWindow {
            victim: 0, // replica 0 — fault targets 0..2 are the replicas
            from: Duration::from_millis(1),
            until: Duration::from_millis(60),
        }],
        ..FaultPlan::quiet()
    };
    let report = run_scenario(0xFA17_C4A5, plan, 3, 3, false);
    assert!(
        report.counters.crash_dropped > 0,
        "the crash window must intersect live traffic, got {:?}",
        report.counters
    );
}
