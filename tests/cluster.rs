//! Cluster subsystem integration: replicated failover under load and
//! sharded multi-node placement of the metered-create workload.
//!
//! The failover and placement tests run on the **virtual clock**
//! (`Network::new_virtual`): the 2 ms hops and failover-detection
//! timeouts are modeled time, so the assertions measure the model, not
//! wall-clock margins on a loaded runner.

use amoeba::prelude::*;
use amoeba::server::proto::Reply;
use amoeba::server::wire;
use bytes::Bytes;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A patient RPC config for virtual-time workloads: modeled queueing
/// easily exceeds the default 500 ms timeout once the timeline, not
/// the wall clock, is what advances.
fn patient() -> amoeba::rpc::RpcConfig {
    amoeba::rpc::RpcConfig {
        timeout: Duration::from_secs(30),
        attempts: 2,
    }
}

/// A stateless service any replica can serve: sums the bytes of the
/// request parameters.
struct Summer;

const CMD_SUM: u32 = 1;

impl Service for Summer {
    fn handle(&self, req: &Request, _ctx: &amoeba::server::RequestCtx) -> Reply {
        let sum: u64 = req.params.iter().map(|&b| b as u64).sum();
        Reply::ok(wire::Writer::new().u64(sum).finish())
    }
}

#[test]
fn killing_one_of_three_replicas_mid_hammer_loses_no_requests() {
    // The failover acceptance test: three replicas serve one port; one
    // is halted (machine stays up, workers dead — a crash as clients
    // see it) while four client threads hammer the service. Every call
    // must succeed: callers pay retries, never see errors.
    const CLIENTS: usize = 4;
    const CALLS: usize = 24;

    let net = Network::new_virtual();
    let mut cluster = ServiceCluster::spawn_open(&net, 3, 1, |_| Summer);
    let port = cluster.put_port();
    let client = Arc::new(ClusterClient::broadcast(&net));
    // Warm the replica cache so the halted machine is definitely in
    // it. On a loaded host a replica can miss the first gather window;
    // re-resolve until all three have answered.
    let deadline = Instant::now() + Duration::from_secs(5);
    while client.replicas(port).len() < 3 {
        assert!(
            Instant::now() < deadline,
            "replicas never all answered LOCATE: {:?}",
            client.replicas(port)
        );
        client.invalidate(port);
        std::thread::sleep(Duration::from_millis(5));
    }

    let progress = Arc::new(std::sync::atomic::AtomicUsize::new(0));
    let workers: Vec<_> = (0..CLIENTS)
        .map(|t| {
            let client = Arc::clone(&client);
            let net = net.clone();
            let progress = Arc::clone(&progress);
            std::thread::spawn(move || {
                for i in 0..CALLS {
                    let params = Bytes::from(vec![t as u8, i as u8, 7]);
                    let expect = t as u64 + i as u64 + 7;
                    let body = client
                        .call_anonymous(port, CMD_SUM, params)
                        .unwrap_or_else(|e| {
                            panic!("client {t} call {i} failed during failover: {e}")
                        });
                    assert_eq!(wire::Reader::new(&body).u64().unwrap(), expect);
                    progress.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    // Spread the hammer (in timeline time) so the halt
                    // lands mid-flight.
                    net.sleep(Duration::from_millis(2));
                }
            })
        })
        .collect();

    // Let the hammer demonstrably ramp up, then kill one replica under
    // it — progress-based, so the halt lands mid-flight regardless of
    // how fast the virtual clock makes the calls in real time.
    let ramp = Instant::now() + Duration::from_secs(10);
    while progress.load(std::sync::atomic::Ordering::Relaxed) < CLIENTS * 2 {
        assert!(Instant::now() < ramp, "hammer never ramped up");
        std::thread::sleep(Duration::from_millis(1));
    }
    let dead = cluster.halt_replica(1);
    for w in workers {
        w.join().unwrap();
    }
    // The crash must have been *noticed*: either a call tripped over
    // the cached dead replica and failed over, or (virtual clock) the
    // cache TTL expired mid-hammer and the re-resolve dead-listed the
    // vanished machine. Both routes route around the crash with zero
    // caller-visible errors.
    assert!(
        client.failovers() >= 1 || client.dead_replicas(port).contains(&dead),
        "the halted replica was neither failed over nor dead-listed"
    );
    let survivors: Vec<_> = client
        .replicas(port)
        .into_iter()
        .map(|r| r.machine)
        .collect();
    assert!(
        !survivors.contains(&dead),
        "the dead machine must stay invalidated"
    );
    cluster.stop();
}

/// Builds the metered flat file service (§3.6 pre-payment through a
/// nested bank transaction) behind a sharded cluster of `replicas`
/// machines, plus a funded wallet.
fn metered_rig(
    net: &Network,
    replicas: usize,
    workers: usize,
) -> (ServiceRunner, ShardedCluster, Capability) {
    let (bank_server, treasury_rx) =
        BankServer::new(vec![Currency::convertible("dollar", 1)], SchemeKind::OneWay);
    let bank_runner = ServiceRunner::spawn_open(net, bank_server);
    let bank_port = bank_runner.put_port();
    let treasury = treasury_rx.recv().unwrap();
    let bank = BankClient::open(net, bank_port);
    let server_account = bank.open_account().unwrap();
    let wallet = bank.open_account().unwrap();
    bank.mint(&treasury, &wallet, CurrencyId(0), 1_000_000)
        .unwrap();

    let cluster = ShardedCluster::spawn_open(net, replicas, workers, |_| {
        // Every replica runs its own embedded bank client against the
        // one shared bank; payments land in one server account. The
        // embedded client is patient: on the virtual clock the queue
        // at the single bank is modeled time.
        FlatFsServer::with_quota(
            SchemeKind::OneWay,
            QuotaPolicy {
                bank: BankClient::with_service(
                    ServiceClient::open_with_config(net, patient()),
                    bank_port,
                ),
                server_account,
                currency: CurrencyId(0),
                price_per_kib: 1,
            },
        )
    });
    (bank_runner, cluster, wallet)
}

/// One client thread's share of the metered-create workload. Every
/// create parks the owning replica's dispatch worker on a nested bank
/// round-trip, so replica count is what sets throughput.
fn hammer_creates(client: &ShardedClient, wallet: &Capability, calls: usize) {
    for _ in 0..calls {
        let params = wire::Writer::new().cap(wallet).u64(1).finish();
        let body = client
            .call_create(amoeba::flatfs::ops::CREATE, params)
            .unwrap();
        wire::Reader::new(&body).cap().unwrap();
    }
}

fn timed_metered_round(net: &Network, replicas: usize) -> Duration {
    // Large enough that modeled latency dominates the (roughly
    // constant) timeline inflation host scheduling adds per hand-off:
    // the model says ~3x for 3 replicas, and the gate is 2x.
    const CLIENTS: usize = 12;
    const CALLS: usize = 4;
    let (bank_runner, cluster, wallet) = metered_rig(net, replicas, 1);
    let clients: Vec<Arc<ShardedClient>> = (0..CLIENTS)
        .map(|_| {
            Arc::new(ShardedClient::new(
                ServiceClient::open_with_config(net, patient()),
                cluster.range_ports().to_vec(),
            ))
        })
        .collect();
    net.set_latency(Duration::from_millis(2));
    let v0 = net.now();
    let handles: Vec<_> = clients
        .into_iter()
        .map(|client| std::thread::spawn(move || hammer_creates(&client, &wallet, CALLS)))
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    // Timeline elapsed, not wall-clock: under the virtual clock this
    // measures the modeled latency/queueing, host speed excluded.
    let elapsed = net.now().saturating_duration_since(v0);
    net.set_latency(Duration::ZERO);
    cluster.stop();
    bank_runner.stop();
    elapsed
}

#[test]
fn three_sharded_replicas_at_least_double_metered_create_throughput() {
    // The placement acceptance bar: on the metered-create workload at
    // nonzero hop latency, 3 replicas must be ≥2× the throughput of 1.
    // Every create parks a dispatch worker on a nested bank round-trip
    // (2 ms per hop), so capacity scales with machines, not cycles.
    // Measured in virtual time on the reactor clock: the ratio is a
    // property of the model, not of wall-clock margins on a slow
    // runner; the retry rounds absorb residual host-scheduling noise
    // (which can only inflate the timeline) without weakening the ≥2×
    // bar itself.
    let mut rounds = Vec::new();
    for _ in 0..3 {
        let net = Network::new_virtual();
        let single = timed_metered_round(&net, 1);
        let triple = timed_metered_round(&net, 3);
        if triple * 2 <= single {
            return; // gate met
        }
        rounds.push((single, triple));
    }
    panic!("3 replicas must be ≥2× faster on metered creates; measured {rounds:?}");
}

#[test]
fn sharded_capabilities_survive_cross_client_use() {
    // Capabilities minted through one sharded client route correctly
    // through another (the range map, not client state, places them).
    let net = Network::new();
    let (bank_runner, cluster, wallet) = metered_rig(&net, 3, 1);
    let a = ShardedClient::new(ServiceClient::open(&net), cluster.range_ports().to_vec());
    let b = ShardedClient::new(ServiceClient::open(&net), cluster.range_ports().to_vec());

    let params = wire::Writer::new().cap(&wallet).u64(1).finish();
    let caps: Vec<Capability> = (0..6)
        .map(|_| {
            let body = a
                .call_create(amoeba::flatfs::ops::CREATE, params.clone())
                .unwrap();
            wire::Reader::new(&body).cap().unwrap()
        })
        .collect();
    for (i, cap) in caps.iter().enumerate() {
        b.call(
            cap,
            amoeba::flatfs::ops::WRITE,
            wire::Writer::new()
                .u64(0)
                .bytes(format!("x{i}").as_bytes())
                .finish(),
        )
        .unwrap();
        let read = b
            .call(
                cap,
                amoeba::flatfs::ops::READ,
                wire::Writer::new().u64(0).u32(8).finish(),
            )
            .unwrap();
        assert_eq!(&read[..], format!("x{i}").as_bytes());
    }
    cluster.stop();
    bank_runner.stop();
}

#[test]
fn discovery_traffic_is_accounted_as_broadcast_bytes() {
    // The placement bench reports discovery overhead from the
    // broadcast byte counter; make sure LOCATE traffic is what lands
    // there and request/reply traffic is not.
    let net = Network::new();
    let cluster = ServiceCluster::spawn_open(&net, 3, 1, |_| Summer);
    let client = ClusterClient::broadcast(&net);
    let before = net.stats().snapshot();
    for i in 0..8u8 {
        client
            .call_anonymous(cluster.put_port(), CMD_SUM, Bytes::from(vec![i]))
            .unwrap();
    }
    let d = net.stats().snapshot() - before;
    assert_eq!(d.broadcasts_sent, 1, "one LOCATE for eight calls");
    assert!(
        d.broadcast_bytes_sent > 0 && d.broadcast_bytes_sent < d.bytes_sent / 4,
        "discovery bytes ({}) must be a small, separately-visible slice of {}",
        d.broadcast_bytes_sent,
        d.bytes_sent
    );
    cluster.stop();
}
