//! Ablation tests from DESIGN.md §5: the pieces that are swappable by
//! construction really are swappable — and the deliberately broken
//! variants really are broken.

use amoeba::cap::schemes::{EncryptedScheme, OneWayScheme, ProtectionScheme, XorFactory};
use amoeba::prelude::*;
use bytes::Bytes;
use rand::SeedableRng;
use std::sync::Arc;

fn rng() -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(1986)
}

#[test]
fn scheme2_works_identically_over_purdy_and_sha() {
    // The OWF behind scheme 2 is a parameter; both constructions must
    // satisfy every scheme property (with different bits, of course).
    let sha = OneWayScheme::new();
    let purdy = OneWayScheme::with_function(PurdyOneWay::new());
    let port = Port::new(0xAB).unwrap();
    let obj = ObjectNum::new(5).unwrap();

    let mut r = rng();
    let secret_sha = sha.new_secret(&mut r);
    let secret_purdy = purdy.new_secret(&mut r);

    let cap_sha = sha.mint(port, obj, &secret_sha);
    let cap_purdy = purdy.mint(port, obj, &secret_purdy);
    assert_eq!(sha.validate(&cap_sha, &secret_sha).unwrap(), Rights::ALL);
    assert_eq!(
        purdy.validate(&cap_purdy, &secret_purdy).unwrap(),
        Rights::ALL
    );

    // Restriction and tamper-detection hold under both.
    {
        let (scheme, secret, cap) = (&sha as &OneWayScheme<ShaOneWay>, &secret_sha, cap_sha);
        let ro = scheme.restrict(&cap, Rights::READ, secret).unwrap();
        assert!(scheme
            .validate(&ro.with_rights(Rights::ALL), secret)
            .is_err());
    }
    let ro = purdy
        .restrict(&cap_purdy, Rights::READ, &secret_purdy)
        .unwrap();
    assert!(purdy
        .validate(&ro.with_rights(Rights::ALL), &secret_purdy)
        .is_err());

    // And the two functions disagree on the actual bits (they are
    // different public functions).
    let same_secret = sha.new_secret(&mut rng());
    assert_ne!(
        sha.mint(port, obj, &same_secret).check,
        OneWayScheme::with_function(PurdyOneWay::new())
            .mint(port, obj, &same_secret)
            .check
    );
}

#[test]
fn xor_scheme1_is_breakable_end_to_end() {
    // DESIGN.md §5: the paper's warning reproduced at the *scheme* level
    // (the crypto-level demo lives in amoeba-crypto's tests). A client
    // holding a read-only capability upgrades itself to writer when the
    // server foolishly uses XOR.
    let broken = EncryptedScheme::with_factory(XorFactory);
    let mut r = rng();
    let secret = broken.new_secret(&mut r);
    let cap = broken.mint(
        Port::new(0xBAD).unwrap(),
        ObjectNum::new(1).unwrap(),
        &secret,
    );
    let ro = broken.restrict(&cap, Rights::READ, &secret).unwrap();

    // Attack: flip the WRITE bit directly in the (XOR-)ciphertext
    // rights field.
    let forged = ro.with_rights(Rights::from_bits(ro.rights.bits() ^ Rights::WRITE.bits()));
    let recovered = broken.validate(&forged, &secret).unwrap();
    assert!(
        recovered.contains(Rights::WRITE),
        "XOR must be forgeable — this is the paper's warning"
    );

    // Identical attack against the real cipher: detected.
    let sound = EncryptedScheme::new();
    let secret2 = sound.new_secret(&mut r);
    let cap2 = sound.mint(
        Port::new(0xFACE).unwrap(),
        ObjectNum::new(1).unwrap(),
        &secret2,
    );
    let ro2 = sound.restrict(&cap2, Rights::READ, &secret2).unwrap();
    let forged2 = ro2.with_rights(Rights::from_bits(ro2.rights.bits() ^ Rights::WRITE.bits()));
    assert!(sound.validate(&forged2, &secret2).is_err());
}

#[test]
fn fbox_placement_hardware_vs_trusted_kernel_equivalent_end_to_end() {
    // DESIGN.md §5: both placements run the same transformation, so a
    // full RPC through one of each must work.
    let net = Network::new();
    let server_ep = net.attach(Arc::new(FBox::trusted_kernel(ShaOneWay)));
    let server = ServerPort::bind(server_ep, Port::new(0x7E57).unwrap());
    let p = server.put_port();
    let t = std::thread::spawn(move || {
        let req = server.next_request().unwrap();
        server.reply(&req, req.payload.clone());
    });
    let client = Client::new(net.attach(Arc::new(FBox::hardware(ShaOneWay))));
    let reply = client
        .trans(p, Bytes::from_static(b"mixed placements"))
        .unwrap();
    assert_eq!(&reply[..], b"mixed placements");
    t.join().unwrap();
}

#[test]
fn any_scheme_drives_any_service() {
    // The scheme is a deployment choice per server: run the same
    // directory workload under all four.
    for kind in SchemeKind::ALL {
        let net = Network::new();
        let runner = ServiceRunner::spawn_open(&net, DirServer::new(kind));
        let dirs = DirClient::with_service(ServiceClient::open(&net), runner.put_port());
        let d = dirs.create_dir().unwrap();
        let t = dirs.create_dir().unwrap();
        dirs.enter(&d, "x", &t).unwrap();
        assert_eq!(dirs.lookup(&d, "x").unwrap(), t, "{kind}");
        dirs.remove(&d, "x").unwrap();
        runner.stop();
    }
}

#[test]
fn triple_des_drops_into_the_key_matrix() {
    // DESIGN.md extension: the matrix entries become key triples and
    // nothing else changes. Demonstrate seal/unseal by hand with 3DES.
    use amoeba::crypto::TripleDes;
    let cap = Capability::new(
        Port::new(0x3DE5).unwrap(),
        ObjectNum::new(9).unwrap(),
        Rights::ALL,
        0xFEED,
    );
    let tdes = TripleDes::two_key(0x1111_2222_3333_4444, 0x5555_6666_7777_8888);
    let sealed = tdes.encrypt_u128(cap.as_u128());
    assert_ne!(sealed, cap.as_u128());
    assert_eq!(Capability::from_u128(tdes.decrypt_u128(sealed)), Some(cap));

    // Wrong key triple: garbage, exactly like single DES.
    let wrong = TripleDes::two_key(0x9999_AAAA_BBBB_CCCC, 0x5555_6666_7777_8888);
    let garbled = wrong.decrypt_u128(sealed);
    assert_ne!(garbled, cap.as_u128());
}
