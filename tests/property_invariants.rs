//! Cross-crate property tests: the security invariants of the paper
//! checked against randomly generated adversarial inputs, plus
//! reference-model tests for the stateful services (the server must
//! agree with a trivially correct in-memory model under arbitrary
//! operation sequences).

use amoeba::prelude::*;
use proptest::prelude::*;
use rand::SeedableRng;

// ---------------------------------------------------------------------
// Capability invariants across all schemes
// ---------------------------------------------------------------------

fn scheme_strategy() -> impl Strategy<Value = SchemeKind> {
    prop_oneof![
        Just(SchemeKind::Simple),
        Just(SchemeKind::Encrypted),
        Just(SchemeKind::OneWay),
        Just(SchemeKind::Commutative),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// No single-bit or multi-bit corruption of the 128-bit capability
    /// may validate (except bit flips confined to unused plaintext
    /// rights bits that the scheme legitimately ignores — there are
    /// none: every scheme binds the rights).
    #[test]
    fn no_bitflip_of_a_capability_validates(kind in scheme_strategy(), flip in 0u32..128, seed: u64) {
        let scheme = kind.instantiate();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let secret = scheme.new_secret(&mut rng);
        let cap = scheme.mint(Port::new(0xF00).unwrap(), ObjectNum::new(3).unwrap(), &secret);

        let mut bytes = cap.encode();
        bytes[(flip / 8) as usize] ^= 1 << (flip % 8);
        if let Some(forged) = Capability::decode(&bytes) {
            // Flips in the port/object fields change *addressing*, which
            // the scheme layer does not bind (the object table rejects
            // those by looking up a different secret). Schemes 1-3 bind
            // rights and check; scheme 0 has no rights distinction at
            // all ("all operations are allowed"), so only its check
            // field is load-bearing.
            let crypto_changed = match kind {
                SchemeKind::Simple => forged.check != cap.check,
                _ => forged.rights != cap.rights || forged.check != cap.check,
            };
            if crypto_changed {
                prop_assert!(
                    scheme.validate(&forged, &secret).is_err(),
                    "{kind}: flipped bit {flip} still validated"
                );
            }
        }
    }

    /// Rights monotonicity: a chain of diminishes can only lose rights,
    /// and the result validates to exactly the surviving set.
    #[test]
    fn diminish_chains_are_monotone(masks in proptest::collection::vec(any::<u8>(), 0..6), seed: u64) {
        let scheme = CommutativeScheme::standard();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let secret = scheme.new_secret(&mut rng);
        let mut cap = scheme.mint(Port::new(0xF01).unwrap(), ObjectNum::new(1).unwrap(), &secret);
        let mut expected = Rights::ALL;
        for m in masks {
            let drop = Rights::from_bits(m);
            cap = scheme.diminish(&cap, drop).unwrap();
            expected = expected.without(drop);
            prop_assert_eq!(scheme.validate(&cap, &secret).unwrap(), expected);
        }
    }

    /// Mixing check fields between two objects of the same server never
    /// validates: per-object secrets are independent.
    #[test]
    fn cross_object_check_transplant_fails(kind in scheme_strategy(), seed: u64) {
        let scheme = kind.instantiate();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let s1 = scheme.new_secret(&mut rng);
        let s2 = scheme.new_secret(&mut rng);
        prop_assume!(s1 != s2);
        let port = Port::new(0xF02).unwrap();
        let cap1 = scheme.mint(port, ObjectNum::new(1).unwrap(), &s1);
        let cap2 = scheme.mint(port, ObjectNum::new(2).unwrap(), &s2);
        // Object 2's capability carrying object 1's check field.
        let hybrid = cap2.with_check(cap1.check).with_rights(cap1.rights);
        prop_assert!(scheme.validate(&hybrid, &s2).is_err());
    }
}

// ---------------------------------------------------------------------
// Reference-model test: flat file server vs Vec<u8>
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum FileOp {
    Write { offset: u16, data: Vec<u8> },
    Read { offset: u16, len: u16 },
    Size,
}

fn file_op_strategy() -> impl Strategy<Value = FileOp> {
    prop_oneof![
        (any::<u16>(), proptest::collection::vec(any::<u8>(), 0..64))
            .prop_map(|(offset, data)| FileOp::Write { offset, data }),
        (any::<u16>(), any::<u16>()).prop_map(|(offset, len)| FileOp::Read { offset, len }),
        Just(FileOp::Size),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary operation sequences against the real flat file server
    /// must match a plain Vec<u8> reference model byte for byte.
    #[test]
    fn flatfs_matches_reference_model(ops in proptest::collection::vec(file_op_strategy(), 1..24)) {
        let net = Network::new();
        let runner = ServiceRunner::spawn_open(&net, FlatFsServer::new(SchemeKind::OneWay));
        let fs = FlatFsClient::with_service(ServiceClient::open(&net), runner.put_port());
        let cap = fs.create().unwrap();
        let mut model: Vec<u8> = Vec::new();

        for op in ops {
            match op {
                FileOp::Write { offset, data } => {
                    let end = offset as usize + data.len();
                    if end > model.len() {
                        model.resize(end, 0);
                    }
                    model[offset as usize..end].copy_from_slice(&data);
                    let new_size = fs.write(&cap, offset as u64, &data).unwrap();
                    prop_assert_eq!(new_size as usize, model.len());
                }
                FileOp::Read { offset, len } => {
                    let start = (offset as usize).min(model.len());
                    let end = start.saturating_add(len as usize).min(model.len());
                    let expected = &model[start..end];
                    let got = fs.read(&cap, offset as u64, len as u32).unwrap();
                    prop_assert_eq!(&got[..], expected);
                }
                FileOp::Size => {
                    prop_assert_eq!(fs.size(&cap).unwrap() as usize, model.len());
                }
            }
        }
        runner.stop();
    }
}

// ---------------------------------------------------------------------
// Reference-model test: directory server vs BTreeMap
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum DirOp {
    Enter(u8),
    Remove(u8),
    Lookup(u8),
    List,
}

fn dir_op_strategy() -> impl Strategy<Value = DirOp> {
    prop_oneof![
        any::<u8>().prop_map(DirOp::Enter),
        any::<u8>().prop_map(DirOp::Remove),
        any::<u8>().prop_map(DirOp::Lookup),
        Just(DirOp::List),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn dirsvr_matches_reference_model(ops in proptest::collection::vec(dir_op_strategy(), 1..32)) {
        let net = Network::new();
        let runner = ServiceRunner::spawn_open(&net, DirServer::new(SchemeKind::Commutative));
        let dirs = DirClient::with_service(ServiceClient::open(&net), runner.put_port());
        let dir = dirs.create_dir().unwrap();
        let target = dirs.create_dir().unwrap(); // value stored under every name
        let mut model = std::collections::BTreeMap::new();

        for op in ops {
            match op {
                DirOp::Enter(n) => {
                    let name = format!("n{n}");
                    let result = dirs.enter(&dir, &name, &target);
                    if let std::collections::btree_map::Entry::Vacant(e) = model.entry(name) {
                        result.unwrap();
                        e.insert(target);
                    } else {
                        prop_assert_eq!(result.unwrap_err(), ClientError::Status(Status::Conflict));
                    }
                }
                DirOp::Remove(n) => {
                    let name = format!("n{n}");
                    let result = dirs.remove(&dir, &name);
                    if model.remove(&name).is_some() {
                        result.unwrap();
                    } else {
                        prop_assert_eq!(result.unwrap_err(), ClientError::Status(Status::NotFound));
                    }
                }
                DirOp::Lookup(n) => {
                    let name = format!("n{n}");
                    let result = dirs.lookup(&dir, &name);
                    if model.contains_key(&name) {
                        prop_assert_eq!(result.unwrap(), target);
                    } else {
                        prop_assert_eq!(result.unwrap_err(), ClientError::Status(Status::NotFound));
                    }
                }
                DirOp::List => {
                    let names: Vec<String> = model.keys().cloned().collect();
                    prop_assert_eq!(dirs.list(&dir).unwrap(), names);
                }
            }
        }
        runner.stop();
    }
}

// ---------------------------------------------------------------------
// Bank conservation under random transfers
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Money is conserved by arbitrary transfer sequences, including
    /// failing (overdraft) ones.
    #[test]
    fn bank_conserves_money(transfers in proptest::collection::vec((0usize..4, 0usize..4, 0u64..500), 1..24)) {
        let net = Network::new();
        let (server, treasury_rx) = BankServer::new(
            vec![Currency::convertible("dollar", 1)],
            SchemeKind::OneWay,
        );
        let runner = ServiceRunner::spawn_open(&net, server);
        let bank = BankClient::open(&net, runner.put_port());
        let treasury = treasury_rx.recv().unwrap();

        let accounts: Vec<Capability> =
            (0..4).map(|_| bank.open_account().unwrap()).collect();
        let total = 4_000u64;
        for acct in &accounts {
            bank.mint(&treasury, acct, CurrencyId(0), total / 4).unwrap();
        }

        for (from, to, amount) in transfers {
            if from == to {
                continue;
            }
            let _ = bank.transfer(&accounts[from], &accounts[to], CurrencyId(0), amount);
        }

        let sum: u64 = accounts
            .iter()
            .map(|a| bank.balance(a, CurrencyId(0)).unwrap())
            .sum();
        prop_assert_eq!(sum, total);
        runner.stop();
    }
}

// ---------------------------------------------------------------------
// Batch wire-frame invariants (docs/PROTOCOL.md)
// ---------------------------------------------------------------------

use amoeba::rpc::{BatchReplyEntry, BatchStatus, Frame};
use bytes::Bytes;

fn body_strategy() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 0..48)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every well-formed batch-request frame survives an encode/decode
    /// round trip bit-exactly.
    #[test]
    fn batch_request_frames_roundtrip(
        id: u32,
        entries in proptest::collection::vec(body_strategy(), 1..24),
    ) {
        let frame = Frame::BatchRequest {
            id,
            entries: entries.into_iter().map(Bytes::from).collect(),
        };
        prop_assert_eq!(Frame::decode(&frame.encode()), Some(frame));
    }

    /// Batch-reply frames round trip including out-of-order entry
    /// indexes and the REJECTED status.
    #[test]
    fn batch_reply_frames_roundtrip(
        id: u32,
        raw in proptest::collection::vec((any::<u16>(), any::<u8>(), body_strategy()), 1..24),
    ) {
        let entries: Vec<BatchReplyEntry> = raw
            .into_iter()
            .map(|(index, status, body)| BatchReplyEntry {
                index,
                status: if status % 2 == 0 { BatchStatus::Ok } else { BatchStatus::Rejected },
                body: Bytes::from(body),
            })
            .collect();
        let frame = Frame::BatchReply { id, entries };
        prop_assert_eq!(Frame::decode(&frame.encode()), Some(frame));
    }

    /// No strict prefix of a batch frame decodes (the layout is
    /// length-prefixed and self-delimiting), and neither does a frame
    /// with trailing garbage; truncation can never smuggle a shorter
    /// valid frame through.
    #[test]
    fn truncated_or_padded_batch_frames_rejected(
        id: u32,
        entries in proptest::collection::vec(body_strategy(), 1..8),
    ) {
        let wire = Frame::BatchRequest {
            id,
            entries: entries.into_iter().map(Bytes::from).collect(),
        }
        .encode();
        for cut in 0..wire.len() {
            prop_assert_eq!(Frame::decode(&wire.slice(..cut)), None, "prefix {cut} decoded");
        }
        let mut padded = wire.to_vec();
        padded.push(0);
        prop_assert_eq!(Frame::decode(&Bytes::from(padded)), None);
    }

    /// Arbitrary (hostile) bytes never panic the decoder — they decode
    /// to some frame or to None.
    #[test]
    fn hostile_frames_never_panic(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Frame::decode(&Bytes::from(data));
    }

    /// Hostile mutations of a valid batch frame's preamble (version,
    /// count, entry lengths) are rejected without panicking.
    #[test]
    fn mutated_batch_preambles_rejected_or_consistent(
        id: u32,
        entries in proptest::collection::vec(body_strategy(), 1..6),
        at in 0usize..8,
        xor in 1u8..=255,
    ) {
        let wire = Frame::BatchRequest {
            id,
            entries: entries.into_iter().map(Bytes::from).collect(),
        }
        .encode();
        let mut mutated = wire.to_vec();
        let at = at.min(mutated.len() - 1);
        mutated[at] ^= xor;
        // Must not panic; flipping id bytes still decodes (ids are
        // opaque), anything else either decodes consistently or is
        // dropped.
        if let Some(Frame::BatchRequest { entries, .. }) = Frame::decode(&Bytes::from(mutated)) {
            prop_assert!(!entries.is_empty());
        }
    }
}

// ---------------------------------------------------------------------
// Zero-copy decode vs a retained copying reference decoder
// ---------------------------------------------------------------------

/// The pre-zero-copy frame decoder, retained as an executable spec: it
/// parses the same wire layout but builds **owned, freshly-copied**
/// bodies instead of slices of the arriving buffer. The production
/// decoder must agree with it on every input — valid, hostile or
/// truncated — which proves the zero-copy rewrite changed buffer
/// ownership and nothing else.
mod reference_codec {
    use amoeba::net::{MachineId, Port};
    use amoeba::rpc::{BatchReplyEntry, BatchStatus, Frame, ReplicaInfo};
    use amoeba::rpc::{BATCH_VERSION, CLUSTER_VERSION, MAX_BATCH_ENTRIES, MAX_LOCATE_REPLICAS};
    use bytes::Bytes;

    fn port(raw: &[u8]) -> Option<Port> {
        Port::new(u64::from_be_bytes(raw.try_into().ok()?))
    }

    fn machine(raw: &[u8]) -> Option<MachineId> {
        Some(MachineId::from(u32::from_be_bytes(raw.try_into().ok()?)))
    }

    fn batch_status(v: u8) -> Option<BatchStatus> {
        match v {
            0 => Some(BatchStatus::Ok),
            1 => Some(BatchStatus::Rejected),
            _ => None,
        }
    }

    /// Reads a `len:u32 ‖ body` entry at `rest[at..]`, **copying** the
    /// body into fresh storage; returns the body and the offset past
    /// the entry.
    fn copied_entry(rest: &[u8], at: usize) -> Option<(Bytes, usize)> {
        let len = u32::from_be_bytes(rest.get(at..at + 4)?.try_into().ok()?) as usize;
        let end = (at + 4).checked_add(len)?;
        if end > rest.len() {
            return None;
        }
        Some((Bytes::from(rest[at + 4..end].to_vec()), end))
    }

    /// Decodes one frame, copying every body out of `data`.
    pub fn decode(data: &[u8]) -> Option<Frame> {
        let (&tag, rest) = data.split_first()?;
        match tag {
            0 => Some(Frame::Request(Bytes::from(rest.to_vec()))),
            1 => Some(Frame::Reply(Bytes::from(rest.to_vec()))),
            // Protocol-v0 port frames are fixed-layout but tolerate
            // trailing bytes (frozen since the first protocol version);
            // only the versioned batch/cluster families demand exact
            // consumption.
            2 => port(rest.get(..8)?).map(Frame::Locate),
            3 => Some(Frame::LocateReply(
                port(rest.get(..8)?)?,
                machine(rest.get(8..12)?)?,
            )),
            4 => port(rest.get(..8)?).map(Frame::Post),
            5 | 6 => {
                if *rest.first()? != BATCH_VERSION {
                    return None;
                }
                let id = u32::from_be_bytes(rest.get(1..5)?.try_into().ok()?);
                let count = u16::from_be_bytes(rest.get(5..7)?.try_into().ok()?) as usize;
                if count == 0 || count > MAX_BATCH_ENTRIES {
                    return None;
                }
                let mut at = 7;
                if tag == 5 {
                    let mut entries = Vec::new();
                    for _ in 0..count {
                        let (body, next) = copied_entry(rest, at)?;
                        entries.push(body);
                        at = next;
                    }
                    (at == rest.len()).then_some(Frame::BatchRequest { id, entries })
                } else {
                    let mut entries = Vec::new();
                    for _ in 0..count {
                        let index = u16::from_be_bytes(rest.get(at..at + 2)?.try_into().ok()?);
                        let status = batch_status(*rest.get(at + 2)?)?;
                        let (body, next) = copied_entry(rest, at + 3)?;
                        entries.push(BatchReplyEntry {
                            index,
                            status,
                            body,
                        });
                        at = next;
                    }
                    (at == rest.len()).then_some(Frame::BatchReply { id, entries })
                }
            }
            7..=10 => {
                if *rest.first()? != CLUSTER_VERSION {
                    return None;
                }
                let rest = &rest[1..];
                match tag {
                    7 => {
                        if rest.len() != 12 {
                            return None;
                        }
                        Some(Frame::PostLoad(
                            port(&rest[..8])?,
                            u32::from_be_bytes(rest[8..12].try_into().ok()?),
                        ))
                    }
                    8 => (rest.len() == 8)
                        .then(|| port(rest))
                        .flatten()
                        .map(Frame::Unpost),
                    9 => (rest.len() == 8)
                        .then(|| port(rest))
                        .flatten()
                        .map(Frame::LocateAll),
                    _ => {
                        let p = port(rest.get(..8)?)?;
                        let count = *rest.get(8)? as usize;
                        if count == 0 || count > MAX_LOCATE_REPLICAS {
                            return None;
                        }
                        let mut replicas = Vec::new();
                        let mut at = 9;
                        for _ in 0..count {
                            replicas.push(ReplicaInfo {
                                machine: machine(rest.get(at..at + 4)?)?,
                                load: u32::from_be_bytes(
                                    rest.get(at + 4..at + 8)?.try_into().ok()?,
                                ),
                            });
                            at += 8;
                        }
                        (at == rest.len()).then_some(Frame::LocateReplyMulti { port: p, replicas })
                    }
                }
            }
            _ => None,
        }
    }
}

/// Strategy: an arbitrary well-formed frame of any kind, via encode.
fn wire_of(frame: &Frame) -> Bytes {
    frame.encode()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// On completely arbitrary (mostly hostile) bytes, the zero-copy
    /// decoder and the copying reference decoder agree exactly — same
    /// accepts, same rejects, same decoded values.
    #[test]
    fn zero_copy_decode_matches_reference_on_arbitrary_bytes(
        data in proptest::collection::vec(any::<u8>(), 0..192),
    ) {
        prop_assert_eq!(
            Frame::decode(&Bytes::from(data.clone())),
            reference_codec::decode(&data)
        );
    }

    /// Steered toward the interesting region: arbitrary bytes behind a
    /// valid tag byte.
    #[test]
    fn zero_copy_decode_matches_reference_behind_valid_tags(
        tag in 0u8..=10,
        body in proptest::collection::vec(any::<u8>(), 0..96),
    ) {
        let mut data = vec![tag];
        data.extend_from_slice(&body);
        prop_assert_eq!(
            Frame::decode(&Bytes::from(data.clone())),
            reference_codec::decode(&data)
        );
    }

    /// Port-carrying frames with valid port bits and random trailing
    /// bytes: the two decoders must agree on the v0 trailing-bytes
    /// tolerance and the versioned families' exact-consumption rule
    /// alike. (Purely random bytes almost never form a valid 48-bit
    /// port, so this region needs explicit steering.)
    #[test]
    fn zero_copy_decode_matches_reference_on_port_frames_with_trailers(
        tag in 2u8..=10,
        port_bits in 1u64..0x0000_FFFF_FFFF_FFFE,
        version_ok: bool,
        trailer in proptest::collection::vec(any::<u8>(), 0..24),
    ) {
        let mut data = vec![tag];
        if tag >= 7 {
            data.push(if version_ok { 1 } else { 2 });
        }
        data.extend_from_slice(&port_bits.to_be_bytes());
        data.extend_from_slice(&trailer);
        prop_assert_eq!(
            Frame::decode(&Bytes::from(data.clone())),
            reference_codec::decode(&data)
        );
    }

    /// Valid batch frames and every strict prefix of them decode
    /// identically under both decoders (the decoders agree on where
    /// truncation becomes fatal, byte by byte).
    #[test]
    fn zero_copy_decode_matches_reference_on_truncations(
        id: u32,
        entries in proptest::collection::vec(body_strategy(), 1..8),
    ) {
        let wire = wire_of(&Frame::BatchRequest {
            id,
            entries: entries.into_iter().map(Bytes::from).collect(),
        });
        for cut in 0..=wire.len() {
            let prefix = wire.slice(..cut);
            prop_assert_eq!(
                Frame::decode(&prefix),
                reference_codec::decode(&prefix),
                "divergence at prefix length {}",
                cut
            );
        }
    }
}

/// A maximum-entry (1024) batch frame: both decoders accept it and
/// agree; one entry over the cap and both reject. Run once rather than
/// per proptest case — the frame is ~5 KiB of entry table.
#[test]
fn max_entry_batch_frames_decode_identically() {
    use amoeba::rpc::MAX_BATCH_ENTRIES;
    let entries: Vec<Bytes> = (0..MAX_BATCH_ENTRIES)
        .map(|i| Bytes::from(vec![(i % 251) as u8; i % 5]))
        .collect();
    let frame = Frame::BatchRequest {
        id: 0x4D41_5842, // "MAXB"
        entries,
    };
    let wire = frame.encode();
    let decoded = Frame::decode(&wire).expect("max-entry batch must decode");
    assert_eq!(Some(decoded), reference_codec::decode(&wire));

    // One entry past the cap must be rejected by both (the encoder
    // refuses to build it, so forge the count field instead). The count
    // sits at absolute bytes 6..8: tag(1) ‖ version(1) ‖ id(4) ‖ count(2).
    let mut forged = wire.to_vec();
    assert_eq!(
        u16::from_be_bytes(forged[6..8].try_into().unwrap()) as usize,
        MAX_BATCH_ENTRIES,
        "count-field offset drifted; the forge below would corrupt another field"
    );
    let over = (MAX_BATCH_ENTRIES + 1) as u16;
    forged[6..8].copy_from_slice(&over.to_be_bytes());
    assert_eq!(Frame::decode(&Bytes::from(forged.clone())), None);
    assert_eq!(reference_codec::decode(&forged), None);
}

/// The zero-copy pin at the frame level: decoded request bodies and
/// batch entries are pointer-aliases of the arriving wire buffer, not
/// copies. (The vendored `bytes` crate pins the same property at the
/// buffer level.)
#[test]
fn decoded_bodies_alias_the_wire_buffer() {
    let wire = Frame::Request(Bytes::from_static(b"zero-copy")).encode();
    match Frame::decode(&wire) {
        Some(Frame::Request(body)) => {
            assert!(
                std::ptr::eq(&wire[1], &body[0]),
                "request body was copied out of the wire buffer"
            );
        }
        other => panic!("unexpected decode: {other:?}"),
    }

    let wire = Frame::BatchRequest {
        id: 9,
        entries: vec![Bytes::from_static(b"alpha"), Bytes::from_static(b"bravo")],
    }
    .encode();
    match Frame::decode(&wire) {
        Some(Frame::BatchRequest { entries, .. }) => {
            // Entry 0 body starts after tag(1)+ver(1)+id(4)+count(2)+len(4).
            assert!(std::ptr::eq(&wire[12], &entries[0][0]));
            // Entry 1 body: previous + "alpha"(5) + len(4).
            assert!(std::ptr::eq(&wire[21], &entries[1][0]));
        }
        other => panic!("unexpected decode: {other:?}"),
    }
}
