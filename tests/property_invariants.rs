//! Cross-crate property tests: the security invariants of the paper
//! checked against randomly generated adversarial inputs, plus
//! reference-model tests for the stateful services (the server must
//! agree with a trivially correct in-memory model under arbitrary
//! operation sequences).

use amoeba::prelude::*;
use proptest::prelude::*;
use rand::SeedableRng;

// ---------------------------------------------------------------------
// Capability invariants across all schemes
// ---------------------------------------------------------------------

fn scheme_strategy() -> impl Strategy<Value = SchemeKind> {
    prop_oneof![
        Just(SchemeKind::Simple),
        Just(SchemeKind::Encrypted),
        Just(SchemeKind::OneWay),
        Just(SchemeKind::Commutative),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// No single-bit or multi-bit corruption of the 128-bit capability
    /// may validate (except bit flips confined to unused plaintext
    /// rights bits that the scheme legitimately ignores — there are
    /// none: every scheme binds the rights).
    #[test]
    fn no_bitflip_of_a_capability_validates(kind in scheme_strategy(), flip in 0u32..128, seed: u64) {
        let scheme = kind.instantiate();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let secret = scheme.new_secret(&mut rng);
        let cap = scheme.mint(Port::new(0xF00).unwrap(), ObjectNum::new(3).unwrap(), &secret);

        let mut bytes = cap.encode();
        bytes[(flip / 8) as usize] ^= 1 << (flip % 8);
        if let Some(forged) = Capability::decode(&bytes) {
            // Flips in the port/object fields change *addressing*, which
            // the scheme layer does not bind (the object table rejects
            // those by looking up a different secret). Schemes 1-3 bind
            // rights and check; scheme 0 has no rights distinction at
            // all ("all operations are allowed"), so only its check
            // field is load-bearing.
            let crypto_changed = match kind {
                SchemeKind::Simple => forged.check != cap.check,
                _ => forged.rights != cap.rights || forged.check != cap.check,
            };
            if crypto_changed {
                prop_assert!(
                    scheme.validate(&forged, &secret).is_err(),
                    "{kind}: flipped bit {flip} still validated"
                );
            }
        }
    }

    /// Rights monotonicity: a chain of diminishes can only lose rights,
    /// and the result validates to exactly the surviving set.
    #[test]
    fn diminish_chains_are_monotone(masks in proptest::collection::vec(any::<u8>(), 0..6), seed: u64) {
        let scheme = CommutativeScheme::standard();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let secret = scheme.new_secret(&mut rng);
        let mut cap = scheme.mint(Port::new(0xF01).unwrap(), ObjectNum::new(1).unwrap(), &secret);
        let mut expected = Rights::ALL;
        for m in masks {
            let drop = Rights::from_bits(m);
            cap = scheme.diminish(&cap, drop).unwrap();
            expected = expected.without(drop);
            prop_assert_eq!(scheme.validate(&cap, &secret).unwrap(), expected);
        }
    }

    /// Mixing check fields between two objects of the same server never
    /// validates: per-object secrets are independent.
    #[test]
    fn cross_object_check_transplant_fails(kind in scheme_strategy(), seed: u64) {
        let scheme = kind.instantiate();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let s1 = scheme.new_secret(&mut rng);
        let s2 = scheme.new_secret(&mut rng);
        prop_assume!(s1 != s2);
        let port = Port::new(0xF02).unwrap();
        let cap1 = scheme.mint(port, ObjectNum::new(1).unwrap(), &s1);
        let cap2 = scheme.mint(port, ObjectNum::new(2).unwrap(), &s2);
        // Object 2's capability carrying object 1's check field.
        let hybrid = cap2.with_check(cap1.check).with_rights(cap1.rights);
        prop_assert!(scheme.validate(&hybrid, &s2).is_err());
    }
}

// ---------------------------------------------------------------------
// Reference-model test: flat file server vs Vec<u8>
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum FileOp {
    Write { offset: u16, data: Vec<u8> },
    Read { offset: u16, len: u16 },
    Size,
}

fn file_op_strategy() -> impl Strategy<Value = FileOp> {
    prop_oneof![
        (any::<u16>(), proptest::collection::vec(any::<u8>(), 0..64))
            .prop_map(|(offset, data)| FileOp::Write { offset, data }),
        (any::<u16>(), any::<u16>()).prop_map(|(offset, len)| FileOp::Read { offset, len }),
        Just(FileOp::Size),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary operation sequences against the real flat file server
    /// must match a plain Vec<u8> reference model byte for byte.
    #[test]
    fn flatfs_matches_reference_model(ops in proptest::collection::vec(file_op_strategy(), 1..24)) {
        let net = Network::new();
        let runner = ServiceRunner::spawn_open(&net, FlatFsServer::new(SchemeKind::OneWay));
        let fs = FlatFsClient::with_service(ServiceClient::open(&net), runner.put_port());
        let cap = fs.create().unwrap();
        let mut model: Vec<u8> = Vec::new();

        for op in ops {
            match op {
                FileOp::Write { offset, data } => {
                    let end = offset as usize + data.len();
                    if end > model.len() {
                        model.resize(end, 0);
                    }
                    model[offset as usize..end].copy_from_slice(&data);
                    let new_size = fs.write(&cap, offset as u64, &data).unwrap();
                    prop_assert_eq!(new_size as usize, model.len());
                }
                FileOp::Read { offset, len } => {
                    let start = (offset as usize).min(model.len());
                    let end = start.saturating_add(len as usize).min(model.len());
                    let expected = &model[start..end];
                    let got = fs.read(&cap, offset as u64, len as u32).unwrap();
                    prop_assert_eq!(&got[..], expected);
                }
                FileOp::Size => {
                    prop_assert_eq!(fs.size(&cap).unwrap() as usize, model.len());
                }
            }
        }
        runner.stop();
    }
}

// ---------------------------------------------------------------------
// Reference-model test: directory server vs BTreeMap
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum DirOp {
    Enter(u8),
    Remove(u8),
    Lookup(u8),
    List,
}

fn dir_op_strategy() -> impl Strategy<Value = DirOp> {
    prop_oneof![
        any::<u8>().prop_map(DirOp::Enter),
        any::<u8>().prop_map(DirOp::Remove),
        any::<u8>().prop_map(DirOp::Lookup),
        Just(DirOp::List),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn dirsvr_matches_reference_model(ops in proptest::collection::vec(dir_op_strategy(), 1..32)) {
        let net = Network::new();
        let runner = ServiceRunner::spawn_open(&net, DirServer::new(SchemeKind::Commutative));
        let dirs = DirClient::with_service(ServiceClient::open(&net), runner.put_port());
        let dir = dirs.create_dir().unwrap();
        let target = dirs.create_dir().unwrap(); // value stored under every name
        let mut model = std::collections::BTreeMap::new();

        for op in ops {
            match op {
                DirOp::Enter(n) => {
                    let name = format!("n{n}");
                    let result = dirs.enter(&dir, &name, &target);
                    if let std::collections::btree_map::Entry::Vacant(e) = model.entry(name) {
                        result.unwrap();
                        e.insert(target);
                    } else {
                        prop_assert_eq!(result.unwrap_err(), ClientError::Status(Status::Conflict));
                    }
                }
                DirOp::Remove(n) => {
                    let name = format!("n{n}");
                    let result = dirs.remove(&dir, &name);
                    if model.remove(&name).is_some() {
                        result.unwrap();
                    } else {
                        prop_assert_eq!(result.unwrap_err(), ClientError::Status(Status::NotFound));
                    }
                }
                DirOp::Lookup(n) => {
                    let name = format!("n{n}");
                    let result = dirs.lookup(&dir, &name);
                    if model.contains_key(&name) {
                        prop_assert_eq!(result.unwrap(), target);
                    } else {
                        prop_assert_eq!(result.unwrap_err(), ClientError::Status(Status::NotFound));
                    }
                }
                DirOp::List => {
                    let names: Vec<String> = model.keys().cloned().collect();
                    prop_assert_eq!(dirs.list(&dir).unwrap(), names);
                }
            }
        }
        runner.stop();
    }
}

// ---------------------------------------------------------------------
// Bank conservation under random transfers
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Money is conserved by arbitrary transfer sequences, including
    /// failing (overdraft) ones.
    #[test]
    fn bank_conserves_money(transfers in proptest::collection::vec((0usize..4, 0usize..4, 0u64..500), 1..24)) {
        let net = Network::new();
        let (server, treasury_rx) = BankServer::new(
            vec![Currency::convertible("dollar", 1)],
            SchemeKind::OneWay,
        );
        let runner = ServiceRunner::spawn_open(&net, server);
        let bank = BankClient::open(&net, runner.put_port());
        let treasury = treasury_rx.recv().unwrap();

        let accounts: Vec<Capability> =
            (0..4).map(|_| bank.open_account().unwrap()).collect();
        let total = 4_000u64;
        for acct in &accounts {
            bank.mint(&treasury, acct, CurrencyId(0), total / 4).unwrap();
        }

        for (from, to, amount) in transfers {
            if from == to {
                continue;
            }
            let _ = bank.transfer(&accounts[from], &accounts[to], CurrencyId(0), amount);
        }

        let sum: u64 = accounts
            .iter()
            .map(|a| bank.balance(a, CurrencyId(0)).unwrap())
            .sum();
        prop_assert_eq!(sum, total);
        runner.stop();
    }
}

// ---------------------------------------------------------------------
// Batch wire-frame invariants (docs/PROTOCOL.md)
// ---------------------------------------------------------------------

use amoeba::rpc::{BatchReplyEntry, BatchStatus, Frame};
use bytes::Bytes;

fn body_strategy() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 0..48)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every well-formed batch-request frame survives an encode/decode
    /// round trip bit-exactly.
    #[test]
    fn batch_request_frames_roundtrip(
        id: u32,
        entries in proptest::collection::vec(body_strategy(), 1..24),
    ) {
        let frame = Frame::BatchRequest {
            id,
            entries: entries.into_iter().map(Bytes::from).collect(),
        };
        prop_assert_eq!(Frame::decode(&frame.encode()), Some(frame));
    }

    /// Batch-reply frames round trip including out-of-order entry
    /// indexes and the REJECTED status.
    #[test]
    fn batch_reply_frames_roundtrip(
        id: u32,
        raw in proptest::collection::vec((any::<u16>(), any::<u8>(), body_strategy()), 1..24),
    ) {
        let entries: Vec<BatchReplyEntry> = raw
            .into_iter()
            .map(|(index, status, body)| BatchReplyEntry {
                index,
                status: if status % 2 == 0 { BatchStatus::Ok } else { BatchStatus::Rejected },
                body: Bytes::from(body),
            })
            .collect();
        let frame = Frame::BatchReply { id, entries };
        prop_assert_eq!(Frame::decode(&frame.encode()), Some(frame));
    }

    /// No strict prefix of a batch frame decodes (the layout is
    /// length-prefixed and self-delimiting), and neither does a frame
    /// with trailing garbage; truncation can never smuggle a shorter
    /// valid frame through.
    #[test]
    fn truncated_or_padded_batch_frames_rejected(
        id: u32,
        entries in proptest::collection::vec(body_strategy(), 1..8),
    ) {
        let wire = Frame::BatchRequest {
            id,
            entries: entries.into_iter().map(Bytes::from).collect(),
        }
        .encode();
        for cut in 0..wire.len() {
            prop_assert_eq!(Frame::decode(&wire.slice(..cut)), None, "prefix {cut} decoded");
        }
        let mut padded = wire.to_vec();
        padded.push(0);
        prop_assert_eq!(Frame::decode(&Bytes::from(padded)), None);
    }

    /// Arbitrary (hostile) bytes never panic the decoder — they decode
    /// to some frame or to None.
    #[test]
    fn hostile_frames_never_panic(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Frame::decode(&Bytes::from(data));
    }

    /// Hostile mutations of a valid batch frame's preamble (version,
    /// count, entry lengths) are rejected without panicking.
    #[test]
    fn mutated_batch_preambles_rejected_or_consistent(
        id: u32,
        entries in proptest::collection::vec(body_strategy(), 1..6),
        at in 0usize..8,
        xor in 1u8..=255,
    ) {
        let wire = Frame::BatchRequest {
            id,
            entries: entries.into_iter().map(Bytes::from).collect(),
        }
        .encode();
        let mut mutated = wire.to_vec();
        let at = at.min(mutated.len() - 1);
        mutated[at] ^= xor;
        // Must not panic; flipping id bytes still decodes (ids are
        // opaque), anything else either decodes consistently or is
        // dropped.
        if let Some(Frame::BatchRequest { entries, .. }) = Frame::decode(&Bytes::from(mutated)) {
            prop_assert!(!entries.is_empty());
        }
    }
}
