//! Partition tests: severed links, healing, and a soak workload that
//! keeps every service busy while links flap.
//!
//! The hand-rolled `partition`/`heal` schedules below stay as smoke
//! tests; the seeded `FaultPlan` variants at the bottom express the
//! same cuts as deterministic [`PartitionWindow`]s at the simulated
//! delivery gate, so the exact frames a cut eats are replayable.

mod sim_support;

use amoeba::prelude::*;
use amoeba::rpc::{Matchmaker, RendezvousNode};
use sim_support::run_scenario;
use std::time::Duration;

fn quick() -> RpcConfig {
    RpcConfig {
        timeout: Duration::from_millis(30),
        attempts: 2,
    }
}

#[test]
fn rpc_fails_during_partition_and_recovers_after_heal() {
    let net = Network::new();
    let runner = ServiceRunner::spawn_open(&net, FlatFsServer::new(SchemeKind::OneWay));
    let fs = FlatFsClient::with_service(
        ServiceClient::open_with_config(&net, quick()),
        runner.put_port(),
    );
    let client_machine = fs.service().rpc().endpoint().id();

    let cap = fs.create().expect("pre-partition create");

    net.partition(client_machine, runner.machine());
    assert!(matches!(
        fs.read(&cap, 0, 1).unwrap_err(),
        ClientError::Rpc(_)
    ));

    net.heal(client_machine, runner.machine());
    assert!(fs.read(&cap, 0, 1).is_ok());
    runner.stop();
}

#[test]
fn partition_is_pairwise_not_global() {
    // Two clients; only one is cut off.
    let net = Network::new();
    let runner = ServiceRunner::spawn_open(&net, FlatFsServer::new(SchemeKind::Commutative));
    let victim = FlatFsClient::with_service(
        ServiceClient::open_with_config(&net, quick()),
        runner.put_port(),
    );
    let healthy = FlatFsClient::with_service(
        ServiceClient::open_with_config(&net, quick()),
        runner.put_port(),
    );

    let cap = healthy.create().unwrap();
    net.partition(victim.service().rpc().endpoint().id(), runner.machine());
    assert!(victim.read(&cap, 0, 1).is_err());
    assert!(healthy.read(&cap, 0, 1).is_ok());
    runner.stop();
}

#[test]
fn matchmaker_survives_losing_a_rendezvous_node() {
    // With two rendezvous nodes, ports hashed to the healthy node keep
    // resolving while the partitioned node's ports time out — then heal.
    let net = Network::new();
    let node_a = RendezvousNode::spawn(net.attach_open(), Port::new(0xAA01).unwrap());
    let node_b = RendezvousNode::spawn(net.attach_open(), Port::new(0xAA02).unwrap());
    let mm = Matchmaker::new(vec![node_a.service_port(), node_b.service_port()]);

    // Register a fleet of servers spread over both nodes.
    let servers: Vec<Endpoint> = (0..8).map(|_| net.attach_open()).collect();
    let ports: Vec<Port> = (0..8)
        .map(|i| Port::new(0xBB00 + i as u64).unwrap())
        .collect();
    for (s, p) in servers.iter().zip(&ports) {
        mm.post(s, *p);
    }

    let client = net.attach_open();
    for p in &ports {
        assert!(mm.locate(&client, *p).is_some(), "pre-partition {p}");
    }

    // Every lookup so far is cached; new client sees the partition.
    let fresh_client = net.attach_open();
    // Cut the fresh client off from node A only.
    // (Matchmaker has its own cache, so use a fresh one too.)
    let mm2 = Matchmaker::new(vec![node_a.service_port(), node_b.service_port()]);
    // We don't know node A's machine id directly; find it by probing:
    // partition against both nodes one at a time and observe.
    let mut resolved = 0;
    for p in &ports {
        if mm2.locate(&fresh_client, *p).is_some() {
            resolved += 1;
        }
    }
    assert_eq!(resolved, 8, "all resolvable before partition");

    node_a.stop();
    // Node A gone: only node-B ports resolve for an uncached matchmaker.
    let mm3 = Matchmaker::new(vec![
        Port::new(0xAA01).unwrap(), // dead node's port (nobody claims it now)
        node_b.service_port(),
    ]);
    let mut ok = 0;
    let mut dead = 0;
    for p in &ports {
        match mm3.locate(&fresh_client, *p) {
            Some(_) => ok += 1,
            None => dead += 1,
        }
    }
    assert!(ok > 0, "node B's share keeps working");
    assert!(dead > 0, "node A's share is unreachable");
    assert_eq!(ok + dead, 8);
    node_b.stop();
}

#[test]
fn soak_mixed_workload_with_flapping_link() {
    // A writer hammers the file server while the link flaps; every
    // acknowledged write must be durable, and the final content must
    // reflect exactly the acknowledged operations.
    let net = Network::new();
    let runner = ServiceRunner::spawn_open(&net, FlatFsServer::new(SchemeKind::OneWay));
    let fs = FlatFsClient::with_service(
        ServiceClient::open_with_config(
            &net,
            RpcConfig {
                timeout: Duration::from_millis(20),
                attempts: 3,
            },
        ),
        runner.put_port(),
    );
    let me = fs.service().rpc().endpoint().id();
    let cap = fs.create().unwrap();

    let mut acknowledged = Vec::new();
    for i in 0..120u64 {
        if i % 30 == 10 {
            net.partition(me, runner.machine());
        }
        if i % 30 == 20 {
            net.heal(me, runner.machine());
        }
        let byte = [(i % 251) as u8 + 1];
        if fs.write(&cap, i, &byte).is_ok() {
            acknowledged.push((i, byte[0]));
        }
    }
    net.heal(me, runner.machine());

    let size = fs.size(&cap).expect("final size");
    let data = fs.read(&cap, 0, size as u32).expect("final read");
    for (offset, byte) in acknowledged {
        assert_eq!(
            data.get(offset as usize),
            Some(&byte),
            "acknowledged write at {offset} lost"
        );
    }
    runner.stop();
}

// --- Seeded FaultPlan variants -------------------------------------

/// The pairwise-partition scenario as an exact plan: the first client
/// of each wave (fault target 3) is cut from every replica (targets
/// 0..2) for a bounded window while the other clients sail through.
/// Once the window passes, the victim's retransmissions land and the
/// harness's completion invariant proves the heal — the same story as
/// `rpc_fails_during_partition_and_recovers_after_heal`, but every
/// eaten frame is counted and the schedule replays byte for byte.
#[test]
fn seeded_partition_window_cuts_one_client_then_heals() {
    let cut = |replica: usize| PartitionWindow {
        a: replica,
        b: 3, // the first client machine bound each wave
        from: Duration::from_millis(1),
        until: Duration::from_millis(80),
    };
    let plan = FaultPlan {
        jitter_max: Duration::from_micros(300),
        partitions: vec![cut(0), cut(1), cut(2)],
        ..FaultPlan::quiet()
    };
    let report = run_scenario(0xFA17_9A27, plan, 3, 3, false);
    assert!(
        report.counters.partition_dropped > 0,
        "the cut must eat live frames, got {:?}",
        report.counters
    );
}

/// Seed-derived plans (the hammer's diet) can include partition
/// windows alongside loss and crashes; this pins one seed whose plan
/// provably cuts a live pair, as a fast smoke for the combined path.
#[test]
fn seeded_plan_with_partition_window_completes() {
    // Chosen by sweeping `FaultPlan::from_seed` for a plan with a
    // partition window that intersects live traffic.
    const SEED: u64 = PINNED_PARTITION_SEED;
    let report = run_scenario(SEED, FaultPlan::from_seed(SEED), 4, 3, false);
    assert!(
        report.counters.partition_dropped > 0,
        "pinned seed must exercise the partition gate, got {:?}",
        report.counters
    );
}

/// Found by sweep; see `seeded_plan_with_partition_window_completes`.
const PINNED_PARTITION_SEED: u64 = 0x5EED_008C;
