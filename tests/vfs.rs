//! Capability-VFS fast-path gates: batched path resolution, extent
//! block allocation, and the client-side capability cache.
//!
//! The acceptance bars this binary pins:
//!
//! * a depth-8 path resolves in **≥4× fewer frames** than the
//!   per-segment walk (one frame per hop-chain, not per component);
//! * a 64-block file write costs the flat file server **two disk
//!   round-trips** (one `ALLOC_N`, one data frame) — six frames total
//!   including the client's own call;
//! * `resolve` agrees with the sequential `walk` oracle over random
//!   trees, including cross-server links, down to the failing segment
//!   index;
//! * a cached entry never outlives an external rename beyond the TTL;
//! * under the deterministic simulation executor, resolution hammered
//!   mid-rename only ever observes the two legal outcomes.

mod sim_support;

use amoeba::dirsvr::{ops as dir_ops, DirClient, DirServer};
use amoeba::prelude::*;
use amoeba::rpc::Client;
use amoeba::server::proto::{null_cap, Reply, Request};
use amoeba::server::wire;
use bytes::{Bytes, BytesMut};
use proptest::prelude::*;
use std::cell::Cell;
use std::rc::Rc;
use std::sync::Arc;
use std::time::Duration;

fn frames(net: &Network) -> u64 {
    net.stats().snapshot().packets_sent
}

/// Builds a depth-8 chain straddling two directory servers: the first
/// four components live on server 1, the rest on server 2.
fn cross_server_chain(
    net: &Network,
) -> (
    ServiceRunner,
    ServiceRunner,
    DirClient,
    Capability,
    Capability,
) {
    let s1 = ServiceRunner::spawn_open(net, DirServer::new(SchemeKind::OneWay));
    let s2 = ServiceRunner::spawn_open(net, DirServer::new(SchemeKind::Commutative));
    let dirs = DirClient::open(net, s1.put_port());
    let root = dirs.create_dir_on(s1.put_port()).unwrap();
    let mut current = root;
    let mut leaf = root;
    for i in 0..8 {
        let port = if i < 4 { s1.put_port() } else { s2.put_port() };
        let next = dirs.create_dir_on(port).unwrap();
        dirs.enter(&current, &format!("seg{i}"), &next).unwrap();
        current = next;
        leaf = next;
    }
    (s1, s2, dirs, root, leaf)
}

const DEEP_PATH: &str = "seg0/seg1/seg2/seg3/seg4/seg5/seg6/seg7";

#[test]
fn deep_tree_resolve_is_at_least_4x_fewer_frames() {
    let net = Network::new();
    let (s1, s2, dirs, root, leaf) = cross_server_chain(&net);

    let before = frames(&net);
    let walked = dirs.walk(&root, DEEP_PATH).unwrap();
    let walk_frames = frames(&net) - before;

    let before = frames(&net);
    let resolved = dirs.resolve(&root, DEEP_PATH).unwrap();
    let resolve_frames = frames(&net) - before;

    assert_eq!(walked, leaf);
    assert_eq!(resolved, leaf);
    // Eight per-segment round-trips vs one per hop-chain (the chain
    // crosses servers once, so exactly two round-trips).
    assert_eq!(walk_frames, 16);
    assert_eq!(resolve_frames, 4);
    assert!(
        walk_frames >= 4 * resolve_frames,
        "resolution gate: walk {walk_frames} frames vs resolve {resolve_frames}"
    );
    s1.stop();
    s2.stop();
}

#[test]
fn sixty_four_block_write_costs_two_disk_round_trips() {
    let net = Network::new();
    let disk = ServiceRunner::spawn_open(
        &net,
        BlockServer::new(
            DiskConfig {
                block_size: 128,
                capacity_blocks: 256,
            },
            SchemeKind::OneWay,
        ),
    );
    let server =
        amoeba::flatfs::BlockFlatFsServer::new(&net, disk.put_port(), SchemeKind::Commutative);
    let fs_runner = ServiceRunner::spawn_open(&net, server);
    let fs = FlatFsClient::open(&net, fs_runner.put_port());

    let cap = fs.create().unwrap();
    let body: Vec<u8> = (0..64 * 128u32).map(|i| (i % 251) as u8).collect();

    let before = frames(&net);
    fs.write(&cap, 0, &body).unwrap();
    let write_frames = frames(&net) - before;
    // client→fs (2) + fs→disk ALLOC_N (2) + fs→disk data (2): the
    // 64-block write is exactly one allocation round-trip and one data
    // round-trip against the disk, regardless of block count.
    assert!(
        write_frames <= 6,
        "64-block write took {write_frames} frames, expected ≤ 6 (2 disk RTTs)"
    );

    // A rewrite touching already-allocated blocks skips allocation:
    // one client call + one scatter frame even across the extent edge.
    let before = frames(&net);
    fs.write(&cap, 100, &[9u8; 64]).unwrap();
    assert!(frames(&net) - before <= 4);

    // Growth appends ONE new extent — again a single ALLOC_N.
    let before = frames(&net);
    fs.write(&cap, 64 * 128, &body).unwrap();
    assert!(frames(&net) - before <= 6);

    // And it all reads back: one gather round-trip against the disk.
    let before = frames(&net);
    let read = fs.read(&cap, 0, 64 * 128).unwrap();
    assert!(frames(&net) - before <= 4);
    assert_eq!(read[..100], body[..100]);
    assert_eq!(read[100..164], [9u8; 64]);
    assert_eq!(read[164..], body[164..]);

    fs.destroy(&cap).unwrap();
    let stats = BlockClient::open(&net, disk.put_port());
    assert_eq!(stats.statfs().unwrap().allocated_blocks, 0);
    fs_runner.stop();
    disk.stop();
}

/// One generated tree node: which existing node it hangs under (taken
/// modulo the nodes built so far) and which of the two servers hosts it.
#[derive(Debug, Clone)]
struct TreeSpec {
    nodes: Vec<(u32, bool)>,
}

fn tree_spec() -> impl Strategy<Value = TreeSpec> {
    proptest::collection::vec((any::<u32>(), any::<bool>()), 1..20)
        .prop_map(|nodes| TreeSpec { nodes })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `resolve` must agree with the sequential `walk` oracle on every
    /// node of a random tree with cross-server links — same capability
    /// on success, same failing index/segment/status on error — and a
    /// caching client must agree with itself on the repeat (cached)
    /// resolution.
    #[test]
    fn resolve_agrees_with_walk_on_random_trees(spec in tree_spec()) {
        let net = Network::new();
        let s1 = ServiceRunner::spawn_open(&net, DirServer::new(SchemeKind::OneWay));
        let s2 = ServiceRunner::spawn_open(&net, DirServer::new(SchemeKind::Commutative));
        let dirs = DirClient::open(&net, s1.put_port());
        let cached = DirClient::open(&net, s1.put_port()).with_cache(Duration::from_secs(3600));

        let root = dirs.create_dir_on(s1.put_port()).unwrap();
        let mut caps = vec![root];
        let mut paths = vec![String::new()];
        for (i, (parent, on_s2)) in spec.nodes.iter().enumerate() {
            let parent = *parent as usize % caps.len();
            let port = if *on_s2 { s2.put_port() } else { s1.put_port() };
            let cap = dirs.create_dir_on(port).unwrap();
            let name = format!("d{i}");
            dirs.enter(&caps[parent], &name, &cap).unwrap();
            let path = if paths[parent].is_empty() {
                name
            } else {
                format!("{}/{}", paths[parent], name)
            };
            caps.push(cap);
            paths.push(path);
        }

        for (cap, path) in caps.iter().zip(&paths) {
            prop_assert_eq!(&dirs.walk(&root, path).unwrap(), cap);
            prop_assert_eq!(&dirs.resolve(&root, path).unwrap(), cap);
            // The caching client answers identically, cold and warm.
            prop_assert_eq!(&cached.resolve(&root, path).unwrap(), cap);
            prop_assert_eq!(&cached.resolve(&root, path).unwrap(), cap);

            // Error parity: a ghost appended anywhere fails at the
            // same (index, segment, status) in both implementations.
            let ghost = if path.is_empty() {
                "ghost".to_owned()
            } else {
                format!("{path}/ghost")
            };
            let w = dirs.walk(&root, &ghost).unwrap_err();
            let r = dirs.resolve(&root, &ghost).unwrap_err();
            prop_assert_eq!(&w, &r);
            prop_assert_eq!(&w.segment, "ghost");
        }
        s1.stop();
        s2.stop();
    }
}

#[test]
fn cache_staleness_is_bounded_by_the_ttl() {
    const TTL: Duration = Duration::from_millis(50);
    let net = Network::new_virtual();
    let runner = ServiceRunner::spawn_open(&net, DirServer::new(SchemeKind::Commutative));
    let dirs = DirClient::open(&net, runner.put_port()).with_cache(TTL);
    let other = DirClient::open(&net, runner.put_port());

    let root = dirs.create_dir().unwrap();
    let target = dirs.create_dir().unwrap();
    dirs.enter(&root, "x", &target).unwrap();
    assert_eq!(dirs.lookup(&root, "x").unwrap(), target); // warm

    // ANOTHER client renames; our cache cannot see it. Within the TTL
    // the stale hit is the documented contract...
    other.rename(&root, "x", "y").unwrap();
    assert_eq!(
        dirs.lookup(&root, "x").unwrap(),
        target,
        "within the TTL a cached entry may legally serve stale"
    );

    // ...but once the shared timeline passes the TTL, the cache MUST
    // miss and the server's truth wins. One 100 ms round-trip pushes
    // the virtual clock well past the 50 ms TTL.
    net.set_latency(Duration::from_millis(100));
    let _ = other.create_dir().unwrap();
    net.set_latency(Duration::ZERO);
    assert_eq!(
        dirs.lookup(&root, "x").unwrap_err(),
        ClientError::Status(Status::NotFound),
        "a cache hit must never outlive the TTL"
    );
    assert_eq!(dirs.lookup(&root, "y").unwrap(), target);
    runner.stop();
}

/// Pins the `RESOLVE` and `ALLOC_N` byte tables of
/// `docs/PROTOCOL.md` ("Path-resolution and extent-allocation
/// bodies"): request params, reply bodies, and the handoff shape of
/// the worked example.
#[test]
fn documented_resolve_and_extent_frames_are_what_the_wire_carries() {
    let net = Network::new();

    // --- RESOLVE ---------------------------------------------------
    // root and `a` live on server 1, but `a` is served by server 2:
    // resolving "a/b" at server 1 consumes one segment and hands off.
    let s1 = ServiceRunner::spawn_open(&net, DirServer::new(SchemeKind::OneWay));
    let s2 = ServiceRunner::spawn_open(&net, DirServer::new(SchemeKind::Commutative));
    let dirs = DirClient::open(&net, s1.put_port());
    let root = dirs.create_dir_on(s1.put_port()).unwrap();
    let a = dirs.create_dir_on(s2.put_port()).unwrap();
    let b = dirs.create_dir_on(s2.put_port()).unwrap();
    dirs.enter(&root, "a", &a).unwrap();
    dirs.enter(&a, "b", &b).unwrap();

    // Request body: capability(16) ‖ command(4) ‖ params, where the
    // RESOLVE params are one length-prefixed path string.
    let body = encode_req(
        &root,
        dir_ops::RESOLVE,
        wire::Writer::new().str("a/b").finish(),
    );
    let mut documented = Vec::new();
    documented.extend_from_slice(&root.encode());
    documented.extend_from_slice(&8u32.to_be_bytes());
    documented.extend_from_slice(&3u32.to_be_bytes());
    documented.extend_from_slice(b"a/b");
    assert_eq!(&body[..], &documented[..], "RESOLVE request layout");

    // Reply body: consumed(4) ‖ walk status(4) ‖ capability(16), in
    // an OK transport envelope even though the hop only went partway.
    let raw = dirs.service().rpc().trans(s1.put_port(), body).unwrap();
    let reply = Reply::decode(&raw).unwrap();
    assert_eq!(reply.status, Status::Ok);
    assert_eq!(reply.body.len(), 24, "consumed + status + capability");
    assert_eq!(
        &reply.body[..4],
        &1u32.to_be_bytes(),
        "consumed 1 (handoff)"
    );
    assert_eq!(&reply.body[4..8], &(Status::Ok as u32).to_be_bytes());
    assert_eq!(
        Capability::decode(reply.body[8..24].try_into().unwrap()),
        Some(a),
        "the handoff capability is `a` on its home server"
    );

    // A walk that dies mid-path reports the failure INSIDE the body.
    let body = encode_req(
        &root,
        dir_ops::RESOLVE,
        wire::Writer::new().str("ghost").finish(),
    );
    let raw = dirs.service().rpc().trans(s1.put_port(), body).unwrap();
    let reply = Reply::decode(&raw).unwrap();
    assert_eq!(reply.status, Status::Ok, "the envelope stays OK");
    assert_eq!(reply.body.len(), 8, "no capability after a failed walk");
    assert_eq!(&reply.body[..4], &0u32.to_be_bytes());
    assert_eq!(&reply.body[4..8], &(Status::NotFound as u32).to_be_bytes());
    s1.stop();
    s2.stop();

    // --- ALLOC_N ---------------------------------------------------
    let disk = ServiceRunner::spawn_open(
        &net,
        BlockServer::new(
            DiskConfig {
                block_size: 64,
                capacity_blocks: 128,
            },
            SchemeKind::OneWay,
        ),
    );
    let body = encode_req(
        &null_cap(),
        amoeba::block::ops::ALLOC_N,
        wire::Writer::new().u32(64).finish(),
    );
    assert_eq!(&body[20..], &64u32.to_be_bytes(), "params: one u32 count");
    let raw = dirs.service().rpc().trans(disk.put_port(), body).unwrap();
    let reply = Reply::decode(&raw).unwrap();
    assert_eq!(reply.status, Status::Ok);
    assert_eq!(reply.body.len(), 20, "capability + blocks granted");
    assert_eq!(
        &reply.body[16..],
        &64u32.to_be_bytes(),
        "blocks granted = n"
    );
    let extent = Capability::decode(reply.body[..16].try_into().unwrap()).unwrap();

    // The granted extent is live: FREE through it returns all blocks.
    let blocks = BlockClient::open(&net, disk.put_port());
    assert_eq!(blocks.statfs().unwrap().allocated_blocks, 64);
    blocks.free(&extent).unwrap();
    assert_eq!(blocks.statfs().unwrap().allocated_blocks, 0);
    disk.stop();
}

fn encode_req(cap: &Capability, command: u32, params: Bytes) -> Bytes {
    let req = Request {
        cap: *cap,
        command,
        params,
    };
    let mut buf = BytesMut::new();
    req.encode_into(&mut buf);
    buf.freeze()
}

/// What one seeded resolve-vs-rename run observed.
#[derive(Debug, PartialEq, Eq)]
struct RaceOutcome {
    resolved: u64,
    renamed_away: u64,
}

/// A path-workload actor on the deterministic simulation executor:
/// one actor hammers RESOLVE `a/b/c` while another renames `b` back
/// and forth. Every reply must be one of exactly two legal outcomes —
/// the full chain, or NotFound at segment index 1.
fn resolve_mid_rename_run(seed: u64, resolves: usize, renames: usize) -> RaceOutcome {
    let net = Network::new_sim(seed);
    net.set_latency(Duration::from_millis(1));
    let port = Port::new(0xD1_25_07).unwrap();
    let pump = Arc::new(SimPump::bind(
        net.attach_open(),
        port,
        DirServer::new(SchemeKind::Commutative),
    ));
    let put_port = pump.put_port();

    let clients: Vec<Client> = (0..3)
        .map(|i| Client::new(net.attach_open()).with_rng_seed(seed ^ i))
        .collect();
    // (root, a, c) once the setup actor has built the tree.
    let ready: Rc<Cell<Option<(Capability, Capability, Capability)>>> = Rc::new(Cell::new(None));
    let resolved = Rc::new(Cell::new(0u64));
    let renamed_away = Rc::new(Cell::new(0u64));

    let mut exec = SimExecutor::new(&net);
    {
        let pump = Arc::clone(&pump);
        exec.spawn_daemon(pump.machine(), move || {
            if pump.poll() {
                ActorPoll::Progress
            } else {
                ActorPoll::Idle
            }
        });
    }

    // Setup: create root/a/b/c and link them, one step per reply.
    {
        let ready = Rc::clone(&ready);
        let client = &clients[0];
        let mut step = 0usize;
        let mut caps: Vec<Capability> = Vec::new();
        let mut current: Option<amoeba::rpc::Completion<'_, Bytes>> = None;
        exec.spawn(client.endpoint().id(), move || loop {
            if let Some(comp) = current.as_mut() {
                match comp.poll() {
                    Some(Ok(raw)) => {
                        let reply = Reply::decode(&raw).expect("setup reply decodes");
                        assert_eq!(reply.status, Status::Ok, "setup step {step}");
                        if step < 4 {
                            caps.push(wire::Reader::new(&reply.body).cap().expect("a capability"));
                        }
                        current = None;
                        step += 1;
                        if step == 7 {
                            ready.set(Some((caps[0], caps[1], caps[3])));
                            return ActorPoll::Done;
                        }
                    }
                    Some(Err(e)) => panic!("setup step {step}: {e}"),
                    None => return ActorPoll::IdleUntil(comp.deadline()),
                }
            } else {
                let body = match step {
                    0..=3 => encode_req(&null_cap(), dir_ops::CREATE, Bytes::new()),
                    4 => encode_req(
                        &caps[0],
                        dir_ops::ENTER,
                        wire::Writer::new().str("a").cap(&caps[1]).finish(),
                    ),
                    5 => encode_req(
                        &caps[1],
                        dir_ops::ENTER,
                        wire::Writer::new().str("b").cap(&caps[2]).finish(),
                    ),
                    6 => encode_req(
                        &caps[2],
                        dir_ops::ENTER,
                        wire::Writer::new().str("c").cap(&caps[3]).finish(),
                    ),
                    _ => unreachable!(),
                };
                current = Some(client.trans_async(put_port, body));
            }
        });
    }

    // The resolver: hammers the batched server-side walk.
    {
        let ready = Rc::clone(&ready);
        let resolved = Rc::clone(&resolved);
        let renamed_away = Rc::clone(&renamed_away);
        let client = &clients[1];
        let mut done = 0usize;
        let mut current: Option<amoeba::rpc::Completion<'_, Bytes>> = None;
        exec.spawn(client.endpoint().id(), move || loop {
            let Some((root, _a, c)) = ready.get() else {
                // A bare `Idle` only rewakes on packet delivery, and
                // nothing is addressed at this machine yet — poll the
                // ready flag on a short timer instead.
                return ActorPoll::IdleUntil(client.endpoint().now() + Duration::from_millis(1));
            };
            if let Some(comp) = current.as_mut() {
                match comp.poll() {
                    Some(Ok(raw)) => {
                        let reply = Reply::decode(&raw).expect("resolve reply decodes");
                        assert_eq!(reply.status, Status::Ok, "RESOLVE uses an Ok envelope");
                        let mut r = wire::Reader::new(&reply.body);
                        let consumed = r.u32().expect("consumed");
                        let status = Status::from_u32(r.u32().expect("status")).expect("known");
                        match status {
                            Status::Ok => {
                                assert_eq!(consumed, 3, "full chain");
                                assert_eq!(r.cap().expect("cap"), c);
                                resolved.set(resolved.get() + 1);
                            }
                            Status::NotFound => {
                                // The rename window: `b` was absent, so
                                // the walk died at segment index 1.
                                assert_eq!(consumed, 1, "must fail exactly at `b`");
                                renamed_away.set(renamed_away.get() + 1);
                            }
                            other => panic!("illegal resolve outcome: {other:?}"),
                        }
                        current = None;
                        done += 1;
                        if done == resolves {
                            return ActorPoll::Done;
                        }
                    }
                    Some(Err(e)) => panic!("resolve {done}: {e}"),
                    None => return ActorPoll::IdleUntil(comp.deadline()),
                }
            } else {
                let body = encode_req(
                    &root,
                    dir_ops::RESOLVE,
                    wire::Writer::new().str("a/b/c").finish(),
                );
                current = Some(client.trans_async(put_port, body));
            }
        });
    }

    // The renamer: flips `b` ↔ `hidden` under directory `a`.
    {
        let ready = Rc::clone(&ready);
        let client = &clients[2];
        let mut round = 0usize;
        let mut current: Option<amoeba::rpc::Completion<'_, Bytes>> = None;
        exec.spawn(client.endpoint().id(), move || loop {
            let Some((_root, a, _c)) = ready.get() else {
                // A bare `Idle` only rewakes on packet delivery, and
                // nothing is addressed at this machine yet — poll the
                // ready flag on a short timer instead.
                return ActorPoll::IdleUntil(client.endpoint().now() + Duration::from_millis(1));
            };
            if let Some(comp) = current.as_mut() {
                match comp.poll() {
                    Some(Ok(raw)) => {
                        let reply = Reply::decode(&raw).expect("rename reply decodes");
                        assert_eq!(reply.status, Status::Ok, "rename round {round}");
                        current = None;
                        round += 1;
                        if round == renames {
                            return ActorPoll::Done;
                        }
                    }
                    Some(Err(e)) => panic!("rename {round}: {e}"),
                    None => return ActorPoll::IdleUntil(comp.deadline()),
                }
            } else {
                let (from, to) = if round.is_multiple_of(2) {
                    ("b", "hidden")
                } else {
                    ("hidden", "b")
                };
                let body = encode_req(
                    &a,
                    dir_ops::RENAME,
                    wire::Writer::new().str(from).str(to).finish(),
                );
                current = Some(client.trans_async(put_port, body));
            }
        });
    }

    exec.run().expect("race scenario must not stall");
    drop(exec);
    let outcome = RaceOutcome {
        resolved: resolved.get(),
        renamed_away: renamed_away.get(),
    };
    assert_eq!(
        outcome.resolved + outcome.renamed_away,
        resolves as u64,
        "every resolve must land in a legal outcome"
    );
    outcome
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Seeded schedules interleave RESOLVE with renames arbitrarily;
    /// every observed outcome must be legal, and one seed must replay
    /// to the identical outcome tally.
    #[test]
    fn sim_resolve_mid_rename_sees_only_legal_outcomes(seed in any::<u64>()) {
        let a = resolve_mid_rename_run(seed, 12, 8);
        let b = resolve_mid_rename_run(seed, 12, 8);
        prop_assert_eq!(a, b, "same seed must replay the same interleaving tally");
    }
}
