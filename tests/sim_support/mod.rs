//! Shared harness for the deterministic-simulation tests: an echo
//! cluster plus poll-driven client actors, the whole scenario a pure
//! function of a `u64` seed.
//!
//! Every invariant the threaded integration tests check by hammering
//! real schedules is asserted here under *adversarial* seeded
//! schedules instead: replies must never alias across transactions or
//! recycled/leased reply ports (each request carries a unique body the
//! echo service mirrors back), every transaction must eventually
//! complete despite loss/duplication/crash windows (the plan's faults
//! are bounded in time), and two runs of one seed must produce
//! identical event fingerprints.

// Shared by several integration-test binaries; not every binary uses
// every helper or reads every report field.
#![allow(dead_code)]

use amoeba::prelude::*;
use amoeba::rpc::{Client, PortLeaseBroker, RpcError};
use amoeba::server::proto::{null_cap, Reply, Request, Status};
use bytes::{Bytes, BytesMut};
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;
use std::time::Duration;

/// The echo command (anything the std handler doesn't claim).
pub const ECHO_CMD: u32 = 0x0E_C0;

/// The fixed service get-port (explicit: sim mode draws no entropy).
pub fn service_port() -> Port {
    Port::new(0xA0EB_A5E1).unwrap()
}

/// Mirrors each request's params back — the aliasing canary: a client
/// that ever receives a body it did not send this transaction has
/// caught a recycled-port or demux soundness bug.
pub struct EchoService;

impl Service for EchoService {
    fn handle(&self, req: &Request, _ctx: &RequestCtx) -> Reply {
        Reply::ok(req.params.clone())
    }
}

/// What one seeded scenario run observed.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// `(fnv1a_hash, event_count)` over the full delivery schedule.
    pub fingerprint: (u64, u64),
    /// Cumulative fault-injection counters.
    pub counters: FaultCounters,
    /// Transactions that completed with a verified echo.
    pub completed: u64,
    /// Full-attempt timeouts that were retried as a fresh transaction.
    pub timeouts: u64,
    /// The network traffic counters at the end of the run — part of the
    /// determinism contract: two runs of one seed must not just deliver
    /// the same events, they must *send* the same packets.
    pub stats: StatsSnapshot,
    /// The live metrics registry at the end of the run (the recorder is
    /// always enabled for scenarios, so a failing seed dumps a flight
    /// recording with the injected faults on its timeline).
    pub metrics: MetricsSnapshot,
    /// The raw event log (empty unless `record_log` was set).
    pub log: Vec<u8>,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Encodes one echo request carrying `tag` as its body.
pub fn encode_echo(tag: &[u8]) -> Bytes {
    let req = Request {
        cap: null_cap(),
        command: ECHO_CMD,
        params: Bytes::copy_from_slice(tag),
    };
    let mut buf = BytesMut::new();
    req.encode_into(&mut buf);
    buf.freeze()
}

#[derive(Debug, Default)]
struct WaveStats {
    completed: u64,
    timeouts: u64,
}

/// A transaction may legitimately time out many times while a fault
/// window covers its path; all windows end by ~500 ms of simulated
/// time, so a bounded retry budget distinguishes "rode out the faults"
/// from a genuine liveness bug.
const MAX_LOGICAL_RETRIES: u32 = 60;

/// Runs one wave of poll-driven clients against the replica set and
/// returns its stats. Clients are owned by an arena that outlives the
/// executor (completions borrow their client).
fn run_wave(
    net: &Network,
    replicas: &SimReplicaSet,
    broker: &Arc<PortLeaseBroker>,
    wave_seed: u64,
    clients: usize,
    ops_per_client: usize,
) -> WaveStats {
    let mut seed = wave_seed;
    let arena: Vec<Client> = (0..clients)
        .map(|_| {
            Client::with_config(
                net.attach_open(),
                RpcConfig {
                    timeout: Duration::from_millis(25),
                    attempts: 10,
                },
            )
            .with_rng_seed(splitmix64(&mut seed))
            .with_broker(Arc::clone(broker))
        })
        .collect();
    // The first few client machines become fault targets after the
    // replicas, so seeded crash windows can kill a client
    // mid-transaction (its in-flight request or reply dies with it).
    for (i, client) in arena.iter().take(3).enumerate() {
        net.sim_bind_fault_target(replicas.replicas() + i, client.endpoint().id());
    }

    let stats = Rc::new(RefCell::new(WaveStats::default()));
    let mut exec = SimExecutor::new(net);
    replicas.spawn_actors(&mut exec);
    let port = replicas.put_port();
    for (ci, client) in arena.iter().enumerate() {
        let stats = Rc::clone(&stats);
        let mut op = 0usize;
        let mut retries = 0u32;
        let mut current: Option<(amoeba::rpc::Completion<'_, Bytes>, Bytes)> = None;
        exec.spawn(client.endpoint().id(), move || loop {
            if let Some((comp, expected)) = current.as_mut() {
                match comp.poll() {
                    Some(Ok(raw)) => {
                        let reply = Reply::decode(&raw).expect("echo reply decodes");
                        assert_eq!(reply.status, Status::Ok);
                        assert_eq!(
                            reply.body, *expected,
                            "reply aliasing: client {ci} op {op} got a body from \
                             another transaction"
                        );
                        stats.borrow_mut().completed += 1;
                        current = None;
                        retries = 0;
                        op += 1;
                        if op == ops_per_client {
                            return ActorPoll::Done;
                        }
                    }
                    Some(Err(RpcError::Timeout)) => {
                        stats.borrow_mut().timeouts += 1;
                        retries += 1;
                        assert!(
                            retries <= MAX_LOGICAL_RETRIES,
                            "client {ci} op {op} starved: {retries} full-attempt \
                             timeouts (liveness bug, not fault noise)"
                        );
                        current = None;
                    }
                    Some(Err(e)) => panic!("client {ci} op {op}: {e}"),
                    None => return ActorPoll::IdleUntil(comp.deadline()),
                }
            } else {
                let tag = format!("c{ci}.o{op}.r{retries}");
                let body = encode_echo(tag.as_bytes());
                let comp = client.trans_async(port, body);
                current = Some((comp, Bytes::copy_from_slice(tag.as_bytes())));
            }
        });
    }
    exec.run().unwrap_or_else(|stall| {
        panic!("wave stalled: {stall}");
    });
    drop(exec);
    drop(arena); // clean ports and routes flow back to the broker
    Rc::try_unwrap(stats).expect("actors dropped").into_inner()
}

/// Runs the full seeded scenario: a 3-replica echo cluster, two waves
/// of clients (the second leasing recycled reply-port identities from
/// the first via the [`PortLeaseBroker`] — the lease invariant rides
/// every run), all scheduling and faults drawn from `seed`.
pub fn run_scenario(
    seed: u64,
    plan: FaultPlan,
    clients_per_wave: usize,
    ops_per_client: usize,
    record_log: bool,
) -> ScenarioReport {
    let net = Network::new_sim_with_plan(seed, plan);
    net.set_latency(Duration::from_millis(1));
    // The flight recorder rides every scenario: when a seed fails (any
    // panic — aliasing canary, liveness budget, stall), the recording
    // is dumped to stderr and, when `OBS_DUMP_DIR` is set, to a JSON
    // file CI uploads as an artifact. Recording never touches the sim
    // RNG, fingerprint or byte log, so determinism is unaffected.
    net.obs().enable();
    if record_log {
        net.sim_record_log(true);
    }
    let replicas = SimReplicaSet::bind(&net, service_port(), 3, |_| EchoService);
    let broker = Arc::new(PortLeaseBroker::new());

    let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut totals = WaveStats::default();
        for wave in 0..2u64 {
            let w = run_wave(
                &net,
                &replicas,
                &broker,
                seed ^ (0x57A6E << 8) ^ wave,
                clients_per_wave,
                ops_per_client,
            );
            totals.completed += w.completed;
            totals.timeouts += w.timeouts;
        }
        totals
    }));
    let totals = match run {
        Ok(totals) => totals,
        Err(panic) => {
            net.obs().dump(&format!("scenario seed {seed:#x} panicked"));
            std::panic::resume_unwind(panic);
        }
    };

    let expected = 2 * (clients_per_wave * ops_per_client) as u64;
    assert_eq!(
        totals.completed, expected,
        "every transaction must complete once the fault windows pass"
    );
    ScenarioReport {
        fingerprint: net.sim_fingerprint(),
        counters: net.sim_fault_counters(),
        completed: totals.completed,
        timeouts: totals.timeouts,
        stats: net.stats().snapshot(),
        metrics: net.obs().snapshot().expect("recorder enabled above"),
        log: if record_log {
            net.sim_take_log()
        } else {
            Vec::new()
        },
    }
}
