//! A whole-system integration test: every Amoeba service from §3
//! running together on one simulated network, exercised by a realistic
//! user session.

use amoeba::prelude::*;
use std::time::Duration;

const DOLLAR: CurrencyId = CurrencyId(0);

struct World {
    net: Network,
    runners: Vec<ServiceRunner>,
    bank_port: Port,
    treasury: Capability,
    fs_port: Port,
    dir_port: Port,
    mvfs_port: Port,
    mem_port: Port,
    #[allow(dead_code)]
    disk_port: Port,
    ufs_port: Port,
}

fn boot_world() -> World {
    let net = Network::new();
    let mut runners = Vec::new();

    let (bank_server, treasury_rx) = BankServer::new(
        vec![Currency::convertible("dollar", 1)],
        SchemeKind::Commutative,
    );
    let bank_runner = ServiceRunner::spawn_open(&net, bank_server);
    let bank_port = bank_runner.put_port();
    let treasury = treasury_rx
        .recv_timeout(Duration::from_secs(5))
        .expect("treasury");
    runners.push(bank_runner);

    let fs = ServiceRunner::spawn_open(&net, FlatFsServer::new(SchemeKind::Commutative));
    let fs_port = fs.put_port();
    runners.push(fs);

    let dirs = ServiceRunner::spawn_open(&net, DirServer::new(SchemeKind::OneWay));
    let dir_port = dirs.put_port();
    runners.push(dirs);

    let mvfs = ServiceRunner::spawn_open(&net, MvfsServer::new(SchemeKind::Commutative));
    let mvfs_port = mvfs.put_port();
    runners.push(mvfs);

    let mem = ServiceRunner::spawn_open(&net, MemServer::new(SchemeKind::Encrypted));
    let mem_port = mem.put_port();
    runners.push(mem);

    let disk = ServiceRunner::spawn_open(
        &net,
        BlockServer::new(DiskConfig::small(), SchemeKind::OneWay),
    );
    let disk_port = disk.put_port();
    let ufs = ServiceRunner::spawn_open(
        &net,
        UnixFsServer::new(&net, disk_port, SchemeKind::Commutative),
    );
    let ufs_port = ufs.put_port();
    runners.push(disk);
    runners.push(ufs);

    World {
        net,
        runners,
        bank_port,
        treasury,
        fs_port,
        dir_port,
        mvfs_port,
        mem_port,
        disk_port,
        ufs_port,
    }
}

#[test]
fn user_session_across_all_services() {
    let w = boot_world();
    let net = &w.net;

    // The user's toolbox.
    let bank = BankClient::open(net, w.bank_port);
    let fs = FlatFsClient::open(net, w.fs_port);
    let dirs = DirClient::open(net, w.dir_port);
    let mvfs = MvfsClient::open(net, w.mvfs_port);
    let mem = MemClient::open(net, w.mem_port);
    let ufs = UnixFsClient::open(net, w.ufs_port);

    // 1. Payroll: the user gets an account with money.
    let wallet = bank.open_account().unwrap();
    bank.mint(&w.treasury, &wallet, DOLLAR, 1000).unwrap();

    // 2. Home directory with a flat file and a versioned document.
    let home = dirs.create_dir().unwrap();
    let report = fs.create().unwrap();
    fs.write(&report, 0, b"Q2 numbers: 42").unwrap();
    dirs.enter(&home, "report.txt", &report).unwrap();

    let doc = mvfs.create_file().unwrap();
    let v1 = mvfs.new_version(&doc).unwrap();
    mvfs.write_page(&v1, 0, b"draft").unwrap();
    mvfs.commit(&v1).unwrap();
    dirs.enter(&home, "thesis.mv", &doc).unwrap();

    // 3. A UNIX-style tree for ported applications.
    let ufs_root = ufs.root().unwrap();
    let etc = ufs.mkdir(&ufs_root, "etc").unwrap();
    let passwd = ufs.create(&etc, "passwd").unwrap();
    ufs.write(&passwd, 0, b"ast:x:1:1:Andy:/:").unwrap();
    dirs.enter(&home, "unix-etc", &etc).unwrap();

    // 4. Launch a worker process whose text comes from the flat file.
    let program = fs.read(&report, 0, 100).unwrap();
    let text_seg = mem.create_segment(4096).unwrap();
    mem.write(&text_seg, 0, &program).unwrap();
    let worker = mem.make_process(&[text_seg]).unwrap();
    mem.start(&worker).unwrap();
    assert_eq!(mem.status(&worker).unwrap(), ProcState::Running);

    // 5. Hand the report (read-only) to an auditor via the directory.
    let auditor_view = fs.service().restrict(&report, Rights::READ).unwrap();
    dirs.enter(&home, "report-for-audit.txt", &auditor_view)
        .unwrap();

    // --- The auditor's machine --------------------------------------------
    let auditor_dirs = DirClient::open(net, w.dir_port);
    let auditor_fs = FlatFsClient::open(net, w.fs_port);
    let found = auditor_dirs.walk(&home, "report-for-audit.txt").unwrap();
    assert_eq!(&auditor_fs.read(&found, 0, 100).unwrap(), b"Q2 numbers: 42");
    assert!(
        auditor_fs.write(&found, 0, b"cooked books").is_err(),
        "auditor must not modify"
    );

    // The versioned document keeps history even as work continues.
    let found_doc = auditor_dirs.walk(&home, "thesis.mv").unwrap();
    let v2 = mvfs.new_version(&found_doc).unwrap();
    mvfs.write_page(&v2, 0, b"final").unwrap();
    mvfs.commit(&v2).unwrap();
    assert_eq!(&mvfs.read_page(&v1, 0).unwrap()[..5], b"draft");
    assert_eq!(&mvfs.read_page(&found_doc, 0).unwrap()[..5], b"final");

    // The UNIX tree reached through the Amoeba directory.
    let found_etc = auditor_dirs.walk(&home, "unix-etc").unwrap();
    let auditor_ufs = UnixFsClient::open(net, w.ufs_port);
    let found_passwd = auditor_ufs.lookup(&found_etc, "passwd").unwrap();
    assert_eq!(&auditor_ufs.read(&found_passwd, 0, 3).unwrap(), b"ast");

    // 6. Pay for the audit.
    let auditor_account = bank.open_account().unwrap();
    bank.transfer(&wallet, &auditor_account, DOLLAR, 250)
        .unwrap();
    assert_eq!(bank.balance(&wallet, DOLLAR).unwrap(), 750);
    assert_eq!(bank.balance(&auditor_account, DOLLAR).unwrap(), 250);

    // 7. Wind down: stop the worker, revoke the audit view.
    mem.stop(&worker).unwrap();
    let _fresh = fs.service().revoke(&report).unwrap();
    assert!(auditor_fs.read(&found, 0, 1).is_err(), "revoked");

    for r in w.runners {
        r.stop();
    }
}

#[test]
fn services_under_packet_loss() {
    // RPC retries make the system usable on a lossy network.
    let w = boot_world();
    w.net.reseed(42);
    w.net.set_drop_rate(0.3);

    let fs = FlatFsClient::with_service(
        ServiceClient::open_with_config(
            &w.net,
            RpcConfig {
                timeout: Duration::from_millis(50),
                attempts: 20,
            },
        ),
        w.fs_port,
    );
    let cap = fs.create().expect("create despite 30% loss");
    fs.write(&cap, 0, b"lossy but alive").expect("write");
    assert_eq!(&fs.read(&cap, 0, 100).unwrap(), b"lossy but alive");

    w.net.set_drop_rate(0.0);
    for r in w.runners {
        r.stop();
    }
}

#[test]
fn cross_service_capability_misuse_is_rejected() {
    // A capability minted by one server presented to another: the
    // object number may exist there, but the check field cannot
    // validate against the other server's secrets.
    let w = boot_world();
    let fs = FlatFsClient::open(&w.net, w.fs_port);
    let mvfs = MvfsClient::open(&w.net, w.mvfs_port);
    let bank = BankClient::open(&w.net, w.bank_port);

    let file_cap = fs.create().unwrap();
    // Force-route the file capability to the MVFS server.
    let cross = Capability::new(
        mvfs_port_of(&w),
        file_cap.object,
        file_cap.rights,
        file_cap.check,
    );
    assert!(
        matches!(
            mvfs.read_page(&cross, 0).unwrap_err(),
            ClientError::Status(Status::Forged) | ClientError::Status(Status::NoSuchObject)
        ),
        "foreign capability must not validate"
    );

    // And at the bank (object 0 = treasury exists there!).
    let cross_bank = Capability::new(
        w.bank_port,
        ObjectNum::new(0).unwrap(),
        Rights::ALL,
        file_cap.check,
    );
    assert!(bank.balance(&cross_bank, DOLLAR).is_err());

    for r in w.runners {
        r.stop();
    }
}

fn mvfs_port_of(w: &World) -> Port {
    w.mvfs_port
}
