//! Kill-during-migration: live shard migration under seeded fault
//! plans in the deterministic simulation.
//!
//! Two FlatFs replicas split the shard space; poll-driven clients
//! create files, write unique bodies and read them back while a
//! [`ShardMigration`] actor streams one shard from the source to the
//! target — and the fault plan crashes the source, the target, or the
//! migration driver mid-copy. The invariants, per seed:
//!
//! * **No lost requests**: every client op completes within a bounded
//!   retry budget, and a final verification wave re-reads every object
//!   through the *original* (stale) route — the old owner must either
//!   serve or forward, never drop into a gap.
//! * **No double-execution / divergence**: every re-read returns the
//!   exact unique body its writer verified, wherever the object now
//!   lives.
//! * **Clean ends only**: the migration either commits (source
//!   forwards, target owns) or aborts (source serves on, untouched).
//! * **Exact replay**: two runs of one seed are byte-identical.
//!
//! Environment knobs: `SIM_MIG_SEED=<n>` replays one seed,
//! `SIM_MIG_SEEDS=<n>` sets the hammer's sweep width (default 10),
//! `SIM_SHARDS`/`SIM_SHARD` split a sweep across CI jobs.

use amoeba::flatfs::ops;
use amoeba::prelude::*;
use amoeba::rpc::{Client, RpcError};
use amoeba::server::proto::{null_cap, Reply, Request, Status};
use amoeba::server::{placement_range, wire, DEFAULT_SHARDS};
use bytes::{Bytes, BytesMut};
use std::cell::RefCell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::rc::Rc;
use std::time::Duration;

/// Base of this hammer's seed space — distinct from the fault-plan and
/// proptest bases so CI shards never repeat another job's seed.
const MIG_SEED_BASE: u64 = 0x316A_0000;

/// A transaction may time out repeatedly while a fault window covers
/// its path; windows end by ~500 ms of simulated time.
const MAX_LOGICAL_RETRIES: u32 = 60;

fn source_port() -> Port {
    Port::new(0xA0EB_0010).unwrap()
}

fn target_port() -> Port {
    Port::new(0xA0EB_0011).unwrap()
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

fn encode_request(cap: &Capability, command: u32, params: Bytes) -> Bytes {
    let req = Request {
        cap: *cap,
        command,
        params,
    };
    let mut buf = BytesMut::new();
    req.encode_into(&mut buf);
    buf.freeze()
}

fn shard_of(cap: &Capability) -> usize {
    placement_range(cap.object, DEFAULT_SHARDS, DEFAULT_SHARDS)
}

/// What one seeded migration scenario observed.
#[derive(Debug, Clone)]
struct MigReport {
    fingerprint: (u64, u64),
    counters: FaultCounters,
    completed: u64,
    timeouts: u64,
    migration: Result<MigrationStats, MigrateError>,
    log: Vec<u8>,
}

/// One client op's progress: create a file, write a unique body, read
/// it back. Completed objects are pushed into the shared registry for
/// the final verification wave.
enum OpStep {
    Create,
    Write(Capability),
    Read(Capability),
}

/// Runs one seeded scenario and asserts every invariant that must hold
/// regardless of when (or whether) the migration survives the plan.
fn run_migration_scenario(
    seed: u64,
    plan: FaultPlan,
    clients: usize,
    ops_per_client: usize,
    record_log: bool,
) -> MigReport {
    let net = Network::new_sim_with_plan(seed, plan);
    net.set_latency(Duration::from_millis(1));
    net.obs().enable();
    if record_log {
        net.sim_record_log(true);
    }

    // Two replicas splitting the shard space, as an elastic pair would:
    // source owns the even shards, target the odd ones. Secrets are
    // seed-derived so two runs of one seed mint identical capabilities.
    let mut src_fs = FlatFsServer::new(SchemeKind::Simple);
    src_fs.reseed_secrets(seed ^ 0x5EC0);
    amoeba::server::Service::bind_shard_range(&mut src_fs, 0, 2);
    let src_pump = SimPump::bind(net.attach_open(), source_port(), src_fs);
    let mut tgt_fs = FlatFsServer::new(SchemeKind::Simple);
    tgt_fs.reseed_secrets(seed ^ 0x7A67);
    amoeba::server::Service::bind_shard_range(&mut tgt_fs, 1, 2);
    let tgt_pump = SimPump::bind(net.attach_open(), target_port(), tgt_fs);
    net.sim_bind_fault_target(0, src_pump.machine());
    net.sim_bind_fault_target(1, tgt_pump.machine());

    // The shard under migration: one of the source's (even) shards.
    let shard = (seed as usize % (DEFAULT_SHARDS / 2)) * 2;

    let mut rng_seed = seed ^ 0x00C1_1E57;
    let config = RpcConfig {
        timeout: Duration::from_millis(25),
        attempts: 10,
    };
    let mig_client =
        Client::with_config(net.attach_open(), config).with_rng_seed(splitmix64(&mut rng_seed));
    // The driver is a fault target too: a crash window over it freezes
    // the migration mid-protocol, then resumes it against a target that
    // may have staged chunks long ago.
    net.sim_bind_fault_target(2, mig_client.endpoint().id());
    let arena: Vec<Client> = (0..clients)
        .map(|_| {
            Client::with_config(net.attach_open(), config).with_rng_seed(splitmix64(&mut rng_seed))
        })
        .collect();
    for (i, client) in arena.iter().take(3).enumerate() {
        net.sim_bind_fault_target(3 + i, client.endpoint().id());
    }
    let verifier =
        Client::with_config(net.attach_open(), config).with_rng_seed(splitmix64(&mut rng_seed));

    let registry: Rc<RefCell<Vec<(Capability, Bytes)>>> = Rc::new(RefCell::new(Vec::new()));
    let clients_done = Rc::new(RefCell::new(0usize));
    let mig_done: Rc<RefCell<Option<Result<MigrationStats, MigrateError>>>> =
        Rc::new(RefCell::new(None));
    let stats = Rc::new(RefCell::new((0u64, 0u64))); // (completed, timeouts)

    let run = catch_unwind(AssertUnwindSafe(|| {
        let mut exec = SimExecutor::new(&net);
        for pump in [&src_pump, &tgt_pump] {
            exec.spawn_daemon(pump.machine(), move || {
                if pump.poll() {
                    ActorPoll::Progress
                } else {
                    ActorPoll::Idle
                }
            });
        }

        let migrator = src_pump.service().migrator().expect("flatfs migrates");
        let mut migration = ShardMigration::new(
            &mig_client,
            migrator,
            shard,
            seed | 1, // nonzero transfer id
            target_port(),
            None,
        );
        {
            let mig_done = Rc::clone(&mig_done);
            let mig_ep = mig_client.endpoint();
            let mut started = false;
            exec.spawn(mig_client.endpoint().id(), move || {
                if !started {
                    // Let the first creates land so the snapshot, the
                    // catch-up rounds and the cutover all overlap live
                    // traffic instead of copying an empty table.
                    started = true;
                    return ActorPoll::IdleUntil(mig_ep.now() + Duration::from_millis(12));
                }
                let p = migration.poll();
                if matches!(p, ActorPoll::Done) && mig_done.borrow().is_none() {
                    *mig_done.borrow_mut() = Some(*migration.result().expect("done has result"));
                }
                p
            });
        }

        for (ci, client) in arena.iter().enumerate() {
            let registry = Rc::clone(&registry);
            let clients_done = Rc::clone(&clients_done);
            let stats = Rc::clone(&stats);
            let mut op = 0usize;
            let mut retries = 0u32;
            let mut step = OpStep::Create;
            let mut current: Option<amoeba::rpc::Completion<'_, Bytes>> = None;
            exec.spawn(client.endpoint().id(), move || loop {
                if let Some(comp) = current.as_mut() {
                    match comp.poll() {
                        None => return ActorPoll::IdleUntil(comp.deadline()),
                        Some(Err(RpcError::Timeout)) => {
                            stats.borrow_mut().1 += 1;
                            retries += 1;
                            assert!(
                                retries <= MAX_LOGICAL_RETRIES,
                                "client {ci} op {op} starved: a request was lost past \
                                 the fault windows (liveness bug)"
                            );
                            current = None; // retry the same step afresh
                        }
                        Some(Err(e)) => panic!("client {ci} op {op}: {e}"),
                        Some(Ok(raw)) => {
                            let reply = Reply::decode(&raw).expect("reply decodes");
                            assert_eq!(
                                reply.status,
                                Status::Ok,
                                "client {ci} op {op}: server refused a live request"
                            );
                            current = None;
                            retries = 0;
                            step = match std::mem::replace(&mut step, OpStep::Create) {
                                OpStep::Create => {
                                    let cap =
                                        wire::Reader::new(&reply.body).cap().expect("create cap");
                                    OpStep::Write(cap)
                                }
                                OpStep::Write(cap) => OpStep::Read(cap),
                                OpStep::Read(cap) => {
                                    let body = format!("c{ci}.o{op}");
                                    assert_eq!(
                                        &reply.body[..],
                                        body.as_bytes(),
                                        "client {ci} op {op}: read returned another \
                                         transaction's data"
                                    );
                                    registry
                                        .borrow_mut()
                                        .push((cap, Bytes::copy_from_slice(body.as_bytes())));
                                    stats.borrow_mut().0 += 1;
                                    op += 1;
                                    if op == ops_per_client {
                                        *clients_done.borrow_mut() += 1;
                                        return ActorPoll::Done;
                                    }
                                    OpStep::Create
                                }
                            };
                        }
                    }
                } else {
                    let body = format!("c{ci}.o{op}");
                    let frame = match &step {
                        // Creates always go to the source: it keeps a
                        // mintable shard throughout (only one of its
                        // eight is migrating).
                        OpStep::Create => encode_request(&null_cap(), ops::CREATE, Bytes::new()),
                        OpStep::Write(cap) => encode_request(
                            cap,
                            ops::WRITE,
                            wire::Writer::new().u64(0).bytes(body.as_bytes()).finish(),
                        ),
                        OpStep::Read(cap) => encode_request(
                            cap,
                            ops::READ,
                            wire::Writer::new().u64(0).u32(64).finish(),
                        ),
                    };
                    // Stale routing throughout: everything is addressed
                    // at the source's port, so the cutover window and
                    // post-commit forwarding are on every op's path.
                    current = Some(client.trans_async(source_port(), frame));
                }
            });
        }

        // The verification wave: once every client finished and the
        // migration reached a terminal state, re-read every object
        // through the original route and demand the exact body.
        {
            let registry = Rc::clone(&registry);
            let clients_done = Rc::clone(&clients_done);
            let mig_done = Rc::clone(&mig_done);
            let verifier = &verifier;
            let mut index = 0usize;
            let mut retries = 0u32;
            let mut current: Option<amoeba::rpc::Completion<'_, Bytes>> = None;
            exec.spawn(verifier.endpoint().id(), move || loop {
                if let Some(comp) = current.as_mut() {
                    match comp.poll() {
                        None => return ActorPoll::IdleUntil(comp.deadline()),
                        Some(Err(RpcError::Timeout)) => {
                            retries += 1;
                            assert!(
                                retries <= MAX_LOGICAL_RETRIES,
                                "verifier starved re-reading object {index}"
                            );
                            current = None;
                        }
                        Some(Err(e)) => panic!("verifier object {index}: {e}"),
                        Some(Ok(raw)) => {
                            let reply = Reply::decode(&raw).expect("reply decodes");
                            let (cap, expected) = registry.borrow()[index].clone();
                            assert_eq!(
                                reply.status,
                                Status::Ok,
                                "object {:?} (shard {}) was lost by the migration",
                                cap.object,
                                shard_of(&cap)
                            );
                            assert_eq!(
                                reply.body,
                                expected,
                                "object {:?} (shard {}) diverged after the cutover",
                                cap.object,
                                shard_of(&cap)
                            );
                            retries = 0;
                            index += 1;
                            current = None;
                        }
                    }
                } else {
                    if *clients_done.borrow() < clients || mig_done.borrow().is_none() {
                        // A timer-armed wait: a bare Idle with no
                        // deliveries pending would read as a stall.
                        return ActorPoll::IdleUntil(
                            verifier.endpoint().now() + Duration::from_millis(5),
                        );
                    }
                    if index == registry.borrow().len() {
                        return ActorPoll::Done;
                    }
                    let (cap, _) = registry.borrow()[index].clone();
                    current = Some(verifier.trans_async(
                        source_port(),
                        encode_request(
                            &cap,
                            ops::READ,
                            wire::Writer::new().u64(0).u32(64).finish(),
                        ),
                    ));
                }
            });
        }

        exec.run()
            .unwrap_or_else(|stall| panic!("scenario stalled: {stall}"));
    }));
    if let Err(panic) = run {
        net.obs()
            .dump(&format!("migration scenario seed {seed:#x} panicked"));
        resume_unwind(panic);
    }

    // Terminal-state invariants: commit and abort are the only ends.
    let migration = mig_done
        .borrow()
        .expect("migration reached a terminal state");
    let src = src_pump.service().migrator().unwrap();
    let tgt = tgt_pump.service().migrator().unwrap();
    match migration {
        Ok(_) => {
            assert!(
                !src.owned_shards().contains(&shard),
                "a committed migration leaves the source shard released"
            );
            assert!(
                tgt.owned_shards().contains(&shard),
                "a committed migration leaves the target owning the shard"
            );
            assert_eq!(
                src.forward_target(shard),
                Some(target_port()),
                "the source must forward the released shard"
            );
        }
        Err(_) => {
            assert!(
                src.owned_shards().contains(&shard),
                "an aborted migration leaves the source serving, untouched"
            );
            assert_eq!(src.forward_target(shard), None);
        }
    }
    let (completed, timeouts) = *stats.borrow();
    assert_eq!(
        completed,
        (clients * ops_per_client) as u64,
        "every client op must complete once the fault windows pass"
    );
    assert_eq!(registry.borrow().len() as u64, completed);

    MigReport {
        fingerprint: net.sim_fingerprint(),
        counters: net.sim_fault_counters(),
        completed,
        timeouts,
        migration,
        log: if record_log {
            net.sim_take_log()
        } else {
            Vec::new()
        },
    }
}

fn hammer_one(seed: u64) {
    let result = catch_unwind(AssertUnwindSafe(|| {
        run_migration_scenario(seed, FaultPlan::from_seed(seed), 4, 3, false)
    }));
    match result {
        Ok(report) => {
            println!(
                "seed {seed:#x}: {} ({} tx, {} retried, {} chunks, faults {:?})",
                match report.migration {
                    Ok(_) => "committed",
                    Err(_) => "aborted",
                },
                report.completed,
                report.timeouts,
                report.migration.map(|s| s.chunks).unwrap_or(0),
                report.counters
            );
        }
        Err(panic) => {
            eprintln!(
                "\nseed {seed} FAILED — replay with:\n  \
                 SIM_MIG_SEED={seed} cargo test --release --test sim_migration \
                 migration_hammer -- --nocapture\n"
            );
            resume_unwind(panic);
        }
    }
}

/// The kill-during-migration hammer: N seeds, each a full scenario
/// under a seed-derived fault plan whose crash windows land on the
/// source, the target, the driver and the first clients.
#[test]
fn migration_hammer() {
    if let Some(seed) = env_u64("SIM_MIG_SEED") {
        hammer_one(seed);
        return;
    }
    let count = env_u64("SIM_MIG_SEEDS").unwrap_or(10);
    let shard = env_u64("SIM_SHARD").unwrap_or(0);
    for i in 0..count {
        hammer_one(MIG_SEED_BASE + shard * count + i);
    }
}

/// Two runs of one seed must be byte-identical — the event log, the
/// fingerprint, the fault counters *and the migration's outcome*.
#[test]
fn same_seed_migration_runs_are_byte_identical() {
    for seed in [MIG_SEED_BASE + 0x100, MIG_SEED_BASE + 0x101] {
        let a = run_migration_scenario(seed, FaultPlan::from_seed(seed), 3, 2, true);
        let b = run_migration_scenario(seed, FaultPlan::from_seed(seed), 3, 2, true);
        assert!(!a.log.is_empty(), "the scenario must generate traffic");
        assert_eq!(a.log, b.log, "event logs must match byte for byte");
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.counters, b.counters);
        assert_eq!(a.migration, b.migration, "the cutover must replay exactly");
        assert_eq!(a.timeouts, b.timeouts);
    }
}

/// A quiet plan must commit: full snapshot, cutover, forwarding — no
/// faults to hide behind.
#[test]
fn quiet_plan_commits_the_migration() {
    let report = run_migration_scenario(MIG_SEED_BASE + 0x200, FaultPlan::quiet(), 4, 3, false);
    let stats = report.migration.expect("no faults, no abort");
    assert!(stats.chunks >= 1);
    assert_eq!(report.timeouts, 0, "quiet plans drop nothing");
}

/// A crash window squarely over the **source** machine mid-migration:
/// the copy stalls with the machine (its driver shares the window via
/// fault target 2 living elsewhere — here we pin the window to the
/// source alone, so held/forwarded traffic and the transfer stream
/// both ride out the outage).
#[test]
fn source_crash_mid_migration_loses_nothing() {
    let plan = FaultPlan {
        crashes: vec![CrashWindow {
            victim: 0,
            from: Duration::from_millis(8),
            until: Duration::from_millis(60),
        }],
        ..FaultPlan::quiet()
    };
    let report = run_migration_scenario(MIG_SEED_BASE + 0x300, plan, 4, 3, false);
    assert!(report.counters.crash_dropped > 0, "the window must bite");
}

/// A crash window squarely over the **target** machine mid-migration:
/// staged chunks survive the outage (state survives a sim crash; only
/// frames die), so the transfer resumes by retransmission — or aborts
/// cleanly if the window outlasts the driver's patience. Both ends are
/// legal; losing a client's object is not.
#[test]
fn target_crash_mid_migration_loses_nothing() {
    let plan = FaultPlan {
        crashes: vec![CrashWindow {
            victim: 1,
            from: Duration::from_millis(8),
            until: Duration::from_millis(60),
        }],
        ..FaultPlan::quiet()
    };
    let report = run_migration_scenario(MIG_SEED_BASE + 0x301, plan, 4, 3, false);
    assert!(report.counters.crash_dropped > 0, "the window must bite");
}
