//! The seeded fault-plan hammer: cluster, failover, port-recycling and
//! lease invariants under deterministic adversarial schedules.
//!
//! Every scenario is a pure function of a `u64` seed. When a seed
//! fails, the harness prints a one-line replay command; running it
//! reproduces the exact schedule, byte for byte.
//!
//! Environment knobs (all optional):
//! - `SIM_SEED=<n>`     — run exactly one seed (replay mode).
//! - `SIM_SEEDS=<n>`    — how many seeds the hammer sweeps (default 25).
//! - `SIM_SHARDS=<n>` / `SIM_SHARD=<i>` — split a sweep across CI jobs;
//!   shard `i` runs seeds `base + i*SIM_SEEDS ..`, so every shard's
//!   seed range is distinct.

mod sim_support;

use amoeba::prelude::FaultPlan;
use proptest::prelude::*;
use sim_support::run_scenario;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Base of the hammer's seed space. Distinct from the proptest and
/// regression seeds so CI shards never re-run a seed another job ran.
const HAMMER_SEED_BASE: u64 = 0x5EED_0000;

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

fn hammer_one(seed: u64) {
    let result = catch_unwind(AssertUnwindSafe(|| {
        run_scenario(seed, FaultPlan::from_seed(seed), 4, 3, false)
    }));
    match result {
        Ok(report) => {
            println!(
                "seed {seed:#x}: ok ({} tx, {} retried, faults {:?})",
                report.completed, report.timeouts, report.counters
            );
        }
        Err(panic) => {
            eprintln!(
                "\nseed {seed} FAILED — replay with:\n  \
                 SIM_SEED={seed} cargo test --release --test sim_fault_plans \
                 seed_hammer -- --nocapture\n"
            );
            resume_unwind(panic);
        }
    }
}

/// The invariant hammer: N seeds, each a full two-wave echo-cluster
/// scenario under a seed-derived fault plan. CI runs this with
/// `SIM_SEEDS=250` across 2 shards for the 500-seed bar.
#[test]
fn seed_hammer() {
    if let Some(seed) = env_u64("SIM_SEED") {
        hammer_one(seed);
        return;
    }
    let count = env_u64("SIM_SEEDS").unwrap_or(25);
    let shard = env_u64("SIM_SHARD").unwrap_or(0);
    for i in 0..count {
        hammer_one(HAMMER_SEED_BASE + shard * count + i);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Two runs of one seed must be **byte-identical**: same event-log
    /// bytes, same fingerprint, same fault counters. This is the
    /// determinism contract that makes a printed failing seed an exact
    /// replay, not a hint.
    #[test]
    fn same_seed_runs_are_byte_identical(seed in any::<u64>()) {
        let a = run_scenario(seed, FaultPlan::from_seed(seed), 2, 2, true);
        let b = run_scenario(seed, FaultPlan::from_seed(seed), 2, 2, true);
        prop_assert!(!a.log.is_empty(), "the scenario must generate traffic");
        prop_assert_eq!(a.log, b.log, "event logs must match byte for byte");
        prop_assert_eq!(a.fingerprint, b.fingerprint);
        prop_assert_eq!(a.counters, b.counters);
        prop_assert_eq!(a.timeouts, b.timeouts);
        // Determinism reaches past the delivery schedule into every
        // observable aggregate: the traffic counters and the metrics
        // registry (completions, retransmits, latency histogram) must
        // replay byte-identically too.
        prop_assert_eq!(a.stats, b.stats, "traffic counters must replay exactly");
        prop_assert_eq!(a.metrics, b.metrics, "metrics snapshots must replay exactly");
    }
}

/// Distinct seeds must explore distinct schedules — a constant
/// schedule would pass the identity test above while testing nothing.
#[test]
fn distinct_seeds_diverge() {
    let a = run_scenario(0xD1FF_0001, FaultPlan::from_seed(0xD1FF_0001), 2, 2, true);
    let b = run_scenario(0xD1FF_0002, FaultPlan::from_seed(0xD1FF_0002), 2, 2, true);
    assert_ne!(a.log, b.log, "distinct seeds must diverge");
    assert_ne!(a.fingerprint, b.fingerprint);
}

/// Pinned regression for the PR 5/6 reply-port recycling bug: an
/// untargeted request fans out to every replica, the client consumes
/// one reply, and the straggler replies must never surface through a
/// recycled (or broker-leased) reply port as another transaction's
/// answer. This seed's plan was chosen because its run provably
/// exercises the dangerous machinery — duplicated frames *and* crash
/// windows (late retransmissions + restarted machines serving stale
/// backlog), the exact straggler-alias schedule. The scenario's body
/// canary panics on any aliased reply; determinism makes this a
/// permanent replay of that historical schedule shape.
#[test]
fn known_bad_seed_replays_deterministically() {
    const PINNED: u64 = KNOWN_BAD_SEED;
    let plan = FaultPlan::from_seed(PINNED);
    let a = run_scenario(PINNED, plan.clone(), 4, 3, true);
    assert!(
        a.counters.duplicated > 0,
        "pinned seed must inject duplicate frames (stragglers), got {:?}",
        a.counters
    );
    assert!(
        a.counters.crash_dropped > 0,
        "pinned seed must include a crash window mid-traffic, got {:?}",
        a.counters
    );
    let b = run_scenario(PINNED, plan, 4, 3, true);
    assert_eq!(a.fingerprint, b.fingerprint, "the replay must be exact");
    assert_eq!(a.log, b.log);
}

/// The seed pinned by `known_bad_seed_replays_deterministically`:
/// found by sweeping the hammer space for a plan that injects both
/// duplicate frames and a crash window into live traffic.
const KNOWN_BAD_SEED: u64 = 0x5EED_0035;
