//! Moderate-scale workloads: many servers, many objects, many clients —
//! the sizes are chosen to finish in seconds while still exercising the
//! slab reuse, cache and isolation paths that small tests never reach.

use amoeba::prelude::*;

#[test]
fn eight_file_servers_are_cryptographically_isolated() {
    // Capabilities from one server must be rejected by every other,
    // even with identical object numbers and scheme.
    let net = Network::new();
    let runners: Vec<ServiceRunner> = (0..8)
        .map(|_| ServiceRunner::spawn_open(&net, FlatFsServer::new(SchemeKind::Commutative)))
        .collect();
    let clients: Vec<FlatFsClient> = runners
        .iter()
        .map(|r| FlatFsClient::with_service(ServiceClient::open(&net), r.put_port()))
        .collect();

    // Create file 0 on every server.
    let caps: Vec<Capability> = clients.iter().map(|c| c.create().unwrap()).collect();
    for (i, c) in clients.iter().enumerate() {
        c.write(&caps[i], 0, format!("server {i}").as_bytes()).unwrap();
    }

    // Same object number everywhere; transplanting the check field of
    // server i's capability onto server j's port must fail.
    for i in 0..8 {
        for j in 0..8 {
            if i == j {
                continue;
            }
            let cross = Capability::new(
                caps[j].port,
                caps[i].object,
                caps[i].rights,
                caps[i].check,
            );
            assert!(
                clients[j].read(&cross, 0, 8).is_err(),
                "server {j} accepted server {i}'s check field"
            );
        }
    }
    for r in runners {
        r.stop();
    }
}

#[test]
fn thousand_objects_with_slab_reuse() {
    let net = Network::new();
    let runner = ServiceRunner::spawn_open(&net, FlatFsServer::new(SchemeKind::OneWay));
    let fs = FlatFsClient::with_service(ServiceClient::open(&net), runner.put_port());

    // Create 500, destroy every other one, create 500 more: slots are
    // reused and every surviving capability still maps to its own data.
    let mut caps = Vec::new();
    for i in 0..500u32 {
        let cap = fs.create().unwrap();
        fs.write(&cap, 0, format!("gen1-{i}").as_bytes()).unwrap();
        caps.push((cap, format!("gen1-{i}")));
    }
    let mut survivors = Vec::new();
    for (i, (cap, tag)) in caps.into_iter().enumerate() {
        if i % 2 == 0 {
            fs.destroy(&cap).unwrap();
        } else {
            survivors.push((cap, tag));
        }
    }
    for i in 0..500u32 {
        let cap = fs.create().unwrap();
        fs.write(&cap, 0, format!("gen2-{i}").as_bytes()).unwrap();
        survivors.push((cap, format!("gen2-{i}")));
    }
    for (cap, tag) in &survivors {
        assert_eq!(&fs.read(cap, 0, 32).unwrap(), tag.as_bytes());
    }
    runner.stop();
}

#[test]
fn wide_directory_with_hundreds_of_entries() {
    let net = Network::new();
    let runner = ServiceRunner::spawn_open(&net, DirServer::new(SchemeKind::Commutative));
    let dirs = DirClient::with_service(ServiceClient::open(&net), runner.put_port());
    let d = dirs.create_dir().unwrap();
    let target = dirs.create_dir().unwrap();

    let n = 400;
    for i in 0..n {
        dirs.enter(&d, &format!("entry-{i:04}"), &target).unwrap();
    }
    let listing = dirs.list(&d).unwrap();
    assert_eq!(listing.len(), n);
    assert_eq!(listing[0], "entry-0000");
    assert_eq!(listing[n - 1], format!("entry-{:04}", n - 1));
    // Spot lookups stay correct at width.
    for i in [0usize, 199, 399] {
        assert_eq!(dirs.lookup(&d, &format!("entry-{i:04}")).unwrap(), target);
    }
    runner.stop();
}

#[test]
fn deep_version_history_stays_consistent() {
    let net = Network::new();
    let runner = ServiceRunner::spawn_open(&net, MvfsServer::new(SchemeKind::OneWay));
    let fs = MvfsClient::with_service(ServiceClient::open(&net), runner.put_port());
    let file = fs.create_file().unwrap();

    // 50 committed generations; keep every 10th version capability and
    // verify all snapshots afterwards.
    let mut snapshots = Vec::new();
    for gen in 0..50u32 {
        let v = fs.new_version(&file).unwrap();
        fs.write_page(&v, 0, format!("generation {gen}").as_bytes())
            .unwrap();
        fs.commit(&v).unwrap();
        if gen % 10 == 0 {
            snapshots.push((v, gen));
        }
    }
    assert_eq!(fs.file_info(&file).unwrap().committed_versions, 50);
    for (v, gen) in &snapshots {
        let page = fs.read_page(v, 0).unwrap();
        let expect = format!("generation {gen}");
        assert_eq!(&page[..expect.len()], expect.as_bytes());
    }
    // Head is the last generation.
    let head = fs.read_page(&file, 0).unwrap();
    assert_eq!(&head[..13], b"generation 49");
    runner.stop();
}

#[test]
fn sixteen_concurrent_bank_clients_conserve_money() {
    let net = Network::new();
    let (server, treasury_rx) = BankServer::new(
        vec![Currency::convertible("dollar", 1)],
        SchemeKind::Commutative,
    );
    let runner = ServiceRunner::spawn_open(&net, server);
    let port = runner.put_port();
    let treasury = treasury_rx.recv().unwrap();
    let bank = BankClient::open(&net, port);

    let accounts: Vec<Capability> = (0..8).map(|_| bank.open_account().unwrap()).collect();
    let total = 8_000u64;
    for a in &accounts {
        bank.mint(&treasury, a, CurrencyId(0), total / 8).unwrap();
    }

    let mut handles = Vec::new();
    for t in 0..16usize {
        let net = net.clone();
        let accounts = accounts.clone();
        handles.push(std::thread::spawn(move || {
            let bank = BankClient::open(&net, port);
            for i in 0..50u64 {
                let from = &accounts[(t + i as usize) % 8];
                let to = &accounts[(t + i as usize + 3) % 8];
                let _ = bank.transfer(from, to, CurrencyId(0), (i % 7) + 1);
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    let sum: u64 = accounts
        .iter()
        .map(|a| bank.balance(a, CurrencyId(0)).unwrap())
        .sum();
    assert_eq!(sum, total, "money must be conserved under concurrency");
    runner.stop();
}
