//! Moderate-scale workloads: many servers, many objects, many clients —
//! the sizes are chosen to finish in seconds while still exercising the
//! slab reuse, cache and isolation paths that small tests never reach.

use amoeba::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

#[test]
fn eight_file_servers_are_cryptographically_isolated() {
    // Capabilities from one server must be rejected by every other,
    // even with identical object numbers and scheme.
    let net = Network::new();
    let runners: Vec<ServiceRunner> = (0..8)
        .map(|_| ServiceRunner::spawn_open(&net, FlatFsServer::new(SchemeKind::Commutative)))
        .collect();
    let clients: Vec<FlatFsClient> = runners
        .iter()
        .map(|r| FlatFsClient::with_service(ServiceClient::open(&net), r.put_port()))
        .collect();

    // Create file 0 on every server.
    let caps: Vec<Capability> = clients.iter().map(|c| c.create().unwrap()).collect();
    for (i, c) in clients.iter().enumerate() {
        c.write(&caps[i], 0, format!("server {i}").as_bytes())
            .unwrap();
    }

    // Same object number everywhere; transplanting the check field of
    // server i's capability onto server j's port must fail.
    for i in 0..8 {
        for j in 0..8 {
            if i == j {
                continue;
            }
            let cross =
                Capability::new(caps[j].port, caps[i].object, caps[i].rights, caps[i].check);
            assert!(
                clients[j].read(&cross, 0, 8).is_err(),
                "server {j} accepted server {i}'s check field"
            );
        }
    }
    for r in runners {
        r.stop();
    }
}

#[test]
fn thousand_objects_with_slab_reuse() {
    let net = Network::new();
    let runner = ServiceRunner::spawn_open(&net, FlatFsServer::new(SchemeKind::OneWay));
    let fs = FlatFsClient::with_service(ServiceClient::open(&net), runner.put_port());

    // Create 500, destroy every other one, create 500 more: slots are
    // reused and every surviving capability still maps to its own data.
    let mut caps = Vec::new();
    for i in 0..500u32 {
        let cap = fs.create().unwrap();
        fs.write(&cap, 0, format!("gen1-{i}").as_bytes()).unwrap();
        caps.push((cap, format!("gen1-{i}")));
    }
    let mut survivors = Vec::new();
    for (i, (cap, tag)) in caps.into_iter().enumerate() {
        if i % 2 == 0 {
            fs.destroy(&cap).unwrap();
        } else {
            survivors.push((cap, tag));
        }
    }
    for i in 0..500u32 {
        let cap = fs.create().unwrap();
        fs.write(&cap, 0, format!("gen2-{i}").as_bytes()).unwrap();
        survivors.push((cap, format!("gen2-{i}")));
    }
    for (cap, tag) in &survivors {
        assert_eq!(&fs.read(cap, 0, 32).unwrap(), tag.as_bytes());
    }
    runner.stop();
}

#[test]
fn wide_directory_with_hundreds_of_entries() {
    let net = Network::new();
    let runner = ServiceRunner::spawn_open(&net, DirServer::new(SchemeKind::Commutative));
    let dirs = DirClient::with_service(ServiceClient::open(&net), runner.put_port());
    let d = dirs.create_dir().unwrap();
    let target = dirs.create_dir().unwrap();

    let n = 400;
    for i in 0..n {
        dirs.enter(&d, &format!("entry-{i:04}"), &target).unwrap();
    }
    let listing = dirs.list(&d).unwrap();
    assert_eq!(listing.len(), n);
    assert_eq!(listing[0], "entry-0000");
    assert_eq!(listing[n - 1], format!("entry-{:04}", n - 1));
    // Spot lookups stay correct at width.
    for i in [0usize, 199, 399] {
        assert_eq!(dirs.lookup(&d, &format!("entry-{i:04}")).unwrap(), target);
    }
    runner.stop();
}

#[test]
fn deep_version_history_stays_consistent() {
    let net = Network::new();
    let runner = ServiceRunner::spawn_open(&net, MvfsServer::new(SchemeKind::OneWay));
    let fs = MvfsClient::with_service(ServiceClient::open(&net), runner.put_port());
    let file = fs.create_file().unwrap();

    // 50 committed generations; keep every 10th version capability and
    // verify all snapshots afterwards.
    let mut snapshots = Vec::new();
    for gen in 0..50u32 {
        let v = fs.new_version(&file).unwrap();
        fs.write_page(&v, 0, format!("generation {gen}").as_bytes())
            .unwrap();
        fs.commit(&v).unwrap();
        if gen % 10 == 0 {
            snapshots.push((v, gen));
        }
    }
    assert_eq!(fs.file_info(&file).unwrap().committed_versions, 50);
    for (v, gen) in &snapshots {
        let page = fs.read_page(v, 0).unwrap();
        let expect = format!("generation {gen}");
        assert_eq!(&page[..expect.len()], expect.as_bytes());
    }
    // Head is the last generation.
    let head = fs.read_page(&file, 0).unwrap();
    assert_eq!(&head[..13], b"generation 49");
    runner.stop();
}

#[test]
fn sixteen_concurrent_bank_clients_conserve_money() {
    let net = Network::new();
    let (server, treasury_rx) = BankServer::new(
        vec![Currency::convertible("dollar", 1)],
        SchemeKind::Commutative,
    );
    let runner = ServiceRunner::spawn_open(&net, server);
    let port = runner.put_port();
    let treasury = treasury_rx.recv().unwrap();
    let bank = BankClient::open(&net, port);

    let accounts: Vec<Capability> = (0..8).map(|_| bank.open_account().unwrap()).collect();
    let total = 8_000u64;
    for a in &accounts {
        bank.mint(&treasury, a, CurrencyId(0), total / 8).unwrap();
    }

    let mut handles = Vec::new();
    for t in 0..16usize {
        let net = net.clone();
        let accounts = accounts.clone();
        handles.push(std::thread::spawn(move || {
            let bank = BankClient::open(&net, port);
            for i in 0..50u64 {
                let from = &accounts[(t + i as usize) % 8];
                let to = &accounts[(t + i as usize + 3) % 8];
                let _ = bank.transfer(from, to, CurrencyId(0), (i % 7) + 1);
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    let sum: u64 = accounts
        .iter()
        .map(|a| bank.balance(a, CurrencyId(0)).unwrap())
        .sum();
    assert_eq!(sum, total, "money must be conserved under concurrency");
    runner.stop();
}

#[test]
fn worker_pool_hammer_keeps_capability_semantics() {
    // The tentpole test for the concurrent dispatch engine: many client
    // threads × one FlatFsServer with a 4-worker pool. Capability
    // checks, revocation and free-list reuse must all stay correct
    // while requests are claimed by arbitrary workers.
    const WORKERS: usize = 4;
    const CLIENTS: usize = 8;
    const ROUNDS: usize = 12;

    let net = Network::new();
    let runner = ServiceRunner::spawn_open_workers(
        &net,
        FlatFsServer::new(SchemeKind::Commutative),
        WORKERS,
    );
    assert_eq!(runner.workers(), WORKERS);
    let port = runner.put_port();
    let forged_rejections = Arc::new(AtomicU32::new(0));

    let mut handles = Vec::new();
    for t in 0..CLIENTS {
        let net = net.clone();
        let forged_rejections = Arc::clone(&forged_rejections);
        handles.push(std::thread::spawn(move || {
            let fs = FlatFsClient::open(&net, port);
            for round in 0..ROUNDS {
                // Create, write, read back: plain data-path integrity.
                let cap = fs.create().unwrap();
                let tag = format!("client-{t}-round-{round}");
                fs.write(&cap, 0, tag.as_bytes()).unwrap();
                assert_eq!(fs.read(&cap, 0, tag.len() as u32).unwrap(), tag.as_bytes());

                // Capability checks: a forged check field must be
                // rejected by whichever worker picks it up.
                let forged = cap.with_check(cap.check ^ 0x5A5A);
                match fs.read(&forged, 0, 4) {
                    Err(ClientError::Status(Status::Forged)) => {
                        forged_rejections.fetch_add(1, Ordering::Relaxed);
                    }
                    other => panic!("forged capability accepted or odd error: {other:?}"),
                }

                // Restriction + rights enforcement under contention.
                let ro = fs.service().restrict(&cap, Rights::READ).unwrap();
                assert!(fs.read(&ro, 0, 4).is_ok());
                assert!(matches!(
                    fs.write(&ro, 0, b"nope"),
                    Err(ClientError::Status(Status::RightsViolation))
                ));

                // Revocation: the old caps die, the fresh one lives.
                let fresh = fs.service().revoke(&cap).unwrap();
                assert!(matches!(
                    fs.read(&ro, 0, 1),
                    Err(ClientError::Status(Status::Forged))
                ));
                assert!(fs.read(&fresh, 0, 1).is_ok());

                // Delete every other round: exercises free-list reuse
                // across shards while other clients create.
                if round % 2 == 0 {
                    fs.destroy(&fresh).unwrap();
                    assert!(fs.size(&fresh).is_err(), "deleted file must be gone");
                } else {
                    assert_eq!(fs.size(&fresh).unwrap() as usize, tag.len());
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(
        forged_rejections.load(Ordering::Relaxed) as usize,
        CLIENTS * ROUNDS,
        "every forgery attempt must be rejected"
    );
    runner.stop();
}

#[test]
fn worker_pool_free_list_reuse_is_exclusive() {
    // Hammer create/destroy from many clients at once: a freed slot
    // must never be handed to two creations, and stale capabilities
    // must never validate against a recycled slot.
    const WORKERS: usize = 4;
    const CLIENTS: usize = 6;
    const ROUNDS: usize = 25;

    let net = Network::new();
    let runner =
        ServiceRunner::spawn_open_workers(&net, FlatFsServer::new(SchemeKind::OneWay), WORKERS);
    let port = runner.put_port();

    let mut handles = Vec::new();
    for t in 0..CLIENTS {
        let net = net.clone();
        handles.push(std::thread::spawn(move || {
            let fs = FlatFsClient::open(&net, port);
            let mut dead: Vec<Capability> = Vec::new();
            let mut live: Vec<(Capability, Vec<u8>)> = Vec::new();
            for round in 0..ROUNDS {
                let cap = fs.create().unwrap();
                let body = format!("{t}:{round}").into_bytes();
                fs.write(&cap, 0, &body).unwrap();
                if round % 3 == 0 {
                    fs.destroy(&cap).unwrap();
                    dead.push(cap);
                } else {
                    live.push((cap, body));
                }
            }
            // Every live file still holds exactly its own data …
            for (cap, body) in &live {
                assert_eq!(&fs.read(cap, 0, 64).unwrap(), body);
            }
            // … and every destroyed capability stays dead, even though
            // other clients have recycled those slots by now.
            for cap in &dead {
                assert!(
                    matches!(
                        fs.read(cap, 0, 1),
                        Err(ClientError::Status(Status::Forged))
                            | Err(ClientError::Status(Status::NoSuchObject))
                    ),
                    "stale capability validated against a recycled slot"
                );
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    runner.stop();
}
