//! Moderate-scale workloads: many servers, many objects, many clients —
//! the sizes are chosen to finish in seconds while still exercising the
//! slab reuse, cache and isolation paths that small tests never reach.

use amoeba::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

#[test]
fn eight_file_servers_are_cryptographically_isolated() {
    // Capabilities from one server must be rejected by every other,
    // even with identical object numbers and scheme.
    let net = Network::new();
    let runners: Vec<ServiceRunner> = (0..8)
        .map(|_| ServiceRunner::spawn_open(&net, FlatFsServer::new(SchemeKind::Commutative)))
        .collect();
    let clients: Vec<FlatFsClient> = runners
        .iter()
        .map(|r| FlatFsClient::with_service(ServiceClient::open(&net), r.put_port()))
        .collect();

    // Create file 0 on every server.
    let caps: Vec<Capability> = clients.iter().map(|c| c.create().unwrap()).collect();
    for (i, c) in clients.iter().enumerate() {
        c.write(&caps[i], 0, format!("server {i}").as_bytes())
            .unwrap();
    }

    // Same object number everywhere; transplanting the check field of
    // server i's capability onto server j's port must fail.
    for i in 0..8 {
        for j in 0..8 {
            if i == j {
                continue;
            }
            let cross =
                Capability::new(caps[j].port, caps[i].object, caps[i].rights, caps[i].check);
            assert!(
                clients[j].read(&cross, 0, 8).is_err(),
                "server {j} accepted server {i}'s check field"
            );
        }
    }
    for r in runners {
        r.stop();
    }
}

#[test]
fn thousand_objects_with_slab_reuse() {
    let net = Network::new();
    let runner = ServiceRunner::spawn_open(&net, FlatFsServer::new(SchemeKind::OneWay));
    let fs = FlatFsClient::with_service(ServiceClient::open(&net), runner.put_port());

    // Create 500, destroy every other one, create 500 more: slots are
    // reused and every surviving capability still maps to its own data.
    let mut caps = Vec::new();
    for i in 0..500u32 {
        let cap = fs.create().unwrap();
        fs.write(&cap, 0, format!("gen1-{i}").as_bytes()).unwrap();
        caps.push((cap, format!("gen1-{i}")));
    }
    let mut survivors = Vec::new();
    for (i, (cap, tag)) in caps.into_iter().enumerate() {
        if i % 2 == 0 {
            fs.destroy(&cap).unwrap();
        } else {
            survivors.push((cap, tag));
        }
    }
    for i in 0..500u32 {
        let cap = fs.create().unwrap();
        fs.write(&cap, 0, format!("gen2-{i}").as_bytes()).unwrap();
        survivors.push((cap, format!("gen2-{i}")));
    }
    for (cap, tag) in &survivors {
        assert_eq!(&fs.read(cap, 0, 32).unwrap(), tag.as_bytes());
    }
    runner.stop();
}

#[test]
fn wide_directory_with_hundreds_of_entries() {
    let net = Network::new();
    let runner = ServiceRunner::spawn_open(&net, DirServer::new(SchemeKind::Commutative));
    let dirs = DirClient::with_service(ServiceClient::open(&net), runner.put_port());
    let d = dirs.create_dir().unwrap();
    let target = dirs.create_dir().unwrap();

    let n = 400;
    for i in 0..n {
        dirs.enter(&d, &format!("entry-{i:04}"), &target).unwrap();
    }
    let listing = dirs.list(&d).unwrap();
    assert_eq!(listing.len(), n);
    assert_eq!(listing[0], "entry-0000");
    assert_eq!(listing[n - 1], format!("entry-{:04}", n - 1));
    // Spot lookups stay correct at width.
    for i in [0usize, 199, 399] {
        assert_eq!(dirs.lookup(&d, &format!("entry-{i:04}")).unwrap(), target);
    }
    runner.stop();
}

#[test]
fn deep_version_history_stays_consistent() {
    let net = Network::new();
    let runner = ServiceRunner::spawn_open(&net, MvfsServer::new(SchemeKind::OneWay));
    let fs = MvfsClient::with_service(ServiceClient::open(&net), runner.put_port());
    let file = fs.create_file().unwrap();

    // 50 committed generations; keep every 10th version capability and
    // verify all snapshots afterwards.
    let mut snapshots = Vec::new();
    for gen in 0..50u32 {
        let v = fs.new_version(&file).unwrap();
        fs.write_page(&v, 0, format!("generation {gen}").as_bytes())
            .unwrap();
        fs.commit(&v).unwrap();
        if gen % 10 == 0 {
            snapshots.push((v, gen));
        }
    }
    assert_eq!(fs.file_info(&file).unwrap().committed_versions, 50);
    for (v, gen) in &snapshots {
        let page = fs.read_page(v, 0).unwrap();
        let expect = format!("generation {gen}");
        assert_eq!(&page[..expect.len()], expect.as_bytes());
    }
    // Head is the last generation.
    let head = fs.read_page(&file, 0).unwrap();
    assert_eq!(&head[..13], b"generation 49");
    runner.stop();
}

#[test]
fn sixteen_concurrent_bank_clients_conserve_money() {
    let net = Network::new();
    let (server, treasury_rx) = BankServer::new(
        vec![Currency::convertible("dollar", 1)],
        SchemeKind::Commutative,
    );
    let runner = ServiceRunner::spawn_open(&net, server);
    let port = runner.put_port();
    let treasury = treasury_rx.recv().unwrap();
    let bank = BankClient::open(&net, port);

    let accounts: Vec<Capability> = (0..8).map(|_| bank.open_account().unwrap()).collect();
    let total = 8_000u64;
    for a in &accounts {
        bank.mint(&treasury, a, CurrencyId(0), total / 8).unwrap();
    }

    let mut handles = Vec::new();
    for t in 0..16usize {
        let net = net.clone();
        let accounts = accounts.clone();
        handles.push(std::thread::spawn(move || {
            let bank = BankClient::open(&net, port);
            for i in 0..50u64 {
                let from = &accounts[(t + i as usize) % 8];
                let to = &accounts[(t + i as usize + 3) % 8];
                let _ = bank.transfer(from, to, CurrencyId(0), (i % 7) + 1);
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    let sum: u64 = accounts
        .iter()
        .map(|a| bank.balance(a, CurrencyId(0)).unwrap())
        .sum();
    assert_eq!(sum, total, "money must be conserved under concurrency");
    runner.stop();
}

#[test]
fn worker_pool_hammer_keeps_capability_semantics() {
    // The tentpole test for the concurrent dispatch engine: many client
    // threads × one FlatFsServer with a 4-worker pool. Capability
    // checks, revocation and free-list reuse must all stay correct
    // while requests are claimed by arbitrary workers.
    const WORKERS: usize = 4;
    const CLIENTS: usize = 8;
    const ROUNDS: usize = 12;

    let net = Network::new();
    let runner = ServiceRunner::spawn_open_workers(
        &net,
        FlatFsServer::new(SchemeKind::Commutative),
        WORKERS,
    );
    assert_eq!(runner.workers(), WORKERS);
    let port = runner.put_port();
    let forged_rejections = Arc::new(AtomicU32::new(0));

    let mut handles = Vec::new();
    for t in 0..CLIENTS {
        let net = net.clone();
        let forged_rejections = Arc::clone(&forged_rejections);
        handles.push(std::thread::spawn(move || {
            let fs = FlatFsClient::open(&net, port);
            for round in 0..ROUNDS {
                // Create, write, read back: plain data-path integrity.
                let cap = fs.create().unwrap();
                let tag = format!("client-{t}-round-{round}");
                fs.write(&cap, 0, tag.as_bytes()).unwrap();
                assert_eq!(fs.read(&cap, 0, tag.len() as u32).unwrap(), tag.as_bytes());

                // Capability checks: a forged check field must be
                // rejected by whichever worker picks it up.
                let forged = cap.with_check(cap.check ^ 0x5A5A);
                match fs.read(&forged, 0, 4) {
                    Err(ClientError::Status(Status::Forged)) => {
                        forged_rejections.fetch_add(1, Ordering::Relaxed);
                    }
                    other => panic!("forged capability accepted or odd error: {other:?}"),
                }

                // Restriction + rights enforcement under contention.
                let ro = fs.service().restrict(&cap, Rights::READ).unwrap();
                assert!(fs.read(&ro, 0, 4).is_ok());
                assert!(matches!(
                    fs.write(&ro, 0, b"nope"),
                    Err(ClientError::Status(Status::RightsViolation))
                ));

                // Revocation: the old caps die, the fresh one lives.
                let fresh = fs.service().revoke(&cap).unwrap();
                assert!(matches!(
                    fs.read(&ro, 0, 1),
                    Err(ClientError::Status(Status::Forged))
                ));
                assert!(fs.read(&fresh, 0, 1).is_ok());

                // Delete every other round: exercises free-list reuse
                // across shards while other clients create.
                if round % 2 == 0 {
                    fs.destroy(&fresh).unwrap();
                    assert!(fs.size(&fresh).is_err(), "deleted file must be gone");
                } else {
                    assert_eq!(fs.size(&fresh).unwrap() as usize, tag.len());
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(
        forged_rejections.load(Ordering::Relaxed) as usize,
        CLIENTS * ROUNDS,
        "every forgery attempt must be rejected"
    );
    runner.stop();
}

#[test]
fn worker_pool_free_list_reuse_is_exclusive() {
    // Hammer create/destroy from many clients at once: a freed slot
    // must never be handed to two creations, and stale capabilities
    // must never validate against a recycled slot.
    const WORKERS: usize = 4;
    const CLIENTS: usize = 6;
    const ROUNDS: usize = 25;

    let net = Network::new();
    let runner =
        ServiceRunner::spawn_open_workers(&net, FlatFsServer::new(SchemeKind::OneWay), WORKERS);
    let port = runner.put_port();

    let mut handles = Vec::new();
    for t in 0..CLIENTS {
        let net = net.clone();
        handles.push(std::thread::spawn(move || {
            let fs = FlatFsClient::open(&net, port);
            let mut dead: Vec<Capability> = Vec::new();
            let mut live: Vec<(Capability, Vec<u8>)> = Vec::new();
            for round in 0..ROUNDS {
                let cap = fs.create().unwrap();
                let body = format!("{t}:{round}").into_bytes();
                fs.write(&cap, 0, &body).unwrap();
                if round % 3 == 0 {
                    fs.destroy(&cap).unwrap();
                    dead.push(cap);
                } else {
                    live.push((cap, body));
                }
            }
            // Every live file still holds exactly its own data …
            for (cap, body) in &live {
                assert_eq!(&fs.read(cap, 0, 64).unwrap(), body);
            }
            // … and every destroyed capability stays dead, even though
            // other clients have recycled those slots by now.
            for cap in &dead {
                assert!(
                    matches!(
                        fs.read(cap, 0, 1),
                        Err(ClientError::Status(Status::Forged))
                            | Err(ClientError::Status(Status::NoSuchObject))
                    ),
                    "stale capability validated against a recycled slot"
                );
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    runner.stop();
}

#[test]
fn mixed_batched_and_single_traffic_hammer() {
    // Four clients — two speaking single frames, two speaking batch
    // frames — hammer one 4-worker FlatFsServer at once. Batch entries
    // interleave with single requests in the same worker pool, and a
    // deliberately forged entry inside each batch must fail alone
    // without poisoning its neighbours.
    use amoeba::flatfs::ops;
    use amoeba::server::proto::null_cap;
    use amoeba::server::wire;
    use bytes::Bytes;

    const WORKERS: usize = 4;
    const ROUNDS: usize = 6;
    const BATCH: usize = 8;

    let net = Network::new();
    let runner = ServiceRunner::spawn_open_workers(
        &net,
        FlatFsServer::new(SchemeKind::Commutative),
        WORKERS,
    );
    let port = runner.put_port();

    let mut handles = Vec::new();
    for t in 0..2usize {
        // Batched clients.
        let net = net.clone();
        handles.push(std::thread::spawn(move || {
            let svc = ServiceClient::open(&net);
            for round in 0..ROUNDS {
                // One batch: create BATCH files.
                let creates = (0..BATCH)
                    .map(|_| (null_cap(), ops::CREATE, Bytes::new()))
                    .collect();
                let caps: Vec<Capability> = svc
                    .call_batch(port, creates)
                    .unwrap()
                    .into_iter()
                    .map(|r| wire::Reader::new(&r.unwrap()).cap().unwrap())
                    .collect();

                // One batch: write every file, with a forged-capability
                // entry slipped into the middle.
                let mut writes: Vec<(Capability, u32, Bytes)> = caps
                    .iter()
                    .enumerate()
                    .map(|(i, cap)| {
                        let tag = format!("b{t}-r{round}-f{i}");
                        (
                            *cap,
                            ops::WRITE,
                            wire::Writer::new().u64(0).bytes(tag.as_bytes()).finish(),
                        )
                    })
                    .collect();
                let forged = caps[0].with_check(caps[0].check ^ 0x0F0F);
                writes.insert(
                    BATCH / 2,
                    (
                        forged,
                        ops::WRITE,
                        wire::Writer::new().u64(0).bytes(b"evil").finish(),
                    ),
                );
                let results = svc.call_batch(port, writes).unwrap();
                for (i, r) in results.iter().enumerate() {
                    if i == BATCH / 2 {
                        assert!(
                            matches!(r, Err(ClientError::Status(Status::Forged))),
                            "forged batch entry must fail alone: {r:?}"
                        );
                    } else {
                        assert!(r.is_ok(), "honest entry {i} failed: {r:?}");
                    }
                }

                // One batch: read back and verify, then destroy.
                let reads = caps
                    .iter()
                    .map(|cap| (*cap, ops::READ, wire::Writer::new().u64(0).u32(64).finish()))
                    .collect();
                for (i, r) in svc.call_batch(port, reads).unwrap().into_iter().enumerate() {
                    let expect = format!("b{t}-r{round}-f{i}");
                    assert_eq!(&r.unwrap()[..], expect.as_bytes());
                }
                let destroys = caps
                    .iter()
                    .map(|cap| (*cap, ops::DESTROY, Bytes::new()))
                    .collect();
                for r in svc.call_batch(port, destroys).unwrap() {
                    r.unwrap();
                }
            }
        }));
    }
    for t in 0..2usize {
        // Single-frame clients, interleaving with the batches.
        let net = net.clone();
        handles.push(std::thread::spawn(move || {
            let fs = FlatFsClient::open(&net, port);
            for round in 0..ROUNDS * 2 {
                let cap = fs.create().unwrap();
                let tag = format!("s{t}-r{round}");
                fs.write(&cap, 0, tag.as_bytes()).unwrap();
                assert_eq!(fs.read(&cap, 0, 64).unwrap(), tag.as_bytes());
                fs.destroy(&cap).unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    runner.stop();
}

#[test]
fn batched_metered_create_is_4x_cheaper_in_frames() {
    // The acceptance bar for the batching tentpole: a 16-entry batched
    // metered-create round must put ≥ 4× fewer frames on the wire than
    // 16 sequential single-frame creates — counted with the net stats,
    // nested bank traffic included (the file server's embedded bank
    // client is pipelined, so the pool workers' payment transfers
    // coalesce too).
    use amoeba::flatfs::ops;
    use amoeba::rpc::{DemuxPolicy, PipelineConfig};
    use amoeba::server::proto::null_cap;
    use amoeba::server::wire;
    use std::time::Duration;

    const CALLS: usize = 16;

    // Virtual clock: the 2 ms hops and the 10 ms pipeline flush window
    // are timeline constructs, so the frame-count assertion no longer
    // rides on wall-clock margins (the wall version spent >100 ms of
    // real time just sleeping out hops).
    let net = Network::new_virtual();
    let (bank_server, treasury_rx) =
        BankServer::new(vec![Currency::convertible("dollar", 1)], SchemeKind::OneWay);
    let bank_runner = ServiceRunner::spawn_open(&net, bank_server);
    let bank_port = bank_runner.put_port();
    let treasury = treasury_rx.recv().unwrap();
    let bank = BankClient::open(&net, bank_port);
    let server_account = bank.open_account().unwrap();
    let wallet = bank.open_account().unwrap();
    bank.mint(&treasury, &wallet, CurrencyId(0), 10_000)
        .unwrap();

    // Frame counts are the assertion, so every client must be patient
    // enough that no retransmission ever distorts them (and under the
    // virtual clock a retransmitted non-idempotent create/destroy can
    // race its original through two pool workers).
    let patient = RpcConfig {
        timeout: Duration::from_secs(60),
        attempts: 2,
    };
    let quota_bank = BankClient::with_service(
        ServiceClient::with_client(
            Client::with_config(net.attach_open(), patient)
                .with_demux_policy(DemuxPolicy {
                    contended_tick: Duration::from_micros(250),
                    idle_tick: DemuxPolicy::DEFAULT_IDLE_TICK,
                })
                .with_pipeline(PipelineConfig {
                    flush_window: Duration::from_millis(10),
                    max_entries: 16,
                }),
        ),
        bank_port,
    );
    // One worker per batch entry and a generous flush window: all 16
    // payment transfers run concurrently and coalesce reliably even on
    // a loaded single-core CI host, keeping the ≥4× gate deterministic
    // (worst case needs only ≤7 coalesced bank rounds; this setup
    // produces 1-2).
    let runner = ServiceRunner::spawn_open_workers(
        &net,
        FlatFsServer::with_quota(
            SchemeKind::OneWay,
            QuotaPolicy {
                bank: quota_bank,
                server_account,
                currency: CurrencyId(0),
                price_per_kib: 1,
            },
        ),
        16,
    );
    let port = runner.put_port();
    let svc = ServiceClient::open_with_config(&net, patient);
    let fs = FlatFsClient::with_service(ServiceClient::open_with_config(&net, patient), port);
    net.set_latency(Duration::from_millis(2));

    // Unbatched: 16 sequential pre-paid creates.
    let before = net.stats().snapshot();
    let mut caps = Vec::new();
    for _ in 0..CALLS {
        caps.push(fs.create_paid(&wallet, 1).unwrap());
    }
    let unbatched = (net.stats().snapshot() - before).packets_sent;
    for cap in caps.drain(..) {
        fs.destroy(&cap).unwrap();
    }

    // Batched: the same 16 creates in one BATCH_REQUEST frame.
    let before = net.stats().snapshot();
    let create = wire::Writer::new().cap(&wallet).u64(1).finish();
    let calls = (0..CALLS)
        .map(|_| (null_cap(), ops::CREATE, create.clone()))
        .collect();
    let results = svc.call_batch(port, calls).unwrap();
    let batched = (net.stats().snapshot() - before).packets_sent;
    for r in results {
        let cap = wire::Reader::new(&r.unwrap()).cap().unwrap();
        fs.destroy(&cap).unwrap();
    }
    net.set_latency(Duration::ZERO);

    assert!(
        batched * 4 <= unbatched,
        "batched metered-create must be ≥4x cheaper in frames: batched={batched} unbatched={unbatched}"
    );
    runner.stop();
    bank_runner.stop();
}

#[test]
fn virtual_clock_metered_create_is_10x_faster_in_wall_clock() {
    // The reactor acceptance bar: the 2 ms-hop metered-create workload
    // under `VirtualClock` must complete ≥10× faster in *real*
    // wall-clock than under `WallClock`, with identical request counts
    // and reply contents. Each create costs ≥4 hops (client↔fs plus
    // the nested fs↔bank transfer) plus the destroy's 2: ≥160 ms of
    // modeled latency per 16-call round, which the wall clock must
    // sleep out and the virtual clock jumps. The virtual figure takes
    // the fastest of three runs: host-scheduling lag only ever slows a
    // virtual run down.
    const CALLS: usize = 16;
    let wall = amoeba_bench::metered_create_round(&Network::new(), CALLS);
    let virt = (0..3)
        .map(|_| amoeba_bench::metered_create_round(&Network::new_virtual(), CALLS))
        .min()
        .unwrap();
    assert!(
        virt * 10 <= wall,
        "virtual clock must beat wall clock ≥10× on the metered-create \
         round: wall={wall:?} virtual={virt:?}"
    );
}

#[test]
fn hot_path_codec_cuts_allocs_5x_and_oneway_evals_10x() {
    // The zero-copy-hot-path acceptance bar: the steady-state F-box
    // metered-create workload under the pooled codec (recycled frame
    // buffers, recycled reply ports, memoized F-box) must pay ≥5×
    // fewer buffer allocations per operation and ≥10× fewer one-way-
    // function evaluations per operation than the pre-PR codec (fresh
    // allocation per frame, fresh random reply port per transaction,
    // F recomputed per packet). Wire bytes are identical in both modes
    // — `documented_example_frames` and the batch-frame proptests pin
    // that — so the comparison isolates codec cost. Counters are
    // per-fleet (one shared BufPool, per-box F counters), so
    // concurrent tests in this binary cannot pollute the measurement.
    const WARMUP: usize = 8;
    const OPS: usize = 32;

    let legacy = amoeba_bench::hot_path_round(&Network::new_virtual(), true, WARMUP, OPS);
    // The fast path runs with the flight recorder and metrics registry
    // live: the observability layer must not cost the hot path its
    // alloc/lock budget even when *enabled* (the disabled path has its
    // own gate in `tests/obs_hotpath.rs`).
    let fast_net = Network::new_virtual();
    fast_net.obs().enable();
    let fast = amoeba_bench::hot_path_round(&fast_net, false, WARMUP, OPS);

    assert_eq!(legacy.ops, fast.ops);
    assert!(
        legacy.fresh_allocs >= 5 * fast.fresh_allocs.max(1),
        "pooled codec must cut allocs/op ≥5×: legacy={} fast={} (per op: {:.2} vs {:.2})",
        legacy.fresh_allocs,
        fast.fresh_allocs,
        legacy.allocs_per_op(),
        fast.allocs_per_op(),
    );
    assert!(
        legacy.oneway_evals >= 10 * fast.oneway_evals.max(1),
        "memoized F-box must cut oneway evals/op ≥10×: legacy={} fast={} (per op: {:.2} vs {:.2})",
        legacy.oneway_evals,
        fast.oneway_evals,
        legacy.oneway_per_op(),
        fast.oneway_per_op(),
    );
    // Same workload, same protocol: the fast path must not change what
    // goes on the wire (modulo retransmission jitter).
    assert!(
        fast.frames <= legacy.frames + legacy.ops,
        "the fast path must not inflate wire traffic: legacy={} fast={}",
        legacy.frames,
        fast.frames,
    );
    // The lock-free demux bar: once warm, a transaction takes zero
    // fleet-metered hot-mutex acquisitions — the slot table, pooled
    // mailboxes and thread-local buffer caches leave nothing to lock.
    // (The meter covers the fleet's shared BufPool spill queues, demux
    // overflow, batch accumulators and the lease broker; channel and
    // simulator internals are out of scope — see `amoeba_net::sync`.)
    assert_eq!(
        fast.hot_locks,
        0,
        "steady-state transactions must be lock-free: {} hot-lock \
         acquisitions over {} ops ({:.2}/op)",
        fast.hot_locks,
        fast.ops,
        fast.locks_per_op(),
    );
}

#[test]
fn reactor_pool_drives_64_services_on_4_threads_through_the_hammer() {
    // The spawn_reactor acceptance bar: 64 services multiplexed onto 4
    // driver threads survive the scale hammer — concurrent clients
    // spraying create/write/read/destroy over every port — without
    // deadlock and with full capability semantics.
    const SERVICES: usize = 64;
    const DRIVERS: usize = 4;
    const CLIENTS: usize = 8;
    const ROUNDS: usize = 24;

    let net = Network::new();
    let services: Vec<Box<dyn Service>> = (0..SERVICES)
        .map(|_| Box::new(FlatFsServer::new(SchemeKind::Commutative)) as Box<dyn Service>)
        .collect();
    let pool = ServiceRunner::spawn_reactor(&net, services, DRIVERS);
    assert_eq!(pool.services(), SERVICES);
    assert_eq!(pool.drivers(), DRIVERS);
    let ports = pool.put_ports().to_vec();

    let mut handles = Vec::new();
    for t in 0..CLIENTS {
        let net = net.clone();
        let ports = ports.clone();
        handles.push(std::thread::spawn(move || {
            let fs_clients: Vec<FlatFsClient> =
                ports.iter().map(|&p| FlatFsClient::open(&net, p)).collect();
            for round in 0..ROUNDS {
                // Every client walks a different stride over the 64
                // ports, so all services see traffic from several
                // clients at once.
                let fs = &fs_clients[(t * 7 + round * 13) % ports.len()];
                let cap = fs.create().unwrap();
                let tag = format!("c{t}-r{round}");
                fs.write(&cap, 0, tag.as_bytes()).unwrap();
                assert_eq!(fs.read(&cap, 0, 32).unwrap(), tag.as_bytes());

                // Capability checks still hold under the driver pool.
                let forged = cap.with_check(cap.check ^ 0xA5A5);
                assert!(matches!(
                    fs.read(&forged, 0, 1),
                    Err(ClientError::Status(Status::Forged))
                ));
                fs.destroy(&cap).unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    pool.stop();
}
