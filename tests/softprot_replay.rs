//! Experiment E5 — §2.4 software protection over the real simulated
//! network: matrix-keyed sealing, unforgeable source addresses, replay
//! defeat, and the capability caches.

use amoeba::prelude::*;
use amoeba::softprot::matrix::SealError;
use bytes::Bytes;
use rand::SeedableRng;

/// Builds a 3-machine open network (client, server, intruder) with a
/// fully populated key matrix.
fn world() -> (Network, Endpoint, Endpoint, Endpoint, KeyMatrix) {
    let net = Network::new();
    let client = net.attach_open();
    let server = net.attach_open();
    let intruder = net.attach_open();
    let mut rng = rand::rngs::StdRng::seed_from_u64(2024);
    let matrix = KeyMatrix::random(&[client.id(), server.id(), intruder.id()], &mut rng);
    (net, client, server, intruder, matrix)
}

fn a_capability() -> Capability {
    Capability::new(
        Port::new(0xF11E).unwrap(),
        ObjectNum::new(44).unwrap(),
        Rights::READ | Rights::WRITE,
        0x0123_4567_89AB,
    )
}

#[test]
fn sealed_capability_travels_and_unseals_by_source_address() {
    let (_net, client, server, _intruder, matrix) = world();
    let client_sealer = CapSealer::new(matrix.view_for(client.id()));
    let server_sealer = CapSealer::new(matrix.view_for(server.id()));

    let port = Port::new(0x99).unwrap();
    server.claim(port);

    // Client seals the capability for the server and sends it.
    let sealed = client_sealer.seal(&a_capability(), server.id()).unwrap();
    client.send(
        Header::to(port),
        Bytes::copy_from_slice(&sealed.0.to_be_bytes()),
    );

    // Server receives; the packet's source is stamped by the network.
    let pkt = server.recv().unwrap();
    assert_eq!(pkt.source, client.id(), "source address is authoritative");
    let sealed_rx = SealedCap(u128::from_be_bytes(pkt.payload[..16].try_into().unwrap()));
    let cap = server_sealer.unseal(sealed_rx, pkt.source).unwrap();
    assert_eq!(cap, a_capability());
}

#[test]
fn replay_from_intruder_machine_fails() {
    let (net, client, server, intruder, matrix) = world();
    let client_sealer = CapSealer::new(matrix.view_for(client.id()));
    let server_sealer = CapSealer::new(matrix.view_for(server.id()));

    let port = Port::new(0x99).unwrap();
    server.claim(port);
    let wire = net.tap();

    // Honest transmission (captured by the wiretap).
    let sealed = client_sealer.seal(&a_capability(), server.id()).unwrap();
    client.send(
        Header::to(port),
        Bytes::copy_from_slice(&sealed.0.to_be_bytes()),
    );
    let _ = server.recv().unwrap();
    let captured = wire.recv().unwrap();

    // The intruder replays the captured payload VERBATIM. The network
    // stamps the intruder's own source address — that is the one thing
    // it cannot forge.
    intruder.send(Header::to(port), captured.payload.clone());
    let replayed = server.recv().unwrap();
    assert_eq!(replayed.source, intruder.id());
    let sealed_rx = SealedCap(u128::from_be_bytes(
        replayed.payload[..16].try_into().unwrap(),
    ));
    match server_sealer.unseal(sealed_rx, replayed.source) {
        Err(SealError::Garbage) => {} // decryption nonsense — typical
        Ok(cap) => assert_ne!(
            cap,
            a_capability(),
            "replay must never recover the real capability"
        ),
        Err(SealError::NoKey) => panic!("matrix is fully populated"),
    }
}

#[test]
fn wiretapped_capability_is_ciphertext() {
    let (net, client, server, _intruder, matrix) = world();
    let client_sealer = CapSealer::new(matrix.view_for(client.id()));
    let port = Port::new(0x99).unwrap();
    server.claim(port);
    let wire = net.tap();

    let plain = a_capability();
    let sealed = client_sealer.seal(&plain, server.id()).unwrap();
    client.send(
        Header::to(port),
        Bytes::copy_from_slice(&sealed.0.to_be_bytes()),
    );
    let captured = wire.recv().unwrap();
    assert_ne!(
        &captured.payload[..16],
        &plain.encode()[..],
        "the capability must not cross the wire in the clear"
    );
}

#[test]
fn caches_avoid_repeated_des_runs() {
    let (_net, client, server, _intruder, matrix) = world();
    let client_sealer = CapSealer::new(matrix.view_for(client.id()));
    let server_sealer = CapSealer::new(matrix.view_for(server.id()));

    let cap = a_capability();
    let sealed = client_sealer.seal(&cap, server.id()).unwrap();
    for _ in 0..99 {
        client_sealer.seal(&cap, server.id()).unwrap();
    }
    let cs = client_sealer.cache_stats();
    assert_eq!((cs.hits, cs.misses), (99, 1));

    for _ in 0..100 {
        server_sealer.unseal(sealed, client.id()).unwrap();
    }
    let ss = server_sealer.cache_stats();
    assert_eq!((ss.hits, ss.misses), (99, 1));
}

#[test]
fn keys_from_handshake_plug_into_the_sealer() {
    // End-to-end §2.4: establish keys with the public-key handshake,
    // install them in both parties' matrix views, then seal/unseal.
    let (_net, client, server, _intruder, _matrix) = world();
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);

    let boot = ServerBoot::new(Port::new(0xF00D).unwrap(), &mut rng);
    let (session, keyreq) = ClientSession::start(boot.announcement(), &mut rng);
    let (keyrep, k_cs, k_sc) = boot.handle_keyreq(&keyreq, &mut rng).unwrap();
    let k_reverse = session.finish(&keyrep).unwrap();

    let client_sealer = CapSealer::new(MachineKeysBuilder::client(
        client.id(),
        server.id(),
        session.client_key(),
        k_reverse,
    ));
    let server_sealer = CapSealer::new(MachineKeysBuilder::server(
        server.id(),
        client.id(),
        k_cs,
        k_sc,
    ));

    let sealed = client_sealer.seal(&a_capability(), server.id()).unwrap();
    assert_eq!(
        server_sealer.unseal(sealed, client.id()).unwrap(),
        a_capability()
    );
}

/// Small helper to build per-party key views from handshake output.
struct MachineKeysBuilder;

impl MachineKeysBuilder {
    fn client(
        me: MachineId,
        server: MachineId,
        k_send: u64,
        k_recv: u64,
    ) -> amoeba::softprot::MachineKeys {
        let mut keys = amoeba::softprot::MachineKeys::empty(me);
        keys.learn_send_key(server, k_send);
        keys.learn_recv_key(server, k_recv);
        keys
    }

    fn server(
        me: MachineId,
        client: MachineId,
        k_recv: u64,
        k_send: u64,
    ) -> amoeba::softprot::MachineKeys {
        let mut keys = amoeba::softprot::MachineKeys::empty(me);
        keys.learn_recv_key(client, k_recv);
        keys.learn_send_key(client, k_send);
        keys
    }
}
