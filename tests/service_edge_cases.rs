//! Edge cases across every service, exercised through the public API:
//! degenerate sizes, wrong-kind capabilities, deleted objects, identity
//! operations, and the standard command set on every server.

use amoeba::prelude::*;
use bytes::Bytes;

// ---------------------------------------------------------------------
// Standard commands work on every service
// ---------------------------------------------------------------------

#[test]
fn std_info_restrict_revoke_on_every_service() {
    let net = Network::new();

    // One object per service, then the generic STD_ ops on each.
    let fs_runner = ServiceRunner::spawn_open(&net, FlatFsServer::new(SchemeKind::Commutative));
    let dir_runner = ServiceRunner::spawn_open(&net, DirServer::new(SchemeKind::Commutative));
    let mem_runner = ServiceRunner::spawn_open(&net, MemServer::new(SchemeKind::Commutative));
    let mvfs_runner = ServiceRunner::spawn_open(&net, MvfsServer::new(SchemeKind::Commutative));

    let svc = ServiceClient::open(&net);
    let fs = FlatFsClient::with_service(ServiceClient::open(&net), fs_runner.put_port());
    let dirs = DirClient::with_service(ServiceClient::open(&net), dir_runner.put_port());
    let mem = MemClient::with_service(ServiceClient::open(&net), mem_runner.put_port());
    let mvfs = MvfsClient::with_service(ServiceClient::open(&net), mvfs_runner.put_port());

    let caps = [
        fs.create().unwrap(),
        dirs.create_dir().unwrap(),
        mem.create_segment(64).unwrap(),
        mvfs.create_file().unwrap(),
    ];
    for cap in caps {
        assert_eq!(svc.info(&cap).unwrap(), Rights::ALL);
        let ro = svc.restrict(&cap, Rights::READ).unwrap();
        assert_eq!(svc.info(&ro).unwrap(), Rights::READ);
        let fresh = svc.revoke(&cap).unwrap();
        assert!(svc.info(&cap).is_err(), "old capability dead");
        assert!(svc.info(&ro).is_err(), "restricted copy dead");
        assert_eq!(svc.info(&fresh).unwrap(), Rights::ALL);
    }

    fs_runner.stop();
    dir_runner.stop();
    mem_runner.stop();
    mvfs_runner.stop();
}

// ---------------------------------------------------------------------
// Degenerate sizes
// ---------------------------------------------------------------------

#[test]
fn zero_length_operations() {
    let net = Network::new();
    let runner = ServiceRunner::spawn_open(&net, FlatFsServer::new(SchemeKind::OneWay));
    let fs = FlatFsClient::with_service(ServiceClient::open(&net), runner.put_port());

    let cap = fs.create().unwrap();
    // Zero-length write at offset 0 of an empty file: size stays 0.
    assert_eq!(fs.write(&cap, 0, b"").unwrap(), 0);
    // Zero-length read anywhere: empty.
    assert!(fs.read(&cap, 0, 0).unwrap().is_empty());
    assert!(fs.read(&cap, 10_000, 0).unwrap().is_empty());
    // Zero-length write at a far offset extends with zeros (POSIX-ish:
    // the write's end defines the size).
    assert_eq!(fs.write(&cap, 100, b"").unwrap(), 100);
    assert_eq!(fs.size(&cap).unwrap(), 100);
    runner.stop();
}

#[test]
fn zero_sized_segment_and_empty_process() {
    let net = Network::new();
    let runner = ServiceRunner::spawn_open(&net, MemServer::new(SchemeKind::Simple));
    let mem = MemClient::with_service(ServiceClient::open(&net), runner.put_port());

    let seg = mem.create_segment(0).unwrap();
    assert_eq!(mem.size(&seg).unwrap(), 0);
    assert!(mem.read(&seg, 0, 0).unwrap().is_empty());
    assert!(matches!(
        mem.read(&seg, 0, 1).unwrap_err(),
        ClientError::Status(Status::OutOfRange)
    ));

    // A process with zero segments is legal (weird, but nothing in the
    // model forbids it) and has a working lifecycle.
    let p = mem.make_process(&[]).unwrap();
    mem.start(&p).unwrap();
    mem.kill(&p).unwrap();
    runner.stop();
}

// ---------------------------------------------------------------------
// Wrong-kind capabilities
// ---------------------------------------------------------------------

#[test]
fn file_capability_presented_to_directory_ops() {
    let net = Network::new();
    let dir_runner = ServiceRunner::spawn_open(&net, DirServer::new(SchemeKind::OneWay));
    let dirs = DirClient::with_service(ServiceClient::open(&net), dir_runner.put_port());

    let d = dirs.create_dir().unwrap();
    // A *directory* capability with its port rewritten toward the same
    // server but a bogus object: must fail cleanly, not hang or panic.
    let phantom = Capability::new(d.port, ObjectNum::new(12345).unwrap(), d.rights, d.check);
    assert!(matches!(
        dirs.lookup(&phantom, "x").unwrap_err(),
        ClientError::Status(Status::NoSuchObject) | ClientError::Status(Status::Forged)
    ));
    dir_runner.stop();
}

#[test]
fn mvfs_kind_confusion_rejected() {
    let net = Network::new();
    let runner = ServiceRunner::spawn_open(&net, MvfsServer::new(SchemeKind::Commutative));
    let fs = MvfsClient::with_service(ServiceClient::open(&net), runner.put_port());

    let file = fs.create_file().unwrap();
    let version = fs.new_version(&file).unwrap();

    // Deriving a version *from a version* is refused.
    assert_eq!(
        fs.new_version(&version).unwrap_err(),
        ClientError::Status(Status::BadRequest)
    );
    // Writing a page of a *file* capability is refused.
    assert_eq!(
        fs.write_page(&file, 0, b"x").unwrap_err(),
        ClientError::Status(Status::BadRequest)
    );
    // version_info on a file / file_info on a version: refused.
    assert_eq!(
        fs.version_info(&file).unwrap_err(),
        ClientError::Status(Status::BadRequest)
    );
    assert_eq!(
        fs.file_info(&version).unwrap_err(),
        ClientError::Status(Status::BadRequest)
    );
    // Committing the file itself: refused.
    assert_eq!(
        fs.commit(&file).unwrap_err(),
        ClientError::Status(Status::BadRequest)
    );
    runner.stop();
}

#[test]
fn empty_mvfs_file_has_no_pages() {
    let net = Network::new();
    let runner = ServiceRunner::spawn_open(&net, MvfsServer::new(SchemeKind::Simple));
    let fs = MvfsClient::with_service(ServiceClient::open(&net), runner.put_port());
    let file = fs.create_file().unwrap();
    assert_eq!(
        fs.read_page(&file, 0).unwrap_err(),
        ClientError::Status(Status::OutOfRange)
    );
    let info = fs.file_info(&file).unwrap();
    assert_eq!((info.committed_versions, info.pages), (0, 0));
    runner.stop();
}

// ---------------------------------------------------------------------
// Bank corner cases
// ---------------------------------------------------------------------

#[test]
fn bank_self_transfer_conserves() {
    let net = Network::new();
    let (server, treasury_rx) =
        BankServer::new(vec![Currency::convertible("dollar", 1)], SchemeKind::OneWay);
    let runner = ServiceRunner::spawn_open(&net, server);
    let bank = BankClient::open(&net, runner.put_port());
    let treasury = treasury_rx.recv().unwrap();

    let a = bank.open_account().unwrap();
    bank.mint(&treasury, &a, CurrencyId(0), 100).unwrap();
    bank.transfer(&a, &a, CurrencyId(0), 60).unwrap();
    assert_eq!(bank.balance(&a, CurrencyId(0)).unwrap(), 100);
    runner.stop();
}

#[test]
fn bank_zero_amount_operations() {
    let net = Network::new();
    let (server, treasury_rx) =
        BankServer::new(vec![Currency::convertible("dollar", 1)], SchemeKind::Simple);
    let runner = ServiceRunner::spawn_open(&net, server);
    let bank = BankClient::open(&net, runner.put_port());
    let _treasury = treasury_rx.recv().unwrap();

    let a = bank.open_account().unwrap();
    let b = bank.open_account().unwrap();
    // Zero transfers succeed and change nothing.
    bank.transfer(&a, &b, CurrencyId(0), 0).unwrap();
    assert_eq!(bank.balance(&a, CurrencyId(0)).unwrap(), 0);
    assert_eq!(bank.balance(&b, CurrencyId(0)).unwrap(), 0);
    runner.stop();
}

#[test]
fn bank_conversion_rounding_floors() {
    let net = Network::new();
    let (server, treasury_rx) = BankServer::new(
        vec![
            Currency::convertible("cent", 1),
            Currency::convertible("dollar", 100),
        ],
        SchemeKind::OneWay,
    );
    let runner = ServiceRunner::spawn_open(&net, server);
    let bank = BankClient::open(&net, runner.put_port());
    let treasury = treasury_rx.recv().unwrap();
    let a = bank.open_account().unwrap();
    bank.mint(&treasury, &a, CurrencyId(0), 199).unwrap();
    // 199 cents = 1 dollar, flooring away 99 base units within the
    // conversion — the 99 cents are consumed (documented floor).
    let credited = bank.convert(&a, CurrencyId(0), CurrencyId(1), 199).unwrap();
    assert_eq!(credited, 1);
    assert_eq!(bank.balance(&a, CurrencyId(1)).unwrap(), 1);
    runner.stop();
}

// ---------------------------------------------------------------------
// Directory structure edge cases
// ---------------------------------------------------------------------

#[test]
fn directory_cycles_are_representable_and_walkable() {
    // Directories are (name, capability) sets — nothing stops a cycle,
    // and the paper's model doesn't forbid it ("arbitrary directory
    // trees, graphs"). Walking a cycle must terminate per path segment.
    let net = Network::new();
    let runner = ServiceRunner::spawn_open(&net, DirServer::new(SchemeKind::Commutative));
    let dirs = DirClient::with_service(ServiceClient::open(&net), runner.put_port());

    let a = dirs.create_dir().unwrap();
    let b = dirs.create_dir().unwrap();
    dirs.enter(&a, "b", &b).unwrap();
    dirs.enter(&b, "a", &a).unwrap(); // cycle
    let back = dirs.walk(&a, "b/a/b/a/b/a").unwrap();
    assert_eq!(back, a);
    runner.stop();
}

#[test]
fn directory_entries_survive_target_deletion_as_dangling_caps() {
    // Directories store capabilities, not objects. Destroying the
    // target leaves a dangling entry whose use fails at the *object's*
    // server — exactly the semantics of bearer capabilities.
    let net = Network::new();
    let dir_runner = ServiceRunner::spawn_open(&net, DirServer::new(SchemeKind::OneWay));
    let fs_runner = ServiceRunner::spawn_open(&net, FlatFsServer::new(SchemeKind::OneWay));
    let dirs = DirClient::with_service(ServiceClient::open(&net), dir_runner.put_port());
    let fs = FlatFsClient::with_service(ServiceClient::open(&net), fs_runner.put_port());

    let d = dirs.create_dir().unwrap();
    let f = fs.create().unwrap();
    dirs.enter(&d, "ghost-to-be", &f).unwrap();
    fs.destroy(&f).unwrap();

    let dangling = dirs.lookup(&d, "ghost-to-be").unwrap();
    assert!(matches!(
        fs.size(&dangling).unwrap_err(),
        ClientError::Status(Status::NoSuchObject) | ClientError::Status(Status::Forged)
    ));
    dir_runner.stop();
    fs_runner.stop();
}

// ---------------------------------------------------------------------
// Block server edge cases
// ---------------------------------------------------------------------

#[test]
fn block_boundary_writes() {
    let net = Network::new();
    let runner = ServiceRunner::spawn_open(
        &net,
        BlockServer::new(
            DiskConfig {
                block_size: 16,
                capacity_blocks: 2,
            },
            SchemeKind::Simple,
        ),
    );
    let disk = BlockClient::open(&net, runner.put_port());
    let cap = disk.alloc().unwrap();
    // Exactly filling the block is fine; one past is not.
    disk.write(&cap, 0, &[7u8; 16]).unwrap();
    assert_eq!(disk.read(&cap, 15, 1).unwrap(), vec![7]);
    assert!(matches!(
        disk.write(&cap, 16, &[1]).unwrap_err(),
        ClientError::Status(Status::OutOfRange)
    ));
    assert!(matches!(
        disk.read(&cap, 16, 1).unwrap_err(),
        ClientError::Status(Status::OutOfRange)
    ));
    runner.stop();
}

#[test]
fn concurrent_allocation_respects_capacity() {
    let net = Network::new();
    let runner = ServiceRunner::spawn_open(
        &net,
        BlockServer::new(
            DiskConfig {
                block_size: 32,
                capacity_blocks: 20,
            },
            SchemeKind::OneWay,
        ),
    );
    let port = runner.put_port();
    let mut handles = Vec::new();
    for _ in 0..4 {
        let net = net.clone();
        handles.push(std::thread::spawn(move || {
            let disk = BlockClient::open(&net, port);
            let mut got = 0;
            while disk.alloc().is_ok() {
                got += 1;
            }
            got
        }));
    }
    let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert_eq!(total, 20, "exactly the disk capacity, no over-allocation");
    runner.stop();
}

// ---------------------------------------------------------------------
// RPC robustness
// ---------------------------------------------------------------------

#[test]
fn noise_on_the_reply_port_does_not_confuse_the_client() {
    // An attacker spraying junk at a client's reply port must not make
    // trans() return garbage: only well-formed Reply frames count.
    let net = Network::new();
    let runner = ServiceRunner::spawn_open(&net, FlatFsServer::new(SchemeKind::Simple));
    let fs = FlatFsClient::with_service(ServiceClient::open(&net), runner.put_port());

    // A jammer floods every port it has seen on the wire.
    let wire = net.tap();
    let jammer = net.attach_open();
    let jam = std::thread::spawn(move || {
        for _ in 0..50 {
            if let Ok(pkt) = wire.recv_timeout(std::time::Duration::from_millis(100)) {
                // Spray malformed junk at whatever reply port appears.
                if !pkt.header.reply.is_null() {
                    jammer.send(
                        Header::to(pkt.header.reply),
                        Bytes::from_static(b"\xFFjunk"),
                    );
                }
            } else {
                break;
            }
        }
    });

    for i in 0..20u64 {
        let cap = fs.create().unwrap();
        fs.write(&cap, 0, format!("msg {i}").as_bytes()).unwrap();
        assert_eq!(fs.read(&cap, 0, 32).unwrap(), format!("msg {i}").as_bytes());
    }
    jam.join().unwrap();
    runner.stop();
}
