//! Experiment F1 — Fig 1: clients, servers, intruders, and F-boxes.
//!
//! Validates every security claim of §2.2 by running real attacks on the
//! simulated network, plus the negative control: without F-boxes the
//! same attacks *succeed*, so the protection demonstrably comes from the
//! F-box and not from the simulator.

use amoeba::net::NetworkInterface;
use amoeba::prelude::*;
use bytes::Bytes;
use std::sync::Arc;
use std::time::Duration;

fn fbox_machine(net: &Network) -> Endpoint {
    net.attach(Arc::new(FBox::hardware(ShaOneWay)))
}

fn spawn_echo(server: ServerPort, replies: usize) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        for _ in 0..replies {
            match server.next_request_timeout(Duration::from_secs(5)) {
                Ok(req) => server.reply(&req, req.payload.clone()),
                Err(_) => break,
            }
        }
    })
}

#[test]
fn intruder_cannot_impersonate_server() {
    let net = Network::new();
    let server_ep = fbox_machine(&net);
    let g = Port::new(0x005E_C2E7_C0DE).unwrap();
    let server = ServerPort::bind(server_ep, g);
    let p = server.put_port();
    let handle = spawn_echo(server, 1);

    // Intruder GETs the public put-port: its F-box listens on F(P).
    let intruder = fbox_machine(&net);
    intruder.claim(p);

    let client = Client::new(fbox_machine(&net));
    let reply = client.trans(p, Bytes::from_static(b"hello")).unwrap();
    assert_eq!(&reply[..], b"hello");
    assert!(
        intruder.try_recv().is_none(),
        "the intruder must receive nothing"
    );
    handle.join().unwrap();
}

#[test]
fn without_fboxes_impersonation_succeeds_negative_control() {
    // Same attack, open interfaces: the intruder hears everything.
    // This is the baseline the F-box exists to prevent.
    let net = Network::new();
    let server = net.attach_open();
    let p = Port::new(0xBAD_1DEA).unwrap();
    server.claim(p);

    let intruder = net.attach_open();
    intruder.claim(p); // trivially claims the same port

    let client = net.attach_open();
    client.send(Header::to(p), Bytes::from_static(b"credit card"));
    assert!(server.recv().is_ok());
    assert!(
        intruder.try_recv().is_some(),
        "without F-boxes the intruder DOES intercept — the control holds"
    );
}

#[test]
fn get_port_never_appears_on_the_wire() {
    let net = Network::new();
    let wire = net.tap();
    let server_ep = fbox_machine(&net);
    let g = Port::new(0x000D_D50F_F1CE).unwrap();
    let server = ServerPort::bind(server_ep, g);
    let p = server.put_port();
    let handle = spawn_echo(server, 3);

    let client = Client::new(fbox_machine(&net));
    for _ in 0..3 {
        client.trans(p, Bytes::from_static(b"x")).unwrap();
    }
    handle.join().unwrap();

    let mut frames = 0;
    while let Ok(pkt) = wire.try_recv() {
        frames += 1;
        for field in [pkt.header.dest, pkt.header.reply, pkt.header.signature] {
            assert_ne!(field, g, "secret get-port leaked in frame {frames}");
        }
    }
    assert!(frames >= 6, "expected at least 6 frames, saw {frames}");
}

#[test]
fn replayed_request_reply_goes_nowhere() {
    let net = Network::new();
    let wire = net.tap();
    let server_ep = fbox_machine(&net);
    let server = ServerPort::bind(server_ep, Port::new(0x7E57).unwrap());
    let p = server.put_port();
    let handle = spawn_echo(server, 2); // original + replayed execution

    let client = Client::new(fbox_machine(&net));
    client.trans(p, Bytes::from_static(b"query")).unwrap();
    // Capture the client's request frame off the wire.
    let request_frame = loop {
        let pkt = wire.recv().unwrap();
        if pkt.header.dest == p {
            break pkt;
        }
    };

    // The intruder replays it through its own F-box: the reply field
    // (already F(G')) becomes F(F(G')).
    let replayer = fbox_machine(&net);
    replayer.send(request_frame.header, request_frame.payload.clone());
    std::thread::sleep(Duration::from_millis(100));
    assert!(
        replayer.try_recv().is_none(),
        "replayer must not receive the reply"
    );
    handle.join().unwrap();
}

#[test]
fn signature_forgery_detected() {
    // The receiver compares the arriving signature field against the
    // principal's published F(S).
    let f = ShaOneWay;
    let s = Port::new(0x516_7A7).unwrap();
    let published = amoeba::fbox::put_port_of(&f, s);

    let honest_box = FBox::hardware(f.clone());
    let mut honest = Header::to(Port::new(5).unwrap()).with_signature(s);
    honest_box.egress(&mut honest);
    assert_eq!(honest.signature, published);

    // The intruder knows only F(S) and sends that.
    let mut forged = Header::to(Port::new(5).unwrap()).with_signature(published);
    honest_box.egress(&mut forged);
    assert_ne!(forged.signature, published, "F(F(S)) != F(S)");
}

#[test]
fn signature_travels_with_rpc() {
    let net = Network::new();
    let f = ShaOneWay;
    let server_ep = fbox_machine(&net);
    let server = ServerPort::bind(server_ep, Port::new(0x816).unwrap());
    let p = server.put_port();

    let s = Port::new(0xA11CE).unwrap();
    let published = amoeba::fbox::put_port_of(&f, s);

    let handle = std::thread::spawn(move || {
        let req = server.next_request_timeout(Duration::from_secs(5)).unwrap();
        // Server-side verification of the sender's identity.
        assert_eq!(req.signature, Some(published));
        server.reply(&req, Bytes::from_static(b"authenticated"));
    });

    let mut client = Client::new(fbox_machine(&net));
    client.set_signature(s);
    let reply = client.trans(p, Bytes::from_static(b"who am i")).unwrap();
    assert_eq!(&reply[..], b"authenticated");
    handle.join().unwrap();
}
