//! **Amoeba sparse capabilities** — a full Rust reproduction of
//! Tanenbaum, Mullender & van Renesse, *"Using Sparse Capabilities in a
//! Distributed Operating System"* (ICDCS 1986).
//!
//! This facade crate re-exports every subsystem under one roof and hosts
//! the repository's examples and cross-crate integration tests. See the
//! README for the architecture tour, DESIGN.md for the paper-to-module
//! map, and EXPERIMENTS.md for the reproduced figures/claims.
//!
//! # The 30-second tour
//!
//! ```
//! use amoeba::prelude::*;
//!
//! // A network where every machine sits behind an F-box (§2.2).
//! let net = Network::new();
//!
//! // A file service protected by commutative one-way functions (§2.3).
//! let server = FlatFsServer::new(SchemeKind::Commutative);
//! let runner = ServiceRunner::spawn_fbox(&net, server);
//! let fs = FlatFsClient::with_service(ServiceClient::fbox(&net), runner.put_port());
//!
//! // Create a file, write, and delegate read-only *without the server*.
//! let cap = fs.create().unwrap();
//! fs.write(&cap, 0, b"capabilities are just bits").unwrap();
//! let scheme = CommutativeScheme::standard();
//! let read_only = scheme.diminish(&cap, Rights::ALL.without(Rights::READ)).unwrap();
//! assert_eq!(&fs.read(&read_only, 0, 12).unwrap(), b"capabilities");
//! assert!(fs.write(&read_only, 0, b"x").is_err());
//! runner.stop();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use amoeba_bank as bank;
pub use amoeba_block as block;
pub use amoeba_cap as cap;
pub use amoeba_cluster as cluster;
pub use amoeba_crypto as crypto;
pub use amoeba_dirsvr as dirsvr;
pub use amoeba_fbox as fbox;
pub use amoeba_flatfs as flatfs;
pub use amoeba_memsvr as memsvr;
pub use amoeba_mvfs as mvfs;
pub use amoeba_net as net;
pub use amoeba_obs as obs;
pub use amoeba_rpc as rpc;
pub use amoeba_server as server;
pub use amoeba_softprot as softprot;
pub use amoeba_unixfs as unixfs;

/// One-stop imports for applications.
pub mod prelude {
    pub use amoeba_bank::{BankClient, BankServer, Currency, CurrencyId};
    pub use amoeba_block::{BlockClient, BlockServer, DiskConfig, DiskStats};
    pub use amoeba_cap::schemes::{
        CommutativeScheme, EncryptedScheme, ObjectSecret, OneWayScheme, ProtectionScheme,
        SchemeKind, SimpleScheme,
    };
    pub use amoeba_cap::{CapError, Capability, ObjectNum, Rights};
    pub use amoeba_cluster::{
        ClusterClient, ClusterRegistry, ElasticClient, ElasticCluster, HealthProber, MigrateError,
        MigrationStats, PlacementPolicy, Rebalancer, ServiceCluster, ShardMigration, ShardedClient,
        ShardedCluster, ShardedDir, SimReplicaSet,
    };
    pub use amoeba_crypto::oneway::{OneWay, PurdyOneWay, ShaOneWay};
    pub use amoeba_dirsvr::{CapCache, DirClient, DirServer, PathError};
    pub use amoeba_fbox::FBox;
    pub use amoeba_flatfs::{BlockFlatFsServer, FlatFsClient, FlatFsServer, QuotaPolicy};
    pub use amoeba_memsvr::{MemClient, MemServer, ProcState};
    pub use amoeba_mvfs::{MvfsClient, MvfsServer};
    pub use amoeba_net::{
        ActorPoll, BufPool, Clock, CrashWindow, Endpoint, FaultCounters, FaultPlan, Header,
        HotPathSnapshot, MachineId, Network, PartitionWindow, Port, Reactor, SimClock, SimExecutor,
        SimStall, StatsSnapshot, Timestamp, VirtualClock, WallClock,
    };
    pub use amoeba_obs::{EventKind, FlightEvent, Metrics, MetricsSnapshot, Obs};
    pub use amoeba_rpc::{
        Client, CodecConfig, Locator, Matchmaker, RendezvousNode, RpcConfig, ServerPort,
    };
    pub use amoeba_server::proto::{Reply, Request, Status};
    pub use amoeba_server::{
        ClientError, ObjectLocks, ObjectTable, PrincipalRegistry, ReactorPool, RequestCtx,
        SealedServiceClient, SealedServiceRunner, Service, ServiceClient, ServiceRunner, SimPump,
    };
    pub use amoeba_softprot::{
        CapSealer, ClientSession, KeyMatrix, MachineKeys, SealedCap, SecureLink, ServerBoot,
    };
    pub use amoeba_unixfs::{UnixFsClient, UnixFsServer};
}
