//! The Amoeba **bank server** (§3.6): virtual money for resource
//! control and accounting.
//!
//! "The principal operation on bank accounts is transferring virtual
//! money from one account to another." Accounts hold balances in
//! multiple, possibly convertible, possibly inconvertible **currencies**
//! — the paper's example charges disk space in dollars, CPU time in
//! francs and phototypesetter pages in yen. Servers implement quotas by
//! pricing their resources; see `amoeba-flatfs`'s pre-paid file quota.
//!
//! The server mints money only through its **treasury** capability,
//! returned once at startup; everyone else can only move existing money
//! between accounts. Transfers need [`Rights::WRITE`] on the *source*
//! account only — depositing into someone's account is harmless.
//!
//! # Example
//!
//! ```
//! use amoeba_bank::{BankClient, BankServer, Currency, CurrencyId};
//! use amoeba_cap::schemes::SchemeKind;
//! use amoeba_net::Network;
//! use amoeba_server::ServiceRunner;
//!
//! let net = Network::new();
//! let (server, treasury_recv) = BankServer::new(
//!     vec![Currency::convertible("dollar", 1), Currency::convertible("yen", 150)],
//!     SchemeKind::Commutative,
//! );
//! let runner = ServiceRunner::spawn_open(&net, server);
//! let client = BankClient::open(&net, runner.put_port());
//! let treasury = treasury_recv.recv().unwrap();
//!
//! let alice = client.open_account().unwrap();
//! client.mint(&treasury, &alice, CurrencyId(0), 100).unwrap();
//! let bob = client.open_account().unwrap();
//! client.transfer(&alice, &bob, CurrencyId(0), 30).unwrap();
//! assert_eq!(client.balance(&alice, CurrencyId(0)).unwrap(), 70);
//! assert_eq!(client.balance(&bob, CurrencyId(0)).unwrap(), 30);
//! runner.stop();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use amoeba_cap::schemes::SchemeKind;
use amoeba_cap::{Capability, Rights};
use amoeba_net::{Network, Port};
use amoeba_server::proto::{Reply, Request, Status};
use amoeba_server::{wire, ClientError, ObjectTable, RequestCtx, Service, ServiceClient};
use bytes::Bytes;
use std::collections::HashMap;

/// Bank operation codes.
pub mod ops {
    /// Open an empty account; anonymous. Reply: capability.
    pub const OPEN: u32 = 1;
    /// Balance query. Params: `u32 currency`. Reply: `u64`.
    pub const BALANCE: u32 = 2;
    /// Transfer. Capability: source (WRITE). Params: `cap to`,
    /// `u32 currency`, `u64 amount`.
    pub const TRANSFER: u32 = 3;
    /// Mint new money into an account. Capability: the treasury
    /// (OWNER). Params: `cap to`, `u32 currency`, `u64 amount`.
    pub const MINT: u32 = 4;
    /// Convert between convertible currencies within one account.
    /// Capability: account (WRITE). Params: `u32 from`, `u32 to`,
    /// `u64 amount` (in `from` units). Reply: `u64` credited amount.
    pub const CONVERT: u32 = 5;
    /// Close the account (requires DELETE); remaining balances vanish.
    pub const CLOSE: u32 = 6;
    /// Account statement (requires READ). Reply: `u32 n`, then n ×
    /// (`u32 kind`, `u32 currency`, `u64 amount`) entries, oldest
    /// first. Kinds: 0 debit, 1 credit, 2 mint, 3 convert-out,
    /// 4 convert-in.
    pub const STATEMENT: u32 = 7;
}

/// One line of an account statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatementEntry {
    /// What happened.
    pub kind: EntryKind,
    /// The currency involved.
    pub currency: CurrencyId,
    /// The amount moved.
    pub amount: u64,
}

/// Statement entry kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u32)]
pub enum EntryKind {
    /// Money left the account via TRANSFER.
    Debit = 0,
    /// Money arrived via TRANSFER or MINT deposit.
    Credit = 1,
    /// Freshly minted money arrived (treasury operation).
    Mint = 2,
    /// CONVERT consumed this amount.
    ConvertOut = 3,
    /// CONVERT produced this amount.
    ConvertIn = 4,
}

impl EntryKind {
    fn from_u32(v: u32) -> Option<EntryKind> {
        Some(match v {
            0 => EntryKind::Debit,
            1 => EntryKind::Credit,
            2 => EntryKind::Mint,
            3 => EntryKind::ConvertOut,
            4 => EntryKind::ConvertIn,
            _ => return None,
        })
    }
}

/// Statements are bounded; older entries are discarded.
const STATEMENT_CAPACITY: usize = 64;

/// Identifies a currency by its index in the server's registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CurrencyId(pub u32);

/// A currency the bank supports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Currency {
    name: String,
    /// Units of the *base* currency one unit of this currency is worth,
    /// or `None` if inconvertible.
    rate_to_base: Option<u64>,
}

impl Currency {
    /// A convertible currency: `rate_to_base` units of currency 0 per
    /// unit of this one.
    ///
    /// # Panics
    /// Panics if `rate_to_base` is zero.
    pub fn convertible(name: &str, rate_to_base: u64) -> Currency {
        assert!(rate_to_base > 0, "conversion rate must be nonzero");
        Currency {
            name: name.to_string(),
            rate_to_base: Some(rate_to_base),
        }
    }

    /// An inconvertible currency (e.g. phototypesetter pages — "in some
    /// cases returning the resource might not result in the client
    /// getting his money").
    pub fn inconvertible(name: &str) -> Currency {
        Currency {
            name: name.to_string(),
            rate_to_base: None,
        }
    }

    /// The currency's name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

#[derive(Debug, Default)]
struct Account {
    balances: HashMap<CurrencyId, u64>,
    is_treasury: bool,
    history: Vec<StatementEntry>,
}

impl Account {
    fn record(&mut self, kind: EntryKind, currency: CurrencyId, amount: u64) {
        if self.history.len() == STATEMENT_CAPACITY {
            self.history.remove(0);
        }
        self.history.push(StatementEntry {
            kind,
            currency,
            amount,
        });
    }
}

/// The bank server.
#[derive(Debug)]
pub struct BankServer {
    table: ObjectTable<Account>,
    currencies: Vec<Currency>,
    treasury_tx: Option<std::sync::mpsc::Sender<Capability>>,
}

/// Receives the treasury (mint-authority) capability once the server is
/// bound and running. The capability can only be minted after the
/// service learns its put-port, which happens on the runner thread —
/// hence the channel.
pub type TreasuryReceiver = std::sync::mpsc::Receiver<Capability>;

impl BankServer {
    /// Creates a bank with the given currency registry. Currency 0 is
    /// the base for conversions.
    ///
    /// Returns the server and a receiver that yields the **treasury
    /// capability** (mint authority) once the server is running.
    ///
    /// # Panics
    /// Panics if no currencies are given.
    pub fn new(currencies: Vec<Currency>, scheme: SchemeKind) -> (BankServer, TreasuryReceiver) {
        assert!(!currencies.is_empty(), "at least one currency required");
        let (tx, rx) = std::sync::mpsc::channel();
        (
            BankServer {
                table: ObjectTable::unbound(scheme.instantiate()),
                currencies,
                treasury_tx: Some(tx),
            },
            rx,
        )
    }

    fn currency(&self, id: u32) -> Option<&Currency> {
        self.currencies.get(id as usize)
    }

    fn open(&self) -> Reply {
        let (_, cap) = self.table.create(Account::default());
        Reply::ok(wire::Writer::new().cap(&cap).finish())
    }

    fn balance(&self, req: &Request) -> Reply {
        let mut r = wire::Reader::new(&req.params);
        let Some(currency) = r.u32() else {
            return Reply::status(Status::BadRequest);
        };
        if self.currency(currency).is_none() {
            return Reply::status(Status::OutOfRange);
        }
        match self.table.with_object(&req.cap, Rights::READ, |acct| {
            acct.balances
                .get(&CurrencyId(currency))
                .copied()
                .unwrap_or(0)
        }) {
            Ok(v) => Reply::ok(wire::Writer::new().u64(v).finish()),
            Err(e) => Reply::status(e.into()),
        }
    }

    fn transfer(&self, req: &Request, minting: bool) -> Reply {
        let mut r = wire::Reader::new(&req.params);
        let (Some(to_cap), Some(currency), Some(amount)) = (r.cap(), r.u32(), r.u64()) else {
            return Reply::status(Status::BadRequest);
        };
        if self.currency(currency).is_none() {
            return Reply::status(Status::OutOfRange);
        }
        let cur = CurrencyId(currency);

        // Validate the destination before touching the source: a forged
        // or already-closed destination must fail the transfer without
        // ever starting a withdrawal (under concurrent dispatch the
        // rollback below is best-effort, so not withdrawing at all is
        // strictly safer).
        if let Err(e) = self.table.validate(&to_cap) {
            return Reply::status(e.into());
        }

        if minting {
            // Only the treasury may mint.
            let is_treasury = match self
                .table
                .with_object(&req.cap, Rights::OWNER, |a| a.is_treasury)
            {
                Ok(t) => t,
                Err(e) => return Reply::status(e.into()),
            };
            if !is_treasury {
                return Reply::status(Status::RightsViolation);
            }
        } else {
            // Withdraw from the source; deposit is performed below.
            let withdrawn = self.table.with_object_mut(&req.cap, Rights::WRITE, |acct| {
                let bal = acct.balances.entry(cur).or_insert(0);
                if *bal < amount {
                    false
                } else {
                    *bal -= amount;
                    acct.record(EntryKind::Debit, cur, amount);
                    true
                }
            });
            match withdrawn {
                Ok(true) => {}
                Ok(false) => return Reply::status(Status::InsufficientFunds),
                Err(e) => return Reply::status(e.into()),
            }
        }

        // Deposit. The destination capability must be genuine, but any
        // rights suffice: money in your account never hurts you.
        let credit_kind = if minting {
            EntryKind::Mint
        } else {
            EntryKind::Credit
        };
        let deposited = self.table.with_object_mut(&to_cap, Rights::NONE, |acct| {
            *acct.balances.entry(cur).or_insert(0) += amount;
            acct.record(credit_kind, cur, amount);
        });
        match deposited {
            Ok(()) => Reply::ok(Bytes::new()),
            Err(e) => {
                if !minting {
                    // Roll the withdrawal back; the transfer is atomic.
                    // If the source account was concurrently closed the
                    // rollback finds nothing — the amount is forfeited
                    // exactly as if it had still been in the account at
                    // CLOSE ("remaining balances vanish").
                    let _ = self.table.with_object_mut(&req.cap, Rights::WRITE, |acct| {
                        *acct.balances.entry(cur).or_insert(0) += amount;
                        acct.record(EntryKind::Credit, cur, amount);
                    });
                }
                Reply::status(e.into())
            }
        }
    }

    fn convert(&self, req: &Request) -> Reply {
        let mut r = wire::Reader::new(&req.params);
        let (Some(from), Some(to), Some(amount)) = (r.u32(), r.u32(), r.u64()) else {
            return Reply::status(Status::BadRequest);
        };
        let (Some(from_c), Some(to_c)) = (self.currency(from), self.currency(to)) else {
            return Reply::status(Status::OutOfRange);
        };
        let (Some(from_rate), Some(to_rate)) = (from_c.rate_to_base, to_c.rate_to_base) else {
            return Reply::status(Status::Unsupported); // inconvertible
        };
        // amount × from_rate base units, floored into `to` units.
        let base = match amount.checked_mul(from_rate) {
            Some(b) => b,
            None => return Reply::status(Status::OutOfRange),
        };
        let credited = base / to_rate;
        let result = self.table.with_object_mut(&req.cap, Rights::WRITE, |acct| {
            let bal = acct.balances.entry(CurrencyId(from)).or_insert(0);
            if *bal < amount {
                return None;
            }
            *bal -= amount;
            *acct.balances.entry(CurrencyId(to)).or_insert(0) += credited;
            acct.record(EntryKind::ConvertOut, CurrencyId(from), amount);
            acct.record(EntryKind::ConvertIn, CurrencyId(to), credited);
            Some(credited)
        });
        match result {
            Ok(Some(c)) => Reply::ok(wire::Writer::new().u64(c).finish()),
            Ok(None) => Reply::status(Status::InsufficientFunds),
            Err(e) => Reply::status(e.into()),
        }
    }

    fn statement(&self, req: &Request) -> Reply {
        match self.table.with_object(&req.cap, Rights::READ, |acct| {
            let mut w = wire::Writer::new().u32(acct.history.len() as u32);
            for e in &acct.history {
                w = w.u32(e.kind as u32).u32(e.currency.0).u64(e.amount);
            }
            w.finish()
        }) {
            Ok(body) => Reply::ok(body),
            Err(e) => Reply::status(e.into()),
        }
    }

    fn close(&self, req: &Request) -> Reply {
        match self.table.delete(&req.cap, Rights::DELETE) {
            Ok(_) => Reply::ok(Bytes::new()),
            Err(e) => Reply::status(e.into()),
        }
    }
}

impl Service for BankServer {
    fn bind(&mut self, put_port: Port) {
        self.table.set_port(put_port);
        // Mint the treasury account and hand its capability back to the
        // process that created the server.
        let (_, cap) = self.table.create(Account {
            balances: HashMap::new(),
            is_treasury: true,
            history: Vec::new(),
        });
        if let Some(tx) = self.treasury_tx.take() {
            let _ = tx.send(cap);
        }
    }

    fn handle(&self, req: &Request, _ctx: &RequestCtx) -> Reply {
        if let Some(reply) = self.table.handle_std(req) {
            return reply;
        }
        match req.command {
            ops::OPEN => self.open(),
            ops::BALANCE => self.balance(req),
            ops::TRANSFER => self.transfer(req, false),
            ops::MINT => self.transfer(req, true),
            ops::CONVERT => self.convert(req),
            ops::CLOSE => self.close(req),
            ops::STATEMENT => self.statement(req),
            _ => Reply::status(Status::BadCommand),
        }
    }
}

/// A typed client for the bank server.
#[derive(Debug)]
pub struct BankClient {
    svc: ServiceClient,
    port: Port,
}

impl BankClient {
    /// A client on a fresh open-interface machine.
    pub fn open(net: &Network, port: Port) -> BankClient {
        BankClient {
            svc: ServiceClient::open(net),
            port,
        }
    }

    /// A client over an existing [`ServiceClient`].
    pub fn with_service(svc: ServiceClient, port: Port) -> BankClient {
        BankClient { svc, port }
    }

    /// The bank's put-port.
    pub fn port(&self) -> Port {
        self.port
    }

    /// Opens an empty account.
    ///
    /// # Errors
    /// Transport errors.
    pub fn open_account(&self) -> Result<Capability, ClientError> {
        let body = self
            .svc
            .call_anonymous(self.port, ops::OPEN, Bytes::new())?;
        wire::Reader::new(&body).cap().ok_or(ClientError::Malformed)
    }

    /// The balance of `account` in `currency`.
    ///
    /// # Errors
    /// Validation errors; `OutOfRange` for unknown currencies.
    pub fn balance(&self, account: &Capability, currency: CurrencyId) -> Result<u64, ClientError> {
        let body = self.svc.call(
            account,
            ops::BALANCE,
            wire::Writer::new().u32(currency.0).finish(),
        )?;
        wire::Reader::new(&body).u64().ok_or(ClientError::Malformed)
    }

    /// Moves `amount` of `currency` from `from` (requires WRITE) to `to`.
    ///
    /// # Errors
    /// `InsufficientFunds`, validation errors, transport errors.
    pub fn transfer(
        &self,
        from: &Capability,
        to: &Capability,
        currency: CurrencyId,
        amount: u64,
    ) -> Result<(), ClientError> {
        self.svc.call(
            from,
            ops::TRANSFER,
            wire::Writer::new()
                .cap(to)
                .u32(currency.0)
                .u64(amount)
                .finish(),
        )?;
        Ok(())
    }

    /// Mints new money into `to`; only works with the treasury
    /// capability.
    ///
    /// # Errors
    /// `RightsViolation` for non-treasury capabilities.
    pub fn mint(
        &self,
        treasury: &Capability,
        to: &Capability,
        currency: CurrencyId,
        amount: u64,
    ) -> Result<(), ClientError> {
        self.svc.call(
            treasury,
            ops::MINT,
            wire::Writer::new()
                .cap(to)
                .u32(currency.0)
                .u64(amount)
                .finish(),
        )?;
        Ok(())
    }

    /// Converts `amount` of `from` into `to` within the account,
    /// returning the credited amount.
    ///
    /// # Errors
    /// `Unsupported` if either currency is inconvertible;
    /// `InsufficientFunds`; validation errors.
    pub fn convert(
        &self,
        account: &Capability,
        from: CurrencyId,
        to: CurrencyId,
        amount: u64,
    ) -> Result<u64, ClientError> {
        let body = self.svc.call(
            account,
            ops::CONVERT,
            wire::Writer::new()
                .u32(from.0)
                .u32(to.0)
                .u64(amount)
                .finish(),
        )?;
        wire::Reader::new(&body).u64().ok_or(ClientError::Malformed)
    }

    /// The account's statement, oldest entry first (bounded history).
    ///
    /// # Errors
    /// Validation errors.
    pub fn statement(&self, account: &Capability) -> Result<Vec<StatementEntry>, ClientError> {
        let body = self.svc.call(account, ops::STATEMENT, Bytes::new())?;
        let mut r = wire::Reader::new(&body);
        let n = r.u32().ok_or(ClientError::Malformed)?;
        let mut out = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let kind = EntryKind::from_u32(r.u32().ok_or(ClientError::Malformed)?)
                .ok_or(ClientError::Malformed)?;
            let currency = CurrencyId(r.u32().ok_or(ClientError::Malformed)?);
            let amount = r.u64().ok_or(ClientError::Malformed)?;
            out.push(StatementEntry {
                kind,
                currency,
                amount,
            });
        }
        Ok(out)
    }

    /// Closes the account (requires DELETE).
    ///
    /// # Errors
    /// Validation errors.
    pub fn close(&self, account: &Capability) -> Result<(), ClientError> {
        self.svc.call(account, ops::CLOSE, Bytes::new())?;
        Ok(())
    }

    /// Access to the generic capability operations.
    pub fn service(&self) -> &ServiceClient {
        &self.svc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amoeba_server::ServiceRunner;

    fn setup() -> (
        Network,
        amoeba_server::ServiceRunner,
        BankClient,
        Capability,
    ) {
        let net = Network::new();
        let (server, treasury_rx) = BankServer::new(
            vec![
                Currency::convertible("dollar", 1),
                Currency::convertible("yen", 150),
                Currency::inconvertible("page"),
            ],
            SchemeKind::Commutative,
        );
        let runner = ServiceRunner::spawn_open(&net, server);
        let client = BankClient::open(&net, runner.put_port());
        let treasury = treasury_rx
            .recv_timeout(std::time::Duration::from_secs(5))
            .expect("treasury capability");
        (net, runner, client, treasury)
    }

    const USD: CurrencyId = CurrencyId(0);
    const YEN: CurrencyId = CurrencyId(1);
    const PAGE: CurrencyId = CurrencyId(2);

    #[test]
    fn mint_and_balances() {
        let (_n, runner, client, treasury) = setup();
        let acct = client.open_account().unwrap();
        assert_eq!(client.balance(&acct, USD).unwrap(), 0);
        client.mint(&treasury, &acct, USD, 500).unwrap();
        assert_eq!(client.balance(&acct, USD).unwrap(), 500);
        assert_eq!(client.balance(&acct, YEN).unwrap(), 0);
        runner.stop();
    }

    #[test]
    fn non_treasury_cannot_mint() {
        let (_n, runner, client, _treasury) = setup();
        let a = client.open_account().unwrap();
        let b = client.open_account().unwrap();
        assert_eq!(
            client.mint(&a, &b, USD, 100).unwrap_err(),
            ClientError::Status(Status::RightsViolation)
        );
        runner.stop();
    }

    #[test]
    fn transfer_conserves_money() {
        let (_n, runner, client, treasury) = setup();
        let a = client.open_account().unwrap();
        let b = client.open_account().unwrap();
        client.mint(&treasury, &a, USD, 100).unwrap();
        client.transfer(&a, &b, USD, 60).unwrap();
        assert_eq!(client.balance(&a, USD).unwrap(), 40);
        assert_eq!(client.balance(&b, USD).unwrap(), 60);
        runner.stop();
    }

    #[test]
    fn overdraft_rejected() {
        let (_n, runner, client, treasury) = setup();
        let a = client.open_account().unwrap();
        let b = client.open_account().unwrap();
        client.mint(&treasury, &a, USD, 10).unwrap();
        assert_eq!(
            client.transfer(&a, &b, USD, 11).unwrap_err(),
            ClientError::Status(Status::InsufficientFunds)
        );
        assert_eq!(client.balance(&a, USD).unwrap(), 10);
        runner.stop();
    }

    #[test]
    fn transfer_needs_write_on_source_only() {
        let (_n, runner, client, treasury) = setup();
        let a = client.open_account().unwrap();
        let b = client.open_account().unwrap();
        client.mint(&treasury, &a, USD, 100).unwrap();
        // Read-only cap on the source: refused.
        let a_ro = client.service().restrict(&a, Rights::READ).unwrap();
        assert_eq!(
            client.transfer(&a_ro, &b, USD, 1).unwrap_err(),
            ClientError::Status(Status::RightsViolation)
        );
        // Deposit-only (no-rights) cap on the destination: fine.
        let b_none = client.service().restrict(&b, Rights::NONE).unwrap();
        client.transfer(&a, &b_none, USD, 5).unwrap();
        assert_eq!(client.balance(&b, USD).unwrap(), 5);
        runner.stop();
    }

    #[test]
    fn failed_deposit_rolls_back_withdrawal() {
        let (_n, runner, client, treasury) = setup();
        let a = client.open_account().unwrap();
        client.mint(&treasury, &a, USD, 100).unwrap();
        let b = client.open_account().unwrap();
        let dead_b = b.with_check(b.check ^ 1); // forged destination
        assert!(client.transfer(&a, &dead_b, USD, 50).is_err());
        assert_eq!(client.balance(&a, USD).unwrap(), 100, "rolled back");
        runner.stop();
    }

    #[test]
    fn conversion_between_convertible_currencies() {
        let (_n, runner, client, treasury) = setup();
        let a = client.open_account().unwrap();
        client.mint(&treasury, &a, USD, 300).unwrap();
        // 300 dollars at 1 base each = 300 base = 2 yen (150 base each).
        let credited = client.convert(&a, USD, YEN, 300).unwrap();
        assert_eq!(credited, 2);
        assert_eq!(client.balance(&a, USD).unwrap(), 0);
        assert_eq!(client.balance(&a, YEN).unwrap(), 2);
        runner.stop();
    }

    #[test]
    fn inconvertible_currency_refuses_conversion() {
        let (_n, runner, client, treasury) = setup();
        let a = client.open_account().unwrap();
        client.mint(&treasury, &a, PAGE, 10).unwrap();
        assert_eq!(
            client.convert(&a, PAGE, USD, 5).unwrap_err(),
            ClientError::Status(Status::Unsupported)
        );
        runner.stop();
    }

    #[test]
    fn unknown_currency_out_of_range() {
        let (_n, runner, client, _t) = setup();
        let a = client.open_account().unwrap();
        assert_eq!(
            client.balance(&a, CurrencyId(99)).unwrap_err(),
            ClientError::Status(Status::OutOfRange)
        );
        runner.stop();
    }

    #[test]
    fn statement_records_history() {
        let (_n, runner, client, treasury) = setup();
        let a = client.open_account().unwrap();
        let b = client.open_account().unwrap();
        client.mint(&treasury, &a, USD, 100).unwrap();
        client.transfer(&a, &b, USD, 30).unwrap();
        client.convert(&a, USD, YEN, 70).unwrap(); // 70 base = 0 yen
        let hist = client.statement(&a).unwrap();
        assert_eq!(
            hist[0],
            StatementEntry {
                kind: EntryKind::Mint,
                currency: USD,
                amount: 100
            }
        );
        assert_eq!(
            hist[1],
            StatementEntry {
                kind: EntryKind::Debit,
                currency: USD,
                amount: 30
            }
        );
        assert_eq!(hist[2].kind, EntryKind::ConvertOut);
        assert_eq!(hist[3].kind, EntryKind::ConvertIn);
        let hist_b = client.statement(&b).unwrap();
        assert_eq!(
            hist_b,
            vec![StatementEntry {
                kind: EntryKind::Credit,
                currency: USD,
                amount: 30
            }]
        );
        runner.stop();
    }

    #[test]
    fn statement_history_is_bounded() {
        let (_n, runner, client, treasury) = setup();
        let a = client.open_account().unwrap();
        for _ in 0..100 {
            client.mint(&treasury, &a, USD, 1).unwrap();
        }
        let hist = client.statement(&a).unwrap();
        assert_eq!(hist.len(), 64, "history must be bounded");
        runner.stop();
    }

    #[test]
    fn statement_requires_read() {
        let (_n, runner, client, _t) = setup();
        let a = client.open_account().unwrap();
        let none = client.service().restrict(&a, Rights::NONE).unwrap();
        assert_eq!(
            client.statement(&none).unwrap_err(),
            ClientError::Status(Status::RightsViolation)
        );
        runner.stop();
    }

    #[test]
    fn close_account() {
        let (_n, runner, client, _t) = setup();
        let a = client.open_account().unwrap();
        client.close(&a).unwrap();
        assert!(client.balance(&a, USD).is_err());
        runner.stop();
    }
}
