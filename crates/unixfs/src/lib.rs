//! A capability-based **UNIX-like file system** (the third file system
//! of §3.5, "to ease the problem of moving existing applications from
//! UNIX to Amoeba").
//!
//! Files have i-node-style metadata and their data lives in raw blocks
//! obtained from the **block server** — the UNIX server is itself an
//! ordinary block-server *client*, demonstrating §3.2's claim that
//! splitting the block server off lets "any user implement any kind of
//! special-purpose file system". Directory entries map names to
//! capabilities, and the OBJECT field of a capability plays the role of
//! the i-number ("for a UNIX-like file server, the object number would
//! be the i-number").
//!
//! # Example
//!
//! ```
//! use amoeba_block::{BlockServer, DiskConfig};
//! use amoeba_cap::schemes::SchemeKind;
//! use amoeba_net::Network;
//! use amoeba_server::ServiceRunner;
//! use amoeba_unixfs::{UnixFsClient, UnixFsServer};
//!
//! let net = Network::new();
//! let disk = ServiceRunner::spawn_open(
//!     &net, BlockServer::new(DiskConfig::small(), SchemeKind::OneWay));
//! let fs_server = UnixFsServer::new(&net, disk.put_port(), SchemeKind::Commutative);
//! let fs_runner = ServiceRunner::spawn_open(&net, fs_server);
//! let fs = UnixFsClient::open(&net, fs_runner.put_port());
//!
//! let root = fs.root().unwrap();
//! let dir = fs.mkdir(&root, "home").unwrap();
//! let file = fs.create(&dir, "notes.txt").unwrap();
//! fs.write(&file, 0, b"unix on amoeba").unwrap();
//! let found = fs.lookup_path(&root, "home/notes.txt").unwrap();
//! assert_eq!(&fs.read(&found, 0, 14).unwrap(), b"unix on amoeba");
//! fs_runner.stop();
//! disk.stop();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use amoeba_block::BlockClient;
use amoeba_cap::schemes::SchemeKind;
use amoeba_cap::{Capability, Rights};
use amoeba_net::{Network, Port};
use amoeba_server::proto::{Reply, Request, Status};
use amoeba_server::{
    wire, ClientError, ObjectLocks, ObjectTable, RequestCtx, Service, ServiceClient,
};
use bytes::Bytes;
use std::collections::BTreeMap;

/// UNIX-file-system operation codes.
pub mod ops {
    /// The root directory capability; anonymous.
    pub const ROOT: u32 = 1;
    /// Create an empty file in a directory. Params: `str name`.
    pub const CREATE: u32 = 2;
    /// Create a subdirectory. Params: `str name`.
    pub const MKDIR: u32 = 3;
    /// Look up one name. Params: `str name`. Reply: capability.
    pub const LOOKUP: u32 = 4;
    /// List a directory. Reply: `u32 n`, n × (`str`, `u32 kind`).
    pub const READDIR: u32 = 5;
    /// Remove a name (frees files; directories must be empty).
    /// Params: `str name`.
    pub const UNLINK: u32 = 6;
    /// Read file bytes. Params: `u64 offset`, `u32 len`.
    pub const READ: u32 = 7;
    /// Write file bytes (extends). Params: `u64 offset`, bytes.
    pub const WRITE: u32 = 8;
    /// Stat. Reply: `u32 kind` (0 file, 1 dir), `u64 size`,
    /// `u32 blocks`.
    pub const STAT: u32 = 9;
    /// Rename within a directory. Params: `str from`, `str to`.
    pub const RENAME: u32 = 10;
    /// Truncate a file to `u64 size` (frees whole blocks past the end).
    pub const TRUNCATE: u32 = 11;
}

/// What an i-node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// A regular file.
    File,
    /// A directory.
    Dir,
}

#[derive(Debug)]
enum Node {
    File {
        size: u64,
        /// Full-rights block capabilities, private to this server.
        blocks: Vec<Capability>,
    },
    Dir {
        entries: BTreeMap<String, Capability>,
    },
}

/// Stat result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stat {
    /// File or directory.
    pub kind: NodeKind,
    /// Size in bytes (0 for directories).
    pub size: u64,
    /// Allocated blocks (0 for directories).
    pub blocks: u32,
}

/// The UNIX-like file server.
#[derive(Debug)]
pub struct UnixFsServer {
    table: ObjectTable<Node>,
    /// The block-server client. The RPC client demuxes concurrent
    /// transactions, so reads use it lock-free; mutating operations
    /// serialise **per inode** on `inode_locks` because they snapshot
    /// inode metadata, touch the disk, then write the metadata back —
    /// writers to distinct files share no metadata and run in parallel
    /// across the worker pool.
    disk: BlockClient,
    inode_locks: ObjectLocks,
    block_size: u32,
    root: Option<Capability>,
}

impl UnixFsServer {
    /// Creates the server as a client of the block server at
    /// `disk_port`.
    ///
    /// # Panics
    /// Panics if the block server cannot be reached to learn its
    /// geometry.
    pub fn new(net: &Network, disk_port: Port, scheme: SchemeKind) -> UnixFsServer {
        let disk = BlockClient::open(net, disk_port);
        let block_size = disk
            .statfs()
            .expect("block server must be reachable at construction")
            .block_size;
        UnixFsServer {
            table: ObjectTable::unbound(scheme.instantiate()),
            disk,
            inode_locks: ObjectLocks::default(),
            block_size,
            root: None,
        }
    }

    fn dir_insert(&self, req: &Request, node: Node, name: String) -> Reply {
        if name.is_empty() || name.contains('/') {
            return Reply::status(Status::BadRequest);
        }
        // Create the inode first, then claim the name with a single
        // atomic check-and-insert on the directory: concurrent inserts
        // of the same name cannot both pass the duplicate check (one
        // wins, the loser's inode is deleted below). The parent
        // disappearing between the two steps is handled the same way.
        let (_, new_cap) = self.table.create(node);
        let inserted = self
            .table
            .with_object_mut(&req.cap, Rights::WRITE, |n| match n {
                Node::Dir { entries } => {
                    if entries.contains_key(&name) {
                        Err(Status::Conflict)
                    } else {
                        entries.insert(name.clone(), new_cap);
                        Ok(())
                    }
                }
                Node::File { .. } => Err(Status::BadRequest),
            });
        match inserted {
            Ok(Ok(())) => Reply::ok(wire::Writer::new().cap(&new_cap).finish()),
            Ok(Err(status)) => {
                let _ = self.table.delete(&new_cap, Rights::NONE);
                Reply::status(status)
            }
            Err(e) => {
                let _ = self.table.delete(&new_cap, Rights::NONE);
                Reply::status(e.into())
            }
        }
    }

    fn lookup(&self, req: &Request) -> Reply {
        let Some(name) = wire::Reader::new(&req.params).str() else {
            return Reply::status(Status::BadRequest);
        };
        let found = self.table.with_object(&req.cap, Rights::READ, |n| match n {
            Node::Dir { entries } => Some(entries.get(&name).copied()),
            Node::File { .. } => None,
        });
        match found {
            Ok(Some(Some(cap))) => Reply::ok(wire::Writer::new().cap(&cap).finish()),
            Ok(Some(None)) => Reply::status(Status::NotFound),
            Ok(None) => Reply::status(Status::BadRequest),
            Err(e) => Reply::status(e.into()),
        }
    }

    fn readdir(&self, req: &Request) -> Reply {
        let listing = self.table.with_object(&req.cap, Rights::READ, |n| match n {
            Node::Dir { entries } => Some(entries.clone()),
            Node::File { .. } => None,
        });
        let entries = match listing {
            Ok(Some(e)) => e,
            Ok(None) => return Reply::status(Status::BadRequest),
            Err(e) => return Reply::status(e.into()),
        };
        let mut w = wire::Writer::new().u32(entries.len() as u32);
        for (name, cap) in &entries {
            let kind = self
                .table
                .with_data(cap.object, |n| matches!(n, Node::Dir { .. }) as u32)
                .unwrap_or(0);
            w = w.str(name).u32(kind);
        }
        Reply::ok(w.finish())
    }

    fn unlink(&self, req: &Request) -> Reply {
        let Some(name) = wire::Reader::new(&req.params).str() else {
            return Reply::status(Status::BadRequest);
        };
        // Atomically claim the unlink by removing the entry first:
        // concurrent unlinks of the same name cannot both proceed, and
        // a concurrent insert of the same name either lands before the
        // removal (and is unlinked with it) or after (and survives).
        let removed = self
            .table
            .with_object_mut(&req.cap, Rights::WRITE, |n| match n {
                Node::Dir { entries } => Some(entries.remove(&name)),
                Node::File { .. } => None,
            });
        let victim_cap = match removed {
            Ok(Some(Some(cap))) => cap,
            Ok(Some(None)) => return Reply::status(Status::NotFound),
            Ok(None) => return Reply::status(Status::BadRequest),
            Err(e) => return Reply::status(e.into()),
        };
        // Directories must be empty; files give their blocks back. A
        // non-empty directory gets its entry restored. (A bearer of the
        // victim's own capability can still insert into it between this
        // check and the delete — inherent to capability semantics; such
        // a child becomes unreachable exactly as if inserted into a
        // directory whose last link was already gone.)
        let blocks = match self.table.with_data(victim_cap.object, |n| match n {
            Node::Dir { entries } => {
                if entries.is_empty() {
                    Some(Vec::new())
                } else {
                    None
                }
            }
            Node::File { blocks, .. } => Some(blocks.clone()),
        }) {
            Some(Some(b)) => b,
            Some(None) => {
                let _ = self.table.with_object_mut(&req.cap, Rights::WRITE, |n| {
                    if let Node::Dir { entries } = n {
                        entries.entry(name.clone()).or_insert(victim_cap);
                    }
                });
                return Reply::status(Status::Conflict);
            }
            None => Vec::new(), // dangling entry: just drop it
        };
        // Destroy the inode and free its disk blocks in one batch
        // frame, waiting out any in-flight writer of this inode
        // (unrelated files unaffected).
        let _ = self.table.delete(&victim_cap, Rights::NONE);
        let _writing = self.inode_locks.lock(victim_cap.object);
        let _ = self.disk.free_many(&blocks);
        Reply::ok(Bytes::new())
    }

    fn read(&self, req: &Request) -> Reply {
        let mut r = wire::Reader::new(&req.params);
        let (Some(offset), Some(len)) = (r.u64(), r.u32()) else {
            return Reply::status(Status::BadRequest);
        };
        let meta = self.table.with_object(&req.cap, Rights::READ, |n| match n {
            Node::File { size, blocks } => Some((*size, blocks.clone())),
            Node::Dir { .. } => None,
        });
        let (size, blocks) = match meta {
            Ok(Some(m)) => m,
            Ok(None) => return Reply::status(Status::BadRequest),
            Err(e) => return Reply::status(e.into()),
        };
        let start = offset.min(size);
        let end = offset.saturating_add(len as u64).min(size);
        let bs = self.block_size as u64;
        // Plan the whole range first — allocated blocks become one
        // gather batch (a single frame however many blocks the read
        // spans), holes stay local zeros. No lock on the read path: the
        // RPC client demuxes concurrent transactions and reads never
        // touch inode metadata.
        enum Seg {
            Disk,
            Hole(u32),
        }
        let mut segs = Vec::new();
        let mut gathers: Vec<(Capability, u32, u32)> = Vec::new();
        let mut pos = start;
        while pos < end {
            let block_idx = (pos / bs) as usize;
            let within = (pos % bs) as u32;
            let take = ((bs - within as u64).min(end - pos)) as u32;
            match blocks.get(block_idx) {
                Some(bcap) => {
                    segs.push(Seg::Disk);
                    gathers.push((*bcap, within, take));
                }
                None => segs.push(Seg::Hole(take)),
            }
            pos += take as u64;
        }
        let bodies = match self.disk.read_many(&gathers) {
            Ok(b) => b,
            Err(_) => return Reply::status(Status::NoSpace),
        };
        let mut bodies = bodies.into_iter();
        let mut out = Vec::with_capacity((end - start) as usize);
        for seg in segs {
            match seg {
                Seg::Disk => match bodies.next() {
                    Some(body) => out.extend_from_slice(&body),
                    None => return Reply::status(Status::NoSpace),
                },
                Seg::Hole(take) => out.extend(std::iter::repeat_n(0u8, take as usize)),
            }
        }
        Reply::ok(Bytes::from(out))
    }

    fn write(&self, req: &Request) -> Reply {
        let mut r = wire::Reader::new(&req.params);
        let (Some(offset), Some(data)) = (r.u64(), r.bytes()) else {
            return Reply::status(Status::BadRequest);
        };
        // Serialise writers *of this inode* before snapshotting it so
        // concurrent writers to one file never leak blocks or lose
        // metadata; writers to other files take other stripes.
        let _writing = self.inode_locks.lock(req.cap.object);
        let meta = self
            .table
            .with_object(&req.cap, Rights::WRITE, |n| match n {
                Node::File { size, blocks } => Some((*size, blocks.clone())),
                Node::Dir { .. } => None,
            });
        let (old_size, mut blocks) = match meta {
            Ok(Some(m)) => m,
            Ok(None) => return Reply::status(Status::BadRequest),
            Err(e) => return Reply::status(e.into()),
        };
        let bs = self.block_size as u64;
        let end = match offset.checked_add(data.len() as u64) {
            Some(e) => e,
            None => return Reply::status(Status::OutOfRange),
        };
        // Allocate every missing block in ONE batch frame. Truncate
        // frees per block, so the inode keeps independent single-block
        // capabilities rather than an extent; `alloc_many` gives back
        // any partial run itself, so a failure here leaks nothing.
        let needed_blocks = (end.div_ceil(bs)) as usize;
        let original_blocks = blocks.len();
        let free_new = |blocks: &[Capability]| {
            let _ = self.disk.free_many(&blocks[original_blocks..]);
        };
        if needed_blocks > original_blocks {
            match self.disk.alloc_many(needed_blocks - original_blocks) {
                Ok(fresh) => blocks.extend(fresh),
                Err(e) => {
                    return Reply::status(match e {
                        ClientError::Status(s) => s,
                        _ => Status::NoSpace,
                    });
                }
            }
        }
        // Scatter the data across blocks in one batch frame.
        let mut scatters: Vec<(Capability, u32, &[u8])> = Vec::new();
        let mut pos = offset;
        let mut remaining = data;
        while !remaining.is_empty() {
            let block_idx = (pos / bs) as usize;
            let within = (pos % bs) as u32;
            let take = ((bs - within as u64) as usize).min(remaining.len());
            scatters.push((blocks[block_idx], within, &remaining[..take]));
            pos += take as u64;
            remaining = &remaining[take..];
        }
        if let Err(e) = self.disk.write_many(&scatters) {
            free_new(&blocks);
            return Reply::status(match e {
                ClientError::Status(s) => s,
                _ => Status::NoSpace,
            });
        }
        let new_size = old_size.max(end);
        let update = self.table.with_object_mut(&req.cap, Rights::WRITE, |n| {
            if let Node::File { size, blocks: b } = n {
                *size = new_size;
                *b = blocks.clone();
            }
        });
        match update {
            Ok(()) => Reply::ok(wire::Writer::new().u64(new_size).finish()),
            Err(e) => {
                free_new(&blocks);
                Reply::status(e.into())
            }
        }
    }

    fn rename(&self, req: &Request) -> Reply {
        let mut r = wire::Reader::new(&req.params);
        let (Some(from), Some(to)) = (r.str(), r.str()) else {
            return Reply::status(Status::BadRequest);
        };
        if to.is_empty() || to.contains('/') {
            return Reply::status(Status::BadRequest);
        }
        let result = self
            .table
            .with_object_mut(&req.cap, Rights::WRITE, |n| match n {
                Node::Dir { entries } => {
                    if from == to {
                        return if entries.contains_key(&from) {
                            Ok(())
                        } else {
                            Err(Status::NotFound)
                        };
                    }
                    if entries.contains_key(&to) {
                        return Err(Status::Conflict);
                    }
                    match entries.remove(&from) {
                        Some(cap) => {
                            entries.insert(to.clone(), cap);
                            Ok(())
                        }
                        None => Err(Status::NotFound),
                    }
                }
                Node::File { .. } => Err(Status::BadRequest),
            });
        match result {
            Ok(Ok(())) => Reply::ok(Bytes::new()),
            Ok(Err(status)) => Reply::status(status),
            Err(e) => Reply::status(e.into()),
        }
    }

    fn truncate(&self, req: &Request) -> Reply {
        let Some(new_size) = wire::Reader::new(&req.params).u64() else {
            return Reply::status(Status::BadRequest);
        };
        let bs = self.block_size as u64;
        let result = self
            .table
            .with_object_mut(&req.cap, Rights::WRITE, |n| match n {
                Node::File { size, blocks } => {
                    if new_size > *size {
                        return Err(Status::OutOfRange); // truncate shrinks only
                    }
                    *size = new_size;
                    let keep = new_size.div_ceil(bs) as usize;
                    Ok(blocks.split_off(keep))
                }
                Node::Dir { .. } => Err(Status::BadRequest),
            });
        match result {
            Ok(Ok(freed)) => {
                let _writing = self.inode_locks.lock(req.cap.object);
                let _ = self.disk.free_many(&freed);
                Reply::ok(Bytes::new())
            }
            Ok(Err(status)) => Reply::status(status),
            Err(e) => Reply::status(e.into()),
        }
    }

    fn stat(&self, req: &Request) -> Reply {
        match self.table.with_object(&req.cap, Rights::READ, |n| match n {
            Node::File { size, blocks } => (0u32, *size, blocks.len() as u32),
            Node::Dir { entries } => (1u32, entries.len() as u64, 0),
        }) {
            Ok((kind, size, blocks)) => {
                Reply::ok(wire::Writer::new().u32(kind).u64(size).u32(blocks).finish())
            }
            Err(e) => Reply::status(e.into()),
        }
    }
}

impl Service for UnixFsServer {
    fn bind(&mut self, put_port: Port) {
        self.table.set_port(put_port);
        let (_, root) = self.table.create(Node::Dir {
            entries: BTreeMap::new(),
        });
        self.root = Some(root);
    }

    fn handle(&self, req: &Request, _ctx: &RequestCtx) -> Reply {
        if let Some(reply) = self.table.handle_std(req) {
            return reply;
        }
        match req.command {
            ops::ROOT => match self.root {
                Some(root) => Reply::ok(wire::Writer::new().cap(&root).finish()),
                None => Reply::status(Status::NoSuchObject),
            },
            ops::CREATE => {
                let Some(name) = wire::Reader::new(&req.params).str() else {
                    return Reply::status(Status::BadRequest);
                };
                self.dir_insert(
                    req,
                    Node::File {
                        size: 0,
                        blocks: Vec::new(),
                    },
                    name,
                )
            }
            ops::MKDIR => {
                let Some(name) = wire::Reader::new(&req.params).str() else {
                    return Reply::status(Status::BadRequest);
                };
                self.dir_insert(
                    req,
                    Node::Dir {
                        entries: BTreeMap::new(),
                    },
                    name,
                )
            }
            ops::LOOKUP => self.lookup(req),
            ops::READDIR => self.readdir(req),
            ops::UNLINK => self.unlink(req),
            ops::READ => self.read(req),
            ops::WRITE => self.write(req),
            ops::STAT => self.stat(req),
            ops::RENAME => self.rename(req),
            ops::TRUNCATE => self.truncate(req),
            _ => Reply::status(Status::BadCommand),
        }
    }
}

/// A typed client for the UNIX-like file system.
#[derive(Debug)]
pub struct UnixFsClient {
    svc: ServiceClient,
    port: Port,
}

impl UnixFsClient {
    /// A client on a fresh open-interface machine.
    pub fn open(net: &Network, port: Port) -> UnixFsClient {
        UnixFsClient {
            svc: ServiceClient::open(net),
            port,
        }
    }

    /// A client over an existing [`ServiceClient`].
    pub fn with_service(svc: ServiceClient, port: Port) -> UnixFsClient {
        UnixFsClient { svc, port }
    }

    /// The root directory capability.
    ///
    /// # Errors
    /// Transport errors.
    pub fn root(&self) -> Result<Capability, ClientError> {
        let body = self
            .svc
            .call_anonymous(self.port, ops::ROOT, Bytes::new())?;
        wire::Reader::new(&body).cap().ok_or(ClientError::Malformed)
    }

    /// Creates an empty file named `name` in `dir`.
    ///
    /// # Errors
    /// `Conflict` if the name exists; rights/validation errors.
    pub fn create(&self, dir: &Capability, name: &str) -> Result<Capability, ClientError> {
        let body = self
            .svc
            .call(dir, ops::CREATE, wire::Writer::new().str(name).finish())?;
        wire::Reader::new(&body).cap().ok_or(ClientError::Malformed)
    }

    /// Creates a subdirectory.
    ///
    /// # Errors
    /// As for [`create`](Self::create).
    pub fn mkdir(&self, dir: &Capability, name: &str) -> Result<Capability, ClientError> {
        let body = self
            .svc
            .call(dir, ops::MKDIR, wire::Writer::new().str(name).finish())?;
        wire::Reader::new(&body).cap().ok_or(ClientError::Malformed)
    }

    /// Looks up one name in a directory.
    ///
    /// # Errors
    /// `NotFound`; rights/validation errors.
    pub fn lookup(&self, dir: &Capability, name: &str) -> Result<Capability, ClientError> {
        let body = self
            .svc
            .call(dir, ops::LOOKUP, wire::Writer::new().str(name).finish())?;
        wire::Reader::new(&body).cap().ok_or(ClientError::Malformed)
    }

    /// Walks a `/`-separated path from `dir`.
    ///
    /// # Errors
    /// `NotFound` at the failing segment.
    pub fn lookup_path(&self, dir: &Capability, path: &str) -> Result<Capability, ClientError> {
        let mut current = *dir;
        for seg in path.split('/').filter(|s| !s.is_empty()) {
            current = self.lookup(&current, seg)?;
        }
        Ok(current)
    }

    /// Lists a directory as (name, kind) pairs.
    ///
    /// # Errors
    /// Rights/validation errors.
    pub fn readdir(&self, dir: &Capability) -> Result<Vec<(String, NodeKind)>, ClientError> {
        let body = self.svc.call(dir, ops::READDIR, Bytes::new())?;
        let mut r = wire::Reader::new(&body);
        let n = r.u32().ok_or(ClientError::Malformed)?;
        let mut out = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let name = r.str().ok_or(ClientError::Malformed)?;
            let kind = match r.u32().ok_or(ClientError::Malformed)? {
                0 => NodeKind::File,
                _ => NodeKind::Dir,
            };
            out.push((name, kind));
        }
        Ok(out)
    }

    /// Removes `name` from `dir` (files are freed; directories must be
    /// empty).
    ///
    /// # Errors
    /// `NotFound`, `Conflict` for non-empty directories.
    pub fn unlink(&self, dir: &Capability, name: &str) -> Result<(), ClientError> {
        self.svc
            .call(dir, ops::UNLINK, wire::Writer::new().str(name).finish())?;
        Ok(())
    }

    /// Reads up to `len` bytes at `offset` (short at EOF).
    ///
    /// # Errors
    /// Rights/validation errors.
    pub fn read(&self, file: &Capability, offset: u64, len: u32) -> Result<Vec<u8>, ClientError> {
        let body = self.svc.call(
            file,
            ops::READ,
            wire::Writer::new().u64(offset).u32(len).finish(),
        )?;
        Ok(body.to_vec())
    }

    /// Writes at `offset`, extending the file; returns the new size.
    ///
    /// # Errors
    /// `NoSpace` when the underlying disk fills.
    pub fn write(&self, file: &Capability, offset: u64, data: &[u8]) -> Result<u64, ClientError> {
        let body = self.svc.call(
            file,
            ops::WRITE,
            wire::Writer::new().u64(offset).bytes(data).finish(),
        )?;
        wire::Reader::new(&body).u64().ok_or(ClientError::Malformed)
    }

    /// Stats a file or directory.
    ///
    /// # Errors
    /// Rights/validation errors.
    pub fn stat(&self, cap: &Capability) -> Result<Stat, ClientError> {
        let body = self.svc.call(cap, ops::STAT, Bytes::new())?;
        let mut r = wire::Reader::new(&body);
        match (r.u32(), r.u64(), r.u32()) {
            (Some(kind), Some(size), Some(blocks)) => Ok(Stat {
                kind: if kind == 0 {
                    NodeKind::File
                } else {
                    NodeKind::Dir
                },
                size,
                blocks,
            }),
            _ => Err(ClientError::Malformed),
        }
    }

    /// Renames `from` to `to` within `dir`.
    ///
    /// # Errors
    /// `NotFound`/`Conflict` as for the directory server.
    pub fn rename(&self, dir: &Capability, from: &str, to: &str) -> Result<(), ClientError> {
        self.svc.call(
            dir,
            ops::RENAME,
            wire::Writer::new().str(from).str(to).finish(),
        )?;
        Ok(())
    }

    /// Truncates `file` to `size` bytes (shrink only); whole blocks past
    /// the new end are returned to the block server.
    ///
    /// # Errors
    /// `OutOfRange` for growth; rights/validation errors.
    pub fn truncate(&self, file: &Capability, size: u64) -> Result<(), ClientError> {
        self.svc
            .call(file, ops::TRUNCATE, wire::Writer::new().u64(size).finish())?;
        Ok(())
    }

    /// Access to the generic capability operations.
    pub fn service(&self) -> &ServiceClient {
        &self.svc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amoeba_block::{BlockServer, DiskConfig};
    use amoeba_server::ServiceRunner;

    fn setup_with(cfg: DiskConfig) -> (Network, ServiceRunner, ServiceRunner, UnixFsClient) {
        let net = Network::new();
        let disk = ServiceRunner::spawn_open(&net, BlockServer::new(cfg, SchemeKind::OneWay));
        let server = UnixFsServer::new(&net, disk.put_port(), SchemeKind::Commutative);
        let fs_runner = ServiceRunner::spawn_open(&net, server);
        let client = UnixFsClient::open(&net, fs_runner.put_port());
        (net, disk, fs_runner, client)
    }

    fn setup() -> (Network, ServiceRunner, ServiceRunner, UnixFsClient) {
        setup_with(DiskConfig {
            block_size: 256,
            capacity_blocks: 64,
        })
    }

    #[test]
    fn tree_construction_and_path_walk() {
        let (_n, disk, fsr, fs) = setup();
        let root = fs.root().unwrap();
        let usr = fs.mkdir(&root, "usr").unwrap();
        let bin = fs.mkdir(&usr, "bin").unwrap();
        let ls = fs.create(&bin, "ls").unwrap();
        fs.write(&ls, 0, b"#!ls binary").unwrap();
        let found = fs.lookup_path(&root, "usr/bin/ls").unwrap();
        assert_eq!(found, ls);
        assert_eq!(&fs.read(&found, 0, 11).unwrap(), b"#!ls binary");
        fsr.stop();
        disk.stop();
    }

    #[test]
    fn multi_block_file_io() {
        let (_n, disk, fsr, fs) = setup();
        let root = fs.root().unwrap();
        let f = fs.create(&root, "big").unwrap();
        // 1000 bytes across four 256-byte blocks, written in odd chunks.
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        let mut off = 0usize;
        for chunk in data.chunks(313) {
            fs.write(&f, off as u64, chunk).unwrap();
            off += chunk.len();
        }
        assert_eq!(fs.stat(&f).unwrap().size, 1000);
        assert_eq!(fs.stat(&f).unwrap().blocks, 4);
        assert_eq!(fs.read(&f, 0, 1000).unwrap(), data);
        // Unaligned read spanning a block boundary.
        assert_eq!(fs.read(&f, 250, 12).unwrap(), data[250..262]);
        fsr.stop();
        disk.stop();
    }

    #[test]
    fn write_at_offset_creates_hole() {
        let (_n, disk, fsr, fs) = setup();
        let root = fs.root().unwrap();
        let f = fs.create(&root, "sparse").unwrap();
        fs.write(&f, 600, b"tail").unwrap();
        assert_eq!(fs.stat(&f).unwrap().size, 604);
        let head = fs.read(&f, 0, 600).unwrap();
        assert!(head.iter().all(|&b| b == 0));
        fsr.stop();
        disk.stop();
    }

    #[test]
    fn unlink_frees_disk_blocks() {
        let (net, disk, fsr, fs) = setup();
        let stats = BlockClient::open(&net, disk.put_port());
        let root = fs.root().unwrap();
        let f = fs.create(&root, "victim").unwrap();
        fs.write(&f, 0, &vec![7u8; 1024]).unwrap(); // 4 blocks
        assert_eq!(stats.statfs().unwrap().allocated_blocks, 4);
        fs.unlink(&root, "victim").unwrap();
        assert_eq!(stats.statfs().unwrap().allocated_blocks, 0);
        assert_eq!(
            fs.lookup(&root, "victim").unwrap_err(),
            ClientError::Status(Status::NotFound)
        );
        fsr.stop();
        disk.stop();
    }

    #[test]
    fn unlink_nonempty_directory_refused() {
        let (_n, disk, fsr, fs) = setup();
        let root = fs.root().unwrap();
        let d = fs.mkdir(&root, "d").unwrap();
        fs.create(&d, "f").unwrap();
        assert_eq!(
            fs.unlink(&root, "d").unwrap_err(),
            ClientError::Status(Status::Conflict)
        );
        fs.unlink(&d, "f").unwrap();
        fs.unlink(&root, "d").unwrap();
        fsr.stop();
        disk.stop();
    }

    #[test]
    fn readdir_kinds() {
        let (_n, disk, fsr, fs) = setup();
        let root = fs.root().unwrap();
        fs.mkdir(&root, "dir").unwrap();
        fs.create(&root, "file").unwrap();
        let listing = fs.readdir(&root).unwrap();
        assert_eq!(
            listing,
            vec![
                ("dir".to_string(), NodeKind::Dir),
                ("file".to_string(), NodeKind::File),
            ]
        );
        fsr.stop();
        disk.stop();
    }

    #[test]
    fn disk_exhaustion_surfaces_as_no_space() {
        let (_n, disk, fsr, fs) = setup_with(DiskConfig {
            block_size: 128,
            capacity_blocks: 2,
        });
        let root = fs.root().unwrap();
        let f = fs.create(&root, "hog").unwrap();
        fs.write(&f, 0, &vec![1u8; 256]).unwrap(); // both blocks
        assert_eq!(
            fs.write(&f, 256, b"more").unwrap_err(),
            ClientError::Status(Status::NoSpace)
        );
        fsr.stop();
        disk.stop();
    }

    #[test]
    fn read_only_file_cap_cannot_write() {
        let (_n, disk, fsr, fs) = setup();
        let root = fs.root().unwrap();
        let f = fs.create(&root, "f").unwrap();
        fs.write(&f, 0, b"data").unwrap();
        let ro = fs.service().restrict(&f, Rights::READ).unwrap();
        assert_eq!(&fs.read(&ro, 0, 4).unwrap(), b"data");
        assert_eq!(
            fs.write(&ro, 0, b"nope").unwrap_err(),
            ClientError::Status(Status::RightsViolation)
        );
        fsr.stop();
        disk.stop();
    }

    #[test]
    fn rename_moves_entries() {
        let (_n, disk, fsr, fs) = setup();
        let root = fs.root().unwrap();
        let f = fs.create(&root, "draft.txt").unwrap();
        fs.write(&f, 0, b"words").unwrap();
        fs.rename(&root, "draft.txt", "final.txt").unwrap();
        assert_eq!(fs.lookup(&root, "final.txt").unwrap(), f);
        assert_eq!(
            fs.lookup(&root, "draft.txt").unwrap_err(),
            ClientError::Status(Status::NotFound)
        );
        fsr.stop();
        disk.stop();
    }

    #[test]
    fn truncate_frees_blocks_and_clamps_reads() {
        let (net, disk, fsr, fs) = setup();
        let stats = BlockClient::open(&net, disk.put_port());
        let root = fs.root().unwrap();
        let f = fs.create(&root, "log").unwrap();
        fs.write(&f, 0, &vec![9u8; 1000]).unwrap(); // 4 × 256B blocks
        assert_eq!(stats.statfs().unwrap().allocated_blocks, 4);

        fs.truncate(&f, 300).unwrap(); // keep 2 blocks
        assert_eq!(stats.statfs().unwrap().allocated_blocks, 2);
        assert_eq!(fs.stat(&f).unwrap().size, 300);
        assert_eq!(fs.read(&f, 0, 2000).unwrap().len(), 300);

        // Growth via truncate is refused; writes still extend.
        assert_eq!(
            fs.truncate(&f, 301).unwrap_err(),
            ClientError::Status(Status::OutOfRange)
        );
        fs.write(&f, 300, b"more").unwrap();
        assert_eq!(fs.stat(&f).unwrap().size, 304);
        fsr.stop();
        disk.stop();
    }

    #[test]
    fn duplicate_create_conflicts() {
        let (_n, disk, fsr, fs) = setup();
        let root = fs.root().unwrap();
        fs.create(&root, "x").unwrap();
        assert_eq!(
            fs.create(&root, "x").unwrap_err(),
            ClientError::Status(Status::Conflict)
        );
        assert_eq!(
            fs.mkdir(&root, "x").unwrap_err(),
            ClientError::Status(Status::Conflict)
        );
        fsr.stop();
        disk.stop();
    }
}
