//! Services over **sealed** capability transport — §2.4 integrated with
//! the service framework.
//!
//! Under the software-protection model, capabilities never cross the
//! wire in the clear: the client seals the request's capability with
//! the matrix key for (client, server), and the server unseals it with
//! the key selected by the packet's **unforgeable source address**. A
//! replayed request from any other machine decrypts to garbage and the
//! service answers `Forged` without ever running.
//!
//! The sealed request format replaces the leading 16 capability bytes
//! of the standard format with the 16-byte ciphertext; commands and
//! parameters are unchanged, so the same [`Service`] implementations
//! run unmodified behind a sealed runner.
//!
//! ```text
//! client:  [DES_{M[C][S]}(capability) ‖ command ‖ params]  →
//! server:  source = C (stamped) → unseal with M[C][S] → dispatch
//! ```

use crate::proto::{null_cap, Reply, Request, Status};
use crate::service::{RequestCtx, Service};
use amoeba_cap::Capability;
use amoeba_net::{Endpoint, Network, Port, RecvError};
use amoeba_rpc::{Client, RpcConfig, ServerPort};
use amoeba_softprot::matrix::SealError;
use amoeba_softprot::{CapSealer, SealedCap};
use bytes::{Bytes, BytesMut};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Marker value in the sealed slot for capability-less requests
/// (CREATE etc.); sealing the null capability would needlessly leak a
/// known-plaintext pair per machine pair.
const ANONYMOUS: u128 = 0;

fn encode_sealed(sealed: u128, command: u32, params: &Bytes) -> Bytes {
    let mut buf = BytesMut::with_capacity(20 + params.len());
    buf.extend_from_slice(&sealed.to_be_bytes());
    buf.extend_from_slice(&command.to_be_bytes());
    buf.extend_from_slice(params);
    buf.freeze()
}

fn decode_sealed(data: &Bytes) -> Option<(u128, u32, Bytes)> {
    if data.len() < 20 {
        return None;
    }
    let sealed = u128::from_be_bytes(data[..16].try_into().ok()?);
    let command = u32::from_be_bytes(data[16..20].try_into().ok()?);
    Some((sealed, command, data.slice(20..)))
}

/// Serve one sealed request: unseal the capability slot with the key
/// selected by the packet's unforgeable source, dispatch, reply.
fn serve_sealed_one(
    service: &impl Service,
    sealer: &CapSealer,
    server: &amoeba_rpc::ServerPort,
    incoming: &amoeba_rpc::IncomingRequest,
) {
    let ctx = RequestCtx {
        source: incoming.source,
        signature: incoming.signature,
    };
    let reply = match decode_sealed(&incoming.payload) {
        None => Reply::status(Status::BadRequest),
        Some((sealed, command, params)) => {
            let cap = if sealed == ANONYMOUS {
                Ok(null_cap())
            } else {
                match sealer.unseal(SealedCap(sealed), incoming.source) {
                    Ok(cap) => Ok(cap),
                    Err(SealError::Garbage) => Err(Status::Forged),
                    Err(SealError::NoKey) => Err(Status::Forged),
                }
            };
            match cap {
                Ok(cap) => service.handle(
                    &Request {
                        cap,
                        command,
                        params,
                    },
                    &ctx,
                ),
                Err(status) => Reply::status(status),
            }
        }
    };
    // Same pooled-encode discipline as the plain dispatch path
    // (service.rs serve_one): reply bodies ride recycled buffers.
    let pool = server.buf_pool();
    let mut buf = pool.take();
    reply.encode_into(&mut buf);
    let Reply { body, .. } = reply;
    pool.release(body);
    server.reply(incoming, buf.freeze());
}

/// Runs a [`Service`] behind sealed-capability transport, on one or
/// more dispatch workers sharing the bound port.
#[derive(Debug)]
pub struct SealedServiceRunner {
    put_port: Port,
    machine: amoeba_net::MachineId,
    /// For waking reactor-parked workers at shutdown.
    reactor: Arc<amoeba_net::Reactor>,
    shutdown: Arc<AtomicBool>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl SealedServiceRunner {
    /// Binds `get_port` on `endpoint` and serves `service` on one
    /// worker, unsealing every incoming capability with `sealer` (keyed
    /// by packet source).
    pub fn spawn(
        endpoint: Endpoint,
        get_port: Port,
        service: impl Service,
        sealer: Arc<CapSealer>,
    ) -> SealedServiceRunner {
        Self::spawn_workers(endpoint, get_port, service, sealer, 1)
    }

    /// Like [`spawn`](Self::spawn) with a pool of `workers` threads
    /// draining the same bound port.
    ///
    /// # Panics
    /// Panics if `workers` is zero.
    pub fn spawn_workers(
        endpoint: Endpoint,
        get_port: Port,
        mut service: impl Service,
        sealer: Arc<CapSealer>,
        workers: usize,
    ) -> SealedServiceRunner {
        assert!(workers > 0, "a service needs at least one worker");
        let machine = endpoint.id();
        let server = ServerPort::bind(endpoint, get_port);
        let put_port = server.put_port();
        service.bind(put_port);
        let service = Arc::new(service);
        let server = Arc::new(server);
        let reactor = Arc::clone(server.endpoint().reactor());
        let shutdown = Arc::new(AtomicBool::new(false));
        let handles = (0..workers)
            .map(|_| {
                let service = Arc::clone(&service);
                let server = Arc::clone(&server);
                let sealer = Arc::clone(&sealer);
                let stop = Arc::clone(&shutdown);
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        // Bounded wait, mirroring ServiceRunner (a
                        // standing parked pump tightens virtual-clock
                        // fidelity; see the comment there).
                        match server.next_request_timeout(std::time::Duration::from_millis(20)) {
                            Ok(incoming) => {
                                serve_sealed_one(&*service, &sealer, &server, &incoming)
                            }
                            Err(RecvError::Timeout) => continue,
                            Err(RecvError::Disconnected) => break,
                        }
                    }
                })
            })
            .collect();
        SealedServiceRunner {
            put_port,
            machine,
            reactor,
            shutdown,
            handles,
        }
    }

    /// Attaches a fresh open-interface machine and serves on a random
    /// get-port.
    pub fn spawn_open(
        net: &Network,
        service: impl Service,
        sealer: Arc<CapSealer>,
    ) -> SealedServiceRunner {
        let endpoint = net.attach_open();
        let get_port = Port::random(&mut StdRng::from_entropy());
        Self::spawn(endpoint, get_port, service, sealer)
    }

    /// The published put-port.
    pub fn put_port(&self) -> Port {
        self.put_port
    }

    /// The machine the service runs on.
    pub fn machine(&self) -> amoeba_net::MachineId {
        self.machine
    }

    /// Number of dispatch workers serving this port.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Stops every worker and waits for them to exit.
    pub fn stop(mut self) {
        self.shutdown_now();
    }

    fn shutdown_now(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        // Workers may be event-parked on the reactor (virtual clock).
        self.reactor.notify();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for SealedServiceRunner {
    fn drop(&mut self) {
        self.shutdown_now();
    }
}

/// A client that seals every outgoing capability for the target server.
#[derive(Debug)]
pub struct SealedServiceClient {
    rpc: Client,
    sealer: Arc<CapSealer>,
    server_machine: amoeba_net::MachineId,
}

impl SealedServiceClient {
    /// A client on a fresh open-interface machine, sealing for
    /// `server_machine` with `sealer`.
    pub fn open(
        net: &Network,
        sealer: Arc<CapSealer>,
        server_machine: amoeba_net::MachineId,
    ) -> SealedServiceClient {
        SealedServiceClient {
            rpc: Client::new(net.attach_open()),
            sealer,
            server_machine,
        }
    }

    /// A client over an existing RPC client — required when the matrix
    /// keys were drawn for that endpoint's machine id (keys bind to
    /// machines, so the sealing client must *be* that machine).
    pub fn with_client(
        rpc: Client,
        sealer: Arc<CapSealer>,
        server_machine: amoeba_net::MachineId,
    ) -> SealedServiceClient {
        SealedServiceClient {
            rpc,
            sealer,
            server_machine,
        }
    }

    /// The sealer (e.g. to unseal capabilities arriving in replies).
    pub fn sealer(&self) -> &Arc<CapSealer> {
        &self.sealer
    }

    /// With explicit RPC configuration.
    pub fn open_with_config(
        net: &Network,
        config: RpcConfig,
        sealer: Arc<CapSealer>,
        server_machine: amoeba_net::MachineId,
    ) -> SealedServiceClient {
        SealedServiceClient {
            rpc: Client::with_config(net.attach_open(), config),
            sealer,
            server_machine,
        }
    }

    /// Invokes `command` with a sealed capability.
    ///
    /// # Errors
    /// As for [`ServiceClient::call`](crate::ServiceClient::call), plus
    /// `Malformed` if no matrix key is installed for the server.
    pub fn call(
        &self,
        port: Port,
        cap: &Capability,
        command: u32,
        params: Bytes,
    ) -> Result<Bytes, crate::ClientError> {
        let sealed = self
            .sealer
            .seal(cap, self.server_machine)
            .map_err(|_| crate::ClientError::Malformed)?;
        self.dispatch(port, sealed.0, command, params)
    }

    /// Invokes a capability-less command (CREATE and friends).
    ///
    /// # Errors
    /// As for [`call`](Self::call).
    pub fn call_anonymous(
        &self,
        port: Port,
        command: u32,
        params: Bytes,
    ) -> Result<Bytes, crate::ClientError> {
        self.dispatch(port, ANONYMOUS, command, params)
    }

    fn dispatch(
        &self,
        port: Port,
        sealed: u128,
        command: u32,
        params: Bytes,
    ) -> Result<Bytes, crate::ClientError> {
        let raw = self
            .rpc
            .trans(port, encode_sealed(sealed, command, &params))?;
        let reply = Reply::decode(&raw).ok_or(crate::ClientError::Malformed)?;
        if reply.status == Status::Ok {
            Ok(reply.body)
        } else {
            Err(crate::ClientError::Status(reply.status))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::ObjectTable;

    use amoeba_cap::schemes::SchemeKind;
    use amoeba_cap::Rights;
    use amoeba_server_test_util::Echo;
    use amoeba_softprot::KeyMatrix;

    // A tiny echo service shared with the sealed tests.
    mod amoeba_server_test_util {
        use super::*;

        pub struct Echo {
            pub table: ObjectTable<Vec<u8>>,
            /// Replies carrying capabilities seal them for the
            /// requester — the full §2.4 discipline (capabilities in
            /// *any* message are encrypted).
            pub sealer: Arc<CapSealer>,
        }

        pub const CREATE: u32 = 1;
        pub const READ: u32 = 2;
        pub const APPEND: u32 = 3;

        impl Service for Echo {
            fn bind(&mut self, put_port: Port) {
                self.table.set_port(put_port);
            }

            fn handle(&self, req: &Request, _ctx: &RequestCtx) -> Reply {
                match req.command {
                    CREATE => {
                        let (_, cap) = self.table.create(Vec::new());
                        // Seal the fresh capability for the requesting
                        // machine before it goes on the wire.
                        match self.sealer.seal(&cap, _ctx.source) {
                            Ok(sealed) => {
                                Reply::ok(Bytes::copy_from_slice(&sealed.0.to_be_bytes()))
                            }
                            Err(_) => Reply::status(Status::Forged),
                        }
                    }
                    READ => match self
                        .table
                        .with_object(&req.cap, Rights::READ, |d| Bytes::from(d.clone()))
                    {
                        Ok(data) => Reply::ok(data),
                        Err(e) => Reply::status(e.into()),
                    },
                    APPEND => match self.table.with_object_mut(&req.cap, Rights::WRITE, |d| {
                        d.extend_from_slice(&req.params)
                    }) {
                        Ok(()) => Reply::ok(Bytes::new()),
                        Err(e) => Reply::status(e.into()),
                    },
                    _ => Reply::status(Status::BadCommand),
                }
            }
        }
    }

    /// Builds (network, runner, honest client, intruder machine) with a
    /// populated matrix.
    fn world() -> (
        Network,
        SealedServiceRunner,
        SealedServiceClient,
        Endpoint,
        Arc<CapSealer>,
    ) {
        let net = Network::new();
        // Machines must exist before the matrix is drawn.
        let server_ep = net.attach_open();
        let client_ep_for_id = net.attach_open();
        let intruder = net.attach_open();
        let mut rng = StdRng::seed_from_u64(77);
        let matrix = KeyMatrix::random(
            &[server_ep.id(), client_ep_for_id.id(), intruder.id()],
            &mut rng,
        );

        let server_sealer = Arc::new(CapSealer::new(matrix.view_for(server_ep.id())));
        let client_sealer = Arc::new(CapSealer::new(matrix.view_for(client_ep_for_id.id())));

        let server_machine = server_ep.id();
        let runner = SealedServiceRunner::spawn(
            server_ep,
            Port::new(0x5EA1ED).unwrap(),
            Echo {
                table: ObjectTable::unbound(SchemeKind::Commutative.instantiate()),
                sealer: Arc::clone(&server_sealer),
            },
            server_sealer,
        );
        let client = SealedServiceClient {
            rpc: Client::new(client_ep_for_id),
            sealer: client_sealer,
            server_machine,
        };
        let sealer_for_tap = Arc::new(CapSealer::new(matrix.view_for(intruder.id())));
        (net, runner, client, intruder, sealer_for_tap)
    }

    fn unseal_reply_cap(client: &SealedServiceClient, body: &Bytes) -> Capability {
        let sealed = SealedCap(u128::from_be_bytes(body[..16].try_into().unwrap()));
        client
            .sealer
            .unseal(sealed, client.server_machine)
            .expect("reply capability unseals")
    }

    #[test]
    fn sealed_end_to_end() {
        let (_net, runner, client, _intruder, _s) = world();
        let body = client
            .call_anonymous(
                runner.put_port(),
                amoeba_server_test_util::CREATE,
                Bytes::new(),
            )
            .unwrap();
        let cap = unseal_reply_cap(&client, &body);
        client
            .call(
                runner.put_port(),
                &cap,
                amoeba_server_test_util::APPEND,
                Bytes::from_static(b"sealed!"),
            )
            .unwrap();
        let data = client
            .call(
                runner.put_port(),
                &cap,
                amoeba_server_test_util::READ,
                Bytes::new(),
            )
            .unwrap();
        assert_eq!(&data[..], b"sealed!");
        runner.stop();
    }

    #[test]
    fn capability_never_crosses_in_the_clear() {
        let (net, runner, client, _intruder, _s) = world();
        let wire_tap = net.tap();
        let body = client
            .call_anonymous(
                runner.put_port(),
                amoeba_server_test_util::CREATE,
                Bytes::new(),
            )
            .unwrap();
        let cap = unseal_reply_cap(&client, &body);
        client
            .call(
                runner.put_port(),
                &cap,
                amoeba_server_test_util::READ,
                Bytes::new(),
            )
            .unwrap();
        let plain = cap.encode();
        while let Ok(pkt) = wire_tap.try_recv() {
            assert!(
                !pkt.payload.windows(16).any(|w| w == plain),
                "plaintext capability on the wire"
            );
        }
        runner.stop();
    }

    #[test]
    fn replayed_sealed_request_gets_forged() {
        let (net, runner, client, intruder, _s) = world();
        let wire_tap = net.tap();
        let body = client
            .call_anonymous(
                runner.put_port(),
                amoeba_server_test_util::CREATE,
                Bytes::new(),
            )
            .unwrap();
        let cap = unseal_reply_cap(&client, &body);
        client
            .call(
                runner.put_port(),
                &cap,
                amoeba_server_test_util::APPEND,
                Bytes::from_static(b"x"),
            )
            .unwrap();

        // Capture the APPEND request off the wire (inside its RPC
        // frame) and replay it from the intruder's machine with the
        // reply port pointed at the intruder.
        use amoeba_rpc::Frame;
        let mut captured = None;
        while let Ok(pkt) = wire_tap.try_recv() {
            if pkt.header.dest != runner.put_port() {
                continue;
            }
            if let Some(Frame::Request(body)) = Frame::decode(&pkt.payload) {
                if decode_sealed(&body)
                    .map(|(s, c, _)| s != ANONYMOUS && c == amoeba_server_test_util::APPEND)
                    .unwrap_or(false)
                {
                    captured = Some(pkt);
                }
            }
        }
        let captured = captured.expect("captured the sealed append");
        let reply_port = Port::new(0x1117).unwrap();
        intruder.claim(reply_port);
        intruder.send(
            amoeba_net::Header::to(runner.put_port()).with_reply(reply_port),
            captured.payload.clone(),
        );
        let raw = intruder.recv().expect("server answers");
        let reply = Reply::decode(&raw_body(&raw.payload)).expect("frame");
        // Decryption under M[I][S] yields garbage: either it fails to
        // parse as a capability (Forged) or it parses as a random
        // capability naming a non-existent or mismatched object. Every
        // one of those outcomes is a rejection.
        assert!(
            matches!(
                reply.status,
                Status::Forged | Status::NoSuchObject | Status::RightsViolation
            ),
            "replay must be rejected, got {:?}",
            reply.status
        );

        // The honest client is unaffected.
        let data = client
            .call(
                runner.put_port(),
                &cap,
                amoeba_server_test_util::READ,
                Bytes::new(),
            )
            .unwrap();
        assert_eq!(&data[..], b"x");
        runner.stop();
    }

    /// Strips the RPC frame tag from a reply packet payload.
    fn raw_body(payload: &Bytes) -> Bytes {
        use amoeba_rpc::Frame;
        match Frame::decode(payload) {
            Some(Frame::Reply(body)) => body,
            other => panic!("expected a reply frame, got {other:?}"),
        }
    }
}
