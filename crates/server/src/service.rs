//! The service loop and the client used to call services.

use crate::proto::{null_cap, Reply, Request, Status};
use crate::wire;
use amoeba_cap::{Capability, Rights};
use amoeba_crypto::oneway::ShaOneWay;
use amoeba_fbox::FBox;
use amoeba_net::{Endpoint, EventKind, MachineId, Network, Port, RecvError};
use amoeba_rpc::{Client, IncomingRequest, RpcConfig, RpcError, ServerPort};
use bytes::Bytes;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Per-request context derived from the network layer.
#[derive(Debug, Clone, Copy)]
pub struct RequestCtx {
    /// The unforgeable source machine.
    pub source: MachineId,
    /// The transmitted signature `F(S)`, if the client signed.
    pub signature: Option<Port>,
}

/// A server's request handler.
///
/// `handle` takes `&self`: one service instance is shared by every
/// worker of a dispatch pool, so all request-path state must use
/// interior synchronisation ([`ObjectTable`](crate::ObjectTable) is
/// lock-striped internally; scalar counters use atomics). `bind` still
/// takes `&mut self` — it runs exactly once, before the service is
/// shared.
pub trait Service: Send + Sync + 'static {
    /// Called once with the bound put-port before serving begins —
    /// services with an [`ObjectTable`](crate::ObjectTable) forward this
    /// to [`ObjectTable::set_port`](crate::ObjectTable::set_port).
    fn bind(&mut self, _put_port: Port) {}

    /// Called once, before serving begins, when this instance is
    /// replica `owner` of a `replicas`-way sharded placement group.
    /// Stateful services forward this to
    /// [`ObjectTable::set_owned_shards`](crate::ObjectTable::set_owned_shards)
    /// so every object they mint carries the replica's placement range
    /// in its number; stateless services may ignore it (the default).
    ///
    /// Contract: an implementation that forwards this must do so on a
    /// table striped with the default
    /// [`DEFAULT_SHARDS`](crate::DEFAULT_SHARDS) — routing clients
    /// recover the placement range with
    /// `placement_range(object, DEFAULT_SHARDS, replicas)`, so a
    /// non-default shard count on the server would misroute every
    /// capability (failing closed with `NoSuchObject`, but failing).
    fn bind_shard_range(&mut self, _owner: usize, _replicas: usize) {}

    /// Handles one request. May be called from many worker threads at
    /// once.
    fn handle(&self, req: &Request, ctx: &RequestCtx) -> Reply;

    /// The live-migration handle for this service's shards, if any.
    /// Returning `Some` opts the dispatch layer into per-request shard
    /// dispositions (serve / hold / forward during a cutover) and into
    /// answering `TRANSFER_*` frames — see [`crate::migrate`]. Services
    /// built on one [`ObjectTable`](crate::ObjectTable) of
    /// [`MigrateData`](crate::MigrateData) return `Some(&self.table)`.
    fn migrator(&self) -> Option<&dyn crate::migrate::ShardMigrator> {
        None
    }
}

/// Decrements the machine load gauge on drop — unwinding included, so
/// a panicking handler cannot permanently inflate the advertised load.
pub(crate) struct LoadGuard<'a>(pub(crate) &'a Endpoint);

impl Drop for LoadGuard<'_> {
    fn drop(&mut self) {
        self.0.sub_load(1);
    }
}

/// Decode one raw request, dispatch it to the service, encode the
/// reply. Shared by every worker loop (plain, pooled, and the reactor
/// driver pool).
///
/// The reply body is encoded into a recycled buffer from the bound
/// port's [`BufPool`](amoeba_net::BufPool) and the handler's body bytes
/// are released back into it (reclaimed only if this is the last
/// handle — the body is often a slice of the client-owned request
/// frame), so a steady-state dispatch loop serves without touching the
/// allocator.
pub(crate) fn serve_one(
    service: &(impl Service + ?Sized),
    server: &ServerPort,
    incoming: &IncomingRequest,
) {
    let ctx = RequestCtx {
        source: incoming.source,
        signature: incoming.signature,
    };
    let endpoint = server.endpoint();
    let obs = endpoint.obs();
    if obs.enabled() {
        obs.record(
            EventKind::HandlerStart,
            endpoint.now().since_epoch().as_nanos() as u64,
            0,
            incoming.reply_to.value(),
            u64::from(incoming.source.as_u32()),
        );
        if let Some(m) = obs.metrics() {
            m.server_requests.add(1);
        }
    }
    let reply = if let Some(op) = incoming.transfer_op() {
        // Shard-transfer frames bypass request decoding: they carry a
        // TransferOp instead of a capability-framed body.
        Some(match service.migrator() {
            Some(migrator) => migrator.handle_transfer(op),
            None => Reply::status(Status::Unsupported),
        })
    } else {
        match Request::decode(&incoming.payload) {
            Some(decoded) => dispatch(service, server, incoming, &decoded, &ctx),
            None => Some(Reply::status(Status::BadRequest)),
        }
    };
    // Hold/forward dispositions answer nothing from here: held requests
    // are retried by the client, forwarded ones are answered by the new
    // owner.
    if let Some(reply) = reply {
        let pool = server.buf_pool();
        let mut buf = pool.take();
        reply.encode_into(&mut buf);
        let Reply { body, .. } = reply;
        pool.release(body);
        server.reply(incoming, buf.freeze());
    }
    if obs.enabled() {
        obs.record(
            EventKind::HandlerEnd,
            endpoint.now().since_epoch().as_nanos() as u64,
            0,
            incoming.reply_to.value(),
            u64::from(incoming.source.as_u32()),
        );
        if let Some(m) = obs.metrics() {
            m.handlers_completed.add(1);
        }
    }
}

/// Routes one decoded request through the service's migration
/// disposition (when it has a migrator): serve locally, hold during a
/// cutover window, or relay to the shard's new owner. Returns the
/// reply to send, or `None` when no reply leaves this machine.
///
/// The inflight gauge brackets the *disposition read* as well as the
/// handler: a migration driver that seals a shard and then observes
/// the gauge at zero knows every request that read the pre-seal
/// disposition has finished mutating (and dirty-marking) the table.
fn dispatch(
    service: &(impl Service + ?Sized),
    server: &ServerPort,
    incoming: &IncomingRequest,
    req: &Request,
    ctx: &RequestCtx,
) -> Option<Reply> {
    let Some(migrator) = service.migrator() else {
        return Some(service.handle(req, ctx));
    };
    let Some(shard) = migrator.shard_of(req) else {
        return Some(service.handle(req, ctx));
    };
    migrator.enter(shard);
    let reply = match migrator.disposition(shard) {
        crate::migrate::ShardDisposition::Serve => Some(service.handle(req, ctx)),
        crate::migrate::ShardDisposition::Hold => {
            server.reject(incoming);
            None
        }
        crate::migrate::ShardDisposition::Forward(port) => {
            server.forward(incoming, port);
            None
        }
    };
    migrator.exit(shard);
    reply
}

/// Runs a [`Service`] on one or more background dispatch workers.
///
/// The runner owns the server's secret get-port; only the put-port is
/// exposed. All workers share a single bound [`ServerPort`] and drain
/// its underlying MPMC packet channel concurrently — the classic
/// worker-pool dispatch engine. [`stop`](ServiceRunner::stop) (or drop)
/// shuts every worker down.
pub struct ServiceRunner {
    put_port: Port,
    machine: MachineId,
    /// Kept so the runner can answer load queries and register with a
    /// rendezvous registry from its own machine (registrations bind the
    /// unforgeable source address). Also pins the endpoint: a *stopped*
    /// runner still claims its port, modelling a crashed server whose
    /// clients see timeouts rather than instant disconnects.
    server: Arc<ServerPort>,
    /// The shared service instance the workers dispatch into, exposed
    /// via [`service`](Self::service) so local control planes (the
    /// cluster migration driver, the rebalancer) can reach its
    /// migration handle.
    service: Arc<dyn Service>,
    shutdown: Arc<AtomicBool>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for ServiceRunner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceRunner")
            .field("put_port", &self.put_port)
            .field("machine", &self.machine)
            .field("workers", &self.handles.len())
            .finish()
    }
}

impl ServiceRunner {
    /// Binds `get_port` on `endpoint` and serves `service` on one
    /// worker thread — the deterministic default: requests are handled
    /// strictly in arrival order.
    pub fn spawn(endpoint: Endpoint, get_port: Port, service: impl Service) -> ServiceRunner {
        Self::spawn_workers(endpoint, get_port, service, 1)
    }

    /// Binds `get_port` on `endpoint` and serves `service` on a pool of
    /// `workers` threads.
    ///
    /// All workers receive from the **same** bound port: the endpoint's
    /// packet queue is a crossbeam MPMC channel, so each request is
    /// claimed by exactly one worker and handled with `&self` on the
    /// shared service. Use more than one worker only with services
    /// whose handlers tolerate concurrent execution (every service in
    /// this repository does — state lives in the lock-striped
    /// [`ObjectTable`](crate::ObjectTable) or in atomics).
    ///
    /// # Panics
    /// Panics if `workers` is zero.
    pub fn spawn_workers(
        endpoint: Endpoint,
        get_port: Port,
        service: impl Service,
        workers: usize,
    ) -> ServiceRunner {
        Self::spawn_workers_with_codec(
            endpoint,
            get_port,
            service,
            workers,
            amoeba_rpc::CodecConfig::default(),
        )
    }

    /// [`spawn_workers`](Self::spawn_workers) with explicit hot-path
    /// codec knobs for the bound port — pass
    /// [`CodecConfig::legacy`](amoeba_rpc::CodecConfig::legacy) to
    /// measure the pre-pool baseline, or a shared
    /// [`BufPool`](amoeba_net::BufPool) handle to aggregate allocation
    /// counters across parties.
    ///
    /// # Panics
    /// Panics if `workers` is zero.
    pub fn spawn_workers_with_codec(
        endpoint: Endpoint,
        get_port: Port,
        mut service: impl Service,
        workers: usize,
        codec: amoeba_rpc::CodecConfig,
    ) -> ServiceRunner {
        assert!(workers > 0, "a service needs at least one worker");
        let machine = endpoint.id();
        let server = ServerPort::bind_with_codec(endpoint, get_port, codec);
        let put_port = server.put_port();
        service.bind(put_port);
        let service: Arc<dyn Service> = Arc::new(service);
        let server = Arc::new(server);
        let shutdown = Arc::new(AtomicBool::new(false));
        let handles = (0..workers)
            .map(|_| {
                let service = Arc::clone(&service);
                let server = Arc::clone(&server);
                let stop = Arc::clone(&shutdown);
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        // A bounded wait, deliberately not an
                        // event-only park: keeping one worker parked
                        // *inside* the pump (and the pool's deadlines
                        // as near jump targets) measurably tightens
                        // virtual-clock timeline fidelity under
                        // concurrency, at the cost of a modest idle
                        // tick.
                        match server.next_request_timeout(std::time::Duration::from_millis(20)) {
                            Ok(req) => {
                                // Publish in-flight work on the machine's
                                // load gauge; replica placement policies
                                // compare these across a service cluster.
                                // The decrement rides a drop guard so a
                                // panicking handler cannot leave the
                                // gauge inflated for the machine's
                                // lifetime.
                                server.endpoint().add_load(1);
                                let _in_flight = LoadGuard(server.endpoint());
                                serve_one(&*service, &server, &req);
                            }
                            Err(RecvError::Timeout) => continue,
                            Err(RecvError::Disconnected) => break,
                        }
                    }
                })
            })
            .collect();
        ServiceRunner {
            put_port,
            machine,
            server,
            service,
            shutdown,
            handles,
        }
    }

    /// The **reactor dispatch mode**: binds every service in
    /// `services` (one fresh open-interface machine and random
    /// get-port each) and multiplexes all of them onto a pool of
    /// `threads` driver threads — N services ≫ N threads, where
    /// [`spawn_workers`](Self::spawn_workers) would burn at least one
    /// thread per service. Returns the owning
    /// [`ReactorPool`](crate::ReactorPool); `spawn_workers` remains
    /// the compatibility path for single-service deployments.
    pub fn spawn_reactor(
        net: &Network,
        services: Vec<Box<dyn Service>>,
        threads: usize,
    ) -> crate::ReactorPool {
        crate::ReactorPool::spawn_open(net, services, threads)
    }

    /// Attaches a fresh open-interface machine to `net`, picks a random
    /// get-port, and serves. (Use in §2.4/software-protection settings
    /// and unit tests.)
    pub fn spawn_open(net: &Network, service: impl Service) -> ServiceRunner {
        let endpoint = net.attach_open();
        let get_port = Port::random(&mut StdRng::from_entropy());
        Self::spawn(endpoint, get_port, service)
    }

    /// Like [`spawn_open`](Self::spawn_open) with a worker pool.
    pub fn spawn_open_workers(
        net: &Network,
        service: impl Service,
        workers: usize,
    ) -> ServiceRunner {
        let endpoint = net.attach_open();
        let get_port = Port::random(&mut StdRng::from_entropy());
        Self::spawn_workers(endpoint, get_port, service, workers)
    }

    /// Attaches a machine behind a hardware F-box (the §2.2 model) and
    /// serves on a random secret get-port.
    pub fn spawn_fbox(net: &Network, service: impl Service) -> ServiceRunner {
        let endpoint = net.attach(Arc::new(FBox::hardware(ShaOneWay)));
        let get_port = Port::random(&mut StdRng::from_entropy());
        Self::spawn(endpoint, get_port, service)
    }

    /// Like [`spawn_fbox`](Self::spawn_fbox) with a worker pool.
    pub fn spawn_fbox_workers(
        net: &Network,
        service: impl Service,
        workers: usize,
    ) -> ServiceRunner {
        let endpoint = net.attach(Arc::new(FBox::hardware(ShaOneWay)));
        let get_port = Port::random(&mut StdRng::from_entropy());
        Self::spawn_workers(endpoint, get_port, service, workers)
    }

    /// The published put-port clients send to.
    pub fn put_port(&self) -> Port {
        self.put_port
    }

    /// The machine the service runs on (e.g. for latency co-location).
    pub fn machine(&self) -> MachineId {
        self.machine
    }

    /// Number of dispatch workers serving this port.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// The shared service instance the workers dispatch into — how a
    /// co-located control plane (migration driver, rebalancer) reaches
    /// the service's [`migrator`](Service::migrator) handle.
    pub fn service(&self) -> &Arc<dyn Service> {
        &self.service
    }

    /// The machine's current load gauge (in-flight requests).
    pub fn load(&self) -> u32 {
        self.server.endpoint().load()
    }

    /// Registers this runner as a live replica of its put-port at the
    /// rendezvous registry, advertising the current load gauge. Sent
    /// from the runner's own machine, so the registration carries the
    /// unforgeable source address. Re-call to refresh the advertised
    /// load.
    pub fn register(&self, registry: &amoeba_rpc::Matchmaker) {
        registry.post_load(self.server.endpoint(), self.put_port, self.load());
    }

    /// Withdraws this runner's registration (planned shutdown; crashed
    /// replicas are instead dropped by clients invalidating on
    /// timeout).
    pub fn deregister(&self, registry: &amoeba_rpc::Matchmaker) {
        registry.unpost(self.server.endpoint(), self.put_port);
    }

    /// Stops every worker and waits for them to exit.
    pub fn stop(mut self) {
        self.shutdown_now();
    }

    /// Stops every worker **without releasing the machine**: the
    /// endpoint stays attached and the port stays claimed, but nothing
    /// is served or answered any more — a crashed or hung server as
    /// its clients experience it (timeouts, not disconnects). Failover
    /// tests halt one replica mid-hammer; `stop`/drop later reclaims
    /// the machine. Idempotent.
    pub fn halt(&mut self) {
        self.shutdown_now();
    }

    fn shutdown_now(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        // Workers may be event-parked on the reactor (virtual clock);
        // wake them so they observe the flag.
        self.server.endpoint().reactor().notify();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for ServiceRunner {
    fn drop(&mut self) {
        self.shutdown_now();
    }
}

/// Errors from service calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientError {
    /// Transport failure.
    Rpc(RpcError),
    /// The server answered with a non-OK status.
    Status(Status),
    /// The reply could not be decoded.
    Malformed,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Rpc(e) => write!(f, "transport: {e}"),
            ClientError::Status(s) => write!(f, "server: {s}"),
            ClientError::Malformed => write!(f, "malformed reply"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<RpcError> for ClientError {
    fn from(e: RpcError) -> ClientError {
        ClientError::Rpc(e)
    }
}

/// A client for capability-carrying service calls.
#[derive(Debug)]
pub struct ServiceClient {
    rpc: Client,
}

impl ServiceClient {
    /// A client on a fresh open-interface machine.
    pub fn open(net: &Network) -> ServiceClient {
        ServiceClient {
            rpc: Client::new(net.attach_open()),
        }
    }

    /// A client behind a hardware F-box.
    pub fn fbox(net: &Network) -> ServiceClient {
        ServiceClient {
            rpc: Client::new(net.attach(Arc::new(FBox::hardware(ShaOneWay)))),
        }
    }

    /// A client over an explicit RPC client (custom endpoint/config).
    pub fn with_client(rpc: Client) -> ServiceClient {
        ServiceClient { rpc }
    }

    /// A client with explicit timeout/retry configuration on a fresh
    /// open-interface machine.
    pub fn open_with_config(net: &Network, config: RpcConfig) -> ServiceClient {
        ServiceClient {
            rpc: Client::with_config(net.attach_open(), config),
        }
    }

    /// The underlying RPC client.
    pub fn rpc(&self) -> &Client {
        &self.rpc
    }

    /// Invokes `command` on the object named by `cap`, routing to
    /// `cap.port`.
    ///
    /// # Errors
    /// [`ClientError::Rpc`] on transport failure, [`ClientError::Status`]
    /// for any non-OK server status.
    pub fn call(
        &self,
        cap: &Capability,
        command: u32,
        params: Bytes,
    ) -> Result<Bytes, ClientError> {
        self.call_at(cap.port, cap, command, params)
    }

    /// Invokes a command that needs no capability (e.g. CREATE on a
    /// public server).
    ///
    /// # Errors
    /// As for [`call`](Self::call).
    pub fn call_anonymous(
        &self,
        port: Port,
        command: u32,
        params: Bytes,
    ) -> Result<Bytes, ClientError> {
        self.call_at(port, &null_cap(), command, params)
    }

    /// Invokes `command` at an explicit port (when the capability's port
    /// field should not be trusted for routing).
    ///
    /// # Errors
    /// As for [`call`](Self::call).
    pub fn call_at(
        &self,
        port: Port,
        cap: &Capability,
        command: u32,
        params: Bytes,
    ) -> Result<Bytes, ClientError> {
        let raw = self
            .rpc
            .trans(port, self.encode_request(cap, command, params))?;
        self.decode_reply(raw)
    }

    /// Encodes a request body into a recycled buffer from the client's
    /// [`BufPool`](amoeba_net::BufPool), releasing the params bytes
    /// (reclaimed only if this was the last handle — params are often
    /// slices of buffers owned elsewhere) — a steady-state call
    /// allocates nothing on the way out.
    fn encode_request(&self, cap: &Capability, command: u32, params: Bytes) -> Bytes {
        let req = Request {
            cap: *cap,
            command,
            params,
        };
        let pool = self.rpc.buf_pool();
        let mut buf = pool.take();
        req.encode_into(&mut buf);
        pool.release(req.params);
        buf.freeze()
    }

    /// Invokes `command` on the object named by `cap`, delivered only
    /// to `machine` — the replica a placement policy picked among the
    /// machines serving `cap.port`. Semantics are otherwise identical
    /// to [`call`](Self::call).
    ///
    /// # Errors
    /// As for [`call`](Self::call); a dead replica surfaces as
    /// `ClientError::Rpc(RpcError::Timeout)`.
    pub fn call_on(
        &self,
        machine: MachineId,
        cap: &Capability,
        command: u32,
        params: Bytes,
    ) -> Result<Bytes, ClientError> {
        self.call_at_on(cap.port, machine, cap, command, params)
    }

    /// Invokes a capability-less command at `port`, delivered only to
    /// `machine` (the targeted variant of
    /// [`call_anonymous`](Self::call_anonymous)).
    ///
    /// # Errors
    /// As for [`call_on`](Self::call_on).
    pub fn call_anonymous_on(
        &self,
        port: Port,
        machine: MachineId,
        command: u32,
        params: Bytes,
    ) -> Result<Bytes, ClientError> {
        self.call_at_on(port, machine, &null_cap(), command, params)
    }

    /// The fully general machine-targeted call: `command` with `cap`,
    /// routed to `port`, delivered only to `machine`. The other
    /// targeted variants and the cluster failover client delegate
    /// here.
    ///
    /// # Errors
    /// As for [`call_on`](Self::call_on).
    pub fn call_at_on(
        &self,
        port: Port,
        machine: MachineId,
        cap: &Capability,
        command: u32,
        params: Bytes,
    ) -> Result<Bytes, ClientError> {
        let raw = self
            .rpc
            .trans_to(port, machine, self.encode_request(cap, command, params))?;
        self.decode_reply(raw)
    }

    fn decode_reply(&self, raw: Bytes) -> Result<Bytes, ClientError> {
        let reply = Reply::decode(&raw).ok_or(ClientError::Malformed)?;
        if reply.status == Status::Ok {
            Ok(reply.body)
        } else {
            Err(ClientError::Status(reply.status))
        }
    }

    /// Invokes many commands at `port` in **one wire frame**
    /// (`BATCH_REQUEST`; see `docs/PROTOCOL.md`), returning one result
    /// per call in request order.
    ///
    /// The server dispatches the entries across its worker pool and
    /// fans the replies back into a single frame, so a batch of N calls
    /// costs 2 frames on the wire instead of 2·N. Entries fail
    /// independently: a bad capability in one entry yields
    /// [`ClientError::Status`] for that entry only.
    ///
    /// # Errors
    /// A top-level [`ClientError::Rpc`] if the batch itself could not
    /// be transacted (timeout, detached endpoint).
    pub fn call_batch(
        &self,
        port: Port,
        calls: Vec<(Capability, u32, Bytes)>,
    ) -> Result<Vec<Result<Bytes, ClientError>>, ClientError> {
        let bodies = calls
            .into_iter()
            .map(|(cap, command, params)| self.encode_request(&cap, command, params))
            .collect();
        let results = self.rpc.trans_batch(port, bodies)?;
        Ok(results
            .into_iter()
            .map(|entry| {
                let raw = entry.map_err(ClientError::Rpc)?;
                let reply = Reply::decode(&raw).ok_or(ClientError::Malformed)?;
                if reply.status == Status::Ok {
                    Ok(reply.body)
                } else {
                    Err(ClientError::Status(reply.status))
                }
            })
            .collect())
    }

    /// Asks the server to fabricate a sub-capability with exactly `keep`
    /// rights ([`cmd::STD_RESTRICT`](crate::proto::cmd::STD_RESTRICT)).
    ///
    /// # Errors
    /// As for [`call`](Self::call).
    pub fn restrict(&self, cap: &Capability, keep: Rights) -> Result<Capability, ClientError> {
        let body = self.call(
            cap,
            crate::proto::cmd::STD_RESTRICT,
            wire::Writer::new().u32(keep.bits() as u32).finish(),
        )?;
        wire::Reader::new(&body).cap().ok_or(ClientError::Malformed)
    }

    /// Revokes all outstanding capabilities for the object
    /// ([`cmd::STD_REVOKE`](crate::proto::cmd::STD_REVOKE)); requires
    /// [`Rights::OWNER`]. Returns the fresh capability.
    ///
    /// # Errors
    /// As for [`call`](Self::call).
    pub fn revoke(&self, cap: &Capability) -> Result<Capability, ClientError> {
        let body = self.call(cap, crate::proto::cmd::STD_REVOKE, Bytes::new())?;
        wire::Reader::new(&body).cap().ok_or(ClientError::Malformed)
    }

    /// Validates `cap` remotely and returns its effective rights
    /// ([`cmd::STD_INFO`](crate::proto::cmd::STD_INFO)).
    ///
    /// # Errors
    /// As for [`call`](Self::call).
    pub fn info(&self, cap: &Capability) -> Result<Rights, ClientError> {
        let body = self.call(cap, crate::proto::cmd::STD_INFO, Bytes::new())?;
        let bits = wire::Reader::new(&body)
            .u32()
            .ok_or(ClientError::Malformed)?;
        Ok(Rights::from_bits(bits as u8))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::ObjectTable;
    use amoeba_cap::schemes::SchemeKind;

    /// A minimal echo/counter service used across these tests.
    struct Echo {
        table: ObjectTable<Vec<u8>>,
    }

    impl Echo {
        fn new(kind: SchemeKind) -> Echo {
            Echo {
                table: ObjectTable::unbound(kind.instantiate()),
            }
        }
    }

    const CMD_CREATE: u32 = 1;
    const CMD_READ: u32 = 2;
    const CMD_APPEND: u32 = 3;

    impl Service for Echo {
        fn bind(&mut self, put_port: Port) {
            self.table.set_port(put_port);
        }

        fn handle(&self, req: &Request, _ctx: &RequestCtx) -> Reply {
            if let Some(reply) = self.table.handle_std(req) {
                return reply;
            }
            match req.command {
                CMD_CREATE => {
                    let (_, cap) = self.table.create(req.params.to_vec());
                    Reply::ok(wire::Writer::new().cap(&cap).finish())
                }
                CMD_READ => match self
                    .table
                    .with_object(&req.cap, Rights::READ, |d| d.clone())
                {
                    Ok(data) => Reply::ok(Bytes::from(data)),
                    Err(e) => Reply::status(e.into()),
                },
                CMD_APPEND => match self.table.with_object_mut(&req.cap, Rights::WRITE, |d| {
                    d.extend_from_slice(&req.params)
                }) {
                    Ok(()) => Reply::ok(Bytes::new()),
                    Err(e) => Reply::status(e.into()),
                },
                _ => Reply::status(Status::BadCommand),
            }
        }
    }

    fn create(client: &ServiceClient, port: Port, data: &[u8]) -> Capability {
        let body = client
            .call_anonymous(port, CMD_CREATE, Bytes::copy_from_slice(data))
            .unwrap();
        wire::Reader::new(&body).cap().unwrap()
    }

    #[test]
    fn end_to_end_over_open_nics() {
        let net = Network::new();
        let runner = ServiceRunner::spawn_open(&net, Echo::new(SchemeKind::Commutative));
        let client = ServiceClient::open(&net);

        let cap = create(&client, runner.put_port(), b"hello");
        assert_eq!(
            &client.call(&cap, CMD_READ, Bytes::new()).unwrap()[..],
            b"hello"
        );
        client
            .call(&cap, CMD_APPEND, Bytes::from_static(b" world"))
            .unwrap();
        assert_eq!(
            &client.call(&cap, CMD_READ, Bytes::new()).unwrap()[..],
            b"hello world"
        );
        runner.stop();
    }

    #[test]
    fn end_to_end_behind_fboxes() {
        let net = Network::new();
        let runner = ServiceRunner::spawn_fbox(&net, Echo::new(SchemeKind::OneWay));
        let client = ServiceClient::fbox(&net);
        let cap = create(&client, runner.put_port(), b"shielded");
        assert_eq!(
            &client.call(&cap, CMD_READ, Bytes::new()).unwrap()[..],
            b"shielded"
        );
        runner.stop();
    }

    #[test]
    fn remote_restrict_and_rights_enforcement() {
        let net = Network::new();
        let runner = ServiceRunner::spawn_open(&net, Echo::new(SchemeKind::Commutative));
        let client = ServiceClient::open(&net);
        let cap = create(&client, runner.put_port(), b"x");

        let ro = client.restrict(&cap, Rights::READ).unwrap();
        assert_eq!(client.info(&ro).unwrap(), Rights::READ);
        assert!(client.call(&ro, CMD_READ, Bytes::new()).is_ok());
        assert_eq!(
            client
                .call(&ro, CMD_APPEND, Bytes::from_static(b"!"))
                .unwrap_err(),
            ClientError::Status(Status::RightsViolation)
        );
        runner.stop();
    }

    #[test]
    fn remote_revocation() {
        let net = Network::new();
        let runner = ServiceRunner::spawn_open(&net, Echo::new(SchemeKind::OneWay));
        let client = ServiceClient::open(&net);
        let cap = create(&client, runner.put_port(), b"x");
        let ro = client.restrict(&cap, Rights::READ).unwrap();

        let fresh = client.revoke(&cap).unwrap();
        assert_eq!(
            client.call(&ro, CMD_READ, Bytes::new()).unwrap_err(),
            ClientError::Status(Status::Forged)
        );
        assert_eq!(
            client.call(&cap, CMD_READ, Bytes::new()).unwrap_err(),
            ClientError::Status(Status::Forged)
        );
        assert!(client.call(&fresh, CMD_READ, Bytes::new()).is_ok());
        runner.stop();
    }

    #[test]
    fn malformed_request_gets_bad_request() {
        let net = Network::new();
        let runner = ServiceRunner::spawn_open(&net, Echo::new(SchemeKind::Simple));
        let rpc = Client::new(net.attach_open());
        let raw = rpc
            .trans(runner.put_port(), Bytes::from_static(b"junk"))
            .unwrap();
        let reply = Reply::decode(&raw).unwrap();
        assert_eq!(reply.status, Status::BadRequest);
        runner.stop();
    }

    #[test]
    fn unknown_command_gets_bad_command() {
        let net = Network::new();
        let runner = ServiceRunner::spawn_open(&net, Echo::new(SchemeKind::Simple));
        let client = ServiceClient::open(&net);
        assert_eq!(
            client
                .call_anonymous(runner.put_port(), 0x7777, Bytes::new())
                .unwrap_err(),
            ClientError::Status(Status::BadCommand)
        );
        runner.stop();
    }

    #[test]
    fn stop_is_idempotent_with_drop() {
        let net = Network::new();
        let runner = ServiceRunner::spawn_open(&net, Echo::new(SchemeKind::Simple));
        runner.stop(); // explicit stop, then drop runs harmlessly
    }

    #[test]
    fn worker_pool_serves_concurrent_clients() {
        let net = Network::new();
        let runner = ServiceRunner::spawn_open_workers(&net, Echo::new(SchemeKind::OneWay), 4);
        assert_eq!(runner.workers(), 4);
        let port = runner.put_port();
        let mut handles = Vec::new();
        for i in 0..8 {
            let net = net.clone();
            handles.push(std::thread::spawn(move || {
                let client = ServiceClient::open(&net);
                let cap = create(&client, port, format!("w{i}").as_bytes());
                for _ in 0..25 {
                    client
                        .call(&cap, CMD_APPEND, Bytes::from_static(b"."))
                        .unwrap();
                }
                let data = client.call(&cap, CMD_READ, Bytes::new()).unwrap();
                assert_eq!(data.len(), 2 + 25);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        runner.stop();
    }

    #[test]
    fn worker_pool_standard_ops_under_concurrency() {
        // restrict/revoke/info from many clients against one pooled
        // server: the striped table must stay consistent.
        let net = Network::new();
        let runner = ServiceRunner::spawn_open_workers(&net, Echo::new(SchemeKind::Commutative), 4);
        let port = runner.put_port();
        let mut handles = Vec::new();
        for _ in 0..6 {
            let net = net.clone();
            handles.push(std::thread::spawn(move || {
                let client = ServiceClient::open(&net);
                let cap = create(&client, port, b"shared");
                let ro = client.restrict(&cap, Rights::READ).unwrap();
                assert_eq!(client.info(&ro).unwrap(), Rights::READ);
                let fresh = client.revoke(&cap).unwrap();
                assert_eq!(
                    client.call(&ro, CMD_READ, Bytes::new()).unwrap_err(),
                    ClientError::Status(Status::Forged)
                );
                assert!(client.call(&fresh, CMD_READ, Bytes::new()).is_ok());
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        runner.stop();
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let net = Network::new();
        let endpoint = net.attach_open();
        let _ = ServiceRunner::spawn_workers(
            endpoint,
            Port::new(0x99).unwrap(),
            Echo::new(SchemeKind::Simple),
            0,
        );
    }

    #[test]
    fn concurrent_clients() {
        let net = Network::new();
        let runner = ServiceRunner::spawn_open(&net, Echo::new(SchemeKind::OneWay));
        let port = runner.put_port();
        let mut handles = Vec::new();
        for i in 0..4 {
            let net = net.clone();
            handles.push(std::thread::spawn(move || {
                let client = ServiceClient::open(&net);
                let cap = create(&client, port, format!("t{i}").as_bytes());
                for _ in 0..25 {
                    client
                        .call(&cap, CMD_APPEND, Bytes::from_static(b"."))
                        .unwrap();
                }
                let data = client.call(&cap, CMD_READ, Bytes::new()).unwrap();
                assert_eq!(data.len(), 2 + 25);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        runner.stop();
    }
}
