//! The service loop and the client used to call services.

use crate::proto::{null_cap, Reply, Request, Status};
use crate::wire;
use amoeba_cap::{Capability, Rights};
use amoeba_crypto::oneway::ShaOneWay;
use amoeba_fbox::FBox;
use amoeba_net::{Endpoint, MachineId, Network, Port, RecvError};
use amoeba_rpc::{Client, RpcConfig, RpcError, ServerPort};
use bytes::Bytes;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Per-request context derived from the network layer.
#[derive(Debug, Clone, Copy)]
pub struct RequestCtx {
    /// The unforgeable source machine.
    pub source: MachineId,
    /// The transmitted signature `F(S)`, if the client signed.
    pub signature: Option<Port>,
}

/// A server's request handler.
pub trait Service: Send + 'static {
    /// Called once with the bound put-port before serving begins —
    /// services with an [`ObjectTable`](crate::ObjectTable) forward this
    /// to [`ObjectTable::set_port`](crate::ObjectTable::set_port).
    fn bind(&mut self, _put_port: Port) {}

    /// Handles one request.
    fn handle(&mut self, req: &Request, ctx: &RequestCtx) -> Reply;
}

/// Runs a [`Service`] on a background thread.
///
/// The runner owns the server's secret get-port; only the put-port is
/// exposed. [`stop`](ServiceRunner::stop) (or drop) shuts the thread
/// down.
#[derive(Debug)]
pub struct ServiceRunner {
    put_port: Port,
    machine: MachineId,
    shutdown: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl ServiceRunner {
    /// Binds `get_port` on `endpoint` and serves `service` on a new
    /// thread.
    pub fn spawn(endpoint: Endpoint, get_port: Port, mut service: impl Service) -> ServiceRunner {
        let machine = endpoint.id();
        let server = ServerPort::bind(endpoint, get_port);
        let put_port = server.put_port();
        service.bind(put_port);
        let shutdown = Arc::new(AtomicBool::new(false));
        let stop = Arc::clone(&shutdown);
        let handle = std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                match server.next_request_timeout(Duration::from_millis(20)) {
                    Ok(req) => {
                        let ctx = RequestCtx {
                            source: req.source,
                            signature: req.signature,
                        };
                        let reply = match Request::decode(&req.payload) {
                            Some(decoded) => service.handle(&decoded, &ctx),
                            None => Reply::status(Status::BadRequest),
                        };
                        server.reply(&req, reply.encode());
                    }
                    Err(RecvError::Timeout) => continue,
                    Err(RecvError::Disconnected) => break,
                }
            }
        });
        ServiceRunner {
            put_port,
            machine,
            shutdown,
            handle: Some(handle),
        }
    }

    /// Attaches a fresh open-interface machine to `net`, picks a random
    /// get-port, and serves. (Use in §2.4/software-protection settings
    /// and unit tests.)
    pub fn spawn_open(net: &Network, service: impl Service) -> ServiceRunner {
        let endpoint = net.attach_open();
        let get_port = Port::random(&mut StdRng::from_entropy());
        Self::spawn(endpoint, get_port, service)
    }

    /// Attaches a machine behind a hardware F-box (the §2.2 model) and
    /// serves on a random secret get-port.
    pub fn spawn_fbox(net: &Network, service: impl Service) -> ServiceRunner {
        let endpoint = net.attach(Arc::new(FBox::hardware(ShaOneWay)));
        let get_port = Port::random(&mut StdRng::from_entropy());
        Self::spawn(endpoint, get_port, service)
    }

    /// The published put-port clients send to.
    pub fn put_port(&self) -> Port {
        self.put_port
    }

    /// The machine the service runs on (e.g. for latency co-location).
    pub fn machine(&self) -> MachineId {
        self.machine
    }

    /// Stops the server thread and waits for it to exit.
    pub fn stop(mut self) {
        self.shutdown_now();
    }

    fn shutdown_now(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ServiceRunner {
    fn drop(&mut self) {
        self.shutdown_now();
    }
}

/// Errors from service calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientError {
    /// Transport failure.
    Rpc(RpcError),
    /// The server answered with a non-OK status.
    Status(Status),
    /// The reply could not be decoded.
    Malformed,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Rpc(e) => write!(f, "transport: {e}"),
            ClientError::Status(s) => write!(f, "server: {s}"),
            ClientError::Malformed => write!(f, "malformed reply"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<RpcError> for ClientError {
    fn from(e: RpcError) -> ClientError {
        ClientError::Rpc(e)
    }
}

/// A client for capability-carrying service calls.
#[derive(Debug)]
pub struct ServiceClient {
    rpc: Client,
}

impl ServiceClient {
    /// A client on a fresh open-interface machine.
    pub fn open(net: &Network) -> ServiceClient {
        ServiceClient {
            rpc: Client::new(net.attach_open()),
        }
    }

    /// A client behind a hardware F-box.
    pub fn fbox(net: &Network) -> ServiceClient {
        ServiceClient {
            rpc: Client::new(net.attach(Arc::new(FBox::hardware(ShaOneWay)))),
        }
    }

    /// A client over an explicit RPC client (custom endpoint/config).
    pub fn with_client(rpc: Client) -> ServiceClient {
        ServiceClient { rpc }
    }

    /// A client with explicit timeout/retry configuration on a fresh
    /// open-interface machine.
    pub fn open_with_config(net: &Network, config: RpcConfig) -> ServiceClient {
        ServiceClient {
            rpc: Client::with_config(net.attach_open(), config),
        }
    }

    /// The underlying RPC client.
    pub fn rpc(&self) -> &Client {
        &self.rpc
    }

    /// Invokes `command` on the object named by `cap`, routing to
    /// `cap.port`.
    ///
    /// # Errors
    /// [`ClientError::Rpc`] on transport failure, [`ClientError::Status`]
    /// for any non-OK server status.
    pub fn call(&self, cap: &Capability, command: u32, params: Bytes) -> Result<Bytes, ClientError> {
        self.call_at(cap.port, cap, command, params)
    }

    /// Invokes a command that needs no capability (e.g. CREATE on a
    /// public server).
    ///
    /// # Errors
    /// As for [`call`](Self::call).
    pub fn call_anonymous(
        &self,
        port: Port,
        command: u32,
        params: Bytes,
    ) -> Result<Bytes, ClientError> {
        self.call_at(port, &null_cap(), command, params)
    }

    /// Invokes `command` at an explicit port (when the capability's port
    /// field should not be trusted for routing).
    ///
    /// # Errors
    /// As for [`call`](Self::call).
    pub fn call_at(
        &self,
        port: Port,
        cap: &Capability,
        command: u32,
        params: Bytes,
    ) -> Result<Bytes, ClientError> {
        let req = Request {
            cap: *cap,
            command,
            params,
        };
        let raw = self.rpc.trans(port, req.encode())?;
        let reply = Reply::decode(&raw).ok_or(ClientError::Malformed)?;
        if reply.status == Status::Ok {
            Ok(reply.body)
        } else {
            Err(ClientError::Status(reply.status))
        }
    }

    /// Asks the server to fabricate a sub-capability with exactly `keep`
    /// rights ([`cmd::STD_RESTRICT`](crate::proto::cmd::STD_RESTRICT)).
    ///
    /// # Errors
    /// As for [`call`](Self::call).
    pub fn restrict(&self, cap: &Capability, keep: Rights) -> Result<Capability, ClientError> {
        let body = self.call(
            cap,
            crate::proto::cmd::STD_RESTRICT,
            wire::Writer::new().u32(keep.bits() as u32).finish(),
        )?;
        wire::Reader::new(&body).cap().ok_or(ClientError::Malformed)
    }

    /// Revokes all outstanding capabilities for the object
    /// ([`cmd::STD_REVOKE`](crate::proto::cmd::STD_REVOKE)); requires
    /// [`Rights::OWNER`]. Returns the fresh capability.
    ///
    /// # Errors
    /// As for [`call`](Self::call).
    pub fn revoke(&self, cap: &Capability) -> Result<Capability, ClientError> {
        let body = self.call(cap, crate::proto::cmd::STD_REVOKE, Bytes::new())?;
        wire::Reader::new(&body).cap().ok_or(ClientError::Malformed)
    }

    /// Validates `cap` remotely and returns its effective rights
    /// ([`cmd::STD_INFO`](crate::proto::cmd::STD_INFO)).
    ///
    /// # Errors
    /// As for [`call`](Self::call).
    pub fn info(&self, cap: &Capability) -> Result<Rights, ClientError> {
        let body = self.call(cap, crate::proto::cmd::STD_INFO, Bytes::new())?;
        let bits = wire::Reader::new(&body)
            .u32()
            .ok_or(ClientError::Malformed)?;
        Ok(Rights::from_bits(bits as u8))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::ObjectTable;
    use amoeba_cap::schemes::SchemeKind;

    /// A minimal echo/counter service used across these tests.
    struct Echo {
        table: ObjectTable<Vec<u8>>,
    }

    impl Echo {
        fn new(kind: SchemeKind) -> Echo {
            Echo {
                table: ObjectTable::unbound(kind.instantiate()),
            }
        }
    }

    const CMD_CREATE: u32 = 1;
    const CMD_READ: u32 = 2;
    const CMD_APPEND: u32 = 3;

    impl Service for Echo {
        fn bind(&mut self, put_port: Port) {
            self.table.set_port(put_port);
        }

        fn handle(&mut self, req: &Request, _ctx: &RequestCtx) -> Reply {
            if let Some(reply) = self.table.handle_std(req) {
                return reply;
            }
            match req.command {
                CMD_CREATE => {
                    let (_, cap) = self.table.create(req.params.to_vec());
                    Reply::ok(wire::Writer::new().cap(&cap).finish())
                }
                CMD_READ => match self.table.with_object(&req.cap, Rights::READ, |d| d.clone()) {
                    Ok(data) => Reply::ok(Bytes::from(data)),
                    Err(e) => Reply::status(e.into()),
                },
                CMD_APPEND => match self.table.with_object_mut(&req.cap, Rights::WRITE, |d| {
                    d.extend_from_slice(&req.params)
                }) {
                    Ok(()) => Reply::ok(Bytes::new()),
                    Err(e) => Reply::status(e.into()),
                },
                _ => Reply::status(Status::BadCommand),
            }
        }
    }

    fn create(client: &ServiceClient, port: Port, data: &[u8]) -> Capability {
        let body = client
            .call_anonymous(port, CMD_CREATE, Bytes::copy_from_slice(data))
            .unwrap();
        wire::Reader::new(&body).cap().unwrap()
    }

    #[test]
    fn end_to_end_over_open_nics() {
        let net = Network::new();
        let runner = ServiceRunner::spawn_open(&net, Echo::new(SchemeKind::Commutative));
        let client = ServiceClient::open(&net);

        let cap = create(&client, runner.put_port(), b"hello");
        assert_eq!(&client.call(&cap, CMD_READ, Bytes::new()).unwrap()[..], b"hello");
        client
            .call(&cap, CMD_APPEND, Bytes::from_static(b" world"))
            .unwrap();
        assert_eq!(
            &client.call(&cap, CMD_READ, Bytes::new()).unwrap()[..],
            b"hello world"
        );
        runner.stop();
    }

    #[test]
    fn end_to_end_behind_fboxes() {
        let net = Network::new();
        let runner = ServiceRunner::spawn_fbox(&net, Echo::new(SchemeKind::OneWay));
        let client = ServiceClient::fbox(&net);
        let cap = create(&client, runner.put_port(), b"shielded");
        assert_eq!(
            &client.call(&cap, CMD_READ, Bytes::new()).unwrap()[..],
            b"shielded"
        );
        runner.stop();
    }

    #[test]
    fn remote_restrict_and_rights_enforcement() {
        let net = Network::new();
        let runner = ServiceRunner::spawn_open(&net, Echo::new(SchemeKind::Commutative));
        let client = ServiceClient::open(&net);
        let cap = create(&client, runner.put_port(), b"x");

        let ro = client.restrict(&cap, Rights::READ).unwrap();
        assert_eq!(client.info(&ro).unwrap(), Rights::READ);
        assert!(client.call(&ro, CMD_READ, Bytes::new()).is_ok());
        assert_eq!(
            client
                .call(&ro, CMD_APPEND, Bytes::from_static(b"!"))
                .unwrap_err(),
            ClientError::Status(Status::RightsViolation)
        );
        runner.stop();
    }

    #[test]
    fn remote_revocation() {
        let net = Network::new();
        let runner = ServiceRunner::spawn_open(&net, Echo::new(SchemeKind::OneWay));
        let client = ServiceClient::open(&net);
        let cap = create(&client, runner.put_port(), b"x");
        let ro = client.restrict(&cap, Rights::READ).unwrap();

        let fresh = client.revoke(&cap).unwrap();
        assert_eq!(
            client.call(&ro, CMD_READ, Bytes::new()).unwrap_err(),
            ClientError::Status(Status::Forged)
        );
        assert_eq!(
            client.call(&cap, CMD_READ, Bytes::new()).unwrap_err(),
            ClientError::Status(Status::Forged)
        );
        assert!(client.call(&fresh, CMD_READ, Bytes::new()).is_ok());
        runner.stop();
    }

    #[test]
    fn malformed_request_gets_bad_request() {
        let net = Network::new();
        let runner = ServiceRunner::spawn_open(&net, Echo::new(SchemeKind::Simple));
        let rpc = Client::new(net.attach_open());
        let raw = rpc.trans(runner.put_port(), Bytes::from_static(b"junk")).unwrap();
        let reply = Reply::decode(&raw).unwrap();
        assert_eq!(reply.status, Status::BadRequest);
        runner.stop();
    }

    #[test]
    fn unknown_command_gets_bad_command() {
        let net = Network::new();
        let runner = ServiceRunner::spawn_open(&net, Echo::new(SchemeKind::Simple));
        let client = ServiceClient::open(&net);
        assert_eq!(
            client
                .call_anonymous(runner.put_port(), 0x7777, Bytes::new())
                .unwrap_err(),
            ClientError::Status(Status::BadCommand)
        );
        runner.stop();
    }

    #[test]
    fn stop_is_idempotent_with_drop() {
        let net = Network::new();
        let runner = ServiceRunner::spawn_open(&net, Echo::new(SchemeKind::Simple));
        runner.stop(); // explicit stop, then drop runs harmlessly
    }

    #[test]
    fn concurrent_clients() {
        let net = Network::new();
        let runner = ServiceRunner::spawn_open(&net, Echo::new(SchemeKind::OneWay));
        let port = runner.put_port();
        let mut handles = Vec::new();
        for i in 0..4 {
            let net = net.clone();
            handles.push(std::thread::spawn(move || {
                let client = ServiceClient::open(&net);
                let cap = create(&client, port, format!("t{i}").as_bytes());
                for _ in 0..25 {
                    client.call(&cap, CMD_APPEND, Bytes::from_static(b".")).unwrap();
                }
                let data = client.call(&cap, CMD_READ, Bytes::new()).unwrap();
                assert_eq!(data.len(), 2 + 25);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        runner.stop();
    }
}
