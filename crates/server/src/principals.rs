//! Principal authentication from F-box digital signatures (§2.2).
//!
//! "Each client chooses a random signature, S, and publishes F(S). ...
//! the third [header field] can be used to authenticate the sender,
//! since only the true owner of the signature will know what number to
//! put in the third field to insure that the publicly-known F(S) comes
//! out."
//!
//! [`PrincipalRegistry`] is the server-side half: a directory of
//! (principal name, published `F(S)`) pairs. Services consult it with
//! the signature the F-box delivered in [`RequestCtx`] to decide *who*
//! sent a request — orthogonal to the capability, which decides what
//! the request may *do*. The paper's design keeps these separable:
//! capabilities are bearer authority, signatures add identity when a
//! policy wants it (e.g. auditing, or the bank refusing large transfers
//! from unsigned requests).
//!
//! [`RequestCtx`]: crate::RequestCtx

use amoeba_net::Port;
use parking_lot::RwLock;
use std::collections::HashMap;

/// A directory of published signature put-ports: name → `F(S)`.
#[derive(Debug, Default)]
pub struct PrincipalRegistry {
    published: RwLock<HashMap<String, Port>>,
}

impl PrincipalRegistry {
    /// An empty registry.
    pub fn new() -> PrincipalRegistry {
        PrincipalRegistry::default()
    }

    /// Publishes a principal's `F(S)` (the owner computed it from their
    /// secret `S`; only `F(S)` is ever registered).
    pub fn publish(&self, name: &str, f_of_s: Port) {
        self.published.write().insert(name.to_string(), f_of_s);
    }

    /// Removes a principal.
    pub fn retract(&self, name: &str) {
        self.published.write().remove(name);
    }

    /// The published `F(S)` for `name`, if any.
    pub fn lookup(&self, name: &str) -> Option<Port> {
        self.published.read().get(name).copied()
    }

    /// Identifies the sender of a request from the transmitted
    /// signature field (which the sender's F-box turned into `F(S)`).
    /// Returns the principal's name, or `None` for unsigned or unknown
    /// signatures.
    pub fn identify(&self, transmitted_signature: Option<Port>) -> Option<String> {
        let sig = transmitted_signature?;
        self.published
            .read()
            .iter()
            .find(|(_, &published)| published == sig)
            .map(|(name, _)| name.clone())
    }

    /// Whether the transmitted signature authenticates as `name`.
    pub fn verify(&self, name: &str, transmitted_signature: Option<Port>) -> bool {
        match (self.lookup(name), transmitted_signature) {
            (Some(published), Some(sig)) => published == sig,
            _ => false,
        }
    }

    /// Number of registered principals.
    pub fn len(&self) -> usize {
        self.published.read().len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.published.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{Reply, Request, Status};
    use crate::{ObjectTable, RequestCtx, Service, ServiceRunner};
    use amoeba_cap::schemes::SchemeKind;

    use amoeba_crypto::oneway::ShaOneWay;
    use amoeba_fbox::{put_port_of, FBox};
    use amoeba_net::Network;
    use amoeba_rpc::Client;
    use bytes::Bytes;
    use std::sync::Arc;

    fn port(v: u64) -> Port {
        Port::new(v).unwrap()
    }

    #[test]
    fn identify_and_verify() {
        let reg = PrincipalRegistry::new();
        let f = ShaOneWay;
        let alice_s = port(0xA11CE);
        let bob_s = port(0xB0B);
        reg.publish("alice", put_port_of(&f, alice_s));
        reg.publish("bob", put_port_of(&f, bob_s));
        assert_eq!(reg.len(), 2);

        // What arrives on the wire is F(S).
        let arriving = Some(put_port_of(&f, alice_s));
        assert_eq!(reg.identify(arriving).as_deref(), Some("alice"));
        assert!(reg.verify("alice", arriving));
        assert!(!reg.verify("bob", arriving));
        assert_eq!(reg.identify(None), None);
        assert_eq!(reg.identify(Some(port(0x77777))), None);

        reg.retract("alice");
        assert_eq!(reg.identify(arriving), None);
    }

    /// A vault that refuses OPEN unless the request is signed by a
    /// registered principal — identity on top of capability.
    struct Vault {
        table: ObjectTable<String>,
        principals: Arc<PrincipalRegistry>,
    }

    const OPEN_VAULT: u32 = 1;
    const CREATE: u32 = 2;

    impl Service for Vault {
        fn bind(&mut self, put_port: Port) {
            self.table.set_port(put_port);
        }

        fn handle(&self, req: &Request, ctx: &RequestCtx) -> Reply {
            if let Some(reply) = self.table.handle_std(req) {
                return reply;
            }
            match req.command {
                CREATE => {
                    let (_, cap) = self.table.create("gold".to_string());
                    Reply::ok(crate::wire::Writer::new().cap(&cap).finish())
                }
                OPEN_VAULT => {
                    // Capability first (what), then signature (who).
                    if let Err(e) = self.table.validate(&req.cap) {
                        return Reply::status(e.into());
                    }
                    match self.principals.identify(ctx.signature) {
                        Some(who) => Reply::ok(Bytes::from(format!("opened by {who}"))),
                        None => Reply::status(Status::RightsViolation),
                    }
                }
                _ => Reply::status(Status::BadCommand),
            }
        }
    }

    #[test]
    fn signed_requests_authenticate_unsigned_refused() {
        let f = ShaOneWay;
        let net = Network::new();
        let principals = Arc::new(PrincipalRegistry::new());

        // Alice's secret signature; the vault knows only F(S).
        let alice_s = port(0x5EC2E7);
        principals.publish("alice", put_port_of(&f, alice_s));

        let runner = ServiceRunner::spawn(
            net.attach(Arc::new(FBox::hardware(f.clone()))),
            port(0x7A017),
            Vault {
                table: ObjectTable::unbound(SchemeKind::OneWay.instantiate()),
                principals: Arc::clone(&principals),
            },
        );

        // Alice: signed client.
        let mut alice_rpc = Client::new(net.attach(Arc::new(FBox::hardware(f.clone()))));
        alice_rpc.set_signature(alice_s);
        let alice = crate::ServiceClient::with_client(alice_rpc);
        let body = alice
            .call_anonymous(runner.put_port(), CREATE, Bytes::new())
            .unwrap();
        let cap = crate::wire::Reader::new(&body).cap().unwrap();
        let opened = alice.call(&cap, OPEN_VAULT, Bytes::new()).unwrap();
        assert_eq!(&opened[..], b"opened by alice");

        // Mallory holds the same capability (bearer token!) but cannot
        // sign as alice: knowing F(S) does not help (the F-box would
        // transmit F(F(S))).
        let mut mallory_rpc = Client::new(net.attach(Arc::new(FBox::hardware(f.clone()))));
        mallory_rpc.set_signature(put_port_of(&f, alice_s)); // forgery attempt
        let mallory = crate::ServiceClient::with_client(mallory_rpc);
        assert_eq!(
            mallory.call(&cap, OPEN_VAULT, Bytes::new()).unwrap_err(),
            crate::ClientError::Status(Status::RightsViolation)
        );

        // Unsigned requests are refused too.
        let anon = crate::ServiceClient::fbox(&net);
        assert_eq!(
            anon.call(&cap, OPEN_VAULT, Bytes::new()).unwrap_err(),
            crate::ClientError::Status(Status::RightsViolation)
        );

        // But plain capability authority is unaffected for other ops.
        assert!(anon.info(&cap).is_ok());
        runner.stop();
    }

    #[test]
    fn revoking_a_signature_is_just_retracting_f_of_s() {
        let f = ShaOneWay;
        let reg = PrincipalRegistry::new();
        let s = port(0x123);
        reg.publish("carol", put_port_of(&f, s));
        assert!(reg.verify("carol", Some(put_port_of(&f, s))));
        reg.retract("carol");
        assert!(!reg.verify("carol", Some(put_port_of(&f, s))));
        assert!(reg.is_empty());
    }
}
