//! The generic Amoeba server framework (§2.3, §3).
//!
//! Every Amoeba service in this repository — files, directories, memory,
//! blocks, bank accounts — is "just one or more server processes, with
//! no special privileges", built from the same parts:
//!
//! * an [`ObjectTable`] mapping object numbers to per-object secrets and
//!   server-private data, with capability **mint / validate / restrict /
//!   revoke / delete** built in;
//! * the standard request/reply wire format ([`proto`]): one capability
//!   in the header, an operation code, and parameters — exactly the
//!   message layout of §2.1;
//! * a [`Service`] trait plus a [`ServiceRunner`] that binds a port and
//!   serves requests on a background worker — or a whole pool of them
//!   ([`ServiceRunner::spawn_workers`]) draining one shared port;
//! * a [`ServiceClient`] that performs capability-carrying transactions;
//! * [`wire`]: a tiny parameter codec shared by all services.
//!
//! # Example: a counter service in a few lines
//!
//! ```
//! use amoeba_cap::{schemes::SchemeKind, Rights};
//! use amoeba_server::{proto::{Reply, Request, Status}, wire, ObjectTable, RequestCtx,
//!                     Service, ServiceClient, ServiceRunner};
//! use amoeba_net::Network;
//!
//! struct Counter { table: ObjectTable<u64> }
//!
//! impl Service for Counter {
//!     fn bind(&mut self, put_port: amoeba_net::Port) {
//!         self.table.set_port(put_port); // minted caps carry our port
//!     }
//!     fn handle(&self, req: &Request, _ctx: &RequestCtx) -> Reply {
//!         match req.command {
//!             0 => { // CREATE: no capability needed
//!                 let (_, cap) = self.table.create(0);
//!                 Reply::ok(wire::Writer::new().cap(&cap).finish())
//!             }
//!             1 => { // INCREMENT: needs WRITE
//!                 match self.table.with_object_mut(&req.cap, Rights::WRITE, |n| { *n += 1; *n }) {
//!                     Ok(n) => Reply::ok(wire::Writer::new().u64(n).finish()),
//!                     Err(e) => Reply::status(e.into()),
//!                 }
//!             }
//!             _ => Reply::status(Status::BadCommand),
//!         }
//!     }
//! }
//!
//! let net = Network::new();
//! let table = ObjectTable::unbound(SchemeKind::Commutative.instantiate());
//! let runner = ServiceRunner::spawn_open(&net, Counter { table });
//! let client = ServiceClient::open(&net);
//!
//! let reply = client.call_anonymous(runner.put_port(), 0, bytes::Bytes::new()).unwrap();
//! let cap = wire::Reader::new(&reply).cap().unwrap();
//! let body = client.call(&cap, 1, bytes::Bytes::new()).unwrap();
//! assert_eq!(wire::Reader::new(&body).u64().unwrap(), 1);
//! runner.stop();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod locks;
pub mod migrate;
pub mod principals;
pub mod proto;
mod reactor_pool;
pub mod sealed;
mod service;
mod sim_pump;
mod table;
pub mod wire;

pub use locks::{ObjectLocks, DEFAULT_OBJECT_LOCK_STRIPES};
pub use migrate::{MigrateData, ShardDisposition, ShardMigrator};
pub use principals::PrincipalRegistry;
pub use reactor_pool::{ReactorPool, MAX_BURST};
pub use sealed::{SealedServiceClient, SealedServiceRunner};
pub use service::{ClientError, RequestCtx, Service, ServiceClient, ServiceRunner};
pub use sim_pump::SimPump;
pub use table::{placement_range, ObjectTable, ServerError, DEFAULT_SHARDS};
