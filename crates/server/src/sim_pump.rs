//! The pollable single-threaded service pump for the deterministic
//! simulation executor.
//!
//! [`ServiceRunner`](crate::ServiceRunner) serves on background OS
//! threads — exactly what a deterministic simulation cannot have. A
//! [`SimPump`] binds the same [`ServerPort`] but exposes serving as a
//! single non-blocking [`poll`](SimPump::poll), so a
//! [`SimExecutor`](amoeba_net::SimExecutor) actor can drive the whole
//! dispatch loop (pump, decode, handle, reply) from the one simulation
//! thread. Ports are explicit — nothing in the pump draws entropy.

use crate::service::{serve_one, LoadGuard, Service};
use amoeba_net::{Endpoint, MachineId, Port};
use amoeba_rpc::ServerPort;
use std::sync::Arc;

/// A bound service driven by polling instead of worker threads.
pub struct SimPump {
    server: ServerPort,
    service: Arc<dyn Service>,
}

impl std::fmt::Debug for SimPump {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimPump")
            .field("put_port", &self.server.put_port())
            .finish()
    }
}

impl SimPump {
    /// Binds `get_port` on `endpoint` and prepares `service` for
    /// polled dispatch. The service's `bind` hook runs here, exactly
    /// once, as with the threaded runner.
    pub fn bind(endpoint: Endpoint, get_port: Port, mut service: impl Service) -> SimPump {
        let server = ServerPort::bind(endpoint, get_port);
        service.bind(server.put_port());
        SimPump {
            server,
            service: Arc::new(service),
        }
    }

    /// Serves every request that is ready right now, without parking.
    /// Returns `true` if at least one request was handled — the
    /// executor-actor convention for "made progress".
    pub fn poll(&self) -> bool {
        let mut served = false;
        while let Some(req) = self.server.poll_request() {
            self.server.endpoint().add_load(1);
            let _in_flight = LoadGuard(self.server.endpoint());
            serve_one(&*self.service, &self.server, &req);
            served = true;
        }
        served
    }

    /// The published put-port clients send to.
    pub fn put_port(&self) -> Port {
        self.server.put_port()
    }

    /// The machine this pump serves from.
    pub fn machine(&self) -> MachineId {
        self.server.endpoint().id()
    }

    /// The underlying bound port.
    pub fn server(&self) -> &ServerPort {
        &self.server
    }

    /// The service being pumped (e.g. to reach its
    /// [`ShardMigrator`](crate::ShardMigrator) from a migration actor).
    pub fn service(&self) -> &Arc<dyn Service> {
        &self.service
    }
}
