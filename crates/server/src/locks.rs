//! Striped per-object locking for services whose handlers snapshot
//! object metadata, talk to another server, and write the metadata
//! back.
//!
//! The block-backed file servers used to serialise every mutating
//! operation behind one global mutex (an embedded disk client's
//! metadata update order needs *per-file* ordering). [`ObjectLocks`]
//! scopes that ordering to the object actually touched: writers to
//! **distinct** files proceed in parallel, writers to **one** file
//! still serialise. Lock striping (object number → stripe) bounds the
//! memory cost; an occasional false conflict between two objects on
//! one stripe costs waiting, never correctness.

use amoeba_cap::ObjectNum;
use parking_lot::{Mutex, MutexGuard};

/// Default stripe count — comfortably wider than any worker pool in
/// this repository, so false conflicts are rare.
pub const DEFAULT_OBJECT_LOCK_STRIPES: usize = 64;

/// A striped set of per-object mutexes. See the module docs.
#[derive(Debug)]
pub struct ObjectLocks {
    stripes: Vec<Mutex<()>>,
}

impl Default for ObjectLocks {
    fn default() -> Self {
        Self::new(DEFAULT_OBJECT_LOCK_STRIPES)
    }
}

impl ObjectLocks {
    /// A lock set with `stripes` stripes.
    ///
    /// # Panics
    /// Panics if `stripes` is zero.
    pub fn new(stripes: usize) -> ObjectLocks {
        assert!(stripes > 0, "at least one lock stripe required");
        ObjectLocks {
            stripes: (0..stripes).map(|_| Mutex::new(())).collect(),
        }
    }

    /// Locks the stripe owning `object`, serialising against every
    /// concurrent holder of the same object (and the occasional
    /// stripe-mate).
    pub fn lock(&self, object: ObjectNum) -> MutexGuard<'_, ()> {
        self.stripes[object.value() as usize % self.stripes.len()].lock()
    }

    /// Number of stripes.
    pub fn stripes(&self) -> usize {
        self.stripes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(v: u32) -> ObjectNum {
        ObjectNum::new(v).unwrap()
    }

    #[test]
    fn same_object_serialises() {
        let locks = ObjectLocks::new(8);
        let g = locks.lock(obj(13));
        // The same stripe cannot be taken twice; a different stripe can.
        assert!(locks.stripes[13 % 8].try_lock().is_none());
        drop(g);
        assert!(locks.stripes[13 % 8].try_lock().is_some());
    }

    #[test]
    fn distinct_objects_on_distinct_stripes_are_independent() {
        let locks = ObjectLocks::new(8);
        let _a = locks.lock(obj(1));
        let _b = locks.lock(obj(2)); // would deadlock if shared
    }

    #[test]
    #[should_panic(expected = "at least one lock stripe")]
    fn zero_stripes_rejected() {
        let _ = ObjectLocks::new(0);
    }
}
