//! The object table: per-object secrets plus server-private data.
//!
//! Since the worker-pool refactor the table is **lock-striped**: entries
//! are spread over `N` independent shards (object number low bits →
//! shard), each with its own entry slab, free list and RNG. Capability
//! validation on distinct objects therefore never contends on a shared
//! lock, which is what lets one service scale across dispatch workers.

use crate::migrate::{MigrateData, ShardDisposition};
use crate::proto::{cmd, Reply, Request, Status};
use crate::wire;
use amoeba_cap::schemes::{ObjectSecret, ProtectionScheme};
use amoeba_cap::{CapError, Capability, ObjectNum, Rights};
use amoeba_net::Port;
use amoeba_rpc::TransferOp;
use bytes::Bytes;
use parking_lot::{Mutex, RwLock};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};

/// Errors from object-table operations, mapping 1:1 onto wire
/// [`Status`] codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerError {
    /// The capability's check field does not validate.
    Forged,
    /// No object with that number exists (deleted or never created).
    NoSuchObject,
    /// The capability is genuine but lacks a required right.
    RightsViolation,
    /// The scheme cannot perform the operation.
    Unsupported,
    /// A restriction tried to add rights.
    RightsExceeded,
}

impl From<CapError> for ServerError {
    fn from(e: CapError) -> ServerError {
        match e {
            CapError::Forged => ServerError::Forged,
            CapError::RightsExceeded => ServerError::RightsExceeded,
            CapError::NotSupported => ServerError::Unsupported,
        }
    }
}

impl From<ServerError> for Status {
    fn from(e: ServerError) -> Status {
        match e {
            ServerError::Forged => Status::Forged,
            ServerError::NoSuchObject => Status::NoSuchObject,
            ServerError::RightsViolation => Status::RightsViolation,
            ServerError::Unsupported => Status::Unsupported,
            ServerError::RightsExceeded => Status::RightsViolation,
        }
    }
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Display::fmt(&Status::from(*self), f)
    }
}

impl std::error::Error for ServerError {}

struct Entry<T> {
    secret: ObjectSecret,
    data: T,
}

/// Per-shard migration mode, mirrored in a lock-free tag so the hot
/// request path (and `create`'s shard pick) reads one atomic.
mod mode {
    pub const NORMAL: u8 = 0;
    /// Being exported: mutations are recorded in the dirty set.
    pub const TRACKING: u8 = 1;
    /// Cutover window: requests for the shard are held (dropped, so
    /// clients retransmit); mutations from already-dispatched requests
    /// still record dirty slots.
    pub const SEALED: u8 = 2;
    /// Migrated away: requests are relayed to the new owner's port.
    pub const FORWARDED: u8 = 3;
}

/// Per-shard migration state riding next to the entry slab. All cold
/// unless a migration is in progress; the steady-state cost is one
/// relaxed load per mutation.
struct MigrationState {
    /// One of the [`mode`] tags.
    tag: AtomicU8,
    /// The new owner's put-port (raw value) while [`mode::FORWARDED`].
    forward_to: AtomicU64,
    /// Slots mutated since the last [`ObjectTable::take_dirty`], kept
    /// sorted on drain so exports are deterministic.
    dirty: Mutex<Vec<u32>>,
    /// Requests for this shard currently inside a service handler
    /// (maintained by the dispatch layer via enter/exit). The
    /// migration driver waits for this to reach zero after sealing,
    /// so every mutation that passed the dispatch check lands in the
    /// dirty set before the final catch-up round.
    inflight: AtomicU64,
    /// Table operations touching this shard (lookups and creates) —
    /// the per-shard load signal the rebalancer steers by.
    ops: AtomicU64,
}

impl MigrationState {
    fn new() -> MigrationState {
        MigrationState {
            tag: AtomicU8::new(mode::NORMAL),
            forward_to: AtomicU64::new(0),
            dirty: Mutex::new(Vec::new()),
            inflight: AtomicU64::new(0),
            ops: AtomicU64::new(0),
        }
    }
}

/// One incoming transfer's staged (still serialised) chunks, keyed by
/// chunk sequence number.
struct Staging {
    shard: usize,
    chunks: BTreeMap<u32, Bytes>,
}

/// Bound on concurrently staged incoming transfers — a hostile or
/// confused peer cannot grow the staging map without bound.
const MAX_STAGED_TRANSFERS: usize = 8;

/// How many committed transfer ids are remembered for idempotent
/// re-acknowledgement of retransmitted `Commit`/`Begin` frames.
const REMEMBERED_TRANSFERS: usize = 64;

/// One independent stripe of the table: a slab of entries plus its own
/// free list and RNG, so operations on different shards never touch the
/// same lock.
struct Shard<T> {
    entries: RwLock<Vec<Option<Entry<T>>>>,
    free: Mutex<Vec<u32>>,
    /// Mirror of `free.len()`, readable without the lock so `create`
    /// can prefer shards holding reusable slots.
    free_count: AtomicUsize,
    rng: Mutex<StdRng>,
}

impl<T> Shard<T> {
    fn new() -> Shard<T> {
        Shard {
            entries: RwLock::new(Vec::new()),
            free: Mutex::new(Vec::new()),
            free_count: AtomicUsize::new(0),
            rng: Mutex::new(StdRng::from_entropy()),
        }
    }
}

/// Default number of stripes. Power of two; low object-number bits
/// select the stripe.
pub const DEFAULT_SHARDS: usize = 16;

/// The placement key of an object in a `replicas`-way sharded group:
/// which replica owns the object, derived from the shard index in the
/// object number's low bits. The inverse of
/// [`ObjectTable::set_owned_shards`] — a table configured as
/// `set_owned_shards(i, replicas)` only mints objects whose
/// `placement_range(object, shards, replicas) == i`.
///
/// # Panics
/// Panics unless `shards` is a power of two and `replicas` is nonzero.
pub fn placement_range(object: ObjectNum, shards: usize, replicas: usize) -> usize {
    assert!(shards.is_power_of_two(), "shard count is a power of two");
    assert!(replicas > 0, "a placement group has at least one replica");
    (object.value() as usize & (shards - 1)) % replicas
}

/// Maps object numbers to (per-object secret, server data) and performs
/// all capability cryptography for a service.
///
/// "The server would then pick a random number, store this number in its
/// object table, and insert it into the newly-formed object capability"
/// (§2.3). Everything the paper's object-protection discussion requires
/// is here: minting, validation, server-side restriction, deletion, and
/// revocation by random-number replacement.
///
/// The table is internally sharded ([`DEFAULT_SHARDS`] stripes unless
/// built with [`with_shards`](Self::with_shards)); every method is
/// `&self` and safe to call from any number of dispatch workers.
pub struct ObjectTable<T> {
    scheme: Box<dyn ProtectionScheme>,
    port: RwLock<Option<Port>>,
    shards: Box<[Shard<T>]>,
    /// `log2(shards.len())` — object numbers carry the shard index in
    /// their low `shard_bits` bits.
    shard_bits: u32,
    /// Round-robin cursor for `create`, so fresh objects spread evenly
    /// over the stripes no matter which thread creates them.
    next_shard: AtomicUsize,
    /// When this table is one replica of a sharded placement group
    /// ([`set_owned_shards`](Self::set_owned_shards)): the shard
    /// indices `create` may mint into. `None` = every shard (the
    /// single-machine default).
    owned: RwLock<Option<Box<[usize]>>>,
    /// Per-shard migration state, parallel to `shards`.
    migration: Box<[MigrationState]>,
    /// Incoming transfers staged ahead of their commit, keyed by
    /// transfer id.
    staging: Mutex<BTreeMap<u64, Staging>>,
    /// Recently committed transfer ids (newest last), for idempotent
    /// acknowledgement of retransmitted transfer frames.
    committed_transfers: Mutex<Vec<u64>>,
}

impl<T> std::fmt::Debug for ObjectTable<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObjectTable")
            .field("scheme", &self.scheme.name())
            .field("shards", &self.shards.len())
            .field("objects", &self.len())
            .finish()
    }
}

impl<T> ObjectTable<T> {
    /// A table not yet bound to a server port, with the default shard
    /// count. The port is stamped into minted capabilities; bind it
    /// with [`set_port`](Self::set_port) before creating objects (the
    /// [`ServiceRunner`] does this automatically via
    /// [`Service::bind`]).
    ///
    /// [`ServiceRunner`]: crate::ServiceRunner
    /// [`Service::bind`]: crate::Service::bind
    pub fn unbound(scheme: Box<dyn ProtectionScheme>) -> ObjectTable<T> {
        Self::with_shards(scheme, DEFAULT_SHARDS)
    }

    /// A table with an explicit number of lock stripes. One shard
    /// reproduces the legacy fully-serialised table (useful as a
    /// baseline in benchmarks); production services use a power-of-two
    /// count ≥ the worker count.
    ///
    /// # Panics
    /// Panics unless `shards` is a power of two between 1 and 256.
    pub fn with_shards(scheme: Box<dyn ProtectionScheme>, shards: usize) -> ObjectTable<T> {
        assert!(
            shards.is_power_of_two() && (1..=256).contains(&shards),
            "shard count must be a power of two in 1..=256"
        );
        ObjectTable {
            scheme,
            port: RwLock::new(None),
            shards: (0..shards).map(|_| Shard::new()).collect(),
            shard_bits: shards.trailing_zeros(),
            next_shard: AtomicUsize::new(0),
            owned: RwLock::new(None),
            migration: (0..shards).map(|_| MigrationState::new()).collect(),
            staging: Mutex::new(BTreeMap::new()),
            committed_transfers: Mutex::new(Vec::new()),
        }
    }

    /// A table bound to a known put-port.
    pub fn with_port(scheme: Box<dyn ProtectionScheme>, port: Port) -> ObjectTable<T> {
        let t = Self::unbound(scheme);
        t.set_port(port);
        t
    }

    /// Binds the server's put-port (stamped into every minted
    /// capability).
    pub fn set_port(&self, port: Port) {
        *self.port.write() = Some(port);
    }

    /// Replaces every shard's secret RNG with a deterministic stream
    /// derived from `seed`. **Simulation only**: real deployments keep
    /// the entropy-seeded default — predictable secrets are forgeable
    /// secrets. The deterministic executor needs this so two runs of
    /// one scenario seed mint byte-identical capabilities.
    pub fn reseed_secrets(&self, seed: u64) {
        for (i, shard) in self.shards.iter().enumerate() {
            *shard.rng.lock() = StdRng::seed_from_u64(seed ^ ((i as u64) << 32));
        }
    }

    /// The bound put-port.
    ///
    /// # Panics
    /// Panics if the table is unbound.
    pub fn port(&self) -> Port {
        self.port
            .read()
            .expect("object table not bound to a port yet")
    }

    /// The protection scheme in use.
    pub fn scheme(&self) -> &dyn ProtectionScheme {
        self.scheme.as_ref()
    }

    /// The number of lock stripes.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Declares this table replica `owner` of a `replicas`-way sharded
    /// placement group: `create` will only mint object numbers whose
    /// shard index satisfies `shard % replicas == owner`, so the low
    /// bits of every object number identify the replica that owns it —
    /// the placement key the cluster layer routes by (see
    /// [`placement_range`]). Validation and lookup are unaffected;
    /// capabilities for foreign ranges simply fail with
    /// `NoSuchObject`, because their objects live on another machine.
    ///
    /// # Panics
    /// Panics unless `owner < replicas` and `replicas ≤ shard count`.
    pub fn set_owned_shards(&self, owner: usize, replicas: usize) {
        assert!(
            owner < replicas,
            "shard owner index must be below the replica count"
        );
        assert!(
            replicas <= self.shards.len(),
            "cannot split {} shards over {replicas} replicas",
            self.shards.len()
        );
        let owned: Box<[usize]> = (0..self.shards.len())
            .filter(|s| s % replicas == owner)
            .collect();
        *self.owned.write() = Some(owned);
    }

    /// Number of live objects (sums over all shards).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.entries.read().iter().flatten().count())
            .sum()
    }

    /// Whether the table holds no objects.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The shard index an object number lives in (its low bits).
    fn shard_index(&self, object: ObjectNum) -> usize {
        (object.value() as usize) & (self.shards.len() - 1)
    }

    /// Splits an object number into (shard, slot), counting the touch
    /// on the shard's load gauge.
    fn locate(&self, object: ObjectNum) -> (&Shard<T>, usize) {
        let raw = object.value();
        let shard = self.shard_index(object);
        self.migration[shard].ops.fetch_add(1, Ordering::Relaxed);
        (&self.shards[shard], (raw >> self.shard_bits) as usize)
    }

    /// Records a mutated slot in the shard's dirty set when an export
    /// is tracking it. Called while the caller still holds the shard's
    /// entry write lock, so an export round that drained the dirty set
    /// and then read the entries is guaranteed to see either the
    /// mutation or its dirty record.
    fn note_dirty(&self, shard: usize, slot: usize) {
        let m = &self.migration[shard];
        let tag = m.tag.load(Ordering::SeqCst);
        if tag == mode::TRACKING || tag == mode::SEALED {
            let mut dirty = m.dirty.lock();
            let slot = slot as u32;
            if !dirty.contains(&slot) {
                dirty.push(slot);
            }
        }
    }

    /// Picks the shard for a new object: any shard advertising a
    /// reusable slot wins (keeping slabs dense and preserving the
    /// slot-reuse behaviour of the unsharded table), otherwise the
    /// round-robin cursor spreads fresh objects evenly. With an owned
    /// set ([`set_owned_shards`](Self::set_owned_shards)) only owned
    /// shards are considered.
    fn create_shard_index(&self) -> Option<usize> {
        let rr = self.next_shard.fetch_add(1, Ordering::Relaxed);
        let owned = self.owned.read();
        match owned.as_deref() {
            Some(owned) => {
                for offset in 0..owned.len() {
                    let idx = owned[(rr + offset) % owned.len()];
                    if self.shard_mintable(idx)
                        && self.shards[idx].free_count.load(Ordering::Acquire) > 0
                    {
                        return Some(idx);
                    }
                }
                (0..owned.len())
                    .map(|offset| owned[(rr + offset) % owned.len()])
                    .find(|&idx| self.shard_mintable(idx))
            }
            None => {
                let mask = self.shards.len() - 1;
                for offset in 0..self.shards.len() {
                    let idx = (rr + offset) & mask;
                    if self.shard_mintable(idx)
                        && self.shards[idx].free_count.load(Ordering::Acquire) > 0
                    {
                        return Some(idx);
                    }
                }
                (0..self.shards.len())
                    .map(|offset| (rr + offset) & mask)
                    .find(|&idx| self.shard_mintable(idx))
            }
        }
    }

    /// Whether `create` may mint into the shard right now: sealed and
    /// migrated-away shards are off limits (a mint there would bypass
    /// the cutover or land on a shard this table no longer owns).
    fn shard_mintable(&self, shard: usize) -> bool {
        let tag = self.migration[shard].tag.load(Ordering::SeqCst);
        tag == mode::NORMAL || tag == mode::TRACKING
    }

    /// Creates an object: picks a random number, stores it, and mints
    /// the all-rights capability.
    ///
    /// Creation round-robins over the stripes (reusing freed slots
    /// first), so a table populated by a single thread still spreads
    /// its objects across every shard — later dispatch workers then
    /// never contend with each other on distinct objects.
    ///
    /// # Panics
    /// Panics if the table is unbound, the shard's slice of the 2²⁴
    /// object-number space is exhausted, or every owned shard has been
    /// migrated away (use [`try_create`](Self::try_create) on a table
    /// that can be drained).
    pub fn create(&self, data: T) -> (ObjectNum, Capability) {
        self.try_create(data)
            .expect("no mintable shard (every owned shard sealed or migrated away)")
    }

    /// Fallible form of [`create`](Self::create): fails with
    /// [`ServerError::Unsupported`] when no owned shard can mint —
    /// every owned shard is mid-cutover or migrated away (a fully
    /// drained replica). Clusters route creates by the published shard
    /// map, so a drained replica answering `Unsupported` tells the
    /// client to refresh and retry elsewhere.
    ///
    /// # Panics
    /// Panics if the table is unbound or the shard's slice of the 2²⁴
    /// object-number space is exhausted.
    pub fn try_create(&self, data: T) -> Result<(ObjectNum, Capability), ServerError> {
        let port = self.port();
        let shard_index = self.create_shard_index().ok_or(ServerError::Unsupported)?;
        let shard = &self.shards[shard_index];
        self.migration[shard_index]
            .ops
            .fetch_add(1, Ordering::Relaxed);
        let secret = self.scheme.new_secret(&mut *shard.rng.lock());
        let mut entries = shard.entries.write();
        let slot = match shard.free.lock().pop() {
            Some(i) => {
                shard.free_count.fetch_sub(1, Ordering::AcqRel);
                i
            }
            None => {
                let i = entries.len() as u32;
                assert!(
                    i <= (ObjectNum::MAX >> self.shard_bits),
                    "object table shard full"
                );
                entries.push(None);
                i
            }
        };
        let raw = (slot << self.shard_bits) | shard_index as u32;
        let object = ObjectNum::new(raw).expect("slot bounded by MAX >> shard_bits");
        entries[slot as usize] = Some(Entry { secret, data });
        self.note_dirty(shard_index, slot as usize);
        let cap = self.scheme.mint(port, object, &secret);
        Ok((object, cap))
    }

    /// Validates a capability, returning its effective rights.
    ///
    /// # Errors
    /// [`ServerError::NoSuchObject`] or [`ServerError::Forged`].
    pub fn validate(&self, cap: &Capability) -> Result<Rights, ServerError> {
        let (shard, slot) = self.locate(cap.object);
        let entries = shard.entries.read();
        let entry = entries
            .get(slot)
            .and_then(|e| e.as_ref())
            .ok_or(ServerError::NoSuchObject)?;
        Ok(self.scheme.validate(cap, &entry.secret)?)
    }

    /// Runs `f` on the object if `cap` validates with at least `need`.
    ///
    /// # Errors
    /// [`ServerError::NoSuchObject`], [`ServerError::Forged`] or
    /// [`ServerError::RightsViolation`].
    pub fn with_object<R>(
        &self,
        cap: &Capability,
        need: Rights,
        f: impl FnOnce(&T) -> R,
    ) -> Result<R, ServerError> {
        let (shard, slot) = self.locate(cap.object);
        let entries = shard.entries.read();
        let entry = entries
            .get(slot)
            .and_then(|e| e.as_ref())
            .ok_or(ServerError::NoSuchObject)?;
        let rights = self.scheme.validate(cap, &entry.secret)?;
        if !rights.contains(need) {
            return Err(ServerError::RightsViolation);
        }
        Ok(f(&entry.data))
    }

    /// Mutable variant of [`with_object`](Self::with_object).
    ///
    /// # Errors
    /// As for [`with_object`](Self::with_object).
    pub fn with_object_mut<R>(
        &self,
        cap: &Capability,
        need: Rights,
        f: impl FnOnce(&mut T) -> R,
    ) -> Result<R, ServerError> {
        let (shard, slot) = self.locate(cap.object);
        let mut entries = shard.entries.write();
        let slot_entry = entries
            .get_mut(slot)
            .and_then(|e| e.as_mut())
            .ok_or(ServerError::NoSuchObject)?;
        let rights = self.scheme.validate(cap, &slot_entry.secret)?;
        if !rights.contains(need) {
            return Err(ServerError::RightsViolation);
        }
        let out = f(&mut slot_entry.data);
        self.note_dirty(self.shard_index(cap.object), slot);
        Ok(out)
    }

    /// Direct access by object number, **bypassing capability checks** —
    /// for a server reaching its *own* related objects (e.g. the
    /// multiversion file server touching a version's parent file during
    /// commit). Never expose this path to request parameters.
    pub fn with_data<R>(&self, object: ObjectNum, f: impl FnOnce(&T) -> R) -> Option<R> {
        let (shard, slot) = self.locate(object);
        let entries = shard.entries.read();
        entries
            .get(slot)
            .and_then(|e| e.as_ref())
            .map(|e| f(&e.data))
    }

    /// Mutable variant of [`with_data`](Self::with_data). Same warning.
    pub fn with_data_mut<R>(&self, object: ObjectNum, f: impl FnOnce(&mut T) -> R) -> Option<R> {
        let (shard, slot) = self.locate(object);
        let mut entries = shard.entries.write();
        let out = entries
            .get_mut(slot)
            .and_then(|e| e.as_mut())
            .map(|e| f(&mut e.data));
        if out.is_some() {
            self.note_dirty(self.shard_index(object), slot);
        }
        out
    }

    /// Server-side restriction: fabricates a capability with exactly
    /// `keep` rights.
    ///
    /// # Errors
    /// Validation errors, [`ServerError::RightsExceeded`] if `keep`
    /// exceeds the current rights, or [`ServerError::Unsupported`] for
    /// scheme 0.
    pub fn restrict(&self, cap: &Capability, keep: Rights) -> Result<Capability, ServerError> {
        let (shard, slot) = self.locate(cap.object);
        let entries = shard.entries.read();
        let entry = entries
            .get(slot)
            .and_then(|e| e.as_ref())
            .ok_or(ServerError::NoSuchObject)?;
        Ok(self.scheme.restrict(cap, keep, &entry.secret)?)
    }

    /// Revocation (§2.3): "ask the server to change the random number
    /// stored in its internal table and return a new capability ...
    /// all existing capabilities for that object are instantly
    /// invalidated." Requires [`Rights::OWNER`].
    ///
    /// # Errors
    /// Validation errors or [`ServerError::RightsViolation`] without the
    /// owner right.
    pub fn revoke(&self, cap: &Capability) -> Result<Capability, ServerError> {
        let port = self.port();
        let (shard, slot) = self.locate(cap.object);
        let mut entries = shard.entries.write();
        let slot_entry = entries
            .get_mut(slot)
            .and_then(|e| e.as_mut())
            .ok_or(ServerError::NoSuchObject)?;
        let rights = self.scheme.validate(cap, &slot_entry.secret)?;
        if !rights.contains(Rights::OWNER) {
            return Err(ServerError::RightsViolation);
        }
        slot_entry.secret = self.scheme.new_secret(&mut *shard.rng.lock());
        let fresh = self.scheme.mint(port, cap.object, &slot_entry.secret);
        self.note_dirty(self.shard_index(cap.object), slot);
        Ok(fresh)
    }

    /// Deletes the object, returning its data. Requires `need`
    /// (conventionally [`Rights::DELETE`]).
    ///
    /// # Errors
    /// Validation errors or [`ServerError::RightsViolation`].
    pub fn delete(&self, cap: &Capability, need: Rights) -> Result<T, ServerError> {
        let (shard, slot) = self.locate(cap.object);
        let mut entries = shard.entries.write();
        let slot_entry = entries
            .get_mut(slot)
            .and_then(|e| e.as_mut())
            .ok_or(ServerError::NoSuchObject)?;
        let rights = self.scheme.validate(cap, &slot_entry.secret)?;
        if !rights.contains(need) {
            return Err(ServerError::RightsViolation);
        }
        let entry = entries[slot].take().expect("checked above");
        shard.free.lock().push(slot as u32);
        shard.free_count.fetch_add(1, Ordering::AcqRel);
        self.note_dirty(self.shard_index(cap.object), slot);
        Ok(entry.data)
    }

    /// Answers the standard commands ([`cmd::STD_RESTRICT`],
    /// [`cmd::STD_REVOKE`], [`cmd::STD_INFO`]); returns `None` for
    /// service-specific commands the caller should handle itself.
    pub fn handle_std(&self, req: &Request) -> Option<Reply> {
        match req.command {
            cmd::STD_RESTRICT => {
                let mut r = wire::Reader::new(&req.params);
                let Some(mask) = r.u32() else {
                    return Some(Reply::status(Status::BadRequest));
                };
                Some(
                    match self.restrict(&req.cap, Rights::from_bits(mask as u8)) {
                        Ok(cap) => Reply::ok(wire::Writer::new().cap(&cap).finish()),
                        Err(e) => Reply::status(e.into()),
                    },
                )
            }
            cmd::STD_REVOKE => Some(match self.revoke(&req.cap) {
                Ok(cap) => Reply::ok(wire::Writer::new().cap(&cap).finish()),
                Err(e) => Reply::status(e.into()),
            }),
            cmd::STD_INFO => Some(match self.validate(&req.cap) {
                Ok(rights) => Reply::ok(wire::Writer::new().u32(rights.bits() as u32).finish()),
                Err(e) => Reply::status(e.into()),
            }),
            _ => None,
        }
    }
}

/// Live shard migration: the table-side export/import machinery. The
/// protocol narrative (tracking → catch-up → seal → flip) lives in
/// [`crate::migrate`]; the cluster layer drives these methods over the
/// `TRANSFER_*` wire frames.
impl<T> ObjectTable<T> {
    /// Whether this replica currently owns `shard` (may mint into it
    /// and is the authority for its objects).
    fn owns_shard(&self, shard: usize) -> bool {
        match self.owned.read().as_deref() {
            Some(owned) => owned.contains(&shard),
            None => shard < self.shards.len(),
        }
    }

    /// The shards this replica currently owns.
    pub fn owned_shards(&self) -> Vec<usize> {
        match self.owned.read().as_deref() {
            Some(owned) => owned.to_vec(),
            None => (0..self.shards.len()).collect(),
        }
    }

    /// Cumulative operations per shard (lookups + creates) — the load
    /// signal the rebalancer steers by. Index = shard.
    pub fn shard_ops(&self) -> Vec<u64> {
        self.migration
            .iter()
            .map(|m| m.ops.load(Ordering::Relaxed))
            .collect()
    }

    /// The shard a request's capability addresses, or `None` for
    /// anonymous capabilities (the null capability and published range
    /// capabilities both carry no rights and a zero check field);
    /// anonymous requests are always served locally.
    pub fn request_shard(&self, req: &Request) -> Option<usize> {
        if req.cap.rights.bits() == 0 && req.cap.check == 0 {
            return None;
        }
        Some(self.shard_index(req.cap.object))
    }

    /// The dispatch disposition for a shard right now. Only sealed and
    /// forwarded shards deviate from [`ShardDisposition::Serve`].
    pub fn disposition(&self, shard: usize) -> ShardDisposition {
        let m = &self.migration[shard];
        match m.tag.load(Ordering::SeqCst) {
            mode::SEALED => ShardDisposition::Hold,
            mode::FORWARDED => match Port::new(m.forward_to.load(Ordering::SeqCst)) {
                Some(port) => ShardDisposition::Forward(port),
                None => ShardDisposition::Hold,
            },
            _ => ShardDisposition::Serve,
        }
    }

    /// Counts one request for `shard` entering a service handler.
    /// Paired with [`exit_shard`](Self::exit_shard) by the dispatch
    /// layer; the gauge lets a migration driver prove quiescence after
    /// sealing.
    pub fn enter_shard(&self, shard: usize) {
        self.migration[shard]
            .inflight
            .fetch_add(1, Ordering::SeqCst);
    }

    /// Counts one request for `shard` leaving its service handler.
    pub fn exit_shard(&self, shard: usize) {
        self.migration[shard]
            .inflight
            .fetch_sub(1, Ordering::SeqCst);
    }

    /// Requests for `shard` currently inside handlers.
    pub fn shard_inflight(&self, shard: usize) -> u64 {
        self.migration[shard].inflight.load(Ordering::SeqCst)
    }

    /// Starts (or restarts) dirty-tracking for an export of `shard`.
    /// Returns `false` if the shard is sealed, already migrated away,
    /// out of range, or not owned by this replica.
    pub fn begin_export(&self, shard: usize) -> bool {
        if shard >= self.shards.len() || !self.owns_shard(shard) {
            return false;
        }
        let m = &self.migration[shard];
        let tag = m.tag.load(Ordering::SeqCst);
        if tag != mode::NORMAL && tag != mode::TRACKING {
            return false;
        }
        m.dirty.lock().clear();
        m.tag.store(mode::TRACKING, Ordering::SeqCst);
        true
    }

    /// Drains the shard's dirty-slot set, sorted so the export stream
    /// is deterministic for a given mutation history.
    pub fn take_dirty(&self, shard: usize) -> Vec<u32> {
        let mut out = std::mem::take(&mut *self.migration[shard].dirty.lock());
        out.sort_unstable();
        out
    }

    /// Seals a tracking shard for cutover: dispatch holds new requests
    /// while already-dispatched ones drain (watch
    /// [`shard_inflight`](Self::shard_inflight)).
    pub fn seal_shard(&self, shard: usize) {
        let _ = self.migration[shard].tag.compare_exchange(
            mode::TRACKING,
            mode::SEALED,
            Ordering::SeqCst,
            Ordering::SeqCst,
        );
    }

    /// Abandons an in-progress export: back to normal service with
    /// ownership unchanged. No-op unless the shard is tracking or
    /// sealed.
    pub fn abort_export(&self, shard: usize) {
        let m = &self.migration[shard];
        let tag = m.tag.load(Ordering::SeqCst);
        if tag == mode::TRACKING || tag == mode::SEALED {
            m.tag.store(mode::NORMAL, Ordering::SeqCst);
            m.dirty.lock().clear();
        }
    }

    /// Completes an export: the shard leaves this replica's owned set
    /// and every subsequent request for it is relayed to `forward_to`
    /// (the new owner's put-port).
    pub fn release_shard(&self, shard: usize, forward_to: Port) {
        {
            let mut owned = self.owned.write();
            let remaining: Box<[usize]> = match owned.as_deref() {
                Some(o) => o.iter().copied().filter(|&s| s != shard).collect(),
                None => (0..self.shards.len()).filter(|&s| s != shard).collect(),
            };
            *owned = Some(remaining);
        }
        let m = &self.migration[shard];
        m.forward_to.store(forward_to.value(), Ordering::SeqCst);
        m.tag.store(mode::FORWARDED, Ordering::SeqCst);
        m.dirty.lock().clear();
    }

    /// Takes ownership of a shard (the import side of a cutover, also
    /// used directly in tests): the shard joins the owned set and
    /// serves normally.
    pub fn adopt_shard(&self, shard: usize) {
        {
            let mut owned = self.owned.write();
            if let Some(o) = owned.as_deref() {
                if !o.contains(&shard) {
                    let mut v = o.to_vec();
                    v.push(shard);
                    v.sort_unstable();
                    *owned = Some(v.into_boxed_slice());
                }
            }
        }
        let m = &self.migration[shard];
        m.tag.store(mode::NORMAL, Ordering::SeqCst);
        m.forward_to.store(0, Ordering::SeqCst);
        m.dirty.lock().clear();
    }

    /// The port requests for `shard` are being relayed to, if the
    /// shard has been migrated away.
    pub fn forward_target(&self, shard: usize) -> Option<Port> {
        let m = &self.migration[shard];
        if m.tag.load(Ordering::SeqCst) == mode::FORWARDED {
            Port::new(m.forward_to.load(Ordering::SeqCst))
        } else {
            None
        }
    }

    fn transfer_committed(&self, xfer: u64) -> bool {
        self.committed_transfers.lock().contains(&xfer)
    }
}

impl<T: MigrateData> ObjectTable<T> {
    /// Serialises migration records into chunk blobs of at most
    /// `max_records` records each: the whole shard when `slots` is
    /// `None` (snapshot), otherwise exactly the listed slots, with
    /// absent ones encoded as tombstones (catch-up delta — a dirty
    /// slot whose object was deleted must erase the target's copy).
    pub fn export_chunks(
        &self,
        shard: usize,
        slots: Option<&[u32]>,
        max_records: usize,
    ) -> Vec<Bytes> {
        let max_records = max_records.max(1);
        let entries = self.shards[shard].entries.read();
        let mut chunks = Vec::new();
        let mut cur: Vec<u8> = Vec::new();
        let mut count = 0usize;
        let emit = |cur: &mut Vec<u8>, count: &mut usize, chunks: &mut Vec<Bytes>| {
            *count += 1;
            if *count == max_records {
                chunks.push(Bytes::from(std::mem::take(cur)));
                *count = 0;
            }
        };
        match slots {
            None => {
                for (slot, entry) in entries.iter().enumerate() {
                    if let Some(e) = entry {
                        crate::migrate::encode_live_record(
                            &mut cur,
                            slot as u32,
                            e.secret.value(),
                            &e.data.encode(),
                        );
                        emit(&mut cur, &mut count, &mut chunks);
                    }
                }
            }
            Some(list) => {
                for &slot in list {
                    match entries.get(slot as usize).and_then(|e| e.as_ref()) {
                        Some(e) => crate::migrate::encode_live_record(
                            &mut cur,
                            slot,
                            e.secret.value(),
                            &e.data.encode(),
                        ),
                        None => crate::migrate::encode_tombstone(&mut cur, slot),
                    }
                    emit(&mut cur, &mut count, &mut chunks);
                }
            }
        }
        if count > 0 {
            chunks.push(Bytes::from(cur));
        }
        chunks
    }

    /// The import side of a migration: stages `TRANSFER_BEGIN` /
    /// `TRANSFER_CHUNK` ops and installs + adopts the shard on
    /// `TRANSFER_COMMIT`. Every op is idempotent — a retransmitted
    /// frame for an already-committed transfer is re-acknowledged with
    /// `Ok` — so the driver's at-least-once RPCs are safe.
    ///
    /// Commit is all-or-nothing: every chunk `0..chunks` must be
    /// staged and every record must decode before anything is
    /// installed, so a half-arrived transfer can never leave the shard
    /// in a mixed state.
    pub fn handle_transfer(&self, op: &TransferOp) -> Reply {
        match op {
            TransferOp::Begin { xfer, shard } => {
                if self.transfer_committed(*xfer) {
                    return Reply::ok(Bytes::new());
                }
                let shard = *shard as usize;
                if shard >= self.shards.len() {
                    return Reply::status(Status::BadRequest);
                }
                let mut staging = self.staging.lock();
                if !staging.contains_key(xfer) && staging.len() >= MAX_STAGED_TRANSFERS {
                    return Reply::status(Status::NoSpace);
                }
                staging.insert(
                    *xfer,
                    Staging {
                        shard,
                        chunks: BTreeMap::new(),
                    },
                );
                Reply::ok(Bytes::new())
            }
            TransferOp::Chunk { xfer, seq, records } => {
                if self.transfer_committed(*xfer) {
                    return Reply::ok(Bytes::new());
                }
                let mut staging = self.staging.lock();
                match staging.get_mut(xfer) {
                    Some(st) => {
                        st.chunks.entry(*seq).or_insert_with(|| records.clone());
                        Reply::ok(Bytes::new())
                    }
                    None => Reply::status(Status::Conflict),
                }
            }
            TransferOp::Commit { xfer, chunks } => {
                if self.transfer_committed(*xfer) {
                    return Reply::ok(Bytes::new());
                }
                // Install while holding the staging lock, so a racing
                // retransmitted commit observes either "still staged"
                // or "committed" — never a window where the transfer
                // has vanished (which would read as Conflict).
                let mut staging = self.staging.lock();
                let Some(st) = staging.get(xfer) else {
                    return Reply::status(Status::Conflict);
                };
                let complete = st.chunks.len() == *chunks as usize
                    && st.chunks.keys().enumerate().all(|(i, &s)| s == i as u32);
                if !complete {
                    return Reply::status(Status::Conflict);
                }
                let mut records = Vec::new();
                for blob in st.chunks.values() {
                    match crate::migrate::decode_records::<T>(blob) {
                        Some(r) => records.extend(r),
                        None => return Reply::status(Status::BadRequest),
                    }
                }
                let max_slot = ObjectNum::MAX >> self.shard_bits;
                if records.iter().any(|(slot, _)| *slot > max_slot) {
                    return Reply::status(Status::BadRequest);
                }
                let shard = st.shard;
                self.install_records(shard, records);
                self.adopt_shard(shard);
                staging.remove(xfer);
                let mut committed = self.committed_transfers.lock();
                committed.push(*xfer);
                if committed.len() > REMEMBERED_TRANSFERS {
                    committed.remove(0);
                }
                Reply::ok(Bytes::new())
            }
        }
    }

    /// Installs decoded records into a shard slab (live records
    /// overwrite, tombstones clear) and rebuilds the free list so
    /// future creates reuse the holes. Object numbers and secrets are
    /// preserved exactly: outstanding capabilities keep validating.
    fn install_records(&self, shard_index: usize, records: Vec<crate::migrate::Record<T>>) {
        let shard = &self.shards[shard_index];
        let mut entries = shard.entries.write();
        for (slot, payload) in records {
            let slot = slot as usize;
            if entries.len() <= slot {
                entries.resize_with(slot + 1, || None);
            }
            entries[slot] = payload.map(|(secret, data)| Entry {
                secret: ObjectSecret::from_value(secret),
                data,
            });
        }
        let free: Vec<u32> = entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.is_none())
            .map(|(i, _)| i as u32)
            .collect();
        shard.free_count.store(free.len(), Ordering::Release);
        *shard.free.lock() = free;
    }
}

impl<T: MigrateData + Send + Sync> crate::migrate::ShardMigrator for ObjectTable<T> {
    fn shard_of(&self, req: &Request) -> Option<usize> {
        ObjectTable::request_shard(self, req)
    }
    fn disposition(&self, shard: usize) -> ShardDisposition {
        ObjectTable::disposition(self, shard)
    }
    fn enter(&self, shard: usize) {
        self.enter_shard(shard);
    }
    fn exit(&self, shard: usize) {
        self.exit_shard(shard);
    }
    fn inflight(&self, shard: usize) -> u64 {
        self.shard_inflight(shard)
    }
    fn shard_count(&self) -> usize {
        ObjectTable::shard_count(self)
    }
    fn owned_shards(&self) -> Vec<usize> {
        ObjectTable::owned_shards(self)
    }
    fn shard_ops(&self) -> Vec<u64> {
        ObjectTable::shard_ops(self)
    }
    fn begin_export(&self, shard: usize) -> bool {
        ObjectTable::begin_export(self, shard)
    }
    fn export_chunks(&self, shard: usize, slots: Option<&[u32]>, max_records: usize) -> Vec<Bytes> {
        ObjectTable::export_chunks(self, shard, slots, max_records)
    }
    fn take_dirty(&self, shard: usize) -> Vec<u32> {
        ObjectTable::take_dirty(self, shard)
    }
    fn seal(&self, shard: usize) {
        self.seal_shard(shard);
    }
    fn release(&self, shard: usize, forward_to: Port) {
        self.release_shard(shard, forward_to);
    }
    fn abort(&self, shard: usize) {
        self.abort_export(shard);
    }
    fn handle_transfer(&self, op: &TransferOp) -> Reply {
        ObjectTable::handle_transfer(self, op)
    }
    fn forward_target(&self, shard: usize) -> Option<Port> {
        ObjectTable::forward_target(self, shard)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amoeba_cap::schemes::SchemeKind;
    use std::sync::Arc;

    fn table(kind: SchemeKind) -> ObjectTable<String> {
        ObjectTable::with_port(kind.instantiate(), Port::new(0x1111).unwrap())
    }

    #[test]
    fn create_validate_access() {
        for kind in SchemeKind::ALL {
            let t = table(kind);
            let (_obj, cap) = t.create("hello".to_string());
            assert_eq!(t.validate(&cap).unwrap(), Rights::ALL, "{kind}");
            let len = t.with_object(&cap, Rights::READ, |s| s.len()).unwrap();
            assert_eq!(len, 5);
            t.with_object_mut(&cap, Rights::WRITE, |s| s.push('!'))
                .unwrap();
            assert_eq!(
                t.with_object(&cap, Rights::READ, |s| s.clone()).unwrap(),
                "hello!"
            );
        }
    }

    #[test]
    fn forged_and_missing_objects_distinguished() {
        let t = table(SchemeKind::OneWay);
        let (_, cap) = t.create("x".into());
        let forged = cap.with_check(cap.check ^ 1);
        assert_eq!(t.validate(&forged).unwrap_err(), ServerError::Forged);
        let ghost = Capability::new(
            cap.port,
            ObjectNum::new(cap.object.value() + 999 * DEFAULT_SHARDS as u32).unwrap(),
            Rights::ALL,
            1,
        );
        assert_eq!(t.validate(&ghost).unwrap_err(), ServerError::NoSuchObject);
    }

    #[test]
    fn rights_enforced_on_access() {
        let t = table(SchemeKind::Commutative);
        let (_, cap) = t.create("data".into());
        let ro = t.restrict(&cap, Rights::READ).unwrap();
        assert!(t.with_object(&ro, Rights::READ, |_| ()).is_ok());
        assert_eq!(
            t.with_object_mut(&ro, Rights::WRITE, |_| ()).unwrap_err(),
            ServerError::RightsViolation
        );
    }

    #[test]
    fn delete_frees_slot_for_reuse() {
        let t = table(SchemeKind::OneWay);
        let (obj1, cap1) = t.create("a".into());
        assert_eq!(t.delete(&cap1, Rights::DELETE).unwrap(), "a");
        assert_eq!(t.len(), 0);
        // Old capability is now dead.
        assert_eq!(t.validate(&cap1).unwrap_err(), ServerError::NoSuchObject);
        // Slot is recycled with a fresh secret: old cap stays dead
        // (freed slots are preferred over opening a fresh shard slot).
        let (obj2, cap2) = t.create("b".into());
        assert_eq!(obj1, obj2);
        assert_eq!(t.validate(&cap1).unwrap_err(), ServerError::Forged);
        assert!(t.validate(&cap2).is_ok());
    }

    #[test]
    fn revocation_kills_all_outstanding_caps() {
        for kind in SchemeKind::ALL {
            let t = table(kind);
            let (_, owner_cap) = t.create("precious".into());
            let outstanding: Vec<Capability> = match kind {
                // Schemes with rights distinction: hand out restrictions.
                SchemeKind::Encrypted | SchemeKind::OneWay | SchemeKind::Commutative => (0..10)
                    .map(|_| t.restrict(&owner_cap, Rights::READ).unwrap())
                    .collect(),
                SchemeKind::Simple => vec![owner_cap; 10],
            };
            let fresh = t.revoke(&owner_cap).unwrap();
            for old in &outstanding {
                assert_eq!(t.validate(old).unwrap_err(), ServerError::Forged, "{kind}");
            }
            assert_eq!(t.validate(&owner_cap).unwrap_err(), ServerError::Forged);
            assert_eq!(t.validate(&fresh).unwrap(), Rights::ALL);
        }
    }

    #[test]
    fn revocation_requires_owner_right() {
        let t = table(SchemeKind::Commutative);
        let (_, cap) = t.create("x".into());
        let ro = t.restrict(&cap, Rights::READ).unwrap();
        assert_eq!(t.revoke(&ro).unwrap_err(), ServerError::RightsViolation);
    }

    #[test]
    fn handle_std_restrict_and_info() {
        let t = table(SchemeKind::Commutative);
        let (_, cap) = t.create("x".into());
        let req = Request {
            cap,
            command: cmd::STD_RESTRICT,
            params: wire::Writer::new().u32(Rights::READ.bits() as u32).finish(),
        };
        let reply = t.handle_std(&req).unwrap();
        assert_eq!(reply.status, Status::Ok);
        let ro = wire::Reader::new(&reply.body).cap().unwrap();
        assert_eq!(t.validate(&ro).unwrap(), Rights::READ);

        let info = t
            .handle_std(&Request {
                cap: ro,
                command: cmd::STD_INFO,
                params: bytes::Bytes::new(),
            })
            .unwrap();
        assert_eq!(info.status, Status::Ok);
        assert_eq!(
            wire::Reader::new(&info.body).u32().unwrap(),
            Rights::READ.bits() as u32
        );
    }

    #[test]
    fn handle_std_passes_through_service_commands() {
        let t = table(SchemeKind::Simple);
        let (_, cap) = t.create("x".into());
        let req = Request {
            cap,
            command: 42,
            params: bytes::Bytes::new(),
        };
        assert!(t.handle_std(&req).is_none());
    }

    #[test]
    fn handle_std_revoke_roundtrip() {
        let t = table(SchemeKind::OneWay);
        let (_, cap) = t.create("x".into());
        let reply = t
            .handle_std(&Request {
                cap,
                command: cmd::STD_REVOKE,
                params: bytes::Bytes::new(),
            })
            .unwrap();
        assert_eq!(reply.status, Status::Ok);
        assert_eq!(t.validate(&cap).unwrap_err(), ServerError::Forged);
    }

    #[test]
    #[should_panic(expected = "not bound")]
    fn unbound_table_panics_on_create() {
        let t: ObjectTable<()> = ObjectTable::unbound(SchemeKind::Simple.instantiate());
        t.create(());
    }

    #[test]
    fn many_objects_have_independent_secrets() {
        let t = table(SchemeKind::OneWay);
        let caps: Vec<Capability> = (0..100).map(|i| t.create(format!("{i}")).1).collect();
        assert_eq!(t.len(), 100);
        // A capability for object i must not validate for object j's data.
        let cross = caps[0].with_rights(caps[1].rights);
        let mut swapped = cross;
        swapped.object = caps[1].object;
        assert!(t.validate(&swapped).is_err());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_shards_rejected() {
        let _ = ObjectTable::<()>::with_shards(SchemeKind::Simple.instantiate(), 3);
    }

    #[test]
    fn single_shard_table_still_works() {
        let t: ObjectTable<u32> =
            ObjectTable::with_shards(SchemeKind::Commutative.instantiate(), 1);
        t.set_port(Port::new(0x77).unwrap());
        let caps: Vec<_> = (0..20).map(|i| t.create(i).1).collect();
        assert_eq!(t.len(), 20);
        for (i, cap) in caps.iter().enumerate() {
            assert_eq!(t.with_object(cap, Rights::READ, |v| *v).unwrap(), i as u32);
        }
    }

    #[test]
    fn creates_spread_across_shards() {
        // A single-threaded populator must still stripe its objects
        // over every shard, or a later worker pool would contend on
        // one stripe.
        let t = table(SchemeKind::Simple);
        let mask = (DEFAULT_SHARDS - 1) as u32;
        let mut used = std::collections::HashSet::new();
        for i in 0..(DEFAULT_SHARDS as u32 * 2) {
            let (obj, _) = t.create(format!("{i}"));
            used.insert(obj.value() & mask);
        }
        assert_eq!(used.len(), DEFAULT_SHARDS, "all shards used");
    }

    #[test]
    fn owned_shards_constrain_creation_to_the_replica_range() {
        for replicas in [2usize, 3, 4] {
            for owner in 0..replicas {
                let t = table(SchemeKind::OneWay);
                t.set_owned_shards(owner, replicas);
                for i in 0..40 {
                    let (obj, cap) = t.create(format!("{i}"));
                    assert_eq!(
                        placement_range(obj, DEFAULT_SHARDS, replicas),
                        owner,
                        "replica {owner}/{replicas} minted a foreign object"
                    );
                    assert!(t.validate(&cap).is_ok());
                }
                // Objects still spread across the owned stripes.
                let mask = (DEFAULT_SHARDS - 1) as u32;
                let used: std::collections::HashSet<u32> = (0..DEFAULT_SHARDS as u32)
                    .map(|_| t.create("x".into()).0.value() & mask)
                    .collect();
                assert!(used.len() > 1, "owned creates must still stripe");
            }
        }
    }

    #[test]
    fn owned_shards_prefer_freed_slots_within_the_range() {
        let t = table(SchemeKind::Commutative);
        t.set_owned_shards(1, 4);
        let (obj, cap) = t.create("a".into());
        t.delete(&cap, Rights::DELETE).unwrap();
        let (obj2, _) = t.create("b".into());
        assert_eq!(obj, obj2, "freed owned slot is recycled first");
    }

    #[test]
    #[should_panic(expected = "below the replica count")]
    fn owner_out_of_range_rejected() {
        let t = table(SchemeKind::Simple);
        t.set_owned_shards(3, 3);
    }

    #[test]
    fn placement_range_matches_shard_low_bits() {
        let obj = ObjectNum::new(0b1010_0110).unwrap();
        // Shard index = low 4 bits = 6; 6 % 3 == 0, 6 % 4 == 2.
        assert_eq!(placement_range(obj, 16, 3), 0);
        assert_eq!(placement_range(obj, 16, 4), 2);
        assert_eq!(placement_range(obj, 16, 1), 0);
    }

    #[test]
    fn parallel_threads_create_on_distinct_shards() {
        let t: Arc<ObjectTable<usize>> = Arc::new(ObjectTable::with_port(
            SchemeKind::OneWay.instantiate(),
            Port::new(0x1111).unwrap(),
        ));
        let mut handles = Vec::new();
        for worker in 0..8usize {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                (0..50)
                    .map(|i| t.create(worker * 1000 + i).0)
                    .collect::<Vec<_>>()
            }));
        }
        let all: Vec<ObjectNum> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        // Every object number unique, every object retrievable.
        let mut raw: Vec<u32> = all.iter().map(|o| o.value()).collect();
        raw.sort_unstable();
        raw.dedup();
        assert_eq!(raw.len(), 400, "object numbers must never collide");
        assert_eq!(t.len(), 400);
    }

    #[test]
    fn export_import_preserves_objects_and_capabilities() {
        for kind in SchemeKind::ALL {
            let src = table(kind);
            let dst: ObjectTable<String> =
                ObjectTable::with_port(kind.instantiate(), Port::new(0x1111).unwrap());
            // Empty owned set on the target: it owns nothing until it
            // adopts the migrated shard.
            dst.set_owned_shards(0, 1);
            *dst.owned.write() = Some(Box::new([]));

            let caps: Vec<(ObjectNum, Capability)> =
                (0..40).map(|i| src.create(format!("obj-{i}"))).collect();
            let shard = 3usize;
            assert!(src.begin_export(shard));
            let chunks = src.export_chunks(shard, None, 4);
            let xfer = 7u64;
            assert_eq!(
                dst.handle_transfer(&TransferOp::Begin {
                    xfer,
                    shard: shard as u8
                })
                .status,
                Status::Ok
            );
            for (seq, records) in chunks.iter().enumerate() {
                let op = TransferOp::Chunk {
                    xfer,
                    seq: seq as u32,
                    records: records.clone(),
                };
                assert_eq!(dst.handle_transfer(&op).status, Status::Ok);
            }
            let commit = TransferOp::Commit {
                xfer,
                chunks: chunks.len() as u32,
            };
            assert_eq!(dst.handle_transfer(&commit).status, Status::Ok);
            // Retransmitted commit is re-acknowledged, not re-executed.
            assert_eq!(dst.handle_transfer(&commit).status, Status::Ok);

            assert_eq!(dst.owned_shards(), vec![shard]);
            for (obj, cap) in &caps {
                if (obj.value() as usize) & (DEFAULT_SHARDS - 1) != shard {
                    continue;
                }
                // Same object number, same secret: the old capability
                // validates on the new owner.
                assert_eq!(dst.validate(cap).unwrap(), Rights::ALL, "{kind}");
                let body = dst.with_object(cap, Rights::READ, |s| s.clone()).unwrap();
                let orig = src.with_object(cap, Rights::READ, |s| s.clone()).unwrap();
                assert_eq!(body, orig);
            }
        }
    }

    #[test]
    fn dirty_tracking_captures_mutations_and_deletes() {
        let t = table(SchemeKind::OneWay);
        let caps: Vec<(ObjectNum, Capability)> =
            (0..32).map(|i| t.create(format!("{i}"))).collect();
        let shard = 0usize;
        assert!(t.begin_export(shard));
        assert!(t.take_dirty(shard).is_empty(), "tracking starts clean");
        let in_shard: Vec<&(ObjectNum, Capability)> = caps
            .iter()
            .filter(|(o, _)| (o.value() as usize) & (DEFAULT_SHARDS - 1) == shard)
            .collect();
        let (obj_w, cap_w) = in_shard[0];
        let (_, cap_d) = in_shard[1];
        t.with_object_mut(cap_w, Rights::WRITE, |s| s.push('!'))
            .unwrap();
        t.delete(cap_d, Rights::DELETE).unwrap();
        // A mutation in a foreign shard must not dirty this one.
        let foreign = caps
            .iter()
            .find(|(o, _)| (o.value() as usize) & (DEFAULT_SHARDS - 1) != shard)
            .unwrap();
        t.with_object_mut(&foreign.1, Rights::WRITE, |s| s.push('?'))
            .unwrap();
        let dirty = t.take_dirty(shard);
        assert_eq!(dirty.len(), 2);
        assert!(dirty.contains(&(obj_w.value() >> t.shard_bits)));
        assert!(t.take_dirty(shard).is_empty(), "drain empties the set");
        // Delta export of the dirty slots: one live record, one tombstone.
        let delta = t.export_chunks(shard, Some(&dirty), 64);
        assert_eq!(delta.len(), 1);
        let records = crate::migrate::decode_records::<String>(&delta[0]).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records.iter().filter(|(_, r)| r.is_none()).count(), 1);
    }

    #[test]
    fn seal_and_release_change_disposition() {
        use crate::migrate::ShardDisposition;
        let t = table(SchemeKind::Simple);
        let shard = 5usize;
        assert_eq!(t.disposition(shard), ShardDisposition::Serve);
        assert!(t.begin_export(shard));
        assert_eq!(t.disposition(shard), ShardDisposition::Serve);
        t.seal_shard(shard);
        assert_eq!(t.disposition(shard), ShardDisposition::Hold);
        let new_owner = Port::new(0xBEEF).unwrap();
        t.release_shard(shard, new_owner);
        assert_eq!(t.disposition(shard), ShardDisposition::Forward(new_owner));
        assert_eq!(t.forward_target(shard), Some(new_owner));
        assert!(!t.owned_shards().contains(&shard));
        assert!(!t.begin_export(shard), "cannot re-export a released shard");
        // Aborting an export restores normal service.
        assert!(t.begin_export(0));
        t.seal_shard(0);
        t.abort_export(0);
        assert_eq!(t.disposition(0), ShardDisposition::Serve);
    }

    #[test]
    fn drained_replica_refuses_creates() {
        let t = table(SchemeKind::OneWay);
        t.set_owned_shards(0, 4);
        let fwd = Port::new(0xD00D).unwrap();
        for shard in t.owned_shards() {
            t.release_shard(shard, fwd);
        }
        assert_eq!(
            t.try_create("x".into()).unwrap_err(),
            ServerError::Unsupported
        );
        // Re-adopting one shard makes the replica mintable again.
        t.adopt_shard(0);
        assert!(t.try_create("y".into()).is_ok());
    }

    #[test]
    fn sealed_shard_is_skipped_by_create() {
        let t = table(SchemeKind::Simple);
        let mask = (DEFAULT_SHARDS - 1) as u32;
        t.begin_export(2);
        t.seal_shard(2);
        for i in 0..(DEFAULT_SHARDS * 4) {
            let (obj, _) = t.create(format!("{i}"));
            assert_ne!(obj.value() & mask, 2, "sealed shard must not mint");
        }
    }

    #[test]
    fn transfer_chunks_out_of_order_and_incomplete_commits() {
        let t = table(SchemeKind::OneWay);
        let xfer = 99u64;
        let begin = TransferOp::Begin { xfer, shard: 1 };
        assert_eq!(t.handle_transfer(&begin).status, Status::Ok);
        // Commit before all chunks arrive: refused, staging intact.
        let mut blob = Vec::new();
        crate::migrate::encode_tombstone(&mut blob, 4);
        let chunk1 = TransferOp::Chunk {
            xfer,
            seq: 1,
            records: Bytes::from(blob.clone()),
        };
        assert_eq!(t.handle_transfer(&chunk1).status, Status::Ok);
        let commit = TransferOp::Commit { xfer, chunks: 2 };
        assert_eq!(t.handle_transfer(&commit).status, Status::Conflict);
        // Chunk for an unknown transfer: refused.
        let stray = TransferOp::Chunk {
            xfer: 1234,
            seq: 0,
            records: Bytes::new(),
        };
        assert_eq!(t.handle_transfer(&stray).status, Status::Conflict);
        // The missing chunk arrives (duplicate of seq 1 is ignored),
        // then commit succeeds.
        let chunk0 = TransferOp::Chunk {
            xfer,
            seq: 0,
            records: Bytes::from(blob),
        };
        assert_eq!(t.handle_transfer(&chunk0).status, Status::Ok);
        assert_eq!(t.handle_transfer(&chunk1).status, Status::Ok);
        assert_eq!(t.handle_transfer(&commit).status, Status::Ok);
    }

    #[test]
    fn staging_is_bounded() {
        let t = table(SchemeKind::Simple);
        for xfer in 0..MAX_STAGED_TRANSFERS as u64 {
            let op = TransferOp::Begin { xfer, shard: 0 };
            assert_eq!(t.handle_transfer(&op).status, Status::Ok);
        }
        let overflow = TransferOp::Begin {
            xfer: 1_000,
            shard: 0,
        };
        assert_eq!(t.handle_transfer(&overflow).status, Status::NoSpace);
    }

    #[test]
    fn inflight_gauge_tracks_enter_exit() {
        let t = table(SchemeKind::Simple);
        assert_eq!(t.shard_inflight(7), 0);
        t.enter_shard(7);
        t.enter_shard(7);
        assert_eq!(t.shard_inflight(7), 2);
        t.exit_shard(7);
        t.exit_shard(7);
        assert_eq!(t.shard_inflight(7), 0);
    }

    #[test]
    fn concurrent_create_delete_validate_hammer() {
        let t: Arc<ObjectTable<u64>> = Arc::new(ObjectTable::with_port(
            SchemeKind::Commutative.instantiate(),
            Port::new(0x1111).unwrap(),
        ));
        let mut handles = Vec::new();
        for seed in 0..8u64 {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                for i in 0..200u64 {
                    let (_, cap) = t.create(seed * 1_000_000 + i);
                    assert_eq!(t.validate(&cap).unwrap(), Rights::ALL);
                    let ro = t.restrict(&cap, Rights::READ).unwrap();
                    assert_eq!(
                        t.with_object(&ro, Rights::READ, |v| *v).unwrap(),
                        seed * 1_000_000 + i
                    );
                    if i % 2 == 0 {
                        assert_eq!(
                            t.delete(&cap, Rights::DELETE).unwrap(),
                            seed * 1_000_000 + i
                        );
                        assert!(t.validate(&cap).is_err(), "deleted cap must die");
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.len(), 8 * 100);
    }
}
