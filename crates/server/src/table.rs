//! The object table: per-object secrets plus server-private data.
//!
//! Since the worker-pool refactor the table is **lock-striped**: entries
//! are spread over `N` independent shards (object number low bits →
//! shard), each with its own entry slab, free list and RNG. Capability
//! validation on distinct objects therefore never contends on a shared
//! lock, which is what lets one service scale across dispatch workers.

use crate::proto::{cmd, Reply, Request, Status};
use crate::wire;
use amoeba_cap::schemes::{ObjectSecret, ProtectionScheme};
use amoeba_cap::{CapError, Capability, ObjectNum, Rights};
use amoeba_net::Port;
use parking_lot::{Mutex, RwLock};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Errors from object-table operations, mapping 1:1 onto wire
/// [`Status`] codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerError {
    /// The capability's check field does not validate.
    Forged,
    /// No object with that number exists (deleted or never created).
    NoSuchObject,
    /// The capability is genuine but lacks a required right.
    RightsViolation,
    /// The scheme cannot perform the operation.
    Unsupported,
    /// A restriction tried to add rights.
    RightsExceeded,
}

impl From<CapError> for ServerError {
    fn from(e: CapError) -> ServerError {
        match e {
            CapError::Forged => ServerError::Forged,
            CapError::RightsExceeded => ServerError::RightsExceeded,
            CapError::NotSupported => ServerError::Unsupported,
        }
    }
}

impl From<ServerError> for Status {
    fn from(e: ServerError) -> Status {
        match e {
            ServerError::Forged => Status::Forged,
            ServerError::NoSuchObject => Status::NoSuchObject,
            ServerError::RightsViolation => Status::RightsViolation,
            ServerError::Unsupported => Status::Unsupported,
            ServerError::RightsExceeded => Status::RightsViolation,
        }
    }
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Display::fmt(&Status::from(*self), f)
    }
}

impl std::error::Error for ServerError {}

struct Entry<T> {
    secret: ObjectSecret,
    data: T,
}

/// One independent stripe of the table: a slab of entries plus its own
/// free list and RNG, so operations on different shards never touch the
/// same lock.
struct Shard<T> {
    entries: RwLock<Vec<Option<Entry<T>>>>,
    free: Mutex<Vec<u32>>,
    /// Mirror of `free.len()`, readable without the lock so `create`
    /// can prefer shards holding reusable slots.
    free_count: AtomicUsize,
    rng: Mutex<StdRng>,
}

impl<T> Shard<T> {
    fn new() -> Shard<T> {
        Shard {
            entries: RwLock::new(Vec::new()),
            free: Mutex::new(Vec::new()),
            free_count: AtomicUsize::new(0),
            rng: Mutex::new(StdRng::from_entropy()),
        }
    }
}

/// Default number of stripes. Power of two; low object-number bits
/// select the stripe.
pub const DEFAULT_SHARDS: usize = 16;

/// The placement key of an object in a `replicas`-way sharded group:
/// which replica owns the object, derived from the shard index in the
/// object number's low bits. The inverse of
/// [`ObjectTable::set_owned_shards`] — a table configured as
/// `set_owned_shards(i, replicas)` only mints objects whose
/// `placement_range(object, shards, replicas) == i`.
///
/// # Panics
/// Panics unless `shards` is a power of two and `replicas` is nonzero.
pub fn placement_range(object: ObjectNum, shards: usize, replicas: usize) -> usize {
    assert!(shards.is_power_of_two(), "shard count is a power of two");
    assert!(replicas > 0, "a placement group has at least one replica");
    (object.value() as usize & (shards - 1)) % replicas
}

/// Maps object numbers to (per-object secret, server data) and performs
/// all capability cryptography for a service.
///
/// "The server would then pick a random number, store this number in its
/// object table, and insert it into the newly-formed object capability"
/// (§2.3). Everything the paper's object-protection discussion requires
/// is here: minting, validation, server-side restriction, deletion, and
/// revocation by random-number replacement.
///
/// The table is internally sharded ([`DEFAULT_SHARDS`] stripes unless
/// built with [`with_shards`](Self::with_shards)); every method is
/// `&self` and safe to call from any number of dispatch workers.
pub struct ObjectTable<T> {
    scheme: Box<dyn ProtectionScheme>,
    port: RwLock<Option<Port>>,
    shards: Box<[Shard<T>]>,
    /// `log2(shards.len())` — object numbers carry the shard index in
    /// their low `shard_bits` bits.
    shard_bits: u32,
    /// Round-robin cursor for `create`, so fresh objects spread evenly
    /// over the stripes no matter which thread creates them.
    next_shard: AtomicUsize,
    /// When this table is one replica of a sharded placement group
    /// ([`set_owned_shards`](Self::set_owned_shards)): the shard
    /// indices `create` may mint into. `None` = every shard (the
    /// single-machine default).
    owned: RwLock<Option<Box<[usize]>>>,
}

impl<T> std::fmt::Debug for ObjectTable<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObjectTable")
            .field("scheme", &self.scheme.name())
            .field("shards", &self.shards.len())
            .field("objects", &self.len())
            .finish()
    }
}

impl<T> ObjectTable<T> {
    /// A table not yet bound to a server port, with the default shard
    /// count. The port is stamped into minted capabilities; bind it
    /// with [`set_port`](Self::set_port) before creating objects (the
    /// [`ServiceRunner`] does this automatically via
    /// [`Service::bind`]).
    ///
    /// [`ServiceRunner`]: crate::ServiceRunner
    /// [`Service::bind`]: crate::Service::bind
    pub fn unbound(scheme: Box<dyn ProtectionScheme>) -> ObjectTable<T> {
        Self::with_shards(scheme, DEFAULT_SHARDS)
    }

    /// A table with an explicit number of lock stripes. One shard
    /// reproduces the legacy fully-serialised table (useful as a
    /// baseline in benchmarks); production services use a power-of-two
    /// count ≥ the worker count.
    ///
    /// # Panics
    /// Panics unless `shards` is a power of two between 1 and 256.
    pub fn with_shards(scheme: Box<dyn ProtectionScheme>, shards: usize) -> ObjectTable<T> {
        assert!(
            shards.is_power_of_two() && (1..=256).contains(&shards),
            "shard count must be a power of two in 1..=256"
        );
        ObjectTable {
            scheme,
            port: RwLock::new(None),
            shards: (0..shards).map(|_| Shard::new()).collect(),
            shard_bits: shards.trailing_zeros(),
            next_shard: AtomicUsize::new(0),
            owned: RwLock::new(None),
        }
    }

    /// A table bound to a known put-port.
    pub fn with_port(scheme: Box<dyn ProtectionScheme>, port: Port) -> ObjectTable<T> {
        let t = Self::unbound(scheme);
        t.set_port(port);
        t
    }

    /// Binds the server's put-port (stamped into every minted
    /// capability).
    pub fn set_port(&self, port: Port) {
        *self.port.write() = Some(port);
    }

    /// The bound put-port.
    ///
    /// # Panics
    /// Panics if the table is unbound.
    pub fn port(&self) -> Port {
        self.port
            .read()
            .expect("object table not bound to a port yet")
    }

    /// The protection scheme in use.
    pub fn scheme(&self) -> &dyn ProtectionScheme {
        self.scheme.as_ref()
    }

    /// The number of lock stripes.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Declares this table replica `owner` of a `replicas`-way sharded
    /// placement group: `create` will only mint object numbers whose
    /// shard index satisfies `shard % replicas == owner`, so the low
    /// bits of every object number identify the replica that owns it —
    /// the placement key the cluster layer routes by (see
    /// [`placement_range`]). Validation and lookup are unaffected;
    /// capabilities for foreign ranges simply fail with
    /// `NoSuchObject`, because their objects live on another machine.
    ///
    /// # Panics
    /// Panics unless `owner < replicas` and `replicas ≤ shard count`.
    pub fn set_owned_shards(&self, owner: usize, replicas: usize) {
        assert!(
            owner < replicas,
            "shard owner index must be below the replica count"
        );
        assert!(
            replicas <= self.shards.len(),
            "cannot split {} shards over {replicas} replicas",
            self.shards.len()
        );
        let owned: Box<[usize]> = (0..self.shards.len())
            .filter(|s| s % replicas == owner)
            .collect();
        *self.owned.write() = Some(owned);
    }

    /// Number of live objects (sums over all shards).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.entries.read().iter().flatten().count())
            .sum()
    }

    /// Whether the table holds no objects.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Splits an object number into (shard, slot).
    fn locate(&self, object: ObjectNum) -> (&Shard<T>, usize) {
        let raw = object.value();
        let shard = (raw as usize) & (self.shards.len() - 1);
        (&self.shards[shard], (raw >> self.shard_bits) as usize)
    }

    /// Picks the shard for a new object: any shard advertising a
    /// reusable slot wins (keeping slabs dense and preserving the
    /// slot-reuse behaviour of the unsharded table), otherwise the
    /// round-robin cursor spreads fresh objects evenly. With an owned
    /// set ([`set_owned_shards`](Self::set_owned_shards)) only owned
    /// shards are considered.
    fn create_shard_index(&self) -> usize {
        let rr = self.next_shard.fetch_add(1, Ordering::Relaxed);
        let owned = self.owned.read();
        match owned.as_deref() {
            Some(owned) => {
                for offset in 0..owned.len() {
                    let idx = owned[(rr + offset) % owned.len()];
                    if self.shards[idx].free_count.load(Ordering::Acquire) > 0 {
                        return idx;
                    }
                }
                owned[rr % owned.len()]
            }
            None => {
                let mask = self.shards.len() - 1;
                for offset in 0..self.shards.len() {
                    let idx = (rr + offset) & mask;
                    if self.shards[idx].free_count.load(Ordering::Acquire) > 0 {
                        return idx;
                    }
                }
                rr & mask
            }
        }
    }

    /// Creates an object: picks a random number, stores it, and mints
    /// the all-rights capability.
    ///
    /// Creation round-robins over the stripes (reusing freed slots
    /// first), so a table populated by a single thread still spreads
    /// its objects across every shard — later dispatch workers then
    /// never contend with each other on distinct objects.
    ///
    /// # Panics
    /// Panics if the table is unbound or the shard's slice of the 2²⁴
    /// object-number space is exhausted.
    pub fn create(&self, data: T) -> (ObjectNum, Capability) {
        let port = self.port();
        let shard_index = self.create_shard_index();
        let shard = &self.shards[shard_index];
        let secret = self.scheme.new_secret(&mut *shard.rng.lock());
        let mut entries = shard.entries.write();
        let slot = match shard.free.lock().pop() {
            Some(i) => {
                shard.free_count.fetch_sub(1, Ordering::AcqRel);
                i
            }
            None => {
                let i = entries.len() as u32;
                assert!(
                    i <= (ObjectNum::MAX >> self.shard_bits),
                    "object table shard full"
                );
                entries.push(None);
                i
            }
        };
        let raw = (slot << self.shard_bits) | shard_index as u32;
        let object = ObjectNum::new(raw).expect("slot bounded by MAX >> shard_bits");
        entries[slot as usize] = Some(Entry { secret, data });
        let cap = self.scheme.mint(port, object, &secret);
        (object, cap)
    }

    /// Validates a capability, returning its effective rights.
    ///
    /// # Errors
    /// [`ServerError::NoSuchObject`] or [`ServerError::Forged`].
    pub fn validate(&self, cap: &Capability) -> Result<Rights, ServerError> {
        let (shard, slot) = self.locate(cap.object);
        let entries = shard.entries.read();
        let entry = entries
            .get(slot)
            .and_then(|e| e.as_ref())
            .ok_or(ServerError::NoSuchObject)?;
        Ok(self.scheme.validate(cap, &entry.secret)?)
    }

    /// Runs `f` on the object if `cap` validates with at least `need`.
    ///
    /// # Errors
    /// [`ServerError::NoSuchObject`], [`ServerError::Forged`] or
    /// [`ServerError::RightsViolation`].
    pub fn with_object<R>(
        &self,
        cap: &Capability,
        need: Rights,
        f: impl FnOnce(&T) -> R,
    ) -> Result<R, ServerError> {
        let (shard, slot) = self.locate(cap.object);
        let entries = shard.entries.read();
        let entry = entries
            .get(slot)
            .and_then(|e| e.as_ref())
            .ok_or(ServerError::NoSuchObject)?;
        let rights = self.scheme.validate(cap, &entry.secret)?;
        if !rights.contains(need) {
            return Err(ServerError::RightsViolation);
        }
        Ok(f(&entry.data))
    }

    /// Mutable variant of [`with_object`](Self::with_object).
    ///
    /// # Errors
    /// As for [`with_object`](Self::with_object).
    pub fn with_object_mut<R>(
        &self,
        cap: &Capability,
        need: Rights,
        f: impl FnOnce(&mut T) -> R,
    ) -> Result<R, ServerError> {
        let (shard, slot) = self.locate(cap.object);
        let mut entries = shard.entries.write();
        let slot_entry = entries
            .get_mut(slot)
            .and_then(|e| e.as_mut())
            .ok_or(ServerError::NoSuchObject)?;
        let rights = self.scheme.validate(cap, &slot_entry.secret)?;
        if !rights.contains(need) {
            return Err(ServerError::RightsViolation);
        }
        Ok(f(&mut slot_entry.data))
    }

    /// Direct access by object number, **bypassing capability checks** —
    /// for a server reaching its *own* related objects (e.g. the
    /// multiversion file server touching a version's parent file during
    /// commit). Never expose this path to request parameters.
    pub fn with_data<R>(&self, object: ObjectNum, f: impl FnOnce(&T) -> R) -> Option<R> {
        let (shard, slot) = self.locate(object);
        let entries = shard.entries.read();
        entries
            .get(slot)
            .and_then(|e| e.as_ref())
            .map(|e| f(&e.data))
    }

    /// Mutable variant of [`with_data`](Self::with_data). Same warning.
    pub fn with_data_mut<R>(&self, object: ObjectNum, f: impl FnOnce(&mut T) -> R) -> Option<R> {
        let (shard, slot) = self.locate(object);
        let mut entries = shard.entries.write();
        entries
            .get_mut(slot)
            .and_then(|e| e.as_mut())
            .map(|e| f(&mut e.data))
    }

    /// Server-side restriction: fabricates a capability with exactly
    /// `keep` rights.
    ///
    /// # Errors
    /// Validation errors, [`ServerError::RightsExceeded`] if `keep`
    /// exceeds the current rights, or [`ServerError::Unsupported`] for
    /// scheme 0.
    pub fn restrict(&self, cap: &Capability, keep: Rights) -> Result<Capability, ServerError> {
        let (shard, slot) = self.locate(cap.object);
        let entries = shard.entries.read();
        let entry = entries
            .get(slot)
            .and_then(|e| e.as_ref())
            .ok_or(ServerError::NoSuchObject)?;
        Ok(self.scheme.restrict(cap, keep, &entry.secret)?)
    }

    /// Revocation (§2.3): "ask the server to change the random number
    /// stored in its internal table and return a new capability ...
    /// all existing capabilities for that object are instantly
    /// invalidated." Requires [`Rights::OWNER`].
    ///
    /// # Errors
    /// Validation errors or [`ServerError::RightsViolation`] without the
    /// owner right.
    pub fn revoke(&self, cap: &Capability) -> Result<Capability, ServerError> {
        let port = self.port();
        let (shard, slot) = self.locate(cap.object);
        let mut entries = shard.entries.write();
        let slot_entry = entries
            .get_mut(slot)
            .and_then(|e| e.as_mut())
            .ok_or(ServerError::NoSuchObject)?;
        let rights = self.scheme.validate(cap, &slot_entry.secret)?;
        if !rights.contains(Rights::OWNER) {
            return Err(ServerError::RightsViolation);
        }
        slot_entry.secret = self.scheme.new_secret(&mut *shard.rng.lock());
        Ok(self.scheme.mint(port, cap.object, &slot_entry.secret))
    }

    /// Deletes the object, returning its data. Requires `need`
    /// (conventionally [`Rights::DELETE`]).
    ///
    /// # Errors
    /// Validation errors or [`ServerError::RightsViolation`].
    pub fn delete(&self, cap: &Capability, need: Rights) -> Result<T, ServerError> {
        let (shard, slot) = self.locate(cap.object);
        let mut entries = shard.entries.write();
        let slot_entry = entries
            .get_mut(slot)
            .and_then(|e| e.as_mut())
            .ok_or(ServerError::NoSuchObject)?;
        let rights = self.scheme.validate(cap, &slot_entry.secret)?;
        if !rights.contains(need) {
            return Err(ServerError::RightsViolation);
        }
        let entry = entries[slot].take().expect("checked above");
        shard.free.lock().push(slot as u32);
        shard.free_count.fetch_add(1, Ordering::AcqRel);
        Ok(entry.data)
    }

    /// Answers the standard commands ([`cmd::STD_RESTRICT`],
    /// [`cmd::STD_REVOKE`], [`cmd::STD_INFO`]); returns `None` for
    /// service-specific commands the caller should handle itself.
    pub fn handle_std(&self, req: &Request) -> Option<Reply> {
        match req.command {
            cmd::STD_RESTRICT => {
                let mut r = wire::Reader::new(&req.params);
                let Some(mask) = r.u32() else {
                    return Some(Reply::status(Status::BadRequest));
                };
                Some(
                    match self.restrict(&req.cap, Rights::from_bits(mask as u8)) {
                        Ok(cap) => Reply::ok(wire::Writer::new().cap(&cap).finish()),
                        Err(e) => Reply::status(e.into()),
                    },
                )
            }
            cmd::STD_REVOKE => Some(match self.revoke(&req.cap) {
                Ok(cap) => Reply::ok(wire::Writer::new().cap(&cap).finish()),
                Err(e) => Reply::status(e.into()),
            }),
            cmd::STD_INFO => Some(match self.validate(&req.cap) {
                Ok(rights) => Reply::ok(wire::Writer::new().u32(rights.bits() as u32).finish()),
                Err(e) => Reply::status(e.into()),
            }),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amoeba_cap::schemes::SchemeKind;
    use std::sync::Arc;

    fn table(kind: SchemeKind) -> ObjectTable<String> {
        ObjectTable::with_port(kind.instantiate(), Port::new(0x1111).unwrap())
    }

    #[test]
    fn create_validate_access() {
        for kind in SchemeKind::ALL {
            let t = table(kind);
            let (_obj, cap) = t.create("hello".to_string());
            assert_eq!(t.validate(&cap).unwrap(), Rights::ALL, "{kind}");
            let len = t.with_object(&cap, Rights::READ, |s| s.len()).unwrap();
            assert_eq!(len, 5);
            t.with_object_mut(&cap, Rights::WRITE, |s| s.push('!'))
                .unwrap();
            assert_eq!(
                t.with_object(&cap, Rights::READ, |s| s.clone()).unwrap(),
                "hello!"
            );
        }
    }

    #[test]
    fn forged_and_missing_objects_distinguished() {
        let t = table(SchemeKind::OneWay);
        let (_, cap) = t.create("x".into());
        let forged = cap.with_check(cap.check ^ 1);
        assert_eq!(t.validate(&forged).unwrap_err(), ServerError::Forged);
        let ghost = Capability::new(
            cap.port,
            ObjectNum::new(cap.object.value() + 999 * DEFAULT_SHARDS as u32).unwrap(),
            Rights::ALL,
            1,
        );
        assert_eq!(t.validate(&ghost).unwrap_err(), ServerError::NoSuchObject);
    }

    #[test]
    fn rights_enforced_on_access() {
        let t = table(SchemeKind::Commutative);
        let (_, cap) = t.create("data".into());
        let ro = t.restrict(&cap, Rights::READ).unwrap();
        assert!(t.with_object(&ro, Rights::READ, |_| ()).is_ok());
        assert_eq!(
            t.with_object_mut(&ro, Rights::WRITE, |_| ()).unwrap_err(),
            ServerError::RightsViolation
        );
    }

    #[test]
    fn delete_frees_slot_for_reuse() {
        let t = table(SchemeKind::OneWay);
        let (obj1, cap1) = t.create("a".into());
        assert_eq!(t.delete(&cap1, Rights::DELETE).unwrap(), "a");
        assert_eq!(t.len(), 0);
        // Old capability is now dead.
        assert_eq!(t.validate(&cap1).unwrap_err(), ServerError::NoSuchObject);
        // Slot is recycled with a fresh secret: old cap stays dead
        // (freed slots are preferred over opening a fresh shard slot).
        let (obj2, cap2) = t.create("b".into());
        assert_eq!(obj1, obj2);
        assert_eq!(t.validate(&cap1).unwrap_err(), ServerError::Forged);
        assert!(t.validate(&cap2).is_ok());
    }

    #[test]
    fn revocation_kills_all_outstanding_caps() {
        for kind in SchemeKind::ALL {
            let t = table(kind);
            let (_, owner_cap) = t.create("precious".into());
            let outstanding: Vec<Capability> = match kind {
                // Schemes with rights distinction: hand out restrictions.
                SchemeKind::Encrypted | SchemeKind::OneWay | SchemeKind::Commutative => (0..10)
                    .map(|_| t.restrict(&owner_cap, Rights::READ).unwrap())
                    .collect(),
                SchemeKind::Simple => vec![owner_cap; 10],
            };
            let fresh = t.revoke(&owner_cap).unwrap();
            for old in &outstanding {
                assert_eq!(t.validate(old).unwrap_err(), ServerError::Forged, "{kind}");
            }
            assert_eq!(t.validate(&owner_cap).unwrap_err(), ServerError::Forged);
            assert_eq!(t.validate(&fresh).unwrap(), Rights::ALL);
        }
    }

    #[test]
    fn revocation_requires_owner_right() {
        let t = table(SchemeKind::Commutative);
        let (_, cap) = t.create("x".into());
        let ro = t.restrict(&cap, Rights::READ).unwrap();
        assert_eq!(t.revoke(&ro).unwrap_err(), ServerError::RightsViolation);
    }

    #[test]
    fn handle_std_restrict_and_info() {
        let t = table(SchemeKind::Commutative);
        let (_, cap) = t.create("x".into());
        let req = Request {
            cap,
            command: cmd::STD_RESTRICT,
            params: wire::Writer::new().u32(Rights::READ.bits() as u32).finish(),
        };
        let reply = t.handle_std(&req).unwrap();
        assert_eq!(reply.status, Status::Ok);
        let ro = wire::Reader::new(&reply.body).cap().unwrap();
        assert_eq!(t.validate(&ro).unwrap(), Rights::READ);

        let info = t
            .handle_std(&Request {
                cap: ro,
                command: cmd::STD_INFO,
                params: bytes::Bytes::new(),
            })
            .unwrap();
        assert_eq!(info.status, Status::Ok);
        assert_eq!(
            wire::Reader::new(&info.body).u32().unwrap(),
            Rights::READ.bits() as u32
        );
    }

    #[test]
    fn handle_std_passes_through_service_commands() {
        let t = table(SchemeKind::Simple);
        let (_, cap) = t.create("x".into());
        let req = Request {
            cap,
            command: 42,
            params: bytes::Bytes::new(),
        };
        assert!(t.handle_std(&req).is_none());
    }

    #[test]
    fn handle_std_revoke_roundtrip() {
        let t = table(SchemeKind::OneWay);
        let (_, cap) = t.create("x".into());
        let reply = t
            .handle_std(&Request {
                cap,
                command: cmd::STD_REVOKE,
                params: bytes::Bytes::new(),
            })
            .unwrap();
        assert_eq!(reply.status, Status::Ok);
        assert_eq!(t.validate(&cap).unwrap_err(), ServerError::Forged);
    }

    #[test]
    #[should_panic(expected = "not bound")]
    fn unbound_table_panics_on_create() {
        let t: ObjectTable<()> = ObjectTable::unbound(SchemeKind::Simple.instantiate());
        t.create(());
    }

    #[test]
    fn many_objects_have_independent_secrets() {
        let t = table(SchemeKind::OneWay);
        let caps: Vec<Capability> = (0..100).map(|i| t.create(format!("{i}")).1).collect();
        assert_eq!(t.len(), 100);
        // A capability for object i must not validate for object j's data.
        let cross = caps[0].with_rights(caps[1].rights);
        let mut swapped = cross;
        swapped.object = caps[1].object;
        assert!(t.validate(&swapped).is_err());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_shards_rejected() {
        let _ = ObjectTable::<()>::with_shards(SchemeKind::Simple.instantiate(), 3);
    }

    #[test]
    fn single_shard_table_still_works() {
        let t: ObjectTable<u32> =
            ObjectTable::with_shards(SchemeKind::Commutative.instantiate(), 1);
        t.set_port(Port::new(0x77).unwrap());
        let caps: Vec<_> = (0..20).map(|i| t.create(i).1).collect();
        assert_eq!(t.len(), 20);
        for (i, cap) in caps.iter().enumerate() {
            assert_eq!(t.with_object(cap, Rights::READ, |v| *v).unwrap(), i as u32);
        }
    }

    #[test]
    fn creates_spread_across_shards() {
        // A single-threaded populator must still stripe its objects
        // over every shard, or a later worker pool would contend on
        // one stripe.
        let t = table(SchemeKind::Simple);
        let mask = (DEFAULT_SHARDS - 1) as u32;
        let mut used = std::collections::HashSet::new();
        for i in 0..(DEFAULT_SHARDS as u32 * 2) {
            let (obj, _) = t.create(format!("{i}"));
            used.insert(obj.value() & mask);
        }
        assert_eq!(used.len(), DEFAULT_SHARDS, "all shards used");
    }

    #[test]
    fn owned_shards_constrain_creation_to_the_replica_range() {
        for replicas in [2usize, 3, 4] {
            for owner in 0..replicas {
                let t = table(SchemeKind::OneWay);
                t.set_owned_shards(owner, replicas);
                for i in 0..40 {
                    let (obj, cap) = t.create(format!("{i}"));
                    assert_eq!(
                        placement_range(obj, DEFAULT_SHARDS, replicas),
                        owner,
                        "replica {owner}/{replicas} minted a foreign object"
                    );
                    assert!(t.validate(&cap).is_ok());
                }
                // Objects still spread across the owned stripes.
                let mask = (DEFAULT_SHARDS - 1) as u32;
                let used: std::collections::HashSet<u32> = (0..DEFAULT_SHARDS as u32)
                    .map(|_| t.create("x".into()).0.value() & mask)
                    .collect();
                assert!(used.len() > 1, "owned creates must still stripe");
            }
        }
    }

    #[test]
    fn owned_shards_prefer_freed_slots_within_the_range() {
        let t = table(SchemeKind::Commutative);
        t.set_owned_shards(1, 4);
        let (obj, cap) = t.create("a".into());
        t.delete(&cap, Rights::DELETE).unwrap();
        let (obj2, _) = t.create("b".into());
        assert_eq!(obj, obj2, "freed owned slot is recycled first");
    }

    #[test]
    #[should_panic(expected = "below the replica count")]
    fn owner_out_of_range_rejected() {
        let t = table(SchemeKind::Simple);
        t.set_owned_shards(3, 3);
    }

    #[test]
    fn placement_range_matches_shard_low_bits() {
        let obj = ObjectNum::new(0b1010_0110).unwrap();
        // Shard index = low 4 bits = 6; 6 % 3 == 0, 6 % 4 == 2.
        assert_eq!(placement_range(obj, 16, 3), 0);
        assert_eq!(placement_range(obj, 16, 4), 2);
        assert_eq!(placement_range(obj, 16, 1), 0);
    }

    #[test]
    fn parallel_threads_create_on_distinct_shards() {
        let t: Arc<ObjectTable<usize>> = Arc::new(ObjectTable::with_port(
            SchemeKind::OneWay.instantiate(),
            Port::new(0x1111).unwrap(),
        ));
        let mut handles = Vec::new();
        for worker in 0..8usize {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                (0..50)
                    .map(|i| t.create(worker * 1000 + i).0)
                    .collect::<Vec<_>>()
            }));
        }
        let all: Vec<ObjectNum> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        // Every object number unique, every object retrievable.
        let mut raw: Vec<u32> = all.iter().map(|o| o.value()).collect();
        raw.sort_unstable();
        raw.dedup();
        assert_eq!(raw.len(), 400, "object numbers must never collide");
        assert_eq!(t.len(), 400);
    }

    #[test]
    fn concurrent_create_delete_validate_hammer() {
        let t: Arc<ObjectTable<u64>> = Arc::new(ObjectTable::with_port(
            SchemeKind::Commutative.instantiate(),
            Port::new(0x1111).unwrap(),
        ));
        let mut handles = Vec::new();
        for seed in 0..8u64 {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                for i in 0..200u64 {
                    let (_, cap) = t.create(seed * 1_000_000 + i);
                    assert_eq!(t.validate(&cap).unwrap(), Rights::ALL);
                    let ro = t.restrict(&cap, Rights::READ).unwrap();
                    assert_eq!(
                        t.with_object(&ro, Rights::READ, |v| *v).unwrap(),
                        seed * 1_000_000 + i
                    );
                    if i % 2 == 0 {
                        assert_eq!(
                            t.delete(&cap, Rights::DELETE).unwrap(),
                            seed * 1_000_000 + i
                        );
                        assert!(t.validate(&cap).is_err(), "deleted cap must die");
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.len(), 8 * 100);
    }
}
