//! The object table: per-object secrets plus server-private data.

use crate::proto::{cmd, Reply, Request, Status};
use crate::wire;
use amoeba_cap::schemes::{ObjectSecret, ProtectionScheme};
use amoeba_cap::{CapError, Capability, ObjectNum, Rights};
use amoeba_net::Port;
use parking_lot::{Mutex, RwLock};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Errors from object-table operations, mapping 1:1 onto wire
/// [`Status`] codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerError {
    /// The capability's check field does not validate.
    Forged,
    /// No object with that number exists (deleted or never created).
    NoSuchObject,
    /// The capability is genuine but lacks a required right.
    RightsViolation,
    /// The scheme cannot perform the operation.
    Unsupported,
    /// A restriction tried to add rights.
    RightsExceeded,
}

impl From<CapError> for ServerError {
    fn from(e: CapError) -> ServerError {
        match e {
            CapError::Forged => ServerError::Forged,
            CapError::RightsExceeded => ServerError::RightsExceeded,
            CapError::NotSupported => ServerError::Unsupported,
        }
    }
}

impl From<ServerError> for Status {
    fn from(e: ServerError) -> Status {
        match e {
            ServerError::Forged => Status::Forged,
            ServerError::NoSuchObject => Status::NoSuchObject,
            ServerError::RightsViolation => Status::RightsViolation,
            ServerError::Unsupported => Status::Unsupported,
            ServerError::RightsExceeded => Status::RightsViolation,
        }
    }
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Display::fmt(&Status::from(*self), f)
    }
}

impl std::error::Error for ServerError {}

struct Entry<T> {
    secret: ObjectSecret,
    data: T,
}

/// Maps object numbers to (per-object secret, server data) and performs
/// all capability cryptography for a service.
///
/// "The server would then pick a random number, store this number in its
/// object table, and insert it into the newly-formed object capability"
/// (§2.3). Everything the paper's object-protection discussion requires
/// is here: minting, validation, server-side restriction, deletion, and
/// revocation by random-number replacement.
pub struct ObjectTable<T> {
    scheme: Box<dyn ProtectionScheme>,
    port: RwLock<Option<Port>>,
    entries: RwLock<Vec<Option<Entry<T>>>>,
    free: Mutex<Vec<u32>>,
    rng: Mutex<StdRng>,
}

impl<T> std::fmt::Debug for ObjectTable<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObjectTable")
            .field("scheme", &self.scheme.name())
            .field("objects", &self.len())
            .finish()
    }
}

impl<T> ObjectTable<T> {
    /// A table not yet bound to a server port. The port is stamped into
    /// minted capabilities; bind it with [`set_port`](Self::set_port)
    /// before creating objects (the [`ServiceRunner`] does this
    /// automatically via [`Service::bind`]).
    ///
    /// [`ServiceRunner`]: crate::ServiceRunner
    /// [`Service::bind`]: crate::Service::bind
    pub fn unbound(scheme: Box<dyn ProtectionScheme>) -> ObjectTable<T> {
        ObjectTable {
            scheme,
            port: RwLock::new(None),
            entries: RwLock::new(Vec::new()),
            free: Mutex::new(Vec::new()),
            rng: Mutex::new(StdRng::from_entropy()),
        }
    }

    /// A table bound to a known put-port.
    pub fn with_port(scheme: Box<dyn ProtectionScheme>, port: Port) -> ObjectTable<T> {
        let t = Self::unbound(scheme);
        t.set_port(port);
        t
    }

    /// Binds the server's put-port (stamped into every minted
    /// capability).
    pub fn set_port(&self, port: Port) {
        *self.port.write() = Some(port);
    }

    /// The bound put-port.
    ///
    /// # Panics
    /// Panics if the table is unbound.
    pub fn port(&self) -> Port {
        self.port
            .read()
            .expect("object table not bound to a port yet")
    }

    /// The protection scheme in use.
    pub fn scheme(&self) -> &dyn ProtectionScheme {
        self.scheme.as_ref()
    }

    /// Number of live objects.
    pub fn len(&self) -> usize {
        self.entries.read().iter().flatten().count()
    }

    /// Whether the table holds no objects.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Creates an object: picks a random number, stores it, and mints
    /// the all-rights capability.
    ///
    /// # Panics
    /// Panics if the table is unbound or all 2²⁴ object numbers are in
    /// use.
    pub fn create(&self, data: T) -> (ObjectNum, Capability) {
        let secret = self.scheme.new_secret(&mut *self.rng.lock());
        let port = self.port();
        let mut entries = self.entries.write();
        let index = match self.free.lock().pop() {
            Some(i) => i,
            None => {
                let i = entries.len() as u32;
                assert!(i <= ObjectNum::MAX, "object table full");
                entries.push(None);
                i
            }
        };
        let object = ObjectNum::new(index).expect("index bounded by MAX");
        entries[index as usize] = Some(Entry { secret, data });
        let cap = self.scheme.mint(port, object, &secret);
        (object, cap)
    }

    fn check<R>(
        &self,
        cap: &Capability,
        entry: Option<&Entry<T>>,
        need: Rights,
        f: impl FnOnce(&Entry<T>) -> R,
    ) -> Result<R, ServerError> {
        let entry = entry.ok_or(ServerError::NoSuchObject)?;
        let rights = self.scheme.validate(cap, &entry.secret)?;
        if !rights.contains(need) {
            return Err(ServerError::RightsViolation);
        }
        Ok(f(entry))
    }

    /// Validates a capability, returning its effective rights.
    ///
    /// # Errors
    /// [`ServerError::NoSuchObject`] or [`ServerError::Forged`].
    pub fn validate(&self, cap: &Capability) -> Result<Rights, ServerError> {
        let entries = self.entries.read();
        let entry = entries
            .get(cap.object.value() as usize)
            .and_then(|e| e.as_ref())
            .ok_or(ServerError::NoSuchObject)?;
        Ok(self.scheme.validate(cap, &entry.secret)?)
    }

    /// Runs `f` on the object if `cap` validates with at least `need`.
    ///
    /// # Errors
    /// [`ServerError::NoSuchObject`], [`ServerError::Forged`] or
    /// [`ServerError::RightsViolation`].
    pub fn with_object<R>(
        &self,
        cap: &Capability,
        need: Rights,
        f: impl FnOnce(&T) -> R,
    ) -> Result<R, ServerError> {
        let entries = self.entries.read();
        let entry = entries
            .get(cap.object.value() as usize)
            .and_then(|e| e.as_ref());
        self.check(cap, entry, need, |e| f(&e.data))
    }

    /// Mutable variant of [`with_object`](Self::with_object).
    ///
    /// # Errors
    /// As for [`with_object`](Self::with_object).
    pub fn with_object_mut<R>(
        &self,
        cap: &Capability,
        need: Rights,
        f: impl FnOnce(&mut T) -> R,
    ) -> Result<R, ServerError> {
        let mut entries = self.entries.write();
        let slot = entries
            .get_mut(cap.object.value() as usize)
            .and_then(|e| e.as_mut())
            .ok_or(ServerError::NoSuchObject)?;
        let rights = self.scheme.validate(cap, &slot.secret)?;
        if !rights.contains(need) {
            return Err(ServerError::RightsViolation);
        }
        Ok(f(&mut slot.data))
    }

    /// Direct access by object number, **bypassing capability checks** —
    /// for a server reaching its *own* related objects (e.g. the
    /// multiversion file server touching a version's parent file during
    /// commit). Never expose this path to request parameters.
    pub fn with_data<R>(&self, object: ObjectNum, f: impl FnOnce(&T) -> R) -> Option<R> {
        let entries = self.entries.read();
        entries
            .get(object.value() as usize)
            .and_then(|e| e.as_ref())
            .map(|e| f(&e.data))
    }

    /// Mutable variant of [`with_data`](Self::with_data). Same warning.
    pub fn with_data_mut<R>(&self, object: ObjectNum, f: impl FnOnce(&mut T) -> R) -> Option<R> {
        let mut entries = self.entries.write();
        entries
            .get_mut(object.value() as usize)
            .and_then(|e| e.as_mut())
            .map(|e| f(&mut e.data))
    }

    /// Server-side restriction: fabricates a capability with exactly
    /// `keep` rights.
    ///
    /// # Errors
    /// Validation errors, [`ServerError::RightsExceeded`] if `keep`
    /// exceeds the current rights, or [`ServerError::Unsupported`] for
    /// scheme 0.
    pub fn restrict(&self, cap: &Capability, keep: Rights) -> Result<Capability, ServerError> {
        let entries = self.entries.read();
        let entry = entries
            .get(cap.object.value() as usize)
            .and_then(|e| e.as_ref())
            .ok_or(ServerError::NoSuchObject)?;
        Ok(self.scheme.restrict(cap, keep, &entry.secret)?)
    }

    /// Revocation (§2.3): "ask the server to change the random number
    /// stored in its internal table and return a new capability ...
    /// all existing capabilities for that object are instantly
    /// invalidated." Requires [`Rights::OWNER`].
    ///
    /// # Errors
    /// Validation errors or [`ServerError::RightsViolation`] without the
    /// owner right.
    pub fn revoke(&self, cap: &Capability) -> Result<Capability, ServerError> {
        let mut entries = self.entries.write();
        let slot = entries
            .get_mut(cap.object.value() as usize)
            .and_then(|e| e.as_mut())
            .ok_or(ServerError::NoSuchObject)?;
        let rights = self.scheme.validate(cap, &slot.secret)?;
        if !rights.contains(Rights::OWNER) {
            return Err(ServerError::RightsViolation);
        }
        slot.secret = self.scheme.new_secret(&mut *self.rng.lock());
        Ok(self.scheme.mint(self.port(), cap.object, &slot.secret))
    }

    /// Deletes the object, returning its data. Requires `need`
    /// (conventionally [`Rights::DELETE`]).
    ///
    /// # Errors
    /// Validation errors or [`ServerError::RightsViolation`].
    pub fn delete(&self, cap: &Capability, need: Rights) -> Result<T, ServerError> {
        let mut entries = self.entries.write();
        let index = cap.object.value() as usize;
        let slot = entries
            .get_mut(index)
            .and_then(|e| e.as_mut())
            .ok_or(ServerError::NoSuchObject)?;
        let rights = self.scheme.validate(cap, &slot.secret)?;
        if !rights.contains(need) {
            return Err(ServerError::RightsViolation);
        }
        let entry = entries[index].take().expect("checked above");
        self.free.lock().push(index as u32);
        Ok(entry.data)
    }

    /// Answers the standard commands ([`cmd::STD_RESTRICT`],
    /// [`cmd::STD_REVOKE`], [`cmd::STD_INFO`]); returns `None` for
    /// service-specific commands the caller should handle itself.
    pub fn handle_std(&self, req: &Request) -> Option<Reply> {
        match req.command {
            cmd::STD_RESTRICT => {
                let mut r = wire::Reader::new(&req.params);
                let Some(mask) = r.u32() else {
                    return Some(Reply::status(Status::BadRequest));
                };
                Some(match self.restrict(&req.cap, Rights::from_bits(mask as u8)) {
                    Ok(cap) => Reply::ok(wire::Writer::new().cap(&cap).finish()),
                    Err(e) => Reply::status(e.into()),
                })
            }
            cmd::STD_REVOKE => Some(match self.revoke(&req.cap) {
                Ok(cap) => Reply::ok(wire::Writer::new().cap(&cap).finish()),
                Err(e) => Reply::status(e.into()),
            }),
            cmd::STD_INFO => Some(match self.validate(&req.cap) {
                Ok(rights) => Reply::ok(wire::Writer::new().u32(rights.bits() as u32).finish()),
                Err(e) => Reply::status(e.into()),
            }),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amoeba_cap::schemes::SchemeKind;

    fn table(kind: SchemeKind) -> ObjectTable<String> {
        ObjectTable::with_port(kind.instantiate(), Port::new(0x1111).unwrap())
    }

    #[test]
    fn create_validate_access() {
        for kind in SchemeKind::ALL {
            let t = table(kind);
            let (_obj, cap) = t.create("hello".to_string());
            assert_eq!(t.validate(&cap).unwrap(), Rights::ALL, "{kind}");
            let len = t.with_object(&cap, Rights::READ, |s| s.len()).unwrap();
            assert_eq!(len, 5);
            t.with_object_mut(&cap, Rights::WRITE, |s| s.push('!')).unwrap();
            assert_eq!(t.with_object(&cap, Rights::READ, |s| s.clone()).unwrap(), "hello!");
        }
    }

    #[test]
    fn forged_and_missing_objects_distinguished() {
        let t = table(SchemeKind::OneWay);
        let (_, cap) = t.create("x".into());
        let forged = cap.with_check(cap.check ^ 1);
        assert_eq!(t.validate(&forged).unwrap_err(), ServerError::Forged);
        let ghost = Capability::new(cap.port, ObjectNum::new(999).unwrap(), Rights::ALL, 1);
        assert_eq!(t.validate(&ghost).unwrap_err(), ServerError::NoSuchObject);
    }

    #[test]
    fn rights_enforced_on_access() {
        let t = table(SchemeKind::Commutative);
        let (_, cap) = t.create("data".into());
        let ro = t.restrict(&cap, Rights::READ).unwrap();
        assert!(t.with_object(&ro, Rights::READ, |_| ()).is_ok());
        assert_eq!(
            t.with_object_mut(&ro, Rights::WRITE, |_| ()).unwrap_err(),
            ServerError::RightsViolation
        );
    }

    #[test]
    fn delete_frees_slot_for_reuse() {
        let t = table(SchemeKind::OneWay);
        let (obj1, cap1) = t.create("a".into());
        assert_eq!(t.delete(&cap1, Rights::DELETE).unwrap(), "a");
        assert_eq!(t.len(), 0);
        // Old capability is now dead.
        assert_eq!(t.validate(&cap1).unwrap_err(), ServerError::NoSuchObject);
        // Slot is recycled with a fresh secret: old cap stays dead.
        let (obj2, cap2) = t.create("b".into());
        assert_eq!(obj1, obj2);
        assert_eq!(t.validate(&cap1).unwrap_err(), ServerError::Forged);
        assert!(t.validate(&cap2).is_ok());
    }

    #[test]
    fn revocation_kills_all_outstanding_caps() {
        for kind in SchemeKind::ALL {
            let t = table(kind);
            let (_, owner_cap) = t.create("precious".into());
            let outstanding: Vec<Capability> = match kind {
                // Schemes with rights distinction: hand out restrictions.
                SchemeKind::Encrypted | SchemeKind::OneWay | SchemeKind::Commutative => (0..10)
                    .map(|_| t.restrict(&owner_cap, Rights::READ).unwrap())
                    .collect(),
                SchemeKind::Simple => vec![owner_cap; 10],
            };
            let fresh = t.revoke(&owner_cap).unwrap();
            for old in &outstanding {
                assert_eq!(t.validate(old).unwrap_err(), ServerError::Forged, "{kind}");
            }
            assert_eq!(t.validate(&owner_cap).unwrap_err(), ServerError::Forged);
            assert_eq!(t.validate(&fresh).unwrap(), Rights::ALL);
        }
    }

    #[test]
    fn revocation_requires_owner_right() {
        let t = table(SchemeKind::Commutative);
        let (_, cap) = t.create("x".into());
        let ro = t.restrict(&cap, Rights::READ).unwrap();
        assert_eq!(t.revoke(&ro).unwrap_err(), ServerError::RightsViolation);
    }

    #[test]
    fn handle_std_restrict_and_info() {
        let t = table(SchemeKind::Commutative);
        let (_, cap) = t.create("x".into());
        let req = Request {
            cap,
            command: cmd::STD_RESTRICT,
            params: wire::Writer::new()
                .u32(Rights::READ.bits() as u32)
                .finish(),
        };
        let reply = t.handle_std(&req).unwrap();
        assert_eq!(reply.status, Status::Ok);
        let ro = wire::Reader::new(&reply.body).cap().unwrap();
        assert_eq!(t.validate(&ro).unwrap(), Rights::READ);

        let info = t
            .handle_std(&Request {
                cap: ro,
                command: cmd::STD_INFO,
                params: bytes::Bytes::new(),
            })
            .unwrap();
        assert_eq!(info.status, Status::Ok);
        assert_eq!(
            wire::Reader::new(&info.body).u32().unwrap(),
            Rights::READ.bits() as u32
        );
    }

    #[test]
    fn handle_std_passes_through_service_commands() {
        let t = table(SchemeKind::Simple);
        let (_, cap) = t.create("x".into());
        let req = Request {
            cap,
            command: 42,
            params: bytes::Bytes::new(),
        };
        assert!(t.handle_std(&req).is_none());
    }

    #[test]
    fn handle_std_revoke_roundtrip() {
        let t = table(SchemeKind::OneWay);
        let (_, cap) = t.create("x".into());
        let reply = t
            .handle_std(&Request {
                cap,
                command: cmd::STD_REVOKE,
                params: bytes::Bytes::new(),
            })
            .unwrap();
        assert_eq!(reply.status, Status::Ok);
        assert_eq!(t.validate(&cap).unwrap_err(), ServerError::Forged);
    }

    #[test]
    #[should_panic(expected = "not bound")]
    fn unbound_table_panics_on_create() {
        let t: ObjectTable<()> = ObjectTable::unbound(SchemeKind::Simple.instantiate());
        t.create(());
    }

    #[test]
    fn many_objects_have_independent_secrets() {
        let t = table(SchemeKind::OneWay);
        let caps: Vec<Capability> = (0..100).map(|i| t.create(format!("{i}")).1).collect();
        assert_eq!(t.len(), 100);
        // A capability for object i must not validate for object j's data.
        let cross = caps[0].with_rights(caps[1].rights);
        let mut swapped = cross;
        swapped.object = caps[1].object;
        assert!(t.validate(&swapped).is_err());
    }
}
