//! Parameter encoding shared by every service.
//!
//! A deliberately tiny, schema-free codec: big-endian integers,
//! length-prefixed byte strings, and 16-byte capabilities. Malformed
//! input decodes to `None` — servers answer
//! [`Status::BadRequest`](crate::proto::Status::BadRequest) rather than
//! panicking on attacker-supplied bytes.

use amoeba_cap::Capability;
use bytes::{Bytes, BytesMut};

/// Builds a parameter blob.
///
/// # Example
/// ```
/// use amoeba_server::wire::{Reader, Writer};
/// let blob = Writer::new().u32(7).str("name").finish();
/// let mut r = Reader::new(&blob);
/// assert_eq!(r.u32(), Some(7));
/// assert_eq!(r.str().as_deref(), Some("name"));
/// assert!(r.is_empty());
/// ```
#[derive(Debug, Default)]
pub struct Writer {
    buf: BytesMut,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// Appends a `u32`.
    pub fn u32(mut self, v: u32) -> Writer {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Appends a `u64`.
    pub fn u64(mut self, v: u64) -> Writer {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Appends a length-prefixed byte string.
    pub fn bytes(mut self, data: &[u8]) -> Writer {
        self.buf
            .extend_from_slice(&(data.len() as u32).to_be_bytes());
        self.buf.extend_from_slice(data);
        self
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(self, s: &str) -> Writer {
        self.bytes(s.as_bytes())
    }

    /// Appends a 16-byte capability.
    pub fn cap(mut self, cap: &Capability) -> Writer {
        self.buf.extend_from_slice(&cap.encode());
        self
    }

    /// Finishes and returns the blob.
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }
}

/// Reads a parameter blob written by [`Writer`].
///
/// Every accessor returns `None` on truncated or malformed input.
#[derive(Debug)]
pub struct Reader<'a> {
    data: &'a [u8],
}

impl<'a> Reader<'a> {
    /// Starts reading at the beginning of `data`.
    pub fn new(data: &'a [u8]) -> Reader<'a> {
        Reader { data }
    }

    /// Reads a `u32`.
    pub fn u32(&mut self) -> Option<u32> {
        let (head, rest) = self.data.split_first_chunk::<4>()?;
        self.data = rest;
        Some(u32::from_be_bytes(*head))
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> Option<u64> {
        let (head, rest) = self.data.split_first_chunk::<8>()?;
        self.data = rest;
        Some(u64::from_be_bytes(*head))
    }

    /// Reads a length-prefixed byte string.
    pub fn bytes(&mut self) -> Option<&'a [u8]> {
        let len = self.u32()? as usize;
        if self.data.len() < len {
            return None;
        }
        let (head, rest) = self.data.split_at(len);
        self.data = rest;
        Some(head)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Option<String> {
        self.str_ref().map(str::to_owned)
    }

    /// Reads a length-prefixed UTF-8 string as a borrow of the input —
    /// the server hot paths (lookup, resolve) validate and compare
    /// names without copying them to the heap; callers that must keep
    /// the name (enter, rename) own it explicitly at the insert site.
    pub fn str_ref(&mut self) -> Option<&'a str> {
        let raw = self.bytes()?;
        std::str::from_utf8(raw).ok()
    }

    /// Reads a 16-byte capability.
    pub fn cap(&mut self) -> Option<Capability> {
        let (head, rest) = self.data.split_first_chunk::<16>()?;
        self.data = rest;
        Capability::decode(head)
    }

    /// Whether all input has been consumed.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The unread remainder.
    pub fn remainder(&self) -> &'a [u8] {
        self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amoeba_cap::{ObjectNum, Rights};
    use amoeba_net::Port;

    fn cap() -> Capability {
        Capability::new(
            Port::new(77).unwrap(),
            ObjectNum::new(3).unwrap(),
            Rights::ALL,
            0xBEEF,
        )
    }

    #[test]
    fn full_roundtrip() {
        let blob = Writer::new()
            .u32(1)
            .u64(2)
            .bytes(b"abc")
            .str("défg")
            .cap(&cap())
            .finish();
        let mut r = Reader::new(&blob);
        assert_eq!(r.u32(), Some(1));
        assert_eq!(r.u64(), Some(2));
        assert_eq!(r.bytes(), Some(&b"abc"[..]));
        assert_eq!(r.str().as_deref(), Some("défg"));
        assert_eq!(r.cap(), Some(cap()));
        assert!(r.is_empty());
    }

    #[test]
    fn truncated_input_returns_none() {
        let blob = Writer::new().u64(7).finish();
        let mut r = Reader::new(&blob[..5]);
        assert_eq!(r.u64(), None);
    }

    #[test]
    fn oversized_length_prefix_rejected() {
        let blob = Writer::new().u32(u32::MAX).finish(); // length prefix, no body
        let mut r = Reader::new(&blob);
        assert_eq!(r.bytes(), None);
    }

    #[test]
    fn invalid_utf8_rejected() {
        let blob = Writer::new().bytes(&[0xFF, 0xFE]).finish();
        let mut r = Reader::new(&blob);
        assert_eq!(r.str(), None);
    }

    #[test]
    fn empty_bytes_ok() {
        let blob = Writer::new().bytes(b"").finish();
        let mut r = Reader::new(&blob);
        assert_eq!(r.bytes(), Some(&b""[..]));
        assert!(r.is_empty());
    }

    #[test]
    fn remainder_exposes_tail() {
        let blob = Writer::new().u32(9).finish();
        let mut r = Reader::new(&blob);
        r.u32();
        assert!(r.remainder().is_empty());
    }
}
