//! The standard request/reply message format (§2.1).
//!
//! "The standard message format provides a place for one capability in
//! the header, typically for the object being operated on ... The header
//! also contains room for the operation code and some parameters."
//!
//! Requests with no meaningful capability (e.g. CREATE on a public
//! server) carry the [`null_cap`] placeholder.

use amoeba_cap::{Capability, ObjectNum, Rights};
use amoeba_net::Port;
use bytes::Bytes;

/// Commands every object-table-backed service answers, in a reserved
/// range far above service-specific opcodes.
pub mod cmd {
    /// Fabricate a sub-capability with fewer rights (server-side
    /// restriction, needed by schemes 1 and 2). Params: `u32` rights
    /// mask to keep. Reply: the new capability.
    pub const STD_RESTRICT: u32 = 0xFFFF_0001;
    /// Replace the object's random number, instantly invalidating every
    /// outstanding capability. Requires [`Rights::OWNER`]. Reply: the
    /// fresh capability.
    ///
    /// [`Rights::OWNER`]: amoeba_cap::Rights::OWNER
    pub const STD_REVOKE: u32 = 0xFFFF_0002;
    /// Validate the capability and return its effective rights mask as a
    /// `u32` (diagnostics, and the cheapest possible "is this genuine?").
    pub const STD_INFO: u32 = 0xFFFF_0003;
}

/// A placeholder capability for capability-less requests.
///
/// Uses port value 1 (an ordinary, never-published port) and an
/// all-zero body; services must not grant it anything — it exists only
/// so the standard header always has 16 capability bytes.
pub fn null_cap() -> Capability {
    Capability::new(
        Port::new(1).expect("1 is a valid port"),
        ObjectNum::new(0).expect("0 is a valid object"),
        Rights::NONE,
        0,
    )
}

/// A decoded request: the §2.1 standard format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The capability for the object being operated on.
    pub cap: Capability,
    /// The operation code.
    pub command: u32,
    /// Service-specific parameters (see [`crate::wire`]).
    pub params: Bytes,
}

impl Request {
    /// Encodes for transmission: capability ‖ command ‖ params.
    ///
    /// Fresh-buffer wrapper over [`encode_into`](Self::encode_into);
    /// hot paths encode into a recycled
    /// [`BufPool`](amoeba_net::BufPool) buffer instead.
    pub fn encode(&self) -> Bytes {
        let mut buf = bytes::BytesMut::with_capacity(20 + self.params.len());
        self.encode_into(&mut buf);
        buf.freeze()
    }

    /// Encodes for transmission, appending to `buf`.
    pub fn encode_into(&self, buf: &mut bytes::BytesMut) {
        buf.extend_from_slice(&self.cap.encode());
        buf.extend_from_slice(&self.command.to_be_bytes());
        buf.extend_from_slice(&self.params);
    }

    /// Decodes a request body; `None` if malformed.
    pub fn decode(data: &Bytes) -> Option<Request> {
        if data.len() < 20 {
            return None;
        }
        let cap = Capability::decode_slice(&data[..16])?;
        let command = u32::from_be_bytes(data[16..20].try_into().ok()?);
        Some(Request {
            cap,
            command,
            params: data.slice(20..),
        })
    }
}

/// Reply status codes shared by all services.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u32)]
pub enum Status {
    /// Success.
    Ok = 0,
    /// The capability's check field did not validate.
    Forged = 1,
    /// The capability validates but no such object exists (deleted).
    NoSuchObject = 2,
    /// The capability lacks a right the operation requires.
    RightsViolation = 3,
    /// The request body was malformed.
    BadRequest = 4,
    /// Unknown operation code.
    BadCommand = 5,
    /// A named entry was not found (directories).
    NotFound = 6,
    /// An entry already exists (directories), or a version conflict
    /// (multiversion file server).
    Conflict = 7,
    /// Out of storage (block server, quotas).
    NoSpace = 8,
    /// Not enough virtual money (bank server).
    InsufficientFunds = 9,
    /// The operation is not supported by this server or scheme.
    Unsupported = 10,
    /// Parameter out of range (offsets, sizes).
    OutOfRange = 11,
}

impl Status {
    /// Parses a wire status code.
    pub fn from_u32(v: u32) -> Option<Status> {
        use Status::*;
        Some(match v {
            0 => Ok,
            1 => Forged,
            2 => NoSuchObject,
            3 => RightsViolation,
            4 => BadRequest,
            5 => BadCommand,
            6 => NotFound,
            7 => Conflict,
            8 => NoSpace,
            9 => InsufficientFunds,
            10 => Unsupported,
            11 => OutOfRange,
            _ => return None,
        })
    }
}

impl std::fmt::Display for Status {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Status::Ok => "ok",
            Status::Forged => "capability does not validate",
            Status::NoSuchObject => "no such object",
            Status::RightsViolation => "insufficient rights",
            Status::BadRequest => "malformed request",
            Status::BadCommand => "unknown command",
            Status::NotFound => "not found",
            Status::Conflict => "conflict",
            Status::NoSpace => "no space",
            Status::InsufficientFunds => "insufficient funds",
            Status::Unsupported => "unsupported operation",
            Status::OutOfRange => "parameter out of range",
        };
        write!(f, "{s}")
    }
}

impl std::error::Error for Status {}

/// A service reply: a status and an opaque body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reply {
    /// Outcome.
    pub status: Status,
    /// Body, meaningful only when `status == Ok`.
    pub body: Bytes,
}

impl Reply {
    /// A successful reply.
    pub fn ok(body: Bytes) -> Reply {
        Reply {
            status: Status::Ok,
            body,
        }
    }

    /// A bodyless reply with the given status.
    pub fn status(status: Status) -> Reply {
        Reply {
            status,
            body: Bytes::new(),
        }
    }

    /// Encodes for transmission: status ‖ body.
    ///
    /// Fresh-buffer wrapper over [`encode_into`](Self::encode_into);
    /// the dispatch loop encodes into a recycled
    /// [`BufPool`](amoeba_net::BufPool) buffer instead.
    pub fn encode(&self) -> Bytes {
        let mut buf = bytes::BytesMut::with_capacity(4 + self.body.len());
        self.encode_into(&mut buf);
        buf.freeze()
    }

    /// Encodes for transmission, appending to `buf`.
    pub fn encode_into(&self, buf: &mut bytes::BytesMut) {
        buf.extend_from_slice(&(self.status as u32).to_be_bytes());
        buf.extend_from_slice(&self.body);
    }

    /// Decodes a reply body; `None` if malformed.
    pub fn decode(data: &Bytes) -> Option<Reply> {
        if data.len() < 4 {
            return None;
        }
        let status = Status::from_u32(u32::from_be_bytes(data[..4].try_into().ok()?))?;
        Some(Reply {
            status,
            body: data.slice(4..),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_cap() -> Capability {
        Capability::new(
            Port::new(0x42).unwrap(),
            ObjectNum::new(9).unwrap(),
            Rights::READ,
            0x1234,
        )
    }

    #[test]
    fn request_roundtrip() {
        let req = Request {
            cap: sample_cap(),
            command: 0xDEAD,
            params: Bytes::from_static(b"params"),
        };
        assert_eq!(Request::decode(&req.encode()), Some(req));
    }

    #[test]
    fn request_too_short_rejected() {
        assert_eq!(Request::decode(&Bytes::from_static(&[0u8; 19])), None);
    }

    #[test]
    fn reply_roundtrip_all_statuses() {
        for v in 0..12u32 {
            let status = Status::from_u32(v).unwrap();
            let reply = Reply {
                status,
                body: Bytes::from_static(b"b"),
            };
            assert_eq!(Reply::decode(&reply.encode()), Some(reply));
        }
        assert_eq!(Status::from_u32(999), None);
    }

    #[test]
    fn null_cap_is_harmless() {
        let c = null_cap();
        assert!(c.rights.is_empty());
        assert_eq!(c.check, 0);
    }

    #[test]
    fn status_display_nonempty() {
        for v in 0..12u32 {
            assert!(!Status::from_u32(v).unwrap().to_string().is_empty());
        }
    }

    #[test]
    fn std_commands_are_distinct_and_high() {
        const { assert!(cmd::STD_RESTRICT > 0xFFFF_0000) };
        assert_ne!(cmd::STD_RESTRICT, cmd::STD_REVOKE);
        assert_ne!(cmd::STD_REVOKE, cmd::STD_INFO);
    }
}
