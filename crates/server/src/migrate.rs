//! The shard-migration surface: how a live [`ObjectTable`] shard is
//! exported off one machine and imported on another without clients
//! observing a gap.
//!
//! # The cutover protocol (driven from `amoeba-cluster`)
//!
//! 1. **Track** — [`begin_export`] flips the shard into dirty-tracking
//!    mode: every mutation records its slot while the driver streams a
//!    full snapshot to the target (`TRANSFER_BEGIN` + `TRANSFER_CHUNK`
//!    frames, staged there keyed by transfer id).
//! 2. **Catch up** — the driver repeatedly drains [`take_dirty`] and
//!    ships delta chunks until the dirty set runs dry.
//! 3. **Seal** — [`seal`] closes the shard: newly dispatched requests
//!    are *held* (dropped without a reply, so the client's standard
//!    retransmission machinery retries them — at-least-once is the
//!    transport contract already). The driver waits for [`inflight`]
//!    to reach zero, drains the final dirty delta, and commits.
//! 4. **Flip** — the target installs the staged records and adopts the
//!    shard ([`handle_transfer`] with `TRANSFER_COMMIT`); the source
//!    [`release`]s it into forwarding mode, relaying the held
//!    retransmissions (and any stale-map traffic) straight to the new
//!    owner, which replies directly to the client.
//!
//! Object numbers and per-object secrets are preserved exactly, so
//! every outstanding capability validates unchanged on the new owner —
//! the paper's port indirection means clients address the *service*,
//! and the shard map (or the forwarding relay) finds the machine.
//!
//! Why no request is lost or doubly executed: dirty slots are recorded
//! under the shard's entry write lock, so an export round that drained
//! the dirty set and then read the entries sees either the mutation or
//! its dirty record; after sealing, the inflight gauge proves every
//! already-dispatched request has finished (and dirtied) before the
//! final delta ships. Requests arriving later are held or forwarded —
//! executed exactly once, on exactly one owner. (Retransmits can still
//! duplicate *idempotent* executions, but that is the pre-existing
//! at-least-once transport contract, unchanged by migration.)
//!
//! [`ObjectTable`]: crate::ObjectTable
//! [`begin_export`]: ShardMigrator::begin_export
//! [`take_dirty`]: ShardMigrator::take_dirty
//! [`seal`]: ShardMigrator::seal
//! [`inflight`]: ShardMigrator::inflight
//! [`release`]: ShardMigrator::release
//! [`handle_transfer`]: ShardMigrator::handle_transfer

use crate::proto::{Reply, Request};
use amoeba_net::Port;
use amoeba_rpc::TransferOp;
use bytes::Bytes;

/// What the dispatch layer should do with a request, given the
/// migration mode of the shard its capability addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardDisposition {
    /// Serve locally (the steady state).
    Serve,
    /// Cutover window: drop without replying, so the client
    /// retransmits and lands after the flip. Batch entries are
    /// rejected instead (their replies cannot be relayed).
    Hold,
    /// Migrated away: relay the raw request to the new owner's
    /// put-port; the new owner replies straight to the client.
    Forward(Port),
}

/// Serialisation of a service's per-object payload for migration.
/// The encoding is private to the service (both ends run the same
/// code); only the framing around it is fixed by the record codec.
pub trait MigrateData: Sized + Send {
    /// Serialises the payload.
    fn encode(&self) -> Vec<u8>;
    /// Deserialises a payload; `None` rejects the record (and the
    /// whole commit).
    fn decode(bytes: &[u8]) -> Option<Self>;
}

impl MigrateData for Vec<u8> {
    fn encode(&self) -> Vec<u8> {
        self.clone()
    }
    fn decode(bytes: &[u8]) -> Option<Self> {
        Some(bytes.to_vec())
    }
}

impl MigrateData for String {
    fn encode(&self) -> Vec<u8> {
        self.as_bytes().to_vec()
    }
    fn decode(bytes: &[u8]) -> Option<Self> {
        String::from_utf8(bytes.to_vec()).ok()
    }
}

/// One decoded migration record: a slot and either `(secret, data)`
/// for a live object or `None` for a tombstone (the slot was deleted
/// after the snapshot).
pub(crate) type Record<T> = (u32, Option<(u64, T)>);

const KIND_TOMBSTONE: u8 = 0;
const KIND_LIVE: u8 = 1;

/// Appends one live record: `slot ‖ kind=1 ‖ secret ‖ len ‖ data`.
pub(crate) fn encode_live_record(out: &mut Vec<u8>, slot: u32, secret: u64, data: &[u8]) {
    out.extend_from_slice(&slot.to_be_bytes());
    out.push(KIND_LIVE);
    out.extend_from_slice(&secret.to_be_bytes());
    out.extend_from_slice(&(u32::try_from(data.len()).expect("record fits in u32")).to_be_bytes());
    out.extend_from_slice(data);
}

/// Appends one tombstone record: `slot ‖ kind=0`.
pub(crate) fn encode_tombstone(out: &mut Vec<u8>, slot: u32) {
    out.extend_from_slice(&slot.to_be_bytes());
    out.push(KIND_TOMBSTONE);
}

/// Decodes a chunk's record blob; `None` on any malformed framing
/// (truncation, trailing bytes, an undecodable payload).
pub(crate) fn decode_records<T: MigrateData>(mut bytes: &[u8]) -> Option<Vec<Record<T>>> {
    let mut records = Vec::new();
    while !bytes.is_empty() {
        let slot = u32::from_be_bytes(bytes.get(..4)?.try_into().ok()?);
        match *bytes.get(4)? {
            KIND_TOMBSTONE => {
                records.push((slot, None));
                bytes = &bytes[5..];
            }
            KIND_LIVE => {
                let secret = u64::from_be_bytes(bytes.get(5..13)?.try_into().ok()?);
                let len = u32::from_be_bytes(bytes.get(13..17)?.try_into().ok()?) as usize;
                let end = 17usize.checked_add(len)?;
                let data = T::decode(bytes.get(17..end)?)?;
                records.push((slot, Some((secret, data))));
                bytes = &bytes[end..];
            }
            _ => return None,
        }
    }
    Some(records)
}

/// The object-safe migration handle a [`Service`] exposes so generic
/// machinery (the dispatch loop, the cluster-layer migration driver,
/// the rebalancer) can move its shards without knowing the service
/// type. [`ObjectTable`] implements it whenever its payload type
/// implements [`MigrateData`]; a service built on one table simply
/// returns `Some(&self.table)` from [`Service::migrator`].
///
/// [`Service`]: crate::Service
/// [`Service::migrator`]: crate::Service::migrator
/// [`ObjectTable`]: crate::ObjectTable
pub trait ShardMigrator: Send + Sync {
    /// The shard a request's capability addresses, or `None` for
    /// anonymous requests (null or range capabilities), which are
    /// always served locally.
    fn shard_of(&self, req: &Request) -> Option<usize>;
    /// The dispatch disposition for a shard right now.
    fn disposition(&self, shard: usize) -> ShardDisposition;
    /// Marks one request for `shard` as inside a handler.
    fn enter(&self, shard: usize);
    /// Marks one request for `shard` as done with its handler.
    fn exit(&self, shard: usize);
    /// Requests for `shard` currently inside handlers.
    fn inflight(&self, shard: usize) -> u64;
    /// Total shard count.
    fn shard_count(&self) -> usize;
    /// The shards this replica currently owns (mints into).
    fn owned_shards(&self) -> Vec<usize>;
    /// Cumulative per-shard operation counters — the load signal the
    /// rebalancer steers by.
    fn shard_ops(&self) -> Vec<u64>;
    /// Starts (or restarts) dirty-tracking for an export of `shard`.
    /// `false` if the shard is sealed, already migrated away, or not
    /// owned.
    fn begin_export(&self, shard: usize) -> bool;
    /// Serialises records into chunk blobs of at most `max_records`
    /// records each: the full shard when `slots` is `None`, otherwise
    /// exactly the listed slots (absent slots become tombstones).
    fn export_chunks(&self, shard: usize, slots: Option<&[u32]>, max_records: usize) -> Vec<Bytes>;
    /// Drains the shard's dirty-slot set (sorted, deduplicated).
    fn take_dirty(&self, shard: usize) -> Vec<u32>;
    /// Seals the shard for cutover: dispatch holds new requests.
    fn seal(&self, shard: usize);
    /// Completes the export: the shard leaves the owned set and
    /// requests relay to `forward_to` (the new owner's put-port).
    fn release(&self, shard: usize, forward_to: Port);
    /// Abandons an export: back to normal service, ownership kept.
    fn abort(&self, shard: usize);
    /// The import side: stages/installs transfer ops, replying with an
    /// ordinary wire [`Reply`] (status `Ok` on success). Every op is
    /// idempotent so retransmitted frames are harmless.
    fn handle_transfer(&self, op: &TransferOp) -> Reply;
    /// The port requests for `shard` are being relayed to, if any.
    fn forward_target(&self, shard: usize) -> Option<Port>;
}
