//! The reactor dispatch mode: **many bound services multiplexed onto a
//! small driver pool** (N services ≫ N threads).
//!
//! [`ServiceRunner::spawn_workers`](crate::ServiceRunner::spawn_workers)
//! burns at least one OS thread per service — fine for a handful of
//! servers, a hard ceiling for a node hosting dozens. A [`ReactorPool`]
//! instead binds every service's port up front and drives them all
//! from a fixed pool of driver threads: each driver scans the ports
//! round-robin, serving whatever [`ServerPort::poll_request`] hands it
//! without ever blocking on one port, and parks on the network's
//! [`Reactor`] only when *every* port is idle — waking on the next
//! packet anywhere. Under the virtual clock the park is a scheduled
//! wakeup; under the wall clock it is a single condvar wait shared by
//! the whole pool, instead of one blocked thread per service.
//!
//! Fairness: a driver serves at most [`MAX_BURST`] requests from one
//! port before moving on, so a hot service cannot starve its
//! neighbours on the same driver.
//!
//! Blocking handlers still block their driver (this is a dispatch
//! multiplexer, not a preemptive scheduler): a deployment whose
//! handlers call *other services in the same pool* must size the pool
//! above the maximum call-chain width, exactly as it would size a
//! worker pool today.

use crate::service::{serve_one, LoadGuard, Service};
use amoeba_net::{Endpoint, MachineId, Network, Port, Reactor};
use amoeba_rpc::ServerPort;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Most requests a driver serves from one port before scanning on.
pub const MAX_BURST: usize = 16;

/// One service slot of a [`ReactorPool`]: its bound port and handler.
struct DrivenService {
    server: ServerPort,
    service: Box<dyn Service>,
}

/// A pool of driver threads multiplexing many bound service ports —
/// the `spawn_reactor` dispatch mode. See the module docs.
pub struct ReactorPool {
    entries: Arc<Vec<DrivenService>>,
    put_ports: Vec<Port>,
    machines: Vec<MachineId>,
    reactor: Arc<Reactor>,
    shutdown: Arc<AtomicBool>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for ReactorPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReactorPool")
            .field("services", &self.entries.len())
            .field("drivers", &self.handles.len())
            .finish()
    }
}

impl ReactorPool {
    /// Binds every `(endpoint, get_port, service)` triple and drives
    /// them all on `threads` driver threads.
    ///
    /// # Panics
    /// Panics if `services` is empty, `threads` is zero, or the
    /// endpoints are not all attached to the same network (one pool
    /// parks on one reactor).
    pub fn spawn(services: Vec<(Endpoint, Port, Box<dyn Service>)>, threads: usize) -> ReactorPool {
        assert!(!services.is_empty(), "a reactor pool needs services");
        assert!(threads > 0, "a reactor pool needs at least one driver");
        let reactor = Arc::clone(services[0].0.reactor());
        let mut entries = Vec::with_capacity(services.len());
        for (endpoint, get_port, mut service) in services {
            assert!(
                Arc::ptr_eq(endpoint.reactor(), &reactor),
                "all services of one pool must share a network/reactor"
            );
            let server = ServerPort::bind(endpoint, get_port);
            service.bind(server.put_port());
            entries.push(DrivenService { server, service });
        }
        let put_ports = entries.iter().map(|e| e.server.put_port()).collect();
        let machines = entries.iter().map(|e| e.server.endpoint().id()).collect();
        let entries = Arc::new(entries);
        let shutdown = Arc::new(AtomicBool::new(false));
        let handles = (0..threads)
            .map(|_| {
                let entries = Arc::clone(&entries);
                let reactor = Arc::clone(&reactor);
                let stop = Arc::clone(&shutdown);
                std::thread::spawn(move || drive(&entries, &reactor, &stop))
            })
            .collect();
        ReactorPool {
            entries,
            put_ports,
            machines,
            reactor,
            shutdown,
            handles,
        }
    }

    /// Attaches one fresh open-interface machine per service, binds a
    /// random get-port each, and drives them on `threads` drivers.
    pub fn spawn_open(
        net: &Network,
        services: Vec<Box<dyn Service>>,
        threads: usize,
    ) -> ReactorPool {
        let mut rng = StdRng::from_entropy();
        let bound = services
            .into_iter()
            .map(|svc| (net.attach_open(), Port::random(&mut rng), svc))
            .collect();
        Self::spawn(bound, threads)
    }

    /// The published put-ports, in service order.
    pub fn put_ports(&self) -> &[Port] {
        &self.put_ports
    }

    /// The machines hosting each service, in service order.
    pub fn machines(&self) -> &[MachineId] {
        &self.machines
    }

    /// Number of services driven by this pool.
    pub fn services(&self) -> usize {
        self.entries.len()
    }

    /// Number of driver threads.
    pub fn drivers(&self) -> usize {
        self.handles.len()
    }

    /// Stops every driver and waits for them to exit. The ports stay
    /// claimed until the pool is dropped (as with a halted
    /// [`ServiceRunner`](crate::ServiceRunner), clients of a stopped
    /// pool see timeouts, not disconnects).
    pub fn stop(mut self) {
        self.shutdown_now();
    }

    fn shutdown_now(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        // Parked drivers re-poll on reactor events only; wake them so
        // they observe the flag.
        self.reactor.notify();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for ReactorPool {
    fn drop(&mut self) {
        self.shutdown_now();
    }
}

/// One driver thread's loop: scan every port, serve what is ready,
/// park on the reactor when the whole pool is idle.
fn drive(entries: &[DrivenService], reactor: &Reactor, stop: &AtomicBool) {
    while !stop.load(Ordering::Relaxed) {
        let mut served = 0usize;
        for entry in entries {
            let mut burst = 0usize;
            while let Some(req) = entry.server.poll_request() {
                let endpoint = entry.server.endpoint();
                endpoint.add_load(1);
                let _in_flight = LoadGuard(endpoint);
                serve_one(&*entry.service, &entry.server, &req);
                served += 1;
                burst += 1;
                if burst >= MAX_BURST {
                    break; // fairness: let the other ports have a turn
                }
            }
        }
        if served == 0 {
            // Everything idle: park until some port of the pool has
            // work this driver could actually claim (or shutdown).
            // `has_claimable_work` includes a pump-role probe so a
            // peer driver mid-pump does not make the rest of the pool
            // busy-spin on arrivals only the pump can drain. The poll
            // runs under the reactor lock, so a packet enqueued before
            // the park is never missed — its notify either precedes
            // our check or wakes the wait (the pump also notifies on
            // releasing the role with arrivals left).
            let _: Option<()> = reactor.park_until(None, || {
                (stop.load(Ordering::Relaxed)
                    || entries.iter().any(|e| e.server.has_claimable_work()))
                .then_some(())
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{Reply, Request, Status};
    use crate::service::{RequestCtx, ServiceClient};
    use crate::wire;
    use bytes::Bytes;
    use std::time::Duration;

    /// A stateless service that reports its identity and echoes.
    struct Echo {
        id: u32,
    }

    impl Service for Echo {
        fn handle(&self, req: &Request, _ctx: &RequestCtx) -> Reply {
            match req.command {
                1 => Reply::ok(req.params.clone()),
                2 => Reply::ok(wire::Writer::new().u32(self.id).finish()),
                _ => Reply::status(Status::BadCommand),
            }
        }
    }

    fn spawn_echoes(net: &Network, services: usize, threads: usize) -> ReactorPool {
        let boxed: Vec<Box<dyn Service>> = (0..services)
            .map(|i| Box::new(Echo { id: i as u32 }) as Box<dyn Service>)
            .collect();
        ReactorPool::spawn_open(net, boxed, threads)
    }

    #[test]
    fn eight_services_on_two_drivers_all_answer() {
        let net = Network::new();
        let pool = spawn_echoes(&net, 8, 2);
        assert_eq!(pool.services(), 8);
        assert_eq!(pool.drivers(), 2);
        let client = ServiceClient::open(&net);
        for (i, &port) in pool.put_ports().to_vec().iter().enumerate() {
            let body = client.call_anonymous(port, 2, Bytes::new()).unwrap();
            assert_eq!(wire::Reader::new(&body).u32().unwrap(), i as u32);
        }
        pool.stop();
    }

    #[test]
    fn concurrent_clients_hammer_many_ports() {
        let net = Network::new();
        let pool = spawn_echoes(&net, 12, 3);
        let ports = pool.put_ports().to_vec();
        let handles: Vec<_> = (0..6usize)
            .map(|t| {
                let net = net.clone();
                let ports = ports.clone();
                std::thread::spawn(move || {
                    let client = ServiceClient::open(&net);
                    for i in 0..20u32 {
                        let port = ports[(t + i as usize) % ports.len()];
                        let body = Bytes::from(i.to_be_bytes().to_vec());
                        assert_eq!(client.call_anonymous(port, 1, body.clone()).unwrap(), body);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        pool.stop();
    }

    #[test]
    fn virtual_clock_pool_serves_latent_traffic_fast() {
        let net = Network::new_virtual();
        net.set_latency(Duration::from_millis(5));
        let pool = spawn_echoes(&net, 16, 2);
        let ports = pool.put_ports().to_vec();
        let client = ServiceClient::open(&net);
        let t0 = std::time::Instant::now();
        for (i, &port) in ports.iter().enumerate() {
            let body = Bytes::from(vec![i as u8]);
            assert_eq!(client.call_anonymous(port, 1, body.clone()).unwrap(), body);
        }
        // 16 round-trips × 10 ms of modeled latency = 160 ms timeline.
        assert!(
            net.now().since_epoch() >= Duration::from_millis(160),
            "timeline must cover the modeled hops"
        );
        assert!(
            t0.elapsed() < Duration::from_millis(500),
            "virtual hops must not cost wall-clock: {:?}",
            t0.elapsed()
        );
        pool.stop();
    }

    #[test]
    fn stop_is_idempotent_with_drop() {
        let net = Network::new();
        let pool = spawn_echoes(&net, 2, 1);
        pool.stop();
    }

    #[test]
    #[should_panic(expected = "at least one driver")]
    fn zero_drivers_rejected() {
        let net = Network::new();
        let _ = spawn_echoes(&net, 1, 0);
    }

    #[test]
    #[should_panic(expected = "share a network")]
    fn mixed_networks_rejected() {
        let a = Network::new();
        let b = Network::new();
        let mut rng = StdRng::from_entropy();
        let _ = ReactorPool::spawn(
            vec![
                (
                    a.attach_open(),
                    Port::random(&mut rng),
                    Box::new(Echo { id: 0 }) as Box<dyn Service>,
                ),
                (
                    b.attach_open(),
                    Port::random(&mut rng),
                    Box::new(Echo { id: 1 }) as Box<dyn Service>,
                ),
            ],
            1,
        );
    }
}
