//! The Amoeba **block server** (§3.2).
//!
//! "The block server can be requested to allocate a disk block and
//! return a capability for it. Using this capability, the block can be
//! written, read, or deallocated. The block server has no concept of a
//! file." Splitting it from the file servers lets "any user implement
//! any kind of special-purpose file system" — `amoeba-unixfs` does
//! exactly that on top of this crate.
//!
//! The simulated disk has a fixed block size and capacity; allocation
//! beyond capacity answers `NoSpace`. Blocks are zero-filled on
//! allocation (no data leaks between tenants).
//!
//! # Example
//!
//! ```
//! use amoeba_block::{BlockClient, BlockServer, DiskConfig};
//! use amoeba_cap::schemes::SchemeKind;
//! use amoeba_net::Network;
//! use amoeba_server::ServiceRunner;
//!
//! let net = Network::new();
//! let server = BlockServer::new(DiskConfig::small(), SchemeKind::Commutative);
//! let runner = ServiceRunner::spawn_open(&net, server);
//! let client = BlockClient::open(&net, runner.put_port());
//!
//! let cap = client.alloc().unwrap();
//! client.write(&cap, 0, b"boot sector").unwrap();
//! assert_eq!(&client.read(&cap, 0, 11).unwrap(), b"boot sector");
//! client.free(&cap).unwrap();
//! runner.stop();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use amoeba_cap::schemes::SchemeKind;
use amoeba_cap::{Capability, Rights};
use amoeba_net::{Network, Port};
use amoeba_server::proto::{null_cap, Reply, Request, Status};
use amoeba_server::{wire, ClientError, ObjectTable, RequestCtx, Service, ServiceClient};
use bytes::Bytes;
use std::sync::atomic::{AtomicU32, Ordering};

/// Block-server operation codes.
pub mod ops {
    /// Allocate a zeroed block; anonymous. Reply: capability.
    pub const ALLOC: u32 = 1;
    /// Read `len` bytes at `offset`. Params: `u32 offset`, `u32 len`.
    pub const READ: u32 = 2;
    /// Write bytes at `offset`. Params: `u32 offset`, `bytes data`.
    pub const WRITE: u32 = 3;
    /// Deallocate the block or extent. Requires DELETE.
    pub const FREE: u32 = 4;
    /// Report disk geometry; anonymous. Reply: `u32 block_size`,
    /// `u32 capacity`, `u32 allocated`.
    pub const STATFS: u32 = 5;
    /// Allocate a contiguous extent of `n` zeroed blocks under ONE
    /// capability; anonymous. Params: `u32 n` (≥ 1). Reply: capability,
    /// `u32 blocks`. The extent reads and writes like one large block
    /// of `n × block_size` bytes, and FREE returns all `n` blocks at
    /// once — a file server pays one allocation round-trip regardless
    /// of how many blocks it needs.
    pub const ALLOC_N: u32 = 6;
}

/// Simulated disk geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskConfig {
    /// Bytes per block.
    pub block_size: u32,
    /// Total blocks on the device.
    pub capacity_blocks: u32,
}

impl DiskConfig {
    /// 4 KiB blocks, 4096 of them (16 MiB) — handy for tests.
    pub fn small() -> DiskConfig {
        DiskConfig {
            block_size: 4096,
            capacity_blocks: 4096,
        }
    }
}

impl Default for DiskConfig {
    fn default() -> Self {
        Self::small()
    }
}

/// One allocation unit: a run of `blocks` contiguous blocks addressed
/// through a single capability. A plain ALLOC is an extent of 1.
#[derive(Debug)]
struct Extent {
    data: Box<[u8]>,
    blocks: u32,
}

/// The block server.
#[derive(Debug)]
pub struct BlockServer {
    table: ObjectTable<Extent>,
    config: DiskConfig,
    /// Blocks currently allocated; an atomic reservation counter so
    /// concurrent ALLOCs cannot overshoot the disk capacity.
    allocated: AtomicU32,
}

impl BlockServer {
    /// A server over a fresh simulated disk, protecting blocks with the
    /// given capability scheme.
    pub fn new(config: DiskConfig, scheme: SchemeKind) -> BlockServer {
        assert!(config.block_size > 0, "block size must be nonzero");
        assert!(config.capacity_blocks > 0, "capacity must be nonzero");
        BlockServer {
            table: ObjectTable::unbound(scheme.instantiate()),
            config,
            allocated: AtomicU32::new(0),
        }
    }

    /// Atomically reserves `n` blocks against capacity and mints one
    /// capability covering all of them.
    fn alloc_extent(&self, n: u32) -> Reply {
        let capacity = self.config.capacity_blocks;
        let reserved = self
            .allocated
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |cur| {
                cur.checked_add(n).filter(|&next| next <= capacity)
            });
        if reserved.is_err() {
            return Reply::status(Status::NoSpace);
        }
        let bytes = self.config.block_size as usize * n as usize;
        let (_, cap) = self.table.create(Extent {
            data: vec![0u8; bytes].into_boxed_slice(),
            blocks: n,
        });
        Reply::ok(wire::Writer::new().cap(&cap).u32(n).finish())
    }

    fn alloc(&self) -> Reply {
        // A single block's reply carries only the capability — the
        // pre-extent wire shape, kept frozen for old clients.
        match self.alloc_extent(1) {
            reply if reply.status == Status::Ok => {
                let cap = wire::Reader::new(&reply.body).cap();
                match cap {
                    Some(cap) => Reply::ok(wire::Writer::new().cap(&cap).finish()),
                    None => Reply::status(Status::NoSpace),
                }
            }
            reply => reply,
        }
    }

    fn alloc_n(&self, req: &Request) -> Reply {
        let Some(n) = wire::Reader::new(&req.params).u32() else {
            return Reply::status(Status::BadRequest);
        };
        if n == 0 {
            return Reply::status(Status::BadRequest);
        }
        self.alloc_extent(n)
    }

    fn read(&self, req: &Request) -> Reply {
        let mut r = wire::Reader::new(&req.params);
        let (Some(offset), Some(len)) = (r.u32(), r.u32()) else {
            return Reply::status(Status::BadRequest);
        };
        let result = self.table.with_object(&req.cap, Rights::READ, |ext| {
            let end = offset.checked_add(len)? as usize;
            if end > ext.data.len() {
                return None;
            }
            Some(Bytes::copy_from_slice(&ext.data[offset as usize..end]))
        });
        match result {
            Ok(Some(data)) => Reply::ok(data),
            Ok(None) => Reply::status(Status::OutOfRange),
            Err(e) => Reply::status(e.into()),
        }
    }

    fn write(&self, req: &Request) -> Reply {
        let mut r = wire::Reader::new(&req.params);
        let (Some(offset), Some(data)) = (r.u32(), r.bytes()) else {
            return Reply::status(Status::BadRequest);
        };
        let result = self.table.with_object_mut(&req.cap, Rights::WRITE, |ext| {
            let end = (offset as usize).checked_add(data.len())?;
            if end > ext.data.len() {
                return None;
            }
            ext.data[offset as usize..end].copy_from_slice(data);
            Some(())
        });
        match result {
            Ok(Some(())) => Reply::ok(Bytes::new()),
            Ok(None) => Reply::status(Status::OutOfRange),
            Err(e) => Reply::status(e.into()),
        }
    }

    fn free(&self, req: &Request) -> Reply {
        match self.table.delete(&req.cap, Rights::DELETE) {
            Ok(ext) => {
                // The whole extent comes back at once — a failed
                // multi-block allocation can never strand part of its
                // reservation.
                self.allocated.fetch_sub(ext.blocks, Ordering::AcqRel);
                Reply::ok(Bytes::new())
            }
            Err(e) => Reply::status(e.into()),
        }
    }

    fn statfs(&self) -> Reply {
        Reply::ok(
            wire::Writer::new()
                .u32(self.config.block_size)
                .u32(self.config.capacity_blocks)
                .u32(self.allocated.load(Ordering::Acquire))
                .finish(),
        )
    }
}

impl Service for BlockServer {
    fn bind(&mut self, put_port: Port) {
        self.table.set_port(put_port);
    }

    fn handle(&self, req: &Request, _ctx: &RequestCtx) -> Reply {
        if let Some(reply) = self.table.handle_std(req) {
            return reply;
        }
        match req.command {
            ops::ALLOC => self.alloc(),
            ops::ALLOC_N => self.alloc_n(req),
            ops::READ => self.read(req),
            ops::WRITE => self.write(req),
            ops::FREE => self.free(req),
            ops::STATFS => self.statfs(),
            _ => Reply::status(Status::BadCommand),
        }
    }
}

/// Disk geometry and usage, as reported by [`BlockClient::statfs`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskStats {
    /// Bytes per block.
    pub block_size: u32,
    /// Total blocks.
    pub capacity_blocks: u32,
    /// Currently allocated blocks.
    pub allocated_blocks: u32,
}

/// A typed client for the block server.
#[derive(Debug)]
pub struct BlockClient {
    svc: ServiceClient,
    port: Port,
}

impl BlockClient {
    /// A client on a fresh open-interface machine.
    pub fn open(net: &Network, port: Port) -> BlockClient {
        BlockClient {
            svc: ServiceClient::open(net),
            port,
        }
    }

    /// A client over an existing [`ServiceClient`].
    pub fn with_service(svc: ServiceClient, port: Port) -> BlockClient {
        BlockClient { svc, port }
    }

    /// The server's put-port.
    pub fn port(&self) -> Port {
        self.port
    }

    /// Allocates a zeroed block.
    ///
    /// # Errors
    /// `Status::NoSpace` when the disk is full; transport errors.
    pub fn alloc(&self) -> Result<Capability, ClientError> {
        let body = self
            .svc
            .call_anonymous(self.port, ops::ALLOC, Bytes::new())?;
        wire::Reader::new(&body).cap().ok_or(ClientError::Malformed)
    }

    /// Allocates a contiguous extent of `n` zeroed blocks under one
    /// capability — one round-trip regardless of `n`. The extent reads
    /// and writes as a single `n × block_size` byte range, and
    /// [`free`](Self::free) returns all of it at once.
    ///
    /// # Errors
    /// `Status::NoSpace` when fewer than `n` blocks remain,
    /// `Status::BadRequest` for `n == 0`; transport errors.
    pub fn alloc_n(&self, n: u32) -> Result<(Capability, u32), ClientError> {
        let body = self.svc.call_anonymous(
            self.port,
            ops::ALLOC_N,
            wire::Writer::new().u32(n).finish(),
        )?;
        let mut r = wire::Reader::new(&body);
        match (r.cap(), r.u32()) {
            (Some(cap), Some(blocks)) => Ok((cap, blocks)),
            _ => Err(ClientError::Malformed),
        }
    }

    /// Allocates `n` *independent* single-block capabilities in one
    /// BATCH_REQUEST frame — for file servers (like `amoeba-unixfs`)
    /// whose truncate semantics need to free blocks one at a time. On
    /// any entry failing, already-allocated blocks are freed and the
    /// failure is returned: the caller never holds a partial run.
    ///
    /// # Errors
    /// As for [`alloc`](Self::alloc).
    pub fn alloc_many(&self, n: usize) -> Result<Vec<Capability>, ClientError> {
        if n == 0 {
            return Ok(Vec::new());
        }
        let calls = (0..n)
            .map(|_| (null_cap(), ops::ALLOC, Bytes::new()))
            .collect();
        let results = self.svc.call_batch(self.port, calls)?;
        let mut caps = Vec::with_capacity(n);
        for entry in results {
            match entry
                .and_then(|body| wire::Reader::new(&body).cap().ok_or(ClientError::Malformed))
            {
                Ok(cap) => caps.push(cap),
                Err(e) => {
                    let _ = self.free_many(&caps);
                    return Err(e);
                }
            }
        }
        Ok(caps)
    }

    /// Reads `len` bytes at `offset`.
    ///
    /// # Errors
    /// `Status::OutOfRange` beyond the block; rights/validation errors.
    pub fn read(&self, cap: &Capability, offset: u32, len: u32) -> Result<Vec<u8>, ClientError> {
        let body = self.svc.call(
            cap,
            ops::READ,
            wire::Writer::new().u32(offset).u32(len).finish(),
        )?;
        Ok(body.to_vec())
    }

    /// Writes `data` at `offset`.
    ///
    /// # Errors
    /// As for [`read`](Self::read), plus `RightsViolation` without WRITE.
    pub fn write(&self, cap: &Capability, offset: u32, data: &[u8]) -> Result<(), ClientError> {
        self.svc.call(
            cap,
            ops::WRITE,
            wire::Writer::new().u32(offset).bytes(data).finish(),
        )?;
        Ok(())
    }

    /// Writes many `(capability, offset, data)` scatters in one
    /// BATCH_REQUEST frame — a file server's data round-trip stays O(1)
    /// no matter how many blocks or extents a write spans.
    ///
    /// # Errors
    /// The first entry failure, in order; transport errors.
    pub fn write_many(&self, writes: &[(Capability, u32, &[u8])]) -> Result<(), ClientError> {
        match writes {
            [] => Ok(()),
            // One scatter needs no batch envelope.
            [(cap, offset, data)] => self.write(cap, *offset, data),
            _ => {
                let calls = writes
                    .iter()
                    .map(|(cap, offset, data)| {
                        (
                            *cap,
                            ops::WRITE,
                            wire::Writer::new().u32(*offset).bytes(data).finish(),
                        )
                    })
                    .collect();
                for entry in self.svc.call_batch(self.port, calls)? {
                    entry?;
                }
                Ok(())
            }
        }
    }

    /// Reads many `(capability, offset, len)` gathers in one
    /// BATCH_REQUEST frame, returning the bodies in order.
    ///
    /// # Errors
    /// The first entry failure, in order; transport errors.
    pub fn read_many(&self, reads: &[(Capability, u32, u32)]) -> Result<Vec<Bytes>, ClientError> {
        if reads.is_empty() {
            return Ok(Vec::new());
        }
        let calls = reads
            .iter()
            .map(|(cap, offset, len)| {
                (
                    *cap,
                    ops::READ,
                    wire::Writer::new().u32(*offset).u32(*len).finish(),
                )
            })
            .collect();
        self.svc.call_batch(self.port, calls)?.into_iter().collect()
    }

    /// Deallocates the block (requires DELETE).
    ///
    /// # Errors
    /// Rights/validation errors.
    pub fn free(&self, cap: &Capability) -> Result<(), ClientError> {
        self.svc.call(cap, ops::FREE, Bytes::new())?;
        Ok(())
    }

    /// Frees many blocks/extents in one BATCH_REQUEST frame. Entries
    /// fail independently; the first failure is reported after the
    /// whole batch has been attempted, so one dead capability cannot
    /// strand its neighbours' disk space.
    ///
    /// # Errors
    /// Rights/validation errors; transport errors.
    pub fn free_many(&self, caps: &[Capability]) -> Result<(), ClientError> {
        match caps {
            [] => Ok(()),
            [cap] => self.free(cap),
            _ => {
                let calls = caps
                    .iter()
                    .map(|cap| (*cap, ops::FREE, Bytes::new()))
                    .collect();
                let mut first_err: Result<(), ClientError> = Ok(());
                for entry in self.svc.call_batch(self.port, calls)? {
                    if let Err(e) = entry {
                        first_err = first_err.and(Err(e));
                    }
                }
                first_err
            }
        }
    }

    /// Reports disk geometry and usage.
    ///
    /// # Errors
    /// Transport errors.
    pub fn statfs(&self) -> Result<DiskStats, ClientError> {
        let body = self
            .svc
            .call_anonymous(self.port, ops::STATFS, Bytes::new())?;
        let mut r = wire::Reader::new(&body);
        match (r.u32(), r.u32(), r.u32()) {
            (Some(block_size), Some(capacity_blocks), Some(allocated_blocks)) => Ok(DiskStats {
                block_size,
                capacity_blocks,
                allocated_blocks,
            }),
            _ => Err(ClientError::Malformed),
        }
    }

    /// Access to the generic capability operations (restrict, revoke…).
    pub fn service(&self) -> &ServiceClient {
        &self.svc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amoeba_server::ServiceRunner;

    fn setup(cfg: DiskConfig) -> (Network, ServiceRunner, BlockClient) {
        let net = Network::new();
        let runner = ServiceRunner::spawn_open(&net, BlockServer::new(cfg, SchemeKind::OneWay));
        let client = BlockClient::open(&net, runner.put_port());
        (net, runner, client)
    }

    #[test]
    fn alloc_blocks_are_zeroed() {
        let (_net, runner, client) = setup(DiskConfig::small());
        let cap = client.alloc().unwrap();
        assert_eq!(client.read(&cap, 0, 16).unwrap(), vec![0u8; 16]);
        runner.stop();
    }

    #[test]
    fn write_read_roundtrip_at_offset() {
        let (_net, runner, client) = setup(DiskConfig::small());
        let cap = client.alloc().unwrap();
        client.write(&cap, 100, b"hello").unwrap();
        assert_eq!(&client.read(&cap, 100, 5).unwrap(), b"hello");
        // Bytes around the write remain zero.
        assert_eq!(client.read(&cap, 99, 1).unwrap(), vec![0]);
        assert_eq!(client.read(&cap, 105, 1).unwrap(), vec![0]);
        runner.stop();
    }

    #[test]
    fn out_of_range_rejected() {
        let (_net, runner, client) = setup(DiskConfig {
            block_size: 128,
            capacity_blocks: 4,
        });
        let cap = client.alloc().unwrap();
        assert_eq!(
            client.read(&cap, 100, 100).unwrap_err(),
            ClientError::Status(Status::OutOfRange)
        );
        assert_eq!(
            client.write(&cap, 127, b"too long").unwrap_err(),
            ClientError::Status(Status::OutOfRange)
        );
        // Offset overflow must not wrap.
        assert_eq!(
            client.read(&cap, u32::MAX, 2).unwrap_err(),
            ClientError::Status(Status::OutOfRange)
        );
        runner.stop();
    }

    #[test]
    fn disk_fills_up_and_free_reclaims() {
        let (_net, runner, client) = setup(DiskConfig {
            block_size: 64,
            capacity_blocks: 2,
        });
        let a = client.alloc().unwrap();
        let _b = client.alloc().unwrap();
        assert_eq!(
            client.alloc().unwrap_err(),
            ClientError::Status(Status::NoSpace)
        );
        client.free(&a).unwrap();
        assert!(client.alloc().is_ok());
        runner.stop();
    }

    #[test]
    fn freed_block_capability_is_dead() {
        let (_net, runner, client) = setup(DiskConfig::small());
        let cap = client.alloc().unwrap();
        client.free(&cap).unwrap();
        assert!(matches!(
            client.read(&cap, 0, 1).unwrap_err(),
            ClientError::Status(Status::NoSuchObject) | ClientError::Status(Status::Forged)
        ));
        runner.stop();
    }

    #[test]
    fn read_only_delegation() {
        let (_net, runner, client) = setup(DiskConfig::small());
        let cap = client.alloc().unwrap();
        client.write(&cap, 0, b"mine").unwrap();
        let ro = client.service().restrict(&cap, Rights::READ).unwrap();
        assert_eq!(&client.read(&ro, 0, 4).unwrap(), b"mine");
        assert_eq!(
            client.write(&ro, 0, b"evil").unwrap_err(),
            ClientError::Status(Status::RightsViolation)
        );
        assert_eq!(
            client.free(&ro).unwrap_err(),
            ClientError::Status(Status::RightsViolation)
        );
        runner.stop();
    }

    #[test]
    fn statfs_reports_usage() {
        let (_net, runner, client) = setup(DiskConfig {
            block_size: 256,
            capacity_blocks: 8,
        });
        let s0 = client.statfs().unwrap();
        assert_eq!(s0.allocated_blocks, 0);
        assert_eq!(s0.block_size, 256);
        let _cap = client.alloc().unwrap();
        assert_eq!(client.statfs().unwrap().allocated_blocks, 1);
        runner.stop();
    }

    #[test]
    fn extent_reads_writes_and_frees_as_one_unit() {
        let (_net, runner, client) = setup(DiskConfig {
            block_size: 64,
            capacity_blocks: 16,
        });
        let (ext, blocks) = client.alloc_n(4).unwrap();
        assert_eq!(blocks, 4);
        assert_eq!(client.statfs().unwrap().allocated_blocks, 4);
        // The extent addresses all 4 × 64 bytes through one capability,
        // including a write spanning what would be a block boundary.
        client.write(&ext, 60, b"spanning").unwrap();
        assert_eq!(&client.read(&ext, 60, 8).unwrap(), b"spanning");
        assert_eq!(client.read(&ext, 255, 1).unwrap(), vec![0]);
        assert_eq!(
            client.read(&ext, 256, 1).unwrap_err(),
            ClientError::Status(Status::OutOfRange)
        );
        client.free(&ext).unwrap();
        assert_eq!(
            client.statfs().unwrap().allocated_blocks,
            0,
            "freeing an extent must return every block it reserved"
        );
        runner.stop();
    }

    #[test]
    fn extent_allocation_respects_capacity_atomically() {
        let (_net, runner, client) = setup(DiskConfig {
            block_size: 64,
            capacity_blocks: 4,
        });
        let _one = client.alloc().unwrap();
        assert_eq!(
            client.alloc_n(4).unwrap_err(),
            ClientError::Status(Status::NoSpace),
            "an oversized extent must not partially reserve"
        );
        // The failed request reserved nothing: 3 blocks still fit.
        let (ext, _) = client.alloc_n(3).unwrap();
        assert_eq!(client.statfs().unwrap().allocated_blocks, 4);
        client.free(&ext).unwrap();
        assert_eq!(
            client.alloc_n(0).unwrap_err(),
            ClientError::Status(Status::BadRequest)
        );
        runner.stop();
    }

    #[test]
    fn batched_alloc_write_read_free_roundtrip() {
        let (_net, runner, client) = setup(DiskConfig {
            block_size: 32,
            capacity_blocks: 8,
        });
        let caps = client.alloc_many(3).unwrap();
        assert_eq!(caps.len(), 3);
        assert_eq!(client.statfs().unwrap().allocated_blocks, 3);
        let writes: Vec<(Capability, u32, &[u8])> = caps
            .iter()
            .enumerate()
            .map(|(i, cap)| (*cap, i as u32, b"data".as_slice()))
            .collect();
        client.write_many(&writes).unwrap();
        let reads: Vec<(Capability, u32, u32)> = caps
            .iter()
            .enumerate()
            .map(|(i, cap)| (*cap, i as u32, 4))
            .collect();
        for body in client.read_many(&reads).unwrap() {
            assert_eq!(&body[..], b"data");
        }
        client.free_many(&caps).unwrap();
        assert_eq!(client.statfs().unwrap().allocated_blocks, 0);
        runner.stop();
    }

    #[test]
    fn oversized_batched_alloc_returns_the_partial_run() {
        let (_net, runner, client) = setup(DiskConfig {
            block_size: 32,
            capacity_blocks: 2,
        });
        assert_eq!(
            client.alloc_many(3).unwrap_err(),
            ClientError::Status(Status::NoSpace)
        );
        assert_eq!(
            client.statfs().unwrap().allocated_blocks,
            0,
            "the two blocks that did allocate must have been freed"
        );
        runner.stop();
    }

    #[test]
    #[should_panic(expected = "block size")]
    fn zero_block_size_rejected() {
        BlockServer::new(
            DiskConfig {
                block_size: 0,
                capacity_blocks: 1,
            },
            SchemeKind::Simple,
        );
    }
}
