//! The (source, destination) key matrix and capability sealing.

use amoeba_cap::Capability;
use amoeba_crypto::des::Des;
use amoeba_net::MachineId;
use parking_lot::Mutex;
use rand::Rng;
use std::collections::HashMap;

/// A capability as it travels inside a message under §2.4 protection:
/// the 128-bit DES-CBC ciphertext of the encoded capability.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SealedCap(pub u128);

/// The conceptual matrix `M` of conventional keys.
///
/// This *god view* exists for setup, tests and benchmarks; real machines
/// only ever hold their own row and column ([`MachineKeys`]), which is
/// exactly what the key-establishment protocol of §2.4 gives them.
#[derive(Debug, Default)]
pub struct KeyMatrix {
    keys: HashMap<(MachineId, MachineId), u64>,
}

impl KeyMatrix {
    /// An empty matrix.
    pub fn new() -> KeyMatrix {
        KeyMatrix::default()
    }

    /// Fills the matrix with random keys for every ordered pair of the
    /// given machines.
    pub fn random<R: Rng + ?Sized>(machines: &[MachineId], rng: &mut R) -> KeyMatrix {
        let mut m = KeyMatrix::new();
        for &src in machines {
            for &dst in machines {
                if src != dst {
                    m.keys.insert((src, dst), rng.gen());
                }
            }
        }
        m
    }

    /// Sets the key for `src → dst` traffic.
    pub fn set(&mut self, src: MachineId, dst: MachineId, key: u64) {
        self.keys.insert((src, dst), key);
    }

    /// The key for `src → dst` traffic.
    pub fn get(&self, src: MachineId, dst: MachineId) -> Option<u64> {
        self.keys.get(&(src, dst)).copied()
    }

    /// Extracts machine `m`'s view: its row (keys for traffic it sends)
    /// and column (keys for traffic it receives).
    pub fn view_for(&self, m: MachineId) -> MachineKeys {
        let mut row = HashMap::new();
        let mut col = HashMap::new();
        for (&(src, dst), &k) in &self.keys {
            if src == m {
                row.insert(dst, k);
            }
            if dst == m {
                col.insert(src, k);
            }
        }
        MachineKeys { me: m, row, col }
    }
}

/// One machine's knowledge of the matrix: "Each machine is assumed to
/// know the contents of its row and column of the matrix, and nothing
/// else."
#[derive(Debug, Clone)]
pub struct MachineKeys {
    me: MachineId,
    row: HashMap<MachineId, u64>,
    col: HashMap<MachineId, u64>,
}

impl MachineKeys {
    /// A view with no keys yet (filled by key establishment).
    pub fn empty(me: MachineId) -> MachineKeys {
        MachineKeys {
            me,
            row: HashMap::new(),
            col: HashMap::new(),
        }
    }

    /// This machine's address.
    pub fn machine(&self) -> MachineId {
        self.me
    }

    /// Installs the key used for traffic this machine *sends to* `dst`.
    pub fn learn_send_key(&mut self, dst: MachineId, key: u64) {
        self.row.insert(dst, key);
    }

    /// Installs the key used for traffic this machine *receives from*
    /// `src`.
    pub fn learn_recv_key(&mut self, src: MachineId, key: u64) {
        self.col.insert(src, key);
    }

    /// Key for sending to `dst`.
    pub fn send_key(&self, dst: MachineId) -> Option<u64> {
        self.row.get(&dst).copied()
    }

    /// Key for receiving from `src`.
    pub fn recv_key(&self, src: MachineId) -> Option<u64> {
        self.col.get(&src).copied()
    }
}

/// Statistics for the capability caches (experiment E5).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Seal/unseal calls answered from the cache.
    pub hits: u64,
    /// Calls that had to run DES.
    pub misses: u64,
}

/// Seals and unseals capabilities with matrix keys, through the hashed
/// caches of §2.4:
///
/// > "Clients will hash their caches on the unencrypted capabilities in
/// > the form of triples: (unencrypted capability, destination,
/// > encrypted capability), whereas servers will hash theirs in the form
/// > of triples: (encrypted capability, source, unencrypted
/// > capability)."
#[derive(Debug)]
pub struct CapSealer {
    keys: Mutex<MachineKeys>,
    client_cache: Mutex<HashMap<(Capability, MachineId), SealedCap>>,
    server_cache: Mutex<HashMap<(SealedCap, MachineId), Capability>>,
    stats: Mutex<CacheStats>,
}

/// Errors from sealing operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SealError {
    /// No matrix key is known for this peer (run key establishment).
    NoKey,
    /// Decryption produced bytes that are not a valid capability.
    Garbage,
}

impl std::fmt::Display for SealError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SealError::NoKey => write!(f, "no conventional key for this machine pair"),
            SealError::Garbage => write!(f, "decrypted bytes are not a capability"),
        }
    }
}

impl std::error::Error for SealError {}

impl CapSealer {
    /// Wraps a machine's key view.
    pub fn new(keys: MachineKeys) -> CapSealer {
        CapSealer {
            keys: Mutex::new(keys),
            client_cache: Mutex::new(HashMap::new()),
            server_cache: Mutex::new(HashMap::new()),
            stats: Mutex::new(CacheStats::default()),
        }
    }

    /// Installs keys learned later (e.g. from a handshake).
    pub fn keys(&self) -> &Mutex<MachineKeys> {
        &self.keys
    }

    /// Encrypts `cap` for transmission to `dst` (client side).
    ///
    /// # Errors
    /// [`SealError::NoKey`] if no key for `dst` is installed.
    pub fn seal(&self, cap: &Capability, dst: MachineId) -> Result<SealedCap, SealError> {
        if let Some(&sealed) = self.client_cache.lock().get(&(*cap, dst)) {
            self.stats.lock().hits += 1;
            return Ok(sealed);
        }
        let key = self.keys.lock().send_key(dst).ok_or(SealError::NoKey)?;
        let sealed = SealedCap(Des::new(key).encrypt_u128(cap.as_u128()));
        self.client_cache.lock().insert((*cap, dst), sealed);
        self.stats.lock().misses += 1;
        Ok(sealed)
    }

    /// Decrypts a sealed capability received from `src` (server side).
    /// The key is selected by the **unforgeable source address** — this
    /// is the entire defence.
    ///
    /// # Errors
    /// [`SealError::NoKey`] without a key for `src`;
    /// [`SealError::Garbage`] when decryption does not yield a
    /// well-formed capability (e.g. a replay from the wrong machine).
    pub fn unseal(&self, sealed: SealedCap, src: MachineId) -> Result<Capability, SealError> {
        if let Some(&cap) = self.server_cache.lock().get(&(sealed, src)) {
            self.stats.lock().hits += 1;
            return Ok(cap);
        }
        let key = self.keys.lock().recv_key(src).ok_or(SealError::NoKey)?;
        let plain = Des::new(key).decrypt_u128(sealed.0);
        let cap = Capability::from_u128(plain).ok_or(SealError::Garbage)?;
        self.server_cache.lock().insert((sealed, src), cap);
        self.stats.lock().misses += 1;
        Ok(cap)
    }

    /// Cache hit/miss counts so far.
    pub fn cache_stats(&self) -> CacheStats {
        *self.stats.lock()
    }

    /// Empties both caches (e.g. after a key change).
    pub fn flush_caches(&self) {
        self.client_cache.lock().clear();
        self.server_cache.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amoeba_cap::{ObjectNum, Rights};
    use amoeba_net::{Network, Port};
    use rand::SeedableRng;

    fn cap(check: u64) -> Capability {
        Capability::new(
            Port::new(0x7777).unwrap(),
            ObjectNum::new(12).unwrap(),
            Rights::READ | Rights::WRITE,
            check,
        )
    }

    fn three_machines() -> (MachineId, MachineId, MachineId, KeyMatrix) {
        let net = Network::new();
        let c = net.attach_open().id();
        let s = net.attach_open().id();
        let i = net.attach_open().id();
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let m = KeyMatrix::random(&[c, s, i], &mut rng);
        (c, s, i, m)
    }

    #[test]
    fn seal_unseal_roundtrip() {
        let (c, s, _i, m) = three_machines();
        let client = CapSealer::new(m.view_for(c));
        let server = CapSealer::new(m.view_for(s));
        let sealed = client.seal(&cap(42), s).unwrap();
        assert_eq!(server.unseal(sealed, c).unwrap(), cap(42));
    }

    #[test]
    fn replay_from_other_machine_decrypts_to_garbage() {
        // The core §2.4 claim.
        let (c, s, i, m) = three_machines();
        let client = CapSealer::new(m.view_for(c));
        let server = CapSealer::new(m.view_for(s));
        let sealed = client.seal(&cap(42), s).unwrap();
        // Intruder captured `sealed` and replays it; the server sees
        // source = I and uses M[I][S].
        match server.unseal(sealed, i) {
            Err(SealError::Garbage) => {}
            Ok(garbled) => assert_ne!(garbled, cap(42), "must not recover the capability"),
            Err(SealError::NoKey) => panic!("matrix is fully populated"),
        }
    }

    #[test]
    fn view_contains_only_own_row_and_column() {
        let (c, s, i, m) = three_machines();
        let view = m.view_for(c);
        assert!(view.send_key(s).is_some());
        assert!(view.send_key(i).is_some());
        assert!(view.recv_key(s).is_some());
        assert_eq!(view.send_key(c), None, "no self key");
        // C's view must not contain the S→I key.
        assert_eq!(view.send_key(s), m.get(c, s));
        assert_ne!(m.get(s, i), None);
    }

    #[test]
    fn caches_hit_on_repeated_traffic() {
        let (c, s, _i, m) = three_machines();
        let client = CapSealer::new(m.view_for(c));
        let server = CapSealer::new(m.view_for(s));
        let my_cap = cap(7);
        let sealed = client.seal(&my_cap, s).unwrap();
        for _ in 0..9 {
            assert_eq!(client.seal(&my_cap, s).unwrap(), sealed);
        }
        assert_eq!(client.cache_stats(), CacheStats { hits: 9, misses: 1 });
        for _ in 0..10 {
            server.unseal(sealed, c).unwrap();
        }
        assert_eq!(server.cache_stats(), CacheStats { hits: 9, misses: 1 });
    }

    #[test]
    fn flush_forces_recomputation() {
        let (c, s, _i, m) = three_machines();
        let client = CapSealer::new(m.view_for(c));
        client.seal(&cap(1), s).unwrap();
        client.flush_caches();
        client.seal(&cap(1), s).unwrap();
        assert_eq!(client.cache_stats().misses, 2);
    }

    #[test]
    fn missing_key_reported() {
        let (c, s, _i, _m) = three_machines();
        let empty = CapSealer::new(MachineKeys::empty(c));
        assert_eq!(empty.seal(&cap(1), s).unwrap_err(), SealError::NoKey);
        assert_eq!(
            empty.unseal(SealedCap(123), s).unwrap_err(),
            SealError::NoKey
        );
    }

    #[test]
    fn different_destinations_get_different_ciphertexts() {
        let (c, s, i, m) = three_machines();
        let client = CapSealer::new(m.view_for(c));
        let a = client.seal(&cap(1), s).unwrap();
        let b = client.seal(&cap(1), i).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn learned_keys_enable_sealing() {
        let (c, s, _i, _m) = three_machines();
        let sealer = CapSealer::new(MachineKeys::empty(c));
        sealer.keys().lock().learn_send_key(s, 0xABCD);
        assert!(sealer.seal(&cap(5), s).is_ok());
    }
}
