//! The §2.4 key-establishment protocol.
//!
//! > "A public server, such as a file server, makes its put-port and a
//! > public encryption key known to the whole world. When a new machine
//! > joins the network (e.g., after a crash or upon initial system
//! > boot), it sends a broadcast message announcing its presence. ...
//! > A client machine, C, ... picks a new conventional encryption key,
//! > K, for use in subsequent C to F traffic and sends it to F encrypted
//! > with F's public key. F then decrypts K and replies to C by sending
//! > a message containing both K and a newly chosen conventional key to
//! > be used for reverse traffic. This message is encrypted both with K
//! > itself and with the inverse of F's public key [i.e. signed] ...
//! > Note that the use of different conventional keys after each reboot
//! > make it impossible for an intruder to fool anyone by playing back
//! > old messages."
//!
//! Message flow (`tests/key_establishment.rs` runs it over the real
//! simulated network):
//!
//! ```text
//! F → *   ANNOUNCE(port_F, pub_F)                  (broadcast)
//! C → F   KEYREQ(RSA_pub_F(K))
//! F → C   KEYREP(DES_K(K ‖ K′), sign_priv_F(ct))
//! ```
//!
//! C accepts iff the signature verifies under `pub_F` *and* the
//! decrypted message echoes `K` — proving the responder owns `priv_F`
//! and saw this boot's `K`, which authenticates the server and kills
//! replays.

use amoeba_crypto::des::Des;
use amoeba_crypto::rsa::{KeyPair, PublicKey};
use amoeba_net::Port;
use rand::Rng;

/// A server's broadcast announcement: its put-port and public key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Announcement {
    /// Where to send key requests (the server's put-port).
    pub port: Port,
    /// RSA modulus of the server's public key.
    pub modulus: u64,
}

impl Announcement {
    /// Serialises to 16 bytes: port ‖ modulus.
    pub fn encode(&self) -> [u8; 16] {
        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&self.port.value().to_be_bytes());
        out[8..].copy_from_slice(&self.modulus.to_be_bytes());
        out
    }

    /// Parses 16 announcement bytes.
    pub fn decode(data: &[u8]) -> Option<Announcement> {
        if data.len() != 16 {
            return None;
        }
        let port = Port::new(u64::from_be_bytes(data[..8].try_into().ok()?))?;
        let modulus = u64::from_be_bytes(data[8..].try_into().ok()?);
        Some(Announcement { port, modulus })
    }

    /// Reconstructs the public key (the exponent is the fixed
    /// [`amoeba_crypto::rsa::E`]).
    pub fn public_key(&self) -> PublicKey {
        PublicKey::from_parts(self.modulus)
    }
}

/// Why a handshake failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HandshakeError {
    /// A message was structurally malformed.
    Malformed,
    /// The reply's signature did not verify under the announced key —
    /// whoever answered does not own the server's private key.
    BadSignature,
    /// The decrypted reply did not echo our fresh key `K` — a replay of
    /// an earlier boot's reply, or an impostor.
    StaleOrForgedReply,
}

impl std::fmt::Display for HandshakeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HandshakeError::Malformed => write!(f, "malformed handshake message"),
            HandshakeError::BadSignature => write!(f, "reply signature does not verify"),
            HandshakeError::StaleOrForgedReply => {
                write!(f, "reply does not echo this boot's fresh key")
            }
        }
    }
}

impl std::error::Error for HandshakeError {}

/// Server-side state for one boot epoch.
#[derive(Debug)]
pub struct ServerBoot {
    keypair: KeyPair,
    port: Port,
}

impl ServerBoot {
    /// Starts a boot epoch: generates this boot's key pair.
    pub fn new<R: Rng + ?Sized>(port: Port, rng: &mut R) -> ServerBoot {
        ServerBoot {
            keypair: KeyPair::generate(rng),
            port,
        }
    }

    /// The announcement to broadcast.
    pub fn announcement(&self) -> Announcement {
        Announcement {
            port: self.port,
            modulus: self.keypair.public().modulus(),
        }
    }

    /// Handles a KEYREQ: decrypts the client's fresh key `K`, picks the
    /// reverse key `K′`, and produces the encrypted+signed KEYREP.
    ///
    /// Returns `(keyrep_bytes, k_client_to_server, k_server_to_client)`
    /// — the two conventional keys to install in the server's matrix
    /// view.
    ///
    /// # Errors
    /// [`HandshakeError::Malformed`] if the request does not decrypt to
    /// an 8-byte key.
    pub fn handle_keyreq<R: Rng + ?Sized>(
        &self,
        keyreq: &[u8],
        rng: &mut R,
    ) -> Result<(Vec<u8>, u64, u64), HandshakeError> {
        let k_bytes = self
            .keypair
            .decrypt_bytes(keyreq)
            .map_err(|_| HandshakeError::Malformed)?;
        let k: u64 = u64::from_be_bytes(
            k_bytes
                .as_slice()
                .try_into()
                .map_err(|_| HandshakeError::Malformed)?,
        );
        let k_reverse: u64 = rng.gen();
        // Plaintext: K ‖ K′, encrypted under K itself…
        let plain = ((k as u128) << 64) | k_reverse as u128;
        let ct = Des::new(k).encrypt_u128(plain);
        // …and "encrypted with the inverse of F's public key": signed.
        let ct_bytes = ct.to_be_bytes();
        let sig = self.keypair.sign(&ct_bytes);
        let mut reply = Vec::with_capacity(24);
        reply.extend_from_slice(&ct_bytes);
        reply.extend_from_slice(&sig.to_be_bytes());
        Ok((reply, k, k_reverse))
    }
}

/// Client-side state for one handshake attempt.
#[derive(Debug)]
pub struct ClientSession {
    announcement: Announcement,
    k: u64,
}

impl ClientSession {
    /// Starts a handshake against an announced server: picks the fresh
    /// conventional key `K` and builds the KEYREQ.
    pub fn start<R: Rng + ?Sized>(
        announcement: Announcement,
        rng: &mut R,
    ) -> (ClientSession, Vec<u8>) {
        let k: u64 = rng.gen();
        let keyreq = announcement.public_key().encrypt_bytes(&k.to_be_bytes());
        (ClientSession { announcement, k }, keyreq)
    }

    /// The fresh client→server key `K` (to install once the reply
    /// verifies).
    pub fn client_key(&self) -> u64 {
        self.k
    }

    /// Verifies a KEYREP. On success returns `K′`, the server→client
    /// key, and the server is authenticated.
    ///
    /// # Errors
    /// [`HandshakeError::BadSignature`] or
    /// [`HandshakeError::StaleOrForgedReply`] exactly as §2.4 requires.
    pub fn finish(&self, keyrep: &[u8]) -> Result<u64, HandshakeError> {
        if keyrep.len() != 24 {
            return Err(HandshakeError::Malformed);
        }
        let ct_bytes: [u8; 16] = keyrep[..16].try_into().expect("length checked");
        let sig = u64::from_be_bytes(keyrep[16..24].try_into().expect("length checked"));
        if !self.announcement.public_key().verify(&ct_bytes, sig) {
            return Err(HandshakeError::BadSignature);
        }
        let plain = Des::new(self.k).decrypt_u128(u128::from_be_bytes(ct_bytes));
        let echoed_k = (plain >> 64) as u64;
        if echoed_k != self.k {
            return Err(HandshakeError::StaleOrForgedReply);
        }
        Ok(plain as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn port() -> Port {
        Port::new(0xF11E_5E17E1).unwrap()
    }

    #[test]
    fn announcement_roundtrip() {
        let boot = ServerBoot::new(port(), &mut rng(1));
        let ann = boot.announcement();
        assert_eq!(Announcement::decode(&ann.encode()), Some(ann));
        assert_eq!(Announcement::decode(&[0u8; 15]), None);
    }

    #[test]
    fn successful_handshake_agrees_on_both_keys() {
        let boot = ServerBoot::new(port(), &mut rng(2));
        let (session, keyreq) = ClientSession::start(boot.announcement(), &mut rng(3));
        let (keyrep, k_cs, k_sc) = boot.handle_keyreq(&keyreq, &mut rng(4)).unwrap();
        let k_reverse = session.finish(&keyrep).unwrap();
        assert_eq!(k_cs, session.client_key());
        assert_eq!(k_sc, k_reverse);
    }

    #[test]
    fn impostor_without_private_key_is_rejected() {
        let real = ServerBoot::new(port(), &mut rng(5));
        // The impostor announces the real server's public key (publicly
        // known) but holds a different private key.
        let impostor = ServerBoot::new(port(), &mut rng(6));
        let (session, keyreq) = ClientSession::start(real.announcement(), &mut rng(7));
        // The impostor cannot even decrypt K; but suppose it answers
        // anyway with its own signature.
        let forged = impostor
            .handle_keyreq(&keyreq, &mut rng(8))
            .map(|(reply, _, _)| reply);
        match forged {
            Ok(reply) => {
                assert!(matches!(
                    session.finish(&reply).unwrap_err(),
                    HandshakeError::BadSignature | HandshakeError::StaleOrForgedReply
                ));
            }
            Err(_) => { /* could not decrypt K at all — also a pass */ }
        }
    }

    #[test]
    fn replayed_reply_from_previous_boot_is_rejected() {
        // Boot 1: a full handshake is captured.
        let boot1 = ServerBoot::new(port(), &mut rng(9));
        let (s1, keyreq1) = ClientSession::start(boot1.announcement(), &mut rng(10));
        let (old_reply, _, _) = boot1.handle_keyreq(&keyreq1, &mut rng(11)).unwrap();
        let _ = s1.finish(&old_reply).unwrap();

        // Boot 2 (fresh keys): the intruder replays boot 1's reply.
        let boot2 = ServerBoot::new(port(), &mut rng(12));
        let (s2, _keyreq2) = ClientSession::start(boot2.announcement(), &mut rng(13));
        assert!(matches!(
            s2.finish(&old_reply).unwrap_err(),
            HandshakeError::BadSignature | HandshakeError::StaleOrForgedReply
        ));
    }

    #[test]
    fn tampered_reply_detected() {
        let boot = ServerBoot::new(port(), &mut rng(14));
        let (session, keyreq) = ClientSession::start(boot.announcement(), &mut rng(15));
        let (mut keyrep, _, _) = boot.handle_keyreq(&keyreq, &mut rng(16)).unwrap();
        keyrep[3] ^= 1;
        assert!(session.finish(&keyrep).is_err());
    }

    #[test]
    fn malformed_messages_rejected() {
        let boot = ServerBoot::new(port(), &mut rng(17));
        assert_eq!(
            boot.handle_keyreq(&[1, 2, 3], &mut rng(18)).unwrap_err(),
            HandshakeError::Malformed
        );
        let (session, _keyreq) = ClientSession::start(boot.announcement(), &mut rng(19));
        assert_eq!(
            session.finish(&[0u8; 10]).unwrap_err(),
            HandshakeError::Malformed
        );
    }

    #[test]
    fn fresh_keys_differ_across_boots() {
        let boot1 = ServerBoot::new(port(), &mut rng(20));
        let boot2 = ServerBoot::new(port(), &mut rng(21));
        assert_ne!(
            boot1.announcement().modulus,
            boot2.announcement().modulus,
            "per-boot key pairs must be fresh"
        );
    }
}
