//! Capability **protection without F-boxes** (§2.4).
//!
//! When no F-box hardware exists, Amoeba exploits the one thing an
//! intruder cannot forge — the **source machine address** supplied by
//! the network interface — plus conventional cryptography:
//!
//! > "imagine a (possibly symmetric) conceptual matrix, M, of
//! > conventional (e.g., DES) encryption keys, with the rows being
//! > labeled by source machine and the columns by destination machine.
//! > ... intruder I can easily capture messages from client C to server
//! > S, but attempts to 'play them back' to the server will fail because
//! > the server will see the source machine as I (assumed unforgeable)
//! > and use element `M[I][S]` as the decryption key instead of the
//! > correct `M[C][S]`."
//!
//! This crate provides the three pieces:
//!
//! * [`matrix`] — the key matrix, per-machine row/column views, and the
//!   [`CapSealer`] that DES-encrypts capabilities per
//!   (source, destination) pair, with the hashed **capability caches**
//!   the paper describes for avoiding repeated encryption;
//! * [`handshake`] — the public-key **key-establishment protocol** run
//!   when a machine (re)boots: fresh conventional keys per boot defeat
//!   replays of pre-reboot traffic, and the signed reply authenticates
//!   the server;
//! * [`link`] — the third alternative the section closes with:
//!   conventional **link-level encryption** of whole payloads;
//! * attack-shaped tests: sealed capabilities replayed from a different
//!   source machine never validate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod handshake;
pub mod link;
pub mod matrix;

pub use handshake::{Announcement, ClientSession, HandshakeError, ServerBoot};
pub use link::{LinkError, SecureLink};
pub use matrix::{CapSealer, KeyMatrix, MachineKeys, SealedCap};
