//! Link-level encryption — the third §2.4 alternative.
//!
//! "Yet another possibility for protecting capabilities in the absence
//! of F-boxes is to use conventional link-level encryption on all the
//! data communication lines."
//!
//! [`SecureLink`] wraps an [`Endpoint`] and encrypts every payload in
//! CBC mode under the matrix key for (me, peer) / (peer, me). Unlike
//! the capability-sealing approach (which protects only the 16
//! capability bytes), the *entire message body* is ciphertext on the
//! wire — the trade-off is running the cipher over all data, which is
//! exactly why the paper presents sealing-plus-caching first.

use crate::matrix::MachineKeys;
use amoeba_crypto::des::Des;
use amoeba_net::{Endpoint, Header, MachineId, Packet, RecvError};
use bytes::Bytes;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An endpoint whose payloads are link-encrypted per machine pair.
#[derive(Debug)]
pub struct SecureLink {
    endpoint: Endpoint,
    keys: Mutex<MachineKeys>,
    rng: Mutex<StdRng>,
}

/// Errors from secure-link receives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkError {
    /// Transport failure.
    Recv(RecvError),
    /// No key installed for the peer that sent this packet.
    NoKey(MachineId),
    /// Decryption failed — corrupt, forged, or wrong-epoch traffic.
    Garbled(MachineId),
}

impl std::fmt::Display for LinkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinkError::Recv(e) => write!(f, "transport: {e}"),
            LinkError::NoKey(m) => write!(f, "no link key for {m}"),
            LinkError::Garbled(m) => write!(f, "undecryptable frame from {m}"),
        }
    }
}

impl std::error::Error for LinkError {}

impl SecureLink {
    /// Wraps an endpoint with a key view (typically populated by the
    /// key-establishment handshake).
    pub fn new(endpoint: Endpoint, keys: MachineKeys) -> SecureLink {
        SecureLink {
            endpoint,
            keys: Mutex::new(keys),
            rng: Mutex::new(StdRng::from_entropy()),
        }
    }

    /// The wrapped endpoint (for claims and address queries).
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// The key view, for installing keys learned later.
    pub fn keys(&self) -> &Mutex<MachineKeys> {
        &self.keys
    }

    /// Sends `payload` encrypted for `peer`. The header still travels in
    /// the clear — links encrypt data, ports route it.
    ///
    /// Returns `false` if no key for `peer` is installed (nothing sent:
    /// plaintext must never escape as a fallback).
    pub fn send_to(&self, peer: MachineId, header: Header, payload: &[u8]) -> bool {
        let Some(key) = self.keys.lock().send_key(peer) else {
            return false;
        };
        let iv: u64 = self.rng.lock().gen();
        let ct = Des::new(key).encrypt_cbc(payload, iv);
        self.endpoint.send(header, Bytes::from(ct));
        true
    }

    /// Receives and decrypts the next packet, keyed by its (unforgeable)
    /// source address.
    ///
    /// # Errors
    /// [`LinkError::NoKey`] for traffic from unknown peers,
    /// [`LinkError::Garbled`] when decryption fails.
    pub fn recv(&self) -> Result<(Packet, Vec<u8>), LinkError> {
        let pkt = self.endpoint.recv().map_err(LinkError::Recv)?;
        let key = self
            .keys
            .lock()
            .recv_key(pkt.source)
            .ok_or(LinkError::NoKey(pkt.source))?;
        let plain = Des::new(key)
            .decrypt_cbc(&pkt.payload)
            .ok_or(LinkError::Garbled(pkt.source))?;
        Ok((pkt, plain))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::KeyMatrix;
    use amoeba_net::{Network, Port};

    fn linked_pair() -> (Network, SecureLink, SecureLink) {
        let net = Network::new();
        let a = net.attach_open();
        let b = net.attach_open();
        let mut rng = StdRng::seed_from_u64(5);
        let matrix = KeyMatrix::random(&[a.id(), b.id()], &mut rng);
        let ka = matrix.view_for(a.id());
        let kb = matrix.view_for(b.id());
        (net.clone(), SecureLink::new(a, ka), SecureLink::new(b, kb))
    }

    #[test]
    fn roundtrip_over_the_wire() {
        let (_net, a, b) = linked_pair();
        let port = Port::new(0x11).unwrap();
        b.endpoint().claim(port);
        assert!(a.send_to(b.endpoint().id(), Header::to(port), b"top secret payload"));
        let (pkt, plain) = b.recv().unwrap();
        assert_eq!(pkt.source, a.endpoint().id());
        assert_eq!(plain, b"top secret payload");
    }

    #[test]
    fn wiretap_sees_only_ciphertext() {
        let (net, a, b) = linked_pair();
        let wire = net.tap();
        let port = Port::new(0x12).unwrap();
        b.endpoint().claim(port);
        a.send_to(b.endpoint().id(), Header::to(port), b"cleartext never");
        let frame = wire.recv().unwrap();
        assert!(!frame.payload.windows(15).any(|w| w == b"cleartext never"));
        let _ = b.recv().unwrap();
    }

    #[test]
    fn missing_key_blocks_transmission() {
        let net = Network::new();
        let a = net.attach_open();
        let stranger = net.attach_open();
        let link = SecureLink::new(a, MachineKeys::empty(net.attach_open().id()));
        assert!(!link.send_to(stranger.id(), Header::to(Port::new(9).unwrap()), b"x"));
    }

    #[test]
    fn traffic_from_unknown_peer_rejected() {
        let (net, a, _b) = linked_pair();
        let stranger = net.attach_open();
        let port = Port::new(0x13).unwrap();
        a.endpoint().claim(port);
        stranger.send(Header::to(port), Bytes::from_static(b"who am I"));
        assert_eq!(a.recv().unwrap_err(), LinkError::NoKey(stranger.id()));
    }

    #[test]
    fn same_plaintext_twice_differs_on_the_wire() {
        // Random IVs: an observer cannot even tell repeated messages.
        let (net, a, b) = linked_pair();
        let wire = net.tap();
        let port = Port::new(0x14).unwrap();
        b.endpoint().claim(port);
        a.send_to(b.endpoint().id(), Header::to(port), b"repeat");
        a.send_to(b.endpoint().id(), Header::to(port), b"repeat");
        let f1 = wire.recv().unwrap();
        let f2 = wire.recv().unwrap();
        assert_ne!(f1.payload, f2.payload);
        assert_eq!(b.recv().unwrap().1, b"repeat");
        assert_eq!(b.recv().unwrap().1, b"repeat");
    }
}
