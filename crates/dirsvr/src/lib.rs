//! The Amoeba **directory server** (§3.4).
//!
//! "The directory server manages directories, each of which is a set of
//! (ASCII name, capability) pairs." Lookup takes a directory capability
//! and a name and returns the stored capability — which may name a file
//! on any server, or a directory **managed by a different directory
//! server**: "Unless the client compared the SERVER fields in the two
//! capabilities, it wouldn't even notice that succeeding requests were
//! going to different servers. The distribution is completely
//! transparent."
//!
//! [`DirClient::walk`] implements exactly that client-side path walk:
//! each step routes to the port in the capability returned by the
//! previous step. [`DirClient::resolve`] is the fast path over the
//! same namespace: one `RESOLVE` frame per *hop-chain* — the server
//! walks every locally-owned segment itself and hands back either the
//! final capability or the capability at the first cross-server
//! boundary, where the client resumes — plus an optional client-side
//! [`CapCache`] so repeated resolutions cost no frames at all.
//!
//! # Example
//!
//! ```
//! use amoeba_cap::schemes::SchemeKind;
//! use amoeba_dirsvr::{DirClient, DirServer};
//! use amoeba_net::Network;
//! use amoeba_server::ServiceRunner;
//!
//! let net = Network::new();
//! let runner = ServiceRunner::spawn_open(&net, DirServer::new(SchemeKind::Commutative));
//! let dirs = DirClient::open(&net, runner.put_port());
//!
//! let root = dirs.create_dir().unwrap();
//! let home = dirs.create_dir().unwrap();
//! dirs.enter(&root, "home", &home).unwrap();
//! let found = dirs.lookup(&root, "home").unwrap();
//! assert_eq!(found.object, home.object);
//! runner.stop();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;

pub use cache::CapCache;

use amoeba_cap::schemes::SchemeKind;
use amoeba_cap::{Capability, Rights};
use amoeba_net::{EventKind, Network, Port, Timestamp};
use amoeba_server::proto::{Reply, Request, Status};
use amoeba_server::{wire, ClientError, ObjectTable, RequestCtx, Service, ServiceClient};
use bytes::Bytes;
use std::collections::BTreeMap;
use std::time::Duration;

/// Directory-server operation codes.
pub mod ops {
    /// Create an empty directory; anonymous. Reply: capability.
    pub const CREATE: u32 = 1;
    /// Look up a name (requires READ). Params: `str`. Reply: capability.
    pub const LOOKUP: u32 = 2;
    /// Enter a (name, capability) pair (requires WRITE). Params: `str`,
    /// `cap`. `Conflict` if the name exists.
    pub const ENTER: u32 = 3;
    /// Remove an entry (requires WRITE). Params: `str`.
    pub const REMOVE: u32 = 4;
    /// List names (requires READ). Reply: `u32 n`, then n `str`s.
    pub const LIST: u32 = 5;
    /// Delete the (empty) directory (requires DELETE). `Conflict` if
    /// not empty.
    pub const DELETE_DIR: u32 = 6;
    /// Rename an entry (requires WRITE). Params: `str from`, `str to`.
    /// `NotFound` if `from` is absent, `Conflict` if `to` exists.
    pub const RENAME: u32 = 7;
    /// Resolve a multi-component `/`-separated path in one frame
    /// (requires READ on every directory walked). Params: `str path`.
    /// The server walks segments as long as each intermediate
    /// capability names an object it serves itself, then stops.
    ///
    /// The reply is always `Status::Ok` at the envelope level with a
    /// structured body — `u32 consumed`, `u32 status`, and (when
    /// `status` is `Ok`) the capability reached — so the client learns
    /// *how far* the walk got even on failure, which a bare error
    /// status could not carry. `consumed < total segments` with an
    /// `Ok` status is the cross-server handoff: the client resumes at
    /// the returned capability's port.
    pub const RESOLVE: u32 = 8;
}

type Directory = BTreeMap<String, Capability>;

/// The directory server.
#[derive(Debug)]
pub struct DirServer {
    table: ObjectTable<Directory>,
}

impl DirServer {
    /// A server with no directories yet.
    pub fn new(scheme: SchemeKind) -> DirServer {
        DirServer {
            table: ObjectTable::unbound(scheme.instantiate()),
        }
    }

    fn lookup(&self, req: &Request) -> Reply {
        // `str_ref`: the name is only compared, never kept — the reply
        // path stays free of stray heap copies (PR 5 pooling audit).
        let Some(name) = wire::Reader::new(&req.params).str_ref() else {
            return Reply::status(Status::BadRequest);
        };
        match self
            .table
            .with_object(&req.cap, Rights::READ, |d| d.get(name).copied())
        {
            Ok(Some(cap)) => Reply::ok(wire::Writer::new().cap(&cap).finish()),
            Ok(None) => Reply::status(Status::NotFound),
            Err(e) => Reply::status(e.into()),
        }
    }

    fn enter(&self, req: &Request) -> Reply {
        let mut r = wire::Reader::new(&req.params);
        let (Some(name), Some(cap)) = (r.str_ref(), r.cap()) else {
            return Reply::status(Status::BadRequest);
        };
        if name.is_empty() || name.contains('/') {
            return Reply::status(Status::BadRequest);
        }
        let result = self.table.with_object_mut(&req.cap, Rights::WRITE, |d| {
            if d.contains_key(name) {
                false
            } else {
                // The only copy: the directory owns the stored name.
                d.insert(name.to_owned(), cap);
                true
            }
        });
        match result {
            Ok(true) => Reply::ok(Bytes::new()),
            Ok(false) => Reply::status(Status::Conflict),
            Err(e) => Reply::status(e.into()),
        }
    }

    fn remove(&self, req: &Request) -> Reply {
        let Some(name) = wire::Reader::new(&req.params).str_ref() else {
            return Reply::status(Status::BadRequest);
        };
        match self
            .table
            .with_object_mut(&req.cap, Rights::WRITE, |d| d.remove(name).is_some())
        {
            Ok(true) => Reply::ok(Bytes::new()),
            Ok(false) => Reply::status(Status::NotFound),
            Err(e) => Reply::status(e.into()),
        }
    }

    fn list(&self, req: &Request) -> Reply {
        match self.table.with_object(&req.cap, Rights::READ, |d| {
            let mut w = wire::Writer::new().u32(d.len() as u32);
            for name in d.keys() {
                w = w.str(name);
            }
            w.finish()
        }) {
            Ok(body) => Reply::ok(body),
            Err(e) => Reply::status(e.into()),
        }
    }

    fn rename(&self, req: &Request) -> Reply {
        let mut r = wire::Reader::new(&req.params);
        let (Some(from), Some(to)) = (r.str_ref(), r.str_ref()) else {
            return Reply::status(Status::BadRequest);
        };
        if to.is_empty() || to.contains('/') {
            return Reply::status(Status::BadRequest);
        }
        let result = self.table.with_object_mut(&req.cap, Rights::WRITE, |d| {
            if from == to {
                return if d.contains_key(from) {
                    Ok(())
                } else {
                    Err(Status::NotFound)
                };
            }
            if d.contains_key(to) {
                return Err(Status::Conflict);
            }
            match d.remove(from) {
                Some(cap) => {
                    d.insert(to.to_owned(), cap);
                    Ok(())
                }
                None => Err(Status::NotFound),
            }
        });
        match result {
            Ok(Ok(())) => Reply::ok(Bytes::new()),
            Ok(Err(status)) => Reply::status(status),
            Err(e) => Reply::status(e.into()),
        }
    }

    /// Encodes the RESOLVE reply body: how far the walk got, what
    /// stopped it (or `Ok`), and the capability reached if any. Always
    /// an `Ok` envelope — a bare error status cannot carry `consumed`.
    fn resolve_reply(consumed: u32, status: Status, cap: Option<&Capability>) -> Reply {
        let mut w = wire::Writer::new().u32(consumed).u32(status as u32);
        if let Some(cap) = cap {
            w = w.cap(cap);
        }
        Reply::ok(w.finish())
    }

    /// The server half of the batched path walk: consume as many
    /// segments as name objects on *this* server, then either finish
    /// or hand the chain off at the first foreign capability.
    fn resolve(&self, req: &Request) -> Reply {
        let Some(path) = wire::Reader::new(&req.params).str_ref() else {
            return Reply::status(Status::BadRequest);
        };
        let own_port = self.table.port();
        let mut current = req.cap;
        let mut consumed = 0u32;
        let mut segs = path.split('/').filter(|s| !s.is_empty()).peekable();
        if segs.peek().is_none() {
            // An empty path still validates the starting capability.
            return match self.table.with_object(&req.cap, Rights::READ, |_| ()) {
                Ok(()) => Self::resolve_reply(0, Status::Ok, Some(&req.cap)),
                Err(e) => Self::resolve_reply(0, e.into(), None),
            };
        }
        while let Some(segment) = segs.next() {
            let found = self
                .table
                .with_object(&current, Rights::READ, |d| d.get(segment).copied());
            match found {
                Ok(Some(cap)) => {
                    consumed += 1;
                    if segs.peek().is_none() || cap.port != own_port {
                        // Done — or the chain crosses to another
                        // server and the client resumes there.
                        return Self::resolve_reply(consumed, Status::Ok, Some(&cap));
                    }
                    current = cap;
                }
                Ok(None) => return Self::resolve_reply(consumed, Status::NotFound, None),
                Err(e) => return Self::resolve_reply(consumed, e.into(), None),
            }
        }
        unreachable!("the loop returns on the last segment");
    }

    fn delete_dir(&self, req: &Request) -> Reply {
        // Refuse to delete non-empty directories.
        match self
            .table
            .with_object(&req.cap, Rights::DELETE, |d| d.is_empty())
        {
            Ok(false) => return Reply::status(Status::Conflict),
            Ok(true) => {}
            Err(e) => return Reply::status(e.into()),
        }
        match self.table.delete(&req.cap, Rights::DELETE) {
            Ok(_) => Reply::ok(Bytes::new()),
            Err(e) => Reply::status(e.into()),
        }
    }
}

impl Service for DirServer {
    fn bind(&mut self, put_port: Port) {
        self.table.set_port(put_port);
    }

    fn bind_shard_range(&mut self, owner: usize, replicas: usize) {
        // A directory server can itself be one replica of a sharded
        // placement group (§3.4 scaled horizontally): restrict minting
        // so each directory's number names the replica storing it.
        self.table.set_owned_shards(owner, replicas);
    }

    fn handle(&self, req: &Request, _ctx: &RequestCtx) -> Reply {
        if let Some(reply) = self.table.handle_std(req) {
            return reply;
        }
        match req.command {
            ops::CREATE => {
                let (_, cap) = self.table.create(Directory::new());
                Reply::ok(wire::Writer::new().cap(&cap).finish())
            }
            ops::LOOKUP => self.lookup(req),
            ops::ENTER => self.enter(req),
            ops::REMOVE => self.remove(req),
            ops::LIST => self.list(req),
            ops::DELETE_DIR => self.delete_dir(req),
            ops::RENAME => self.rename(req),
            ops::RESOLVE => self.resolve(req),
            _ => Reply::status(Status::BadCommand),
        }
    }
}

/// A path operation failed at a specific segment: [`DirClient::walk`]
/// and [`DirClient::resolve`] both report *which* component broke the
/// chain, not just that something did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathError {
    /// 0-based index of the failing segment among the path's
    /// non-empty segments.
    pub index: usize,
    /// The failing segment's text (empty if the reply was malformed
    /// beyond locating one).
    pub segment: String,
    /// What went wrong there.
    pub error: ClientError,
}

impl std::fmt::Display for PathError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "path segment {} ({:?}): {}",
            self.index, self.segment, self.error
        )
    }
}

impl std::error::Error for PathError {}

impl From<PathError> for ClientError {
    fn from(e: PathError) -> ClientError {
        e.error
    }
}

/// Builds a [`PathError`] for segment `index` of `path`.
fn path_error(path: &str, index: usize, error: ClientError) -> PathError {
    let segment = path
        .split('/')
        .filter(|s| !s.is_empty())
        .nth(index)
        .unwrap_or_default()
        .to_owned();
    PathError {
        index,
        segment,
        error,
    }
}

/// Splits `path` after its first `n` non-empty segments, returning
/// `(consumed_prefix, remainder)`.
fn split_after_segments(path: &str, n: usize) -> (&str, &str) {
    if n == 0 {
        return ("", path);
    }
    let mut seen = 0usize;
    let mut in_segment = false;
    for (i, b) in path.bytes().enumerate() {
        if b == b'/' {
            if in_segment {
                seen += 1;
                if seen == n {
                    return (&path[..i], &path[i..]);
                }
                in_segment = false;
            }
        } else {
            in_segment = true;
        }
    }
    (path, "")
}

/// A typed client for directory servers.
///
/// Note the client is *not* bound to one server: every operation routes
/// to the port inside the directory capability, so a path walk hops
/// between servers transparently.
///
/// With [`with_cache`](Self::with_cache), lookups and resolutions
/// consult a local [`CapCache`] first: hits cost zero frames, zero
/// heap allocations and zero locks. The cache is TTL-bounded against
/// *other* clients' mutations and invalidated eagerly against this
/// client's own (`remove`, `rename`, observed `NotFound`s).
#[derive(Debug)]
pub struct DirClient {
    svc: ServiceClient,
    default_port: Port,
    cache: Option<CapCache>,
}

impl DirClient {
    /// A client on a fresh open-interface machine. `default_port` is
    /// only used for [`create_dir`](Self::create_dir), which has no
    /// capability to route by.
    pub fn open(net: &Network, default_port: Port) -> DirClient {
        DirClient {
            svc: ServiceClient::open(net),
            default_port,
            cache: None,
        }
    }

    /// A client over an existing [`ServiceClient`].
    pub fn with_service(svc: ServiceClient, default_port: Port) -> DirClient {
        DirClient {
            svc,
            default_port,
            cache: None,
        }
    }

    /// Enables the client-side capability cache with entries living
    /// `ttl` of timeline time. Opt-in: a cached client may serve a
    /// name up to `ttl` stale against another client's rename/remove.
    #[must_use]
    pub fn with_cache(mut self, ttl: Duration) -> DirClient {
        self.cache = Some(CapCache::new(ttl));
        self
    }

    /// The cache, if enabled.
    pub fn cache(&self) -> Option<&CapCache> {
        self.cache.as_ref()
    }

    /// The network's current timeline time (TTLs ride the shared clock).
    fn now(&self) -> Timestamp {
        self.svc.rpc().endpoint().now()
    }

    /// Creates an empty directory on the default server.
    ///
    /// # Errors
    /// Transport errors.
    pub fn create_dir(&self) -> Result<Capability, ClientError> {
        self.create_dir_on(self.default_port)
    }

    /// Creates an empty directory on an explicit server.
    ///
    /// # Errors
    /// Transport errors.
    pub fn create_dir_on(&self, port: Port) -> Result<Capability, ClientError> {
        let body = self.svc.call_anonymous(port, ops::CREATE, Bytes::new())?;
        wire::Reader::new(&body).cap().ok_or(ClientError::Malformed)
    }

    /// Looks `name` up in `dir` (routed to `dir.port`). With a cache
    /// enabled, a live cached entry answers without any frame.
    ///
    /// # Errors
    /// `NotFound`, rights/validation errors.
    pub fn lookup(&self, dir: &Capability, name: &str) -> Result<Capability, ClientError> {
        if let Some(cache) = &self.cache {
            if let Some(cap) = cache.get(dir, name, self.now()) {
                return Ok(cap);
            }
        }
        let result = self
            .svc
            .call(dir, ops::LOOKUP, wire::Writer::new().str(name).finish())
            .and_then(|body| wire::Reader::new(&body).cap().ok_or(ClientError::Malformed));
        if let Some(cache) = &self.cache {
            match &result {
                Ok(cap) => cache.insert(dir, name, cap, self.now()),
                Err(ClientError::Status(Status::NotFound)) => cache.invalidate(dir, name),
                Err(_) => {}
            }
        }
        result
    }

    /// Enters `(name, cap)` into `dir`.
    ///
    /// # Errors
    /// `Conflict` if the name exists; rights/validation errors.
    pub fn enter(&self, dir: &Capability, name: &str, cap: &Capability) -> Result<(), ClientError> {
        self.svc.call(
            dir,
            ops::ENTER,
            wire::Writer::new().str(name).cap(cap).finish(),
        )?;
        if let Some(cache) = &self.cache {
            cache.insert(dir, name, cap, self.now());
        }
        Ok(())
    }

    /// Removes `name` from `dir`.
    ///
    /// # Errors
    /// `NotFound`; rights/validation errors.
    pub fn remove(&self, dir: &Capability, name: &str) -> Result<(), ClientError> {
        if let Some(cache) = &self.cache {
            // A full clear, not a targeted kill: resolved prefixes are
            // memoised under composite keys this name may be part of.
            cache.clear();
        }
        self.svc
            .call(dir, ops::REMOVE, wire::Writer::new().str(name).finish())?;
        Ok(())
    }

    /// Lists the names in `dir`.
    ///
    /// # Errors
    /// Rights/validation errors.
    pub fn list(&self, dir: &Capability) -> Result<Vec<String>, ClientError> {
        let body = self.svc.call(dir, ops::LIST, Bytes::new())?;
        let mut r = wire::Reader::new(&body);
        let n = r.u32().ok_or(ClientError::Malformed)?;
        let mut names = Vec::with_capacity(n as usize);
        for _ in 0..n {
            names.push(r.str().ok_or(ClientError::Malformed)?);
        }
        Ok(names)
    }

    /// Renames `from` to `to` within `dir`.
    ///
    /// # Errors
    /// `NotFound` if `from` is absent, `Conflict` if `to` exists;
    /// rights/validation errors.
    pub fn rename(&self, dir: &Capability, from: &str, to: &str) -> Result<(), ClientError> {
        if let Some(cache) = &self.cache {
            // See `remove` — composite path keys force a full clear.
            cache.clear();
        }
        self.svc.call(
            dir,
            ops::RENAME,
            wire::Writer::new().str(from).str(to).finish(),
        )?;
        Ok(())
    }

    /// Deletes an empty directory.
    ///
    /// # Errors
    /// `Conflict` if non-empty; rights/validation errors.
    pub fn delete_dir(&self, dir: &Capability) -> Result<(), ClientError> {
        self.svc.call(dir, ops::DELETE_DIR, Bytes::new())?;
        Ok(())
    }

    /// Walks a `/`-separated path from `root`, hopping servers as the
    /// stored capabilities dictate (§3.4's `a/b/c` example) — one RPC
    /// per component. Empty segments are ignored, so `"a//b/"` equals
    /// `"a/b"`. Prefer [`resolve`](Self::resolve), which covers each
    /// hop-chain in a single frame; `walk` remains the reference
    /// oracle the fast path is tested against.
    ///
    /// # Errors
    /// A [`PathError`] naming the failing segment: `NotFound`,
    /// rights/validation errors.
    pub fn walk(&self, root: &Capability, path: &str) -> Result<Capability, PathError> {
        let mut current = *root;
        for (index, segment) in path.split('/').filter(|s| !s.is_empty()).enumerate() {
            current = self.lookup(&current, segment).map_err(|error| PathError {
                index,
                segment: segment.to_owned(),
                error,
            })?;
        }
        Ok(current)
    }

    /// Resolves a `/`-separated path from `root` using the batched
    /// server-side walk: **one frame per hop-chain** instead of one
    /// per component. Each server consumes every segment it can serve
    /// locally; the client only resumes at genuine cross-server
    /// boundaries, exactly the transparency §3.4 describes. With a
    /// cache enabled, consumed prefixes and the full path are recorded
    /// and a live hit costs zero frames.
    ///
    /// Records an [`EventKind::PathResolve`] span event (operands:
    /// hops, segments consumed) under the first hop's trace id, so
    /// flight recordings show the resolution fan-out.
    ///
    /// # Errors
    /// A [`PathError`] naming the failing segment, in parity with
    /// [`walk`](Self::walk).
    pub fn resolve(&self, root: &Capability, path: &str) -> Result<Capability, PathError> {
        let endpoint = self.svc.rpc().endpoint();
        // Peeked *before* the first hop: the first transaction will
        // mint exactly this id, tying the PathResolve span event to
        // the hop-chain it summarises.
        let trace_hint = self.svc.rpc().trace_peek();
        let full = path.trim_start_matches('/');
        let mut current = *root;
        let mut rest = full;
        let mut base = 0usize;
        let mut hops = 0u64;
        while !rest.is_empty() {
            if let Some(cache) = &self.cache {
                if let Some(cap) = cache.get(&current, rest, endpoint.now()) {
                    base += rest.split('/').filter(|s| !s.is_empty()).count();
                    current = cap;
                    break;
                }
            }
            hops += 1;
            let body = self
                .svc
                .call(
                    &current,
                    ops::RESOLVE,
                    wire::Writer::new().str(rest).finish(),
                )
                .map_err(|error| path_error(full, base, error))?;
            let mut r = wire::Reader::new(&body);
            let (Some(consumed), Some(status_raw)) = (r.u32(), r.u32()) else {
                return Err(path_error(full, base, ClientError::Malformed));
            };
            let Some(status) = Status::from_u32(status_raw) else {
                return Err(path_error(full, base, ClientError::Malformed));
            };
            let consumed = consumed as usize;
            if status != Status::Ok {
                return Err(path_error(
                    full,
                    base + consumed,
                    ClientError::Status(status),
                ));
            }
            let Some(cap) = r.cap() else {
                return Err(path_error(full, base, ClientError::Malformed));
            };
            if consumed == 0 {
                // A server consuming nothing on a non-empty path would
                // loop the client forever; treat it as a broken reply.
                return Err(path_error(full, base, ClientError::Malformed));
            }
            let (prefix, after) = split_after_segments(rest, consumed);
            if let Some(cache) = &self.cache {
                cache.insert(&current, prefix, &cap, endpoint.now());
            }
            base += consumed;
            current = cap;
            rest = after.trim_start_matches('/');
        }
        if hops > 1 {
            // Multi-hop chains also memoise end-to-end, so the repeat
            // resolution is a single cache probe.
            if let Some(cache) = &self.cache {
                cache.insert(root, full, &current, endpoint.now());
            }
        }
        let now = endpoint
            .now()
            .since_epoch()
            .as_nanos()
            .min(u64::MAX as u128) as u64;
        // A pure cache hit is not transaction-scoped (no trans ran):
        // trace 0 keeps it out of per-transaction spans.
        let trace = if hops == 0 { 0 } else { trace_hint };
        endpoint
            .obs()
            .record(EventKind::PathResolve, now, trace, hops, base as u64);
        Ok(current)
    }

    /// Access to the generic capability operations.
    pub fn service(&self) -> &ServiceClient {
        &self.svc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amoeba_server::ServiceRunner;

    fn setup() -> (Network, ServiceRunner, DirClient) {
        let net = Network::new();
        let runner = ServiceRunner::spawn_open(&net, DirServer::new(SchemeKind::Commutative));
        let client = DirClient::open(&net, runner.put_port());
        (net, runner, client)
    }

    #[test]
    fn enter_lookup_remove() {
        let (_n, runner, dirs) = setup();
        let d = dirs.create_dir().unwrap();
        let target = dirs.create_dir().unwrap();
        dirs.enter(&d, "x", &target).unwrap();
        assert_eq!(dirs.lookup(&d, "x").unwrap(), target);
        dirs.remove(&d, "x").unwrap();
        assert_eq!(
            dirs.lookup(&d, "x").unwrap_err(),
            ClientError::Status(Status::NotFound)
        );
        runner.stop();
    }

    #[test]
    fn duplicate_names_conflict() {
        let (_n, runner, dirs) = setup();
        let d = dirs.create_dir().unwrap();
        let t = dirs.create_dir().unwrap();
        dirs.enter(&d, "x", &t).unwrap();
        assert_eq!(
            dirs.enter(&d, "x", &t).unwrap_err(),
            ClientError::Status(Status::Conflict)
        );
        runner.stop();
    }

    #[test]
    fn bad_names_rejected() {
        let (_n, runner, dirs) = setup();
        let d = dirs.create_dir().unwrap();
        let t = dirs.create_dir().unwrap();
        assert_eq!(
            dirs.enter(&d, "", &t).unwrap_err(),
            ClientError::Status(Status::BadRequest)
        );
        assert_eq!(
            dirs.enter(&d, "a/b", &t).unwrap_err(),
            ClientError::Status(Status::BadRequest)
        );
        runner.stop();
    }

    #[test]
    fn list_is_sorted() {
        let (_n, runner, dirs) = setup();
        let d = dirs.create_dir().unwrap();
        let t = dirs.create_dir().unwrap();
        for name in ["zebra", "alpha", "mid"] {
            dirs.enter(&d, name, &t).unwrap();
        }
        assert_eq!(dirs.list(&d).unwrap(), vec!["alpha", "mid", "zebra"]);
        runner.stop();
    }

    #[test]
    fn read_only_directory_cannot_be_modified() {
        let (_n, runner, dirs) = setup();
        let d = dirs.create_dir().unwrap();
        let t = dirs.create_dir().unwrap();
        dirs.enter(&d, "x", &t).unwrap();
        let ro = dirs.service().restrict(&d, Rights::READ).unwrap();
        assert!(dirs.lookup(&ro, "x").is_ok());
        assert_eq!(
            dirs.enter(&ro, "y", &t).unwrap_err(),
            ClientError::Status(Status::RightsViolation)
        );
        assert_eq!(
            dirs.remove(&ro, "x").unwrap_err(),
            ClientError::Status(Status::RightsViolation)
        );
        runner.stop();
    }

    #[test]
    fn delete_requires_empty() {
        let (_n, runner, dirs) = setup();
        let d = dirs.create_dir().unwrap();
        let t = dirs.create_dir().unwrap();
        dirs.enter(&d, "x", &t).unwrap();
        assert_eq!(
            dirs.delete_dir(&d).unwrap_err(),
            ClientError::Status(Status::Conflict)
        );
        dirs.remove(&d, "x").unwrap();
        dirs.delete_dir(&d).unwrap();
        runner.stop();
    }

    #[test]
    fn rename_entry() {
        let (_n, runner, dirs) = setup();
        let d = dirs.create_dir().unwrap();
        let t = dirs.create_dir().unwrap();
        dirs.enter(&d, "old", &t).unwrap();
        dirs.rename(&d, "old", "new").unwrap();
        assert_eq!(dirs.lookup(&d, "new").unwrap(), t);
        assert_eq!(
            dirs.lookup(&d, "old").unwrap_err(),
            ClientError::Status(Status::NotFound)
        );
        // Renaming onto an existing name conflicts.
        let u = dirs.create_dir().unwrap();
        dirs.enter(&d, "other", &u).unwrap();
        assert_eq!(
            dirs.rename(&d, "new", "other").unwrap_err(),
            ClientError::Status(Status::Conflict)
        );
        // Renaming a missing entry: NotFound.
        assert_eq!(
            dirs.rename(&d, "ghost", "x").unwrap_err(),
            ClientError::Status(Status::NotFound)
        );
        // Self-rename of an existing entry is a no-op.
        dirs.rename(&d, "new", "new").unwrap();
        assert_eq!(dirs.lookup(&d, "new").unwrap(), t);
        runner.stop();
    }

    #[test]
    fn rename_requires_write() {
        let (_n, runner, dirs) = setup();
        let d = dirs.create_dir().unwrap();
        let t = dirs.create_dir().unwrap();
        dirs.enter(&d, "a", &t).unwrap();
        let ro = dirs.service().restrict(&d, Rights::READ).unwrap();
        assert_eq!(
            dirs.rename(&ro, "a", "b").unwrap_err(),
            ClientError::Status(Status::RightsViolation)
        );
        runner.stop();
    }

    #[test]
    fn walk_within_one_server() {
        let (_n, runner, dirs) = setup();
        let root = dirs.create_dir().unwrap();
        let a = dirs.create_dir().unwrap();
        let b = dirs.create_dir().unwrap();
        let c = dirs.create_dir().unwrap();
        dirs.enter(&root, "a", &a).unwrap();
        dirs.enter(&a, "b", &b).unwrap();
        dirs.enter(&b, "c", &c).unwrap();
        assert_eq!(dirs.walk(&root, "a/b/c").unwrap(), c);
        assert_eq!(dirs.walk(&root, "/a//b/c/").unwrap(), c, "empty segments");
        assert_eq!(dirs.walk(&root, "").unwrap(), root);
        let err = dirs.walk(&root, "a/missing/c").unwrap_err();
        assert_eq!(err.index, 1);
        assert_eq!(err.segment, "missing");
        assert_eq!(err.error, ClientError::Status(Status::NotFound));
        runner.stop();
    }

    #[test]
    fn walk_across_two_directory_servers_is_transparent() {
        // The §3.4 scenario: "b" lives on a different directory server;
        // the client never notices.
        let net = Network::new();
        let runner1 = ServiceRunner::spawn_open(&net, DirServer::new(SchemeKind::OneWay));
        let runner2 = ServiceRunner::spawn_open(&net, DirServer::new(SchemeKind::Commutative));
        let dirs = DirClient::open(&net, runner1.put_port());

        let root = dirs.create_dir_on(runner1.put_port()).unwrap(); // server 1
        let a = dirs.create_dir_on(runner2.put_port()).unwrap(); // server 2!
        let b = dirs.create_dir_on(runner2.put_port()).unwrap();
        dirs.enter(&root, "a", &a).unwrap();
        dirs.enter(&a, "b", &b).unwrap();

        let found = dirs.walk(&root, "a/b").unwrap();
        assert_eq!(found, b);
        // The hop really did cross servers.
        assert_ne!(root.port, found.port);
        runner1.stop();
        runner2.stop();
    }

    /// Builds `root/s0/s1/…/s{depth-1}` on one server and returns
    /// `(root, leaf, path)`.
    fn deep_chain(dirs: &DirClient, depth: usize) -> (Capability, Capability, String) {
        let root = dirs.create_dir().unwrap();
        let mut current = root;
        let mut segments = Vec::new();
        for i in 0..depth {
            let next = dirs.create_dir().unwrap();
            let name = format!("s{i}");
            dirs.enter(&current, &name, &next).unwrap();
            segments.push(name);
            current = next;
        }
        (root, current, segments.join("/"))
    }

    #[test]
    fn resolve_matches_walk_in_one_frame() {
        let (net, runner, dirs) = setup();
        let (root, leaf, path) = deep_chain(&dirs, 8);

        let before = net.stats().snapshot().packets_sent;
        let walked = dirs.walk(&root, &path).unwrap();
        let walk_frames = net.stats().snapshot().packets_sent - before;

        let before = net.stats().snapshot().packets_sent;
        let resolved = dirs.resolve(&root, &path).unwrap();
        let resolve_frames = net.stats().snapshot().packets_sent - before;

        assert_eq!(walked, leaf);
        assert_eq!(resolved, leaf);
        // Eight lookups vs a single RESOLVE round-trip.
        assert_eq!(resolve_frames, 2);
        assert!(
            walk_frames >= 4 * resolve_frames,
            "walk {walk_frames} frames vs resolve {resolve_frames}"
        );
        // Leading slashes and empty segments behave like walk.
        let s1 = dirs.walk(&root, "s0/s1").unwrap();
        assert_eq!(dirs.resolve(&root, "/s0//s1/").unwrap(), s1);
        assert_eq!(dirs.resolve(&root, "").unwrap(), root);
        runner.stop();
    }

    #[test]
    fn resolve_hands_off_across_servers() {
        let net = Network::new();
        let runner1 = ServiceRunner::spawn_open(&net, DirServer::new(SchemeKind::OneWay));
        let runner2 = ServiceRunner::spawn_open(&net, DirServer::new(SchemeKind::Commutative));
        let dirs = DirClient::open(&net, runner1.put_port());

        // root/a on server 1, then b/c on server 2.
        let root = dirs.create_dir_on(runner1.put_port()).unwrap();
        let a = dirs.create_dir_on(runner1.put_port()).unwrap();
        let b = dirs.create_dir_on(runner2.put_port()).unwrap();
        let c = dirs.create_dir_on(runner2.put_port()).unwrap();
        dirs.enter(&root, "a", &a).unwrap();
        dirs.enter(&a, "b", &b).unwrap();
        dirs.enter(&b, "c", &c).unwrap();

        let before = net.stats().snapshot().packets_sent;
        let found = dirs.resolve(&root, "a/b/c").unwrap();
        let frames = net.stats().snapshot().packets_sent - before;
        assert_eq!(found, c);
        // Two hop-chains (server 1 consumes a/b, server 2 consumes c):
        // two round-trips, regardless of depth per server.
        assert_eq!(frames, 4);
        runner1.stop();
        runner2.stop();
    }

    #[test]
    fn resolve_reports_the_failing_segment_like_walk() {
        let (_n, runner, dirs) = setup();
        let (root, _leaf, _path) = deep_chain(&dirs, 3);
        let walk_err = dirs.walk(&root, "s0/ghost/s2").unwrap_err();
        let resolve_err = dirs.resolve(&root, "s0/ghost/s2").unwrap_err();
        assert_eq!(resolve_err, walk_err);
        assert_eq!(resolve_err.index, 1);
        assert_eq!(resolve_err.segment, "ghost");
        assert_eq!(resolve_err.error, ClientError::Status(Status::NotFound));

        // A leaf that exists but is not a directory on this server:
        // the error indexes the segment *after* it.
        let not_dir = dirs
            .service()
            .restrict(&dirs.create_dir().unwrap(), Rights::NONE)
            .unwrap();
        dirs.enter(&root, "locked", &not_dir).unwrap();
        let err = dirs.resolve(&root, "locked/inner").unwrap_err();
        assert_eq!(err.index, 1);
        assert_eq!(dirs.walk(&root, "locked/inner").unwrap_err().index, 1);
        runner.stop();
    }

    #[test]
    fn cached_resolve_answers_without_frames() {
        let (net, runner, dirs) = setup();
        let dirs = dirs.with_cache(Duration::from_secs(60));
        let (root, leaf, path) = deep_chain(&dirs, 6);

        assert_eq!(dirs.resolve(&root, &path).unwrap(), leaf);
        let before = net.stats().snapshot().packets_sent;
        assert_eq!(dirs.resolve(&root, &path).unwrap(), leaf);
        assert_eq!(
            net.stats().snapshot().packets_sent,
            before,
            "repeat resolve must be served from cache"
        );

        // The client's own rename invalidates, so the next resolve
        // goes back to the server and sees the new truth.
        dirs.rename(&root, "s0", "renamed").unwrap();
        let err = dirs.resolve(&root, &path).unwrap_err();
        assert_eq!(err.index, 0);
        assert_eq!(err.error, ClientError::Status(Status::NotFound));
        runner.stop();
    }
}
