//! The Amoeba **directory server** (§3.4).
//!
//! "The directory server manages directories, each of which is a set of
//! (ASCII name, capability) pairs." Lookup takes a directory capability
//! and a name and returns the stored capability — which may name a file
//! on any server, or a directory **managed by a different directory
//! server**: "Unless the client compared the SERVER fields in the two
//! capabilities, it wouldn't even notice that succeeding requests were
//! going to different servers. The distribution is completely
//! transparent."
//!
//! [`DirClient::walk`] implements exactly that client-side path walk:
//! each step routes to the port in the capability returned by the
//! previous step.
//!
//! # Example
//!
//! ```
//! use amoeba_cap::schemes::SchemeKind;
//! use amoeba_dirsvr::{DirClient, DirServer};
//! use amoeba_net::Network;
//! use amoeba_server::ServiceRunner;
//!
//! let net = Network::new();
//! let runner = ServiceRunner::spawn_open(&net, DirServer::new(SchemeKind::Commutative));
//! let dirs = DirClient::open(&net, runner.put_port());
//!
//! let root = dirs.create_dir().unwrap();
//! let home = dirs.create_dir().unwrap();
//! dirs.enter(&root, "home", &home).unwrap();
//! let found = dirs.lookup(&root, "home").unwrap();
//! assert_eq!(found.object, home.object);
//! runner.stop();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use amoeba_cap::schemes::SchemeKind;
use amoeba_cap::{Capability, Rights};
use amoeba_net::{Network, Port};
use amoeba_server::proto::{Reply, Request, Status};
use amoeba_server::{wire, ClientError, ObjectTable, RequestCtx, Service, ServiceClient};
use bytes::Bytes;
use std::collections::BTreeMap;

/// Directory-server operation codes.
pub mod ops {
    /// Create an empty directory; anonymous. Reply: capability.
    pub const CREATE: u32 = 1;
    /// Look up a name (requires READ). Params: `str`. Reply: capability.
    pub const LOOKUP: u32 = 2;
    /// Enter a (name, capability) pair (requires WRITE). Params: `str`,
    /// `cap`. `Conflict` if the name exists.
    pub const ENTER: u32 = 3;
    /// Remove an entry (requires WRITE). Params: `str`.
    pub const REMOVE: u32 = 4;
    /// List names (requires READ). Reply: `u32 n`, then n `str`s.
    pub const LIST: u32 = 5;
    /// Delete the (empty) directory (requires DELETE). `Conflict` if
    /// not empty.
    pub const DELETE_DIR: u32 = 6;
    /// Rename an entry (requires WRITE). Params: `str from`, `str to`.
    /// `NotFound` if `from` is absent, `Conflict` if `to` exists.
    pub const RENAME: u32 = 7;
}

type Directory = BTreeMap<String, Capability>;

/// The directory server.
#[derive(Debug)]
pub struct DirServer {
    table: ObjectTable<Directory>,
}

impl DirServer {
    /// A server with no directories yet.
    pub fn new(scheme: SchemeKind) -> DirServer {
        DirServer {
            table: ObjectTable::unbound(scheme.instantiate()),
        }
    }

    fn lookup(&self, req: &Request) -> Reply {
        let Some(name) = wire::Reader::new(&req.params).str() else {
            return Reply::status(Status::BadRequest);
        };
        match self
            .table
            .with_object(&req.cap, Rights::READ, |d| d.get(&name).copied())
        {
            Ok(Some(cap)) => Reply::ok(wire::Writer::new().cap(&cap).finish()),
            Ok(None) => Reply::status(Status::NotFound),
            Err(e) => Reply::status(e.into()),
        }
    }

    fn enter(&self, req: &Request) -> Reply {
        let mut r = wire::Reader::new(&req.params);
        let (Some(name), Some(cap)) = (r.str(), r.cap()) else {
            return Reply::status(Status::BadRequest);
        };
        if name.is_empty() || name.contains('/') {
            return Reply::status(Status::BadRequest);
        }
        let result = self.table.with_object_mut(&req.cap, Rights::WRITE, |d| {
            if d.contains_key(&name) {
                false
            } else {
                d.insert(name.clone(), cap);
                true
            }
        });
        match result {
            Ok(true) => Reply::ok(Bytes::new()),
            Ok(false) => Reply::status(Status::Conflict),
            Err(e) => Reply::status(e.into()),
        }
    }

    fn remove(&self, req: &Request) -> Reply {
        let Some(name) = wire::Reader::new(&req.params).str() else {
            return Reply::status(Status::BadRequest);
        };
        match self
            .table
            .with_object_mut(&req.cap, Rights::WRITE, |d| d.remove(&name).is_some())
        {
            Ok(true) => Reply::ok(Bytes::new()),
            Ok(false) => Reply::status(Status::NotFound),
            Err(e) => Reply::status(e.into()),
        }
    }

    fn list(&self, req: &Request) -> Reply {
        match self.table.with_object(&req.cap, Rights::READ, |d| {
            let mut w = wire::Writer::new().u32(d.len() as u32);
            for name in d.keys() {
                w = w.str(name);
            }
            w.finish()
        }) {
            Ok(body) => Reply::ok(body),
            Err(e) => Reply::status(e.into()),
        }
    }

    fn rename(&self, req: &Request) -> Reply {
        let mut r = wire::Reader::new(&req.params);
        let (Some(from), Some(to)) = (r.str(), r.str()) else {
            return Reply::status(Status::BadRequest);
        };
        if to.is_empty() || to.contains('/') {
            return Reply::status(Status::BadRequest);
        }
        let result = self.table.with_object_mut(&req.cap, Rights::WRITE, |d| {
            if from == to {
                return if d.contains_key(&from) {
                    Ok(())
                } else {
                    Err(Status::NotFound)
                };
            }
            if d.contains_key(&to) {
                return Err(Status::Conflict);
            }
            match d.remove(&from) {
                Some(cap) => {
                    d.insert(to.clone(), cap);
                    Ok(())
                }
                None => Err(Status::NotFound),
            }
        });
        match result {
            Ok(Ok(())) => Reply::ok(Bytes::new()),
            Ok(Err(status)) => Reply::status(status),
            Err(e) => Reply::status(e.into()),
        }
    }

    fn delete_dir(&self, req: &Request) -> Reply {
        // Refuse to delete non-empty directories.
        match self
            .table
            .with_object(&req.cap, Rights::DELETE, |d| d.is_empty())
        {
            Ok(false) => return Reply::status(Status::Conflict),
            Ok(true) => {}
            Err(e) => return Reply::status(e.into()),
        }
        match self.table.delete(&req.cap, Rights::DELETE) {
            Ok(_) => Reply::ok(Bytes::new()),
            Err(e) => Reply::status(e.into()),
        }
    }
}

impl Service for DirServer {
    fn bind(&mut self, put_port: Port) {
        self.table.set_port(put_port);
    }

    fn bind_shard_range(&mut self, owner: usize, replicas: usize) {
        // A directory server can itself be one replica of a sharded
        // placement group (§3.4 scaled horizontally): restrict minting
        // so each directory's number names the replica storing it.
        self.table.set_owned_shards(owner, replicas);
    }

    fn handle(&self, req: &Request, _ctx: &RequestCtx) -> Reply {
        if let Some(reply) = self.table.handle_std(req) {
            return reply;
        }
        match req.command {
            ops::CREATE => {
                let (_, cap) = self.table.create(Directory::new());
                Reply::ok(wire::Writer::new().cap(&cap).finish())
            }
            ops::LOOKUP => self.lookup(req),
            ops::ENTER => self.enter(req),
            ops::REMOVE => self.remove(req),
            ops::LIST => self.list(req),
            ops::DELETE_DIR => self.delete_dir(req),
            ops::RENAME => self.rename(req),
            _ => Reply::status(Status::BadCommand),
        }
    }
}

/// A typed client for directory servers.
///
/// Note the client is *not* bound to one server: every operation routes
/// to the port inside the directory capability, so a path walk hops
/// between servers transparently.
#[derive(Debug)]
pub struct DirClient {
    svc: ServiceClient,
    default_port: Port,
}

impl DirClient {
    /// A client on a fresh open-interface machine. `default_port` is
    /// only used for [`create_dir`](Self::create_dir), which has no
    /// capability to route by.
    pub fn open(net: &Network, default_port: Port) -> DirClient {
        DirClient {
            svc: ServiceClient::open(net),
            default_port,
        }
    }

    /// A client over an existing [`ServiceClient`].
    pub fn with_service(svc: ServiceClient, default_port: Port) -> DirClient {
        DirClient { svc, default_port }
    }

    /// Creates an empty directory on the default server.
    ///
    /// # Errors
    /// Transport errors.
    pub fn create_dir(&self) -> Result<Capability, ClientError> {
        self.create_dir_on(self.default_port)
    }

    /// Creates an empty directory on an explicit server.
    ///
    /// # Errors
    /// Transport errors.
    pub fn create_dir_on(&self, port: Port) -> Result<Capability, ClientError> {
        let body = self.svc.call_anonymous(port, ops::CREATE, Bytes::new())?;
        wire::Reader::new(&body).cap().ok_or(ClientError::Malformed)
    }

    /// Looks `name` up in `dir` (routed to `dir.port`).
    ///
    /// # Errors
    /// `NotFound`, rights/validation errors.
    pub fn lookup(&self, dir: &Capability, name: &str) -> Result<Capability, ClientError> {
        let body = self
            .svc
            .call(dir, ops::LOOKUP, wire::Writer::new().str(name).finish())?;
        wire::Reader::new(&body).cap().ok_or(ClientError::Malformed)
    }

    /// Enters `(name, cap)` into `dir`.
    ///
    /// # Errors
    /// `Conflict` if the name exists; rights/validation errors.
    pub fn enter(&self, dir: &Capability, name: &str, cap: &Capability) -> Result<(), ClientError> {
        self.svc.call(
            dir,
            ops::ENTER,
            wire::Writer::new().str(name).cap(cap).finish(),
        )?;
        Ok(())
    }

    /// Removes `name` from `dir`.
    ///
    /// # Errors
    /// `NotFound`; rights/validation errors.
    pub fn remove(&self, dir: &Capability, name: &str) -> Result<(), ClientError> {
        self.svc
            .call(dir, ops::REMOVE, wire::Writer::new().str(name).finish())?;
        Ok(())
    }

    /// Lists the names in `dir`.
    ///
    /// # Errors
    /// Rights/validation errors.
    pub fn list(&self, dir: &Capability) -> Result<Vec<String>, ClientError> {
        let body = self.svc.call(dir, ops::LIST, Bytes::new())?;
        let mut r = wire::Reader::new(&body);
        let n = r.u32().ok_or(ClientError::Malformed)?;
        let mut names = Vec::with_capacity(n as usize);
        for _ in 0..n {
            names.push(r.str().ok_or(ClientError::Malformed)?);
        }
        Ok(names)
    }

    /// Renames `from` to `to` within `dir`.
    ///
    /// # Errors
    /// `NotFound` if `from` is absent, `Conflict` if `to` exists;
    /// rights/validation errors.
    pub fn rename(&self, dir: &Capability, from: &str, to: &str) -> Result<(), ClientError> {
        self.svc.call(
            dir,
            ops::RENAME,
            wire::Writer::new().str(from).str(to).finish(),
        )?;
        Ok(())
    }

    /// Deletes an empty directory.
    ///
    /// # Errors
    /// `Conflict` if non-empty; rights/validation errors.
    pub fn delete_dir(&self, dir: &Capability) -> Result<(), ClientError> {
        self.svc.call(dir, ops::DELETE_DIR, Bytes::new())?;
        Ok(())
    }

    /// Walks a `/`-separated path from `root`, hopping servers as the
    /// stored capabilities dictate (§3.4's `a/b/c` example). Empty
    /// segments are ignored, so `"a//b/"` equals `"a/b"`.
    ///
    /// # Errors
    /// `NotFound` at the failing segment; rights/validation errors.
    pub fn walk(&self, root: &Capability, path: &str) -> Result<Capability, ClientError> {
        let mut current = *root;
        for segment in path.split('/').filter(|s| !s.is_empty()) {
            current = self.lookup(&current, segment)?;
        }
        Ok(current)
    }

    /// Access to the generic capability operations.
    pub fn service(&self) -> &ServiceClient {
        &self.svc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amoeba_server::ServiceRunner;

    fn setup() -> (Network, ServiceRunner, DirClient) {
        let net = Network::new();
        let runner = ServiceRunner::spawn_open(&net, DirServer::new(SchemeKind::Commutative));
        let client = DirClient::open(&net, runner.put_port());
        (net, runner, client)
    }

    #[test]
    fn enter_lookup_remove() {
        let (_n, runner, dirs) = setup();
        let d = dirs.create_dir().unwrap();
        let target = dirs.create_dir().unwrap();
        dirs.enter(&d, "x", &target).unwrap();
        assert_eq!(dirs.lookup(&d, "x").unwrap(), target);
        dirs.remove(&d, "x").unwrap();
        assert_eq!(
            dirs.lookup(&d, "x").unwrap_err(),
            ClientError::Status(Status::NotFound)
        );
        runner.stop();
    }

    #[test]
    fn duplicate_names_conflict() {
        let (_n, runner, dirs) = setup();
        let d = dirs.create_dir().unwrap();
        let t = dirs.create_dir().unwrap();
        dirs.enter(&d, "x", &t).unwrap();
        assert_eq!(
            dirs.enter(&d, "x", &t).unwrap_err(),
            ClientError::Status(Status::Conflict)
        );
        runner.stop();
    }

    #[test]
    fn bad_names_rejected() {
        let (_n, runner, dirs) = setup();
        let d = dirs.create_dir().unwrap();
        let t = dirs.create_dir().unwrap();
        assert_eq!(
            dirs.enter(&d, "", &t).unwrap_err(),
            ClientError::Status(Status::BadRequest)
        );
        assert_eq!(
            dirs.enter(&d, "a/b", &t).unwrap_err(),
            ClientError::Status(Status::BadRequest)
        );
        runner.stop();
    }

    #[test]
    fn list_is_sorted() {
        let (_n, runner, dirs) = setup();
        let d = dirs.create_dir().unwrap();
        let t = dirs.create_dir().unwrap();
        for name in ["zebra", "alpha", "mid"] {
            dirs.enter(&d, name, &t).unwrap();
        }
        assert_eq!(dirs.list(&d).unwrap(), vec!["alpha", "mid", "zebra"]);
        runner.stop();
    }

    #[test]
    fn read_only_directory_cannot_be_modified() {
        let (_n, runner, dirs) = setup();
        let d = dirs.create_dir().unwrap();
        let t = dirs.create_dir().unwrap();
        dirs.enter(&d, "x", &t).unwrap();
        let ro = dirs.service().restrict(&d, Rights::READ).unwrap();
        assert!(dirs.lookup(&ro, "x").is_ok());
        assert_eq!(
            dirs.enter(&ro, "y", &t).unwrap_err(),
            ClientError::Status(Status::RightsViolation)
        );
        assert_eq!(
            dirs.remove(&ro, "x").unwrap_err(),
            ClientError::Status(Status::RightsViolation)
        );
        runner.stop();
    }

    #[test]
    fn delete_requires_empty() {
        let (_n, runner, dirs) = setup();
        let d = dirs.create_dir().unwrap();
        let t = dirs.create_dir().unwrap();
        dirs.enter(&d, "x", &t).unwrap();
        assert_eq!(
            dirs.delete_dir(&d).unwrap_err(),
            ClientError::Status(Status::Conflict)
        );
        dirs.remove(&d, "x").unwrap();
        dirs.delete_dir(&d).unwrap();
        runner.stop();
    }

    #[test]
    fn rename_entry() {
        let (_n, runner, dirs) = setup();
        let d = dirs.create_dir().unwrap();
        let t = dirs.create_dir().unwrap();
        dirs.enter(&d, "old", &t).unwrap();
        dirs.rename(&d, "old", "new").unwrap();
        assert_eq!(dirs.lookup(&d, "new").unwrap(), t);
        assert_eq!(
            dirs.lookup(&d, "old").unwrap_err(),
            ClientError::Status(Status::NotFound)
        );
        // Renaming onto an existing name conflicts.
        let u = dirs.create_dir().unwrap();
        dirs.enter(&d, "other", &u).unwrap();
        assert_eq!(
            dirs.rename(&d, "new", "other").unwrap_err(),
            ClientError::Status(Status::Conflict)
        );
        // Renaming a missing entry: NotFound.
        assert_eq!(
            dirs.rename(&d, "ghost", "x").unwrap_err(),
            ClientError::Status(Status::NotFound)
        );
        // Self-rename of an existing entry is a no-op.
        dirs.rename(&d, "new", "new").unwrap();
        assert_eq!(dirs.lookup(&d, "new").unwrap(), t);
        runner.stop();
    }

    #[test]
    fn rename_requires_write() {
        let (_n, runner, dirs) = setup();
        let d = dirs.create_dir().unwrap();
        let t = dirs.create_dir().unwrap();
        dirs.enter(&d, "a", &t).unwrap();
        let ro = dirs.service().restrict(&d, Rights::READ).unwrap();
        assert_eq!(
            dirs.rename(&ro, "a", "b").unwrap_err(),
            ClientError::Status(Status::RightsViolation)
        );
        runner.stop();
    }

    #[test]
    fn walk_within_one_server() {
        let (_n, runner, dirs) = setup();
        let root = dirs.create_dir().unwrap();
        let a = dirs.create_dir().unwrap();
        let b = dirs.create_dir().unwrap();
        let c = dirs.create_dir().unwrap();
        dirs.enter(&root, "a", &a).unwrap();
        dirs.enter(&a, "b", &b).unwrap();
        dirs.enter(&b, "c", &c).unwrap();
        assert_eq!(dirs.walk(&root, "a/b/c").unwrap(), c);
        assert_eq!(dirs.walk(&root, "/a//b/c/").unwrap(), c, "empty segments");
        assert_eq!(dirs.walk(&root, "").unwrap(), root);
        assert_eq!(
            dirs.walk(&root, "a/missing/c").unwrap_err(),
            ClientError::Status(Status::NotFound)
        );
        runner.stop();
    }

    #[test]
    fn walk_across_two_directory_servers_is_transparent() {
        // The §3.4 scenario: "b" lives on a different directory server;
        // the client never notices.
        let net = Network::new();
        let runner1 = ServiceRunner::spawn_open(&net, DirServer::new(SchemeKind::OneWay));
        let runner2 = ServiceRunner::spawn_open(&net, DirServer::new(SchemeKind::Commutative));
        let dirs = DirClient::open(&net, runner1.put_port());

        let root = dirs.create_dir_on(runner1.put_port()).unwrap(); // server 1
        let a = dirs.create_dir_on(runner2.put_port()).unwrap(); // server 2!
        let b = dirs.create_dir_on(runner2.put_port()).unwrap();
        dirs.enter(&root, "a", &a).unwrap();
        dirs.enter(&a, "b", &b).unwrap();

        let found = dirs.walk(&root, "a/b").unwrap();
        assert_eq!(found, b);
        // The hop really did cross servers.
        assert_ne!(root.port, found.port);
        runner1.stop();
        runner2.stop();
    }
}
