//! The client-side capability cache: (directory capability, name) →
//! capability, with a TTL riding the network's shared [`Clock`].
//!
//! The hit path is the whole point: **zero heap allocations and zero
//! locks**, so a cached lookup costs hashing the name plus a handful
//! of atomic loads — cheap enough to consult before every resolution
//! hop. Like the F-box memo, this is a *pure cache*: bounded by
//! construction (a fixed direct-mapped slot array, collisions simply
//! overwrite), safe to drop wholesale, never authoritative. Staleness
//! is bounded by the TTL — a concurrent rename on another client is
//! visible here for at most `ttl` of timeline time — and the owning
//! [`DirClient`](crate::DirClient) invalidates eagerly on its own
//! `NotFound`s, removes and renames.
//!
//! Each slot is a tiny seqlock (the flight-recorder idiom, but with
//! CAS-claimed write ownership so a torn write can never be
//! *accepted*): an even stamp brackets stable fields, an odd stamp
//! marks a write in progress, and both readers and competing writers
//! simply treat a busy slot as a miss — caches may always miss.
//!
//! [`Clock`]: amoeba_net::Clock

use amoeba_cap::Capability;
use amoeba_net::Timestamp;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Slot count; a power of two so indexing is one mask. 512 slots × 6
/// words ≈ 24 KiB per client.
const SLOTS: usize = 512;

/// FNV-1a offset basis (the standard one) and a second, independent
/// basis so every key carries 128 bits of hash: a single 64-bit hash
/// indexes the table, but accepting a hit on it alone would let a
/// colliding name silently return the wrong capability.
const FNV_BASIS_A: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_BASIS_B: u64 = 0xAF63_BD4C_8601_B7DF;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

#[derive(Debug)]
struct Slot {
    /// 0 = never written; odd = write in progress; even ≥ 2 = stable.
    stamp: AtomicU64,
    key_a: AtomicU64,
    key_b: AtomicU64,
    /// The 16-byte wire form of the cached capability, split across
    /// two words.
    cap_hi: AtomicU64,
    cap_lo: AtomicU64,
    /// Timeline nanoseconds after which the entry is dead. 0 = dead.
    expires_ns: AtomicU64,
}

impl Slot {
    const fn empty() -> Slot {
        Slot {
            stamp: AtomicU64::new(0),
            key_a: AtomicU64::new(0),
            key_b: AtomicU64::new(0),
            cap_hi: AtomicU64::new(0),
            cap_lo: AtomicU64::new(0),
            expires_ns: AtomicU64::new(0),
        }
    }

    /// Claims write ownership: the stamp goes odd, or the slot is busy
    /// and the write is skipped (insertion is best-effort).
    fn claim(&self) -> Option<u64> {
        let s = self.stamp.load(Ordering::Acquire);
        if s % 2 == 1 {
            return None;
        }
        self.stamp
            .compare_exchange(s, s + 1, Ordering::AcqRel, Ordering::Relaxed)
            .ok()
            .map(|_| s)
    }
}

/// A bounded, lock-free (dir-cap, name) → capability cache.
///
/// See the `cache` module docs for the staleness contract.
#[derive(Debug)]
pub struct CapCache {
    slots: Box<[Slot]>,
    ttl_ns: u64,
}

fn fnv1a(basis: u64, dir: &Capability, name: &str) -> u64 {
    let mut h = basis;
    for byte in dir.encode().into_iter().chain(name.bytes()) {
        h ^= u64::from(byte);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

fn nanos(t: Timestamp) -> u64 {
    t.since_epoch().as_nanos().min(u64::MAX as u128) as u64
}

impl CapCache {
    /// An empty cache whose entries live for `ttl` of timeline time.
    pub fn new(ttl: Duration) -> CapCache {
        let mut slots = Vec::with_capacity(SLOTS);
        slots.resize_with(SLOTS, Slot::empty);
        CapCache {
            slots: slots.into_boxed_slice(),
            ttl_ns: ttl.as_nanos().min(u64::MAX as u128) as u64,
        }
    }

    /// The configured entry lifetime.
    pub fn ttl(&self) -> Duration {
        Duration::from_nanos(self.ttl_ns)
    }

    fn slot(&self, key_a: u64) -> &Slot {
        &self.slots[(key_a as usize) & (SLOTS - 1)]
    }

    /// Looks `(dir, name)` up; `now` is the network's timeline time.
    /// Zero allocations, zero locks, bounded work — a busy or torn
    /// slot reads as a miss rather than being retried.
    pub fn get(&self, dir: &Capability, name: &str, now: Timestamp) -> Option<Capability> {
        let key_a = fnv1a(FNV_BASIS_A, dir, name);
        let slot = self.slot(key_a);
        let s1 = slot.stamp.load(Ordering::Acquire);
        if s1 == 0 || s1 % 2 == 1 {
            return None;
        }
        let seen_a = slot.key_a.load(Ordering::Acquire);
        let seen_b = slot.key_b.load(Ordering::Acquire);
        let cap_hi = slot.cap_hi.load(Ordering::Acquire);
        let cap_lo = slot.cap_lo.load(Ordering::Acquire);
        let expires = slot.expires_ns.load(Ordering::Acquire);
        if slot.stamp.load(Ordering::Acquire) != s1 {
            return None;
        }
        if seen_a != key_a || seen_b != fnv1a(FNV_BASIS_B, dir, name) {
            return None;
        }
        if nanos(now) >= expires {
            return None;
        }
        let mut wire = [0u8; 16];
        wire[..8].copy_from_slice(&cap_hi.to_be_bytes());
        wire[8..].copy_from_slice(&cap_lo.to_be_bytes());
        Capability::decode(&wire)
    }

    /// Records `(dir, name) → cap`, expiring `ttl` from `now`.
    /// Best-effort: a slot busy under a concurrent writer is skipped.
    pub fn insert(&self, dir: &Capability, name: &str, cap: &Capability, now: Timestamp) {
        let key_a = fnv1a(FNV_BASIS_A, dir, name);
        let slot = self.slot(key_a);
        let Some(s) = slot.claim() else { return };
        let wire = cap.encode();
        let mut hi = [0u8; 8];
        let mut lo = [0u8; 8];
        hi.copy_from_slice(&wire[..8]);
        lo.copy_from_slice(&wire[8..]);
        slot.key_a.store(key_a, Ordering::Release);
        slot.key_b
            .store(fnv1a(FNV_BASIS_B, dir, name), Ordering::Release);
        slot.cap_hi.store(u64::from_be_bytes(hi), Ordering::Release);
        slot.cap_lo.store(u64::from_be_bytes(lo), Ordering::Release);
        slot.expires_ns
            .store(nanos(now).saturating_add(self.ttl_ns), Ordering::Release);
        slot.stamp.store(s + 2, Ordering::Release);
    }

    /// Kills any entry for `(dir, name)` — called on `NotFound`, so a
    /// name another client removed stops being served the moment this
    /// client notices.
    pub fn invalidate(&self, dir: &Capability, name: &str) {
        let key_a = fnv1a(FNV_BASIS_A, dir, name);
        let slot = self.slot(key_a);
        let Some(s) = slot.claim() else { return };
        if slot.key_a.load(Ordering::Acquire) == key_a
            && slot.key_b.load(Ordering::Acquire) == fnv1a(FNV_BASIS_B, dir, name)
        {
            slot.expires_ns.store(0, Ordering::Release);
        }
        slot.stamp.store(s + 2, Ordering::Release);
    }

    /// Kills *every* entry — called on remove and rename, because
    /// resolved prefixes are memoised under composite `(dir, "a/b/c")`
    /// keys that a targeted invalidation cannot enumerate (the slots
    /// hold only hashes). A pure cache may always be dropped; this
    /// keeps "this client's own mutations are never served stale"
    /// unconditional.
    pub fn clear(&self) {
        for slot in self.slots.iter() {
            // A slot busy under a concurrent insert is left alone: that
            // insert raced the mutation and is equivalent to one that
            // landed just after the clear.
            let Some(s) = slot.claim() else { continue };
            slot.expires_ns.store(0, Ordering::Release);
            slot.stamp.store(s + 2, Ordering::Release);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amoeba_cap::{ObjectNum, Rights};
    use amoeba_net::Port;

    fn cap(object: u32) -> Capability {
        Capability::new(
            Port::new(0xD1D1).unwrap(),
            ObjectNum::new(object).unwrap(),
            Rights::ALL,
            0xC0FFEE,
        )
    }

    fn at(ns: u64) -> Timestamp {
        Timestamp::ZERO + Duration::from_nanos(ns)
    }

    #[test]
    fn hit_roundtrips_the_capability() {
        let cache = CapCache::new(Duration::from_secs(1));
        let dir = cap(1);
        let target = cap(2);
        assert_eq!(cache.get(&dir, "x", at(0)), None);
        cache.insert(&dir, "x", &target, at(0));
        assert_eq!(cache.get(&dir, "x", at(10)), Some(target));
        // A different name or directory misses.
        assert_eq!(cache.get(&dir, "y", at(10)), None);
        assert_eq!(cache.get(&cap(3), "x", at(10)), None);
    }

    #[test]
    fn entries_expire_at_ttl() {
        let cache = CapCache::new(Duration::from_nanos(100));
        let (dir, target) = (cap(1), cap(2));
        cache.insert(&dir, "x", &target, at(50));
        assert_eq!(cache.get(&dir, "x", at(149)), Some(target));
        assert_eq!(cache.get(&dir, "x", at(150)), None, "dead exactly at TTL");
    }

    #[test]
    fn invalidate_kills_only_its_key() {
        let cache = CapCache::new(Duration::from_secs(1));
        let dir = cap(1);
        cache.insert(&dir, "a", &cap(2), at(0));
        cache.insert(&dir, "b", &cap(3), at(0));
        cache.invalidate(&dir, "a");
        assert_eq!(cache.get(&dir, "a", at(1)), None);
        assert_eq!(cache.get(&dir, "b", at(1)), Some(cap(3)));
        // Invalidating an absent name must not kill a colliding slot's
        // different key.
        cache.invalidate(&dir, "never-inserted");
        assert_eq!(cache.get(&dir, "b", at(1)), Some(cap(3)));
    }

    use proptest::prelude::*;

    /// A name that shares `reference`'s direct-mapped slot under `dir`
    /// but is a different key — the adversarial collision the 128-bit
    /// key check exists for. With 512 slots, ~512 candidates suffice.
    fn colliding_name(dir: &Capability, reference: &str, tag: usize) -> String {
        let slot = fnv1a(FNV_BASIS_A, dir, reference) as usize & (SLOTS - 1);
        (0usize..)
            .map(|i| format!("collide-{tag}-{i}"))
            .find(|n| fnv1a(FNV_BASIS_A, dir, n) as usize & (SLOTS - 1) == slot)
            .expect("the candidate stream is infinite")
    }

    proptest! {
        /// Two distinct keys landing in the same slot must never serve
        /// each other's capability — a collision is a miss (or, after
        /// an overwrite, an eviction), never an alias.
        #[test]
        fn same_slot_keys_never_alias(
            dir_obj in 0u32..=ObjectNum::MAX,
            target_obj in 0u32..ObjectNum::MAX,
            tag in 0usize..10_000,
        ) {
            let cache = CapCache::new(Duration::from_secs(1));
            let dir = cap(dir_obj);
            let name1 = format!("n-{tag}");
            let name2 = colliding_name(&dir, &name1, tag);
            let (first, second) = (cap(target_obj), cap(target_obj + 1));

            cache.insert(&dir, &name1, &first, at(0));
            // The colliding key reads the same slot and must miss.
            prop_assert_eq!(cache.get(&dir, &name2, at(1)), None);
            prop_assert_eq!(cache.get(&dir, &name1, at(1)), Some(first));

            // Direct-mapped overwrite: the new key wins the slot and
            // the evicted key must miss, not serve the winner's cap.
            cache.insert(&dir, &name2, &second, at(1));
            prop_assert_eq!(cache.get(&dir, &name2, at(2)), Some(second));
            prop_assert_eq!(cache.get(&dir, &name1, at(2)), None);
        }

        /// The staleness contract: a mutation made elsewhere on the
        /// timeline is invisible to this cache, so no entry may ever
        /// be served at or past `insert time + ttl` — that bound is
        /// exactly what makes foreign renames safe.
        #[test]
        fn no_entry_outlives_its_ttl(
            ttl_ns in 1u64..=1_000_000,
            t0 in 0u64..(u64::MAX / 2),
            dt in 0u64..=2_000_000,
        ) {
            let cache = CapCache::new(Duration::from_nanos(ttl_ns));
            let (dir, target) = (cap(1), cap(2));
            cache.insert(&dir, "x", &target, at(t0));
            let got = cache.get(&dir, "x", at(t0 + dt));
            if dt >= ttl_ns {
                prop_assert_eq!(
                    got, None,
                    "a foreign rename at insert time would still be \
                     served {} ns past the {} ns TTL", dt - ttl_ns, ttl_ns
                );
            } else {
                prop_assert_eq!(got, Some(target), "a live entry must hit");
            }
        }
    }
}
