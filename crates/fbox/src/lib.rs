//! The Amoeba **F-box** (Function-box), §2.2 and Fig 1 of the paper.
//!
//! Every message entering or leaving a processor passes through a small
//! interface box that applies a publicly known one-way function `F`:
//!
//! * a process that does `GET(G)` causes its F-box to listen for frames
//!   whose destination field equals `P = F(G)` — the *put-port*;
//! * on transmission, the F-box replaces the **reply** field `G′` with
//!   `F(G′)` and the **signature** field `S` with `F(S)`; the
//!   **destination** field passes through untouched.
//!
//! Because `G` never appears on the wire and `F` cannot be inverted, an
//! intruder cannot impersonate a server: `GET(P)` just makes his F-box
//! listen on the useless port `F(P)`. Signatures work the same way — only
//! the true owner of `S` can cause the published `F(S)` to appear on the
//! wire.
//!
//! The box can be realised in VLSI on the network interface
//! ([`Placement::Hardware`]) or inside a trusted kernel
//! ([`Placement::TrustedKernel`]); the transformation is identical, which
//! is exactly the paper's point — the mechanism fixes no policy.
//!
//! # Example
//!
//! ```
//! use amoeba_crypto::oneway::{OneWay, ShaOneWay};
//! use amoeba_fbox::FBox;
//! use amoeba_net::{Header, Network, Port};
//! use bytes::Bytes;
//! use std::sync::Arc;
//!
//! let f = ShaOneWay;
//! let net = Network::new();
//! let server = net.attach(Arc::new(FBox::hardware(f.clone())));
//!
//! // Server chooses a secret get-port and publishes the put-port.
//! let g = Port::new(0xC0FFEE).unwrap();
//! let p = server.claim(g); // F-box listens on P = F(G)
//!
//! let client = net.attach(Arc::new(FBox::hardware(f)));
//! client.send(Header::to(p), Bytes::from_static(b"request"));
//! assert_eq!(&server.recv().unwrap().payload[..], b"request");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use amoeba_crypto::oneway::OneWay;
use amoeba_net::{Header, NetworkInterface, Port};
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};

/// Capacity bound of the per-box `F` memo table. When full the table
/// is cleared wholesale (memoization is a pure cache — correctness
/// never depends on a hit), so a client churning through random
/// transaction ports cannot grow it without bound.
pub const FBOX_CACHE_CAPACITY: usize = 1024;

/// Where the F-box transformation is enforced.
///
/// The paper allows either; protection is identical. The distinction
/// matters operationally: hardware boxes protect even against users who
/// re-flash their kernels, while the trusted-kernel variant assumes the
/// kernel is honest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Placement {
    /// On the VLSI network-interface chip (or the wall-socket board).
    Hardware,
    /// Inside a trusted operating-system kernel.
    TrustedKernel,
}

/// An F-box bound to one machine's network interface.
///
/// Generic over the public one-way function so the Purdy and SHA-256
/// constructions can be compared (bench `fbox_ports`).
#[derive(Debug)]
pub struct FBox<F: OneWay> {
    f: F,
    placement: Placement,
    listening: Mutex<HashSet<Port>>,
    /// Memo table `x → F(x)`, `None` when memoization is off. The paper
    /// imagines `F` as VLSI precisely because it sits on the per-packet
    /// path; this cache makes the same assumption explicit in software —
    /// `F` runs once per *port*, not once per packet. Safe because `F`
    /// is pure and public: caching changes cost, never results.
    cache: Option<Mutex<HashMap<u64, u64>>>,
    /// Actual `F` evaluations performed (cache hits excluded) — the
    /// crypto cost this box has really paid, exposed through
    /// [`NetworkInterface::crypto_evals`].
    evals: AtomicU64,
}

impl<F: OneWay> FBox<F> {
    /// An F-box on the network-interface hardware.
    pub fn hardware(f: F) -> Self {
        Self::with_placement(f, Placement::Hardware)
    }

    /// An F-box implemented by a trusted kernel.
    pub fn trusted_kernel(f: F) -> Self {
        Self::with_placement(f, Placement::TrustedKernel)
    }

    /// An F-box with explicit placement (memoized, the default).
    pub fn with_placement(f: F, placement: Placement) -> Self {
        Self::build(f, placement, true)
    }

    /// A hardware-placement F-box that recomputes `F` on **every**
    /// claim and egress — the pre-memoization behaviour, kept callable
    /// so benchmarks can measure exactly what the cache buys.
    pub fn uncached(f: F) -> Self {
        Self::uncached_with_placement(f, Placement::Hardware)
    }

    /// An uncached F-box with explicit placement — the baseline knob
    /// composed with [`with_placement`](Self::with_placement), so a
    /// trusted-kernel box can be benchmarked pre-memoization too.
    pub fn uncached_with_placement(f: F, placement: Placement) -> Self {
        Self::build(f, placement, false)
    }

    fn build(f: F, placement: Placement, cached: bool) -> Self {
        FBox {
            f,
            placement,
            listening: Mutex::new(HashSet::new()),
            cache: cached.then(|| Mutex::new(HashMap::new())),
            evals: AtomicU64::new(0),
        }
    }

    /// Where this box is enforced.
    pub fn placement(&self) -> Placement {
        self.placement
    }

    /// One-way-function evaluations actually performed by this box
    /// (memoization hits excluded).
    pub fn evals(&self) -> u64 {
        self.evals.load(Ordering::Relaxed)
    }

    /// Computes the put-port `P = F(G)` for a get-port — what a server
    /// publishes to its clients. Memoized per box (bounded by
    /// [`FBOX_CACHE_CAPACITY`]) unless built with
    /// [`uncached`](Self::uncached).
    pub fn put_port(&self, get_port: Port) -> Port {
        let x = get_port.value();
        if let Some(cache) = &self.cache {
            if let Some(&y) = cache.lock().get(&x) {
                return Port::from_raw(y);
            }
        }
        self.evals.fetch_add(1, Ordering::Relaxed);
        let y = self.f.apply48(x);
        if let Some(cache) = &self.cache {
            let mut cache = cache.lock();
            if cache.len() >= FBOX_CACHE_CAPACITY {
                cache.clear();
            }
            cache.insert(x, y);
        }
        Port::from_raw(y)
    }
}

/// Computes `P = F(G)` with an explicit function — used by processes
/// that need to publish a put-port without owning an F-box instance.
pub fn put_port_of<F: OneWay>(f: &F, get_port: Port) -> Port {
    Port::from_raw(f.apply48(get_port.value()))
}

impl<F: OneWay> NetworkInterface for FBox<F> {
    /// `GET(G)`: listen for frames destined to `F(G)`.
    fn claim(&self, get_port: Port) -> Port {
        let wire = self.put_port(get_port);
        self.listening.lock().insert(wire);
        wire
    }

    fn release(&self, get_port: Port) {
        let wire = self.put_port(get_port);
        self.listening.lock().remove(&wire);
    }

    /// The transmission transform: `dest` passes through, `reply` and
    /// `signature` are one-way'd. "The F-box on the sender's side does
    /// not perform any transformation on the P field of the outgoing
    /// message."
    fn egress(&self, header: &mut Header) {
        if !header.reply.is_null() {
            header.reply = self.put_port(header.reply);
        }
        if !header.signature.is_null() {
            header.signature = self.put_port(header.signature);
        }
    }

    fn accepts(&self, dest: Port) -> bool {
        self.listening.lock().contains(&dest)
    }

    fn crypto_evals(&self) -> u64 {
        self.evals()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amoeba_crypto::oneway::{PurdyOneWay, ShaOneWay};
    use amoeba_net::Network;
    use bytes::Bytes;
    use std::sync::Arc;

    fn port(v: u64) -> Port {
        Port::new(v).unwrap()
    }

    #[test]
    fn claim_listens_on_f_of_g() {
        let fbox = FBox::hardware(ShaOneWay);
        let g = port(0xAB);
        let p = fbox.claim(g);
        assert_ne!(p, g);
        assert!(fbox.accepts(p));
        assert!(!fbox.accepts(g), "the get-port itself is never on the wire");
    }

    #[test]
    fn release_stops_listening() {
        let fbox = FBox::hardware(ShaOneWay);
        let g = port(0xAB);
        let p = fbox.claim(g);
        fbox.release(g);
        assert!(!fbox.accepts(p));
    }

    #[test]
    fn egress_transforms_reply_and_signature_not_dest() {
        let fbox = FBox::hardware(ShaOneWay);
        let dest = port(1);
        let reply_g = port(2);
        let sig = port(3);
        let mut h = Header::to(dest).with_reply(reply_g).with_signature(sig);
        fbox.egress(&mut h);
        assert_eq!(h.dest, dest);
        assert_eq!(h.reply, fbox.put_port(reply_g));
        assert_eq!(h.signature, fbox.put_port(sig));
    }

    #[test]
    fn egress_leaves_null_fields_alone() {
        let fbox = FBox::hardware(ShaOneWay);
        let mut h = Header::to(port(1));
        fbox.egress(&mut h);
        assert!(h.reply.is_null());
        assert!(h.signature.is_null());
    }

    #[test]
    fn intruder_get_p_listens_on_useless_port() {
        // The core Fig 1 property at the unit level.
        let f = ShaOneWay;
        let net = Network::new();
        let server = net.attach(Arc::new(FBox::hardware(f.clone())));
        let intruder = net.attach(Arc::new(FBox::hardware(f.clone())));
        let client = net.attach(Arc::new(FBox::hardware(f)));

        let g = port(0x5EC2E7);
        let p = server.claim(g);
        intruder.claim(p); // intruder tries GET(P)

        let n = client.send(Header::to(p), Bytes::from_static(b"for server only"));
        assert_eq!(n, 1, "exactly the real server receives");
        assert!(server.recv().is_ok());
        assert!(intruder.try_recv().is_none());
    }

    #[test]
    fn placements_behave_identically() {
        let hw = FBox::hardware(ShaOneWay);
        let sw = FBox::trusted_kernel(ShaOneWay);
        assert_eq!(hw.placement(), Placement::Hardware);
        assert_eq!(sw.placement(), Placement::TrustedKernel);
        let g = port(0x99);
        assert_eq!(hw.claim(g), sw.claim(g));
        let mut h1 = Header::to(port(1)).with_reply(port(2));
        let mut h2 = h1;
        hw.egress(&mut h1);
        sw.egress(&mut h2);
        assert_eq!(h1, h2);
    }

    #[test]
    fn purdy_and_sha_boxes_differ() {
        // All machines on one network must share the same public F; two
        // different F families produce different put-ports.
        let g = port(0x1234);
        let sha_box = FBox::hardware(ShaOneWay);
        let purdy_box = FBox::hardware(PurdyOneWay::new());
        assert_ne!(sha_box.put_port(g), purdy_box.put_port(g));
    }

    #[test]
    fn put_port_of_matches_fbox() {
        let f = ShaOneWay;
        let fbox = FBox::hardware(f.clone());
        let g = port(0xFEED);
        assert_eq!(put_port_of(&f, g), fbox.put_port(g));
    }

    #[test]
    fn memoized_box_evaluates_f_once_per_port() {
        let fbox = FBox::hardware(ShaOneWay);
        let g = port(0x1001);
        let p = fbox.put_port(g);
        assert_eq!(fbox.evals(), 1);
        // Repeated sends/claims on the same port hit the cache.
        for _ in 0..100 {
            assert_eq!(fbox.put_port(g), p);
            let mut h = Header::to(port(1)).with_reply(g);
            fbox.egress(&mut h);
            assert_eq!(h.reply, p);
        }
        assert_eq!(fbox.evals(), 1, "F must run once per port, not per packet");
        assert_eq!(FBox::uncached(ShaOneWay).put_port(g), p, "cache is pure");
    }

    #[test]
    fn uncached_box_pays_f_every_time() {
        let fbox = FBox::uncached(ShaOneWay);
        let g = port(0x1002);
        for _ in 0..5 {
            fbox.put_port(g);
        }
        assert_eq!(fbox.evals(), 5);
        assert_eq!(fbox.crypto_evals(), 5, "NIC hook mirrors the counter");
    }

    #[test]
    fn uncached_composes_with_placement() {
        let fbox = FBox::uncached_with_placement(ShaOneWay, Placement::TrustedKernel);
        assert_eq!(fbox.placement(), Placement::TrustedKernel);
        let g = port(0x1003);
        fbox.put_port(g);
        fbox.put_port(g);
        assert_eq!(fbox.evals(), 2, "placement must not re-enable the cache");
    }

    #[test]
    fn cache_stays_bounded_under_port_churn() {
        let fbox = FBox::hardware(ShaOneWay);
        for v in 1..=(2 * FBOX_CACHE_CAPACITY as u64 + 7) {
            fbox.put_port(port(v));
        }
        let cached = fbox.cache.as_ref().unwrap().lock().len();
        assert!(
            cached <= FBOX_CACHE_CAPACITY,
            "memo table exceeded its bound: {cached}"
        );
        // Still correct after the wholesale clears.
        let g = port(3);
        assert_eq!(fbox.put_port(g), put_port_of(&ShaOneWay, g));
    }
}
