//! **Sparse capabilities** — the primary contribution of the paper
//! (§2.3, Fig 2).
//!
//! A capability is a 128-bit ticket a *user process* holds in its own
//! address space:
//!
//! ```text
//! ┌──────────────┬────────┬────────┬───────────────┐
//! │ Server Port  │ Object │ Rights │  Check Field  │
//! │   48 bits    │ 24 bits│ 8 bits │    48 bits    │
//! └──────────────┴────────┴────────┴───────────────┘
//! ```
//!
//! The kernel never sees or checks capabilities; forgery is prevented
//! *cryptographically* through the check field. This crate implements the
//! capability itself ([`Capability`]), typed rights ([`Rights`]), and the
//! paper's **four protection schemes** (module [`schemes`]):
//!
//! | # | paper's description | mint | validate | restrict rights |
//! |---|---|---|---|---|
//! | 0 | random-number compare | server | compare | all-or-nothing |
//! | 1 | encrypted `RIGHTS‖RANDOM` field | server | decrypt, check constant | server round trip |
//! | 2 | `CHECK = F(random XOR rights)` | server | recompute | server round trip |
//! | 3 | commutative one-way functions | server | re-apply deleted `F_k` | **client-side** |
//!
//! Revocation (change the object's random number, instantly invalidating
//! every outstanding capability) lives in `amoeba-server`'s object
//! table, which owns the per-object secrets.
//!
//! # Example: mint, validate, and delegate read-only
//!
//! ```
//! use amoeba_cap::{schemes::{CommutativeScheme, ProtectionScheme}, ObjectNum, Rights};
//! use amoeba_net::Port;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(42);
//! let scheme = CommutativeScheme::standard();
//! let secret = scheme.new_secret(&mut rng);
//!
//! let port = Port::new(0xF11E).unwrap();
//! let cap = scheme.mint(port, ObjectNum::new(7).unwrap(), &secret);
//! assert_eq!(scheme.validate(&cap, &secret).unwrap(), Rights::ALL);
//!
//! // The *client* strips everything but READ — no server round trip.
//! let read_only = scheme.diminish(&cap, Rights::ALL.without(Rights::READ)).unwrap();
//! assert_eq!(scheme.validate(&read_only, &secret).unwrap(), Rights::READ);
//!
//! // Tampering the rights field back on is detected.
//! let forged = read_only.with_rights(Rights::ALL);
//! assert!(scheme.validate(&forged, &secret).is_err());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod capability;
mod error;
mod rights;
pub mod schemes;

pub use capability::{Capability, ObjectNum};
pub use error::CapError;
pub use rights::Rights;
