//! Capability errors.

use std::fmt;

/// Why a capability operation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CapError {
    /// The check field does not validate: the capability is forged,
    /// tampered with, or has been revoked.
    Forged,
    /// The requested restriction would *add* rights.
    RightsExceeded,
    /// The scheme does not support this operation (e.g. client-side
    /// diminish under schemes 0–2, or rights restriction under scheme 0).
    NotSupported,
}

impl fmt::Display for CapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CapError::Forged => write!(f, "capability check field does not validate"),
            CapError::RightsExceeded => write!(f, "restriction would amplify rights"),
            CapError::NotSupported => write!(f, "operation not supported by this scheme"),
        }
    }
}

impl std::error::Error for CapError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_nonempty() {
        for e in [
            CapError::Forged,
            CapError::RightsExceeded,
            CapError::NotSupported,
        ] {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }
}
