//! The four rights-protection algorithms of §2.3.
//!
//! Every scheme answers the same three questions — how to **mint** a
//! capability for a fresh object, how to **validate** an incoming one,
//! and how rights get **restricted** for delegation — behind the
//! [`ProtectionScheme`] trait, so servers, benchmarks and tests can
//! treat them interchangeably.
//!
//! * [`SimpleScheme`] (scheme 0): the check field is the object's random
//!   number; all-or-nothing, no per-operation rights.
//! * [`EncryptedScheme`] (scheme 1): the 56-bit `RIGHTS‖RANDOM` field is
//!   a ciphertext under a per-object key; a known constant in the RANDOM
//!   part authenticates the rights.
//! * [`OneWayScheme`] (scheme 2): `CHECK = F(random XOR rights)` with the
//!   rights in plaintext.
//! * [`CommutativeScheme`] (scheme 3): the flagship — commutative one-way
//!   functions let the *client* delete rights with no server round trip.

use crate::capability::{Capability, ObjectNum, CHECK_MASK};
use crate::error::CapError;
use crate::rights::Rights;
use amoeba_crypto::commutative::CommutativeOwfFamily;
use amoeba_crypto::feistel::{Block56, Cipher56, Feistel56, XorCipher};
use amoeba_crypto::oneway::{OneWay, ShaOneWay};
use amoeba_net::Port;
use rand::RngCore;
use std::fmt;

/// The per-object secret a server stores in its object table: "the
/// server would then pick a random number, store this number in its
/// object table".
///
/// Its interpretation is scheme-specific (comparison value, cipher key,
/// OWF input). Replacing it is revocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObjectSecret {
    value: u64,
}

impl ObjectSecret {
    /// Wraps a raw secret value. Prefer
    /// [`ProtectionScheme::new_secret`], which respects per-scheme value
    /// constraints.
    pub fn from_value(value: u64) -> ObjectSecret {
        ObjectSecret { value }
    }

    /// The raw value — for the object table that owns it, not for
    /// clients.
    pub fn value(&self) -> u64 {
        self.value
    }
}

/// A rights-protection algorithm.
///
/// Object safety: servers hold `Box<dyn ProtectionScheme>` so the scheme
/// is a deployment choice, not a type parameter of every server.
pub trait ProtectionScheme: fmt::Debug + Send + Sync {
    /// A short stable name (used in benchmark output).
    fn name(&self) -> &'static str;

    /// Draws a fresh per-object secret with this scheme's constraints.
    fn new_secret(&self, rng: &mut dyn RngCore) -> ObjectSecret;

    /// Mints the initial all-rights capability for a new object.
    fn mint(&self, port: Port, object: ObjectNum, secret: &ObjectSecret) -> Capability;

    /// Checks an incoming capability against the object's secret.
    ///
    /// # Errors
    /// [`CapError::Forged`] if the check field does not validate —
    /// forged, tampered with, or minted under a revoked secret.
    fn validate(&self, cap: &Capability, secret: &ObjectSecret) -> Result<Rights, CapError>;

    /// Server-side restriction: fabricate a new capability carrying
    /// exactly `keep` (§2.3: "send the capability back to the server
    /// along with a bit mask and a request to fabricate a new capability
    /// with fewer rights").
    ///
    /// # Errors
    /// [`CapError::Forged`] if `cap` is invalid;
    /// [`CapError::RightsExceeded`] if `keep` is not a subset of the
    /// validated rights; [`CapError::NotSupported`] for schemes without
    /// per-operation rights.
    fn restrict(
        &self,
        cap: &Capability,
        keep: Rights,
        secret: &ObjectSecret,
    ) -> Result<Capability, CapError>;

    /// Client-side rights deletion **without contacting the server** —
    /// scheme 3's distinguishing feature.
    ///
    /// # Errors
    /// [`CapError::NotSupported`] unless
    /// [`supports_diminish`](Self::supports_diminish).
    fn diminish(&self, _cap: &Capability, _drop: Rights) -> Result<Capability, CapError> {
        Err(CapError::NotSupported)
    }

    /// Whether [`diminish`](Self::diminish) works.
    fn supports_diminish(&self) -> bool {
        false
    }
}

fn random_check(rng: &mut dyn RngCore) -> u64 {
    loop {
        let v = rng.next_u64() & CHECK_MASK;
        // 0 would collide with scheme 1's known constant and is a fixed
        // point of the commutative functions; skip it for all schemes.
        if v != 0 {
            return v;
        }
    }
}

// ---------------------------------------------------------------------
// Scheme 0
// ---------------------------------------------------------------------

/// Scheme 0: "the server merely compares the random number in the file
/// table ... to the one contained in the capability. If they agree, the
/// capability is assumed to be genuine, and **all** operations on the
/// file are allowed."
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimpleScheme;

impl SimpleScheme {
    /// Creates the scheme.
    pub fn new() -> Self {
        SimpleScheme
    }
}

impl ProtectionScheme for SimpleScheme {
    fn name(&self) -> &'static str {
        "simple"
    }

    fn new_secret(&self, rng: &mut dyn RngCore) -> ObjectSecret {
        ObjectSecret::from_value(random_check(rng))
    }

    fn mint(&self, port: Port, object: ObjectNum, secret: &ObjectSecret) -> Capability {
        Capability::new(port, object, Rights::ALL, secret.value)
    }

    fn validate(&self, cap: &Capability, secret: &ObjectSecret) -> Result<Rights, CapError> {
        if cap.check == secret.value & CHECK_MASK {
            Ok(Rights::ALL)
        } else {
            Err(CapError::Forged)
        }
    }

    fn restrict(
        &self,
        cap: &Capability,
        keep: Rights,
        secret: &ObjectSecret,
    ) -> Result<Capability, CapError> {
        let current = self.validate(cap, secret)?;
        if keep == current {
            Ok(*cap)
        } else {
            // No per-operation distinction exists in this scheme.
            Err(CapError::NotSupported)
        }
    }
}

// ---------------------------------------------------------------------
// Scheme 1
// ---------------------------------------------------------------------

/// Builds a 56-bit cipher from a per-object key. The real factory is
/// [`FeistelFactory`]; [`XorFactory`] exists to *demonstrate* the paper's
/// warning that XOR "will not do" (see the negative tests).
pub trait CipherFactory: fmt::Debug + Send + Sync {
    /// The cipher type produced.
    type Cipher: Cipher56;
    /// Instantiates the cipher for an object whose secret is `key`.
    fn make(&self, key: u64) -> Self::Cipher;
}

/// Produces the real mixing cipher.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FeistelFactory;

impl CipherFactory for FeistelFactory {
    type Cipher = Feistel56;
    fn make(&self, key: u64) -> Feistel56 {
        Feistel56::new(key)
    }
}

/// Produces the deliberately broken XOR "cipher" — negative tests only.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct XorFactory;

impl CipherFactory for XorFactory {
    type Cipher = XorCipher;
    fn make(&self, key: u64) -> XorCipher {
        XorCipher::new(key)
    }
}

/// Scheme 1: the random number stored in the object table is an
/// encryption key; the capability's combined 56-bit `RIGHTS‖RANDOM`
/// field is the *ciphertext* of `(rights, known constant)`.
///
/// Decrypting an incoming capability must reveal the known constant
/// (zero) in the RANDOM part — only then can the rights be believed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EncryptedScheme<CF: CipherFactory = FeistelFactory> {
    factory: CF,
}

/// The known constant: 48 zero bits.
const KNOWN_CONSTANT: u64 = 0;

impl EncryptedScheme<FeistelFactory> {
    /// The production variant, using the Feistel mixing cipher.
    pub fn new() -> Self {
        EncryptedScheme {
            factory: FeistelFactory,
        }
    }
}

impl<CF: CipherFactory> EncryptedScheme<CF> {
    /// A variant with an explicit cipher factory (tests use
    /// [`XorFactory`] to reproduce the paper's warning).
    pub fn with_factory(factory: CF) -> Self {
        EncryptedScheme { factory }
    }

    fn seal(&self, rights: Rights, key: u64) -> (Rights, u64) {
        let cipher = self.factory.make(key);
        let ct = cipher.encrypt(Block56::from_rights_check(rights.bits(), KNOWN_CONSTANT));
        let (r, c) = ct.into_rights_check();
        (Rights::from_bits(r), c)
    }
}

impl<CF: CipherFactory> ProtectionScheme for EncryptedScheme<CF> {
    fn name(&self) -> &'static str {
        "encrypted"
    }

    fn new_secret(&self, rng: &mut dyn RngCore) -> ObjectSecret {
        // The secret is a cipher key; any nonzero 64-bit value works.
        ObjectSecret::from_value(rng.next_u64().max(1))
    }

    fn mint(&self, port: Port, object: ObjectNum, secret: &ObjectSecret) -> Capability {
        let (rights_ct, check_ct) = self.seal(Rights::ALL, secret.value);
        Capability::new(port, object, rights_ct, check_ct)
    }

    fn validate(&self, cap: &Capability, secret: &ObjectSecret) -> Result<Rights, CapError> {
        let cipher = self.factory.make(secret.value);
        let pt = cipher.decrypt(Block56::from_rights_check(cap.rights.bits(), cap.check));
        let (rights, constant) = pt.into_rights_check();
        if constant == KNOWN_CONSTANT {
            Ok(Rights::from_bits(rights))
        } else {
            Err(CapError::Forged)
        }
    }

    fn restrict(
        &self,
        cap: &Capability,
        keep: Rights,
        secret: &ObjectSecret,
    ) -> Result<Capability, CapError> {
        let current = self.validate(cap, secret)?;
        if !current.contains(keep) {
            return Err(CapError::RightsExceeded);
        }
        let (rights_ct, check_ct) = self.seal(keep, secret.value);
        Ok(Capability::new(cap.port, cap.object, rights_ct, check_ct))
    }
}

// ---------------------------------------------------------------------
// Scheme 2
// ---------------------------------------------------------------------

/// Scheme 2: `RANDOM field = F(random-number XOR rights bits)`, with the
/// rights in plaintext. "Although a user can tamper with the plaintext
/// RIGHTS field, such tampering will result in the server ultimately
/// rejecting the capability."
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OneWayScheme<F: OneWay = ShaOneWay> {
    f: F,
}

impl OneWayScheme<ShaOneWay> {
    /// The standard instance over the SHA-256 one-way function.
    pub fn new() -> Self {
        OneWayScheme { f: ShaOneWay }
    }
}

impl<F: OneWay> OneWayScheme<F> {
    /// An instance over an explicit one-way function (e.g. Purdy).
    pub fn with_function(f: F) -> Self {
        OneWayScheme { f }
    }

    fn check_for(&self, rights: Rights, secret: u64) -> u64 {
        self.f.apply48(secret ^ rights.bits() as u64)
    }
}

impl<F: OneWay> ProtectionScheme for OneWayScheme<F> {
    fn name(&self) -> &'static str {
        "one-way"
    }

    fn new_secret(&self, rng: &mut dyn RngCore) -> ObjectSecret {
        ObjectSecret::from_value(random_check(rng))
    }

    fn mint(&self, port: Port, object: ObjectNum, secret: &ObjectSecret) -> Capability {
        Capability::new(
            port,
            object,
            Rights::ALL,
            self.check_for(Rights::ALL, secret.value),
        )
    }

    fn validate(&self, cap: &Capability, secret: &ObjectSecret) -> Result<Rights, CapError> {
        if self.check_for(cap.rights, secret.value) == cap.check {
            Ok(cap.rights)
        } else {
            Err(CapError::Forged)
        }
    }

    fn restrict(
        &self,
        cap: &Capability,
        keep: Rights,
        secret: &ObjectSecret,
    ) -> Result<Capability, CapError> {
        let current = self.validate(cap, secret)?;
        if !current.contains(keep) {
            return Err(CapError::RightsExceeded);
        }
        Ok(Capability::new(
            cap.port,
            cap.object,
            keep,
            self.check_for(keep, secret.value),
        ))
    }
}

// ---------------------------------------------------------------------
// Scheme 3
// ---------------------------------------------------------------------

/// Scheme 3: commutative one-way functions.
///
/// The object's random number goes into the check field as-is, with all
/// rights set. "A client can delete permission k from a capability by
/// replacing the RANDOM field, R, with Fk(R) and turning off the
/// corresponding bit in the RIGHTS field" — no server involvement. The
/// server validates by applying the functions for every *cleared* bit to
/// its stored random number and comparing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommutativeScheme {
    family: CommutativeOwfFamily,
}

impl Default for CommutativeScheme {
    fn default() -> Self {
        Self::standard()
    }
}

impl CommutativeScheme {
    /// The standard 8-function family over the 48-bit field.
    pub fn standard() -> Self {
        CommutativeScheme {
            family: CommutativeOwfFamily::standard(),
        }
    }

    /// A scheme over a custom function family.
    pub fn with_family(family: CommutativeOwfFamily) -> Self {
        CommutativeScheme { family }
    }

    /// The underlying function family.
    pub fn family(&self) -> &CommutativeOwfFamily {
        &self.family
    }

    /// Validates *ignoring the plaintext rights field*, recovering the
    /// rights by brute force over all `2^n` deletion masks (the paper:
    /// "In theory at least, the RIGHTS field is not even needed, since
    /// the server could try all 2^N combinations of the functions to see
    /// if any worked. Its presence merely speeds up the checking.").
    ///
    /// `n` is the number of rights bits to consider (experiment E3
    /// sweeps it). Returns the recovered rights, or `None` if no mask
    /// matches (forged).
    pub fn validate_bruteforce(
        &self,
        cap: &Capability,
        secret: &ObjectSecret,
        n: usize,
    ) -> Option<Rights> {
        let n = n.min(Rights::BITS);
        for mask in 0..(1u16 << n) {
            let deleted = mask as u8;
            if self.family.apply_mask(deleted, secret.value) == cap.check {
                return Some(Rights::from_bits(!deleted));
            }
        }
        None
    }
}

impl ProtectionScheme for CommutativeScheme {
    fn name(&self) -> &'static str {
        "commutative"
    }

    fn new_secret(&self, rng: &mut dyn RngCore) -> ObjectSecret {
        // Must be a high-order element of GF(p): avoid 0, 1, p−1.
        let p = self.family.modulus();
        loop {
            let v = rng.next_u64() % p;
            if v >= 2 && v != p - 1 {
                return ObjectSecret::from_value(v);
            }
        }
    }

    fn mint(&self, port: Port, object: ObjectNum, secret: &ObjectSecret) -> Capability {
        Capability::new(port, object, Rights::ALL, secret.value)
    }

    fn validate(&self, cap: &Capability, secret: &ObjectSecret) -> Result<Rights, CapError> {
        let deleted = (!cap.rights).bits();
        if self.family.apply_mask(deleted, secret.value) == cap.check {
            Ok(cap.rights)
        } else {
            Err(CapError::Forged)
        }
    }

    fn restrict(
        &self,
        cap: &Capability,
        keep: Rights,
        secret: &ObjectSecret,
    ) -> Result<Capability, CapError> {
        let current = self.validate(cap, secret)?;
        if !current.contains(keep) {
            return Err(CapError::RightsExceeded);
        }
        // The server can compute the restricted check directly from its
        // stored random number.
        let deleted = (!keep).bits();
        Ok(Capability::new(
            cap.port,
            cap.object,
            keep,
            self.family.apply_mask(deleted, secret.value()),
        ))
    }

    fn diminish(&self, cap: &Capability, drop: Rights) -> Result<Capability, CapError> {
        // Only apply F_k for rights actually present; re-applying for an
        // already-deleted right would corrupt the chain.
        let to_delete = cap.rights & drop;
        let mut check = cap.check;
        for k in to_delete.iter_bits() {
            check = self.family.apply(k, check);
        }
        Ok(Capability::new(
            cap.port,
            cap.object,
            cap.rights.without(drop),
            check,
        ))
    }

    fn supports_diminish(&self) -> bool {
        true
    }
}

/// Identifies one of the paper's four schemes (benchmark axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchemeKind {
    /// Scheme 0, [`SimpleScheme`].
    Simple,
    /// Scheme 1, [`EncryptedScheme`].
    Encrypted,
    /// Scheme 2, [`OneWayScheme`].
    OneWay,
    /// Scheme 3, [`CommutativeScheme`].
    Commutative,
}

impl SchemeKind {
    /// All four, in paper order.
    pub const ALL: [SchemeKind; 4] = [
        SchemeKind::Simple,
        SchemeKind::Encrypted,
        SchemeKind::OneWay,
        SchemeKind::Commutative,
    ];

    /// Instantiates the standard implementation of this scheme.
    pub fn instantiate(self) -> Box<dyn ProtectionScheme> {
        match self {
            SchemeKind::Simple => Box::new(SimpleScheme::new()),
            SchemeKind::Encrypted => Box::new(EncryptedScheme::new()),
            SchemeKind::OneWay => Box::new(OneWayScheme::new()),
            SchemeKind::Commutative => Box::new(CommutativeScheme::standard()),
        }
    }
}

impl fmt::Display for SchemeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            SchemeKind::Simple => "simple",
            SchemeKind::Encrypted => "encrypted",
            SchemeKind::OneWay => "one-way",
            SchemeKind::Commutative => "commutative",
        };
        write!(f, "{name}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn port() -> Port {
        Port::new(0xCAFE).unwrap()
    }

    fn obj() -> ObjectNum {
        ObjectNum::new(99).unwrap()
    }

    fn mint_with(
        kind: SchemeKind,
        seed: u64,
    ) -> (Box<dyn ProtectionScheme>, ObjectSecret, Capability) {
        let scheme = kind.instantiate();
        let secret = scheme.new_secret(&mut rng(seed));
        let cap = scheme.mint(port(), obj(), &secret);
        (scheme, secret, cap)
    }

    #[test]
    fn all_schemes_validate_own_mint() {
        for kind in SchemeKind::ALL {
            let (scheme, secret, cap) = mint_with(kind, 1);
            assert_eq!(
                scheme.validate(&cap, &secret).unwrap(),
                Rights::ALL,
                "{kind}"
            );
        }
    }

    #[test]
    fn all_schemes_reject_check_tampering() {
        for kind in SchemeKind::ALL {
            let (scheme, secret, cap) = mint_with(kind, 2);
            for bit in [0u64, 1, 17, 47] {
                let forged = cap.with_check(cap.check ^ (1 << bit));
                assert_eq!(
                    scheme.validate(&forged, &secret).unwrap_err(),
                    CapError::Forged,
                    "{kind} bit {bit}"
                );
            }
        }
    }

    #[test]
    fn all_schemes_reject_wrong_secret() {
        for kind in SchemeKind::ALL {
            let (scheme, _secret, cap) = mint_with(kind, 3);
            let other = scheme.new_secret(&mut rng(4));
            assert!(scheme.validate(&cap, &other).is_err(), "{kind}");
        }
    }

    #[test]
    fn restricted_caps_validate_with_exactly_kept_rights() {
        for kind in [
            SchemeKind::Encrypted,
            SchemeKind::OneWay,
            SchemeKind::Commutative,
        ] {
            let (scheme, secret, cap) = mint_with(kind, 5);
            let keep = Rights::READ | Rights::WRITE;
            let restricted = scheme.restrict(&cap, keep, &secret).unwrap();
            assert_eq!(
                scheme.validate(&restricted, &secret).unwrap(),
                keep,
                "{kind}"
            );
        }
    }

    #[test]
    fn restriction_cannot_amplify() {
        for kind in [
            SchemeKind::Encrypted,
            SchemeKind::OneWay,
            SchemeKind::Commutative,
        ] {
            let (scheme, secret, cap) = mint_with(kind, 6);
            let read_only = scheme.restrict(&cap, Rights::READ, &secret).unwrap();
            assert_eq!(
                scheme
                    .restrict(&read_only, Rights::READ | Rights::WRITE, &secret)
                    .unwrap_err(),
                CapError::RightsExceeded,
                "{kind}"
            );
        }
    }

    #[test]
    fn simple_scheme_has_no_rights_distinction() {
        let (scheme, secret, cap) = mint_with(SchemeKind::Simple, 7);
        assert_eq!(
            scheme.restrict(&cap, Rights::READ, &secret).unwrap_err(),
            CapError::NotSupported
        );
        // Identity restriction is fine.
        assert_eq!(scheme.restrict(&cap, Rights::ALL, &secret).unwrap(), cap);
    }

    #[test]
    fn only_commutative_supports_diminish() {
        for kind in SchemeKind::ALL {
            let (scheme, _secret, cap) = mint_with(kind, 8);
            let expect = kind == SchemeKind::Commutative;
            assert_eq!(scheme.supports_diminish(), expect, "{kind}");
            assert_eq!(
                scheme.diminish(&cap, Rights::WRITE).is_ok(),
                expect,
                "{kind}"
            );
        }
    }

    #[test]
    fn encrypted_scheme_rights_field_is_opaque_ciphertext() {
        // In scheme 1 the rights live *inside* the ciphertext; the
        // capability's rights field must not equal the plaintext rights
        // (that would mean the cipher failed to mix).
        let scheme = EncryptedScheme::new();
        let secret = scheme.new_secret(&mut rng(9));
        let cap = scheme.mint(port(), obj(), &secret);
        // The validated value is ALL even though the stored field is not.
        assert_eq!(scheme.validate(&cap, &secret).unwrap(), Rights::ALL);
    }

    #[test]
    fn encrypted_scheme_rejects_rights_field_tampering() {
        let scheme = EncryptedScheme::new();
        let secret = scheme.new_secret(&mut rng(10));
        let cap = scheme.mint(port(), obj(), &secret);
        for flip in 0..8u8 {
            let forged = cap.with_rights(Rights::from_bits(cap.rights.bits() ^ (1 << flip)));
            assert!(scheme.validate(&forged, &secret).is_err(), "bit {flip}");
        }
    }

    #[test]
    fn xor_cipher_reproduces_the_papers_attack() {
        // With the XOR "cipher" the known constant survives rights
        // tampering: EncryptedScheme is *broken* exactly as §2.3 warns.
        let scheme = EncryptedScheme::with_factory(XorFactory);
        let secret = scheme.new_secret(&mut rng(11));
        let cap = scheme.mint(port(), obj(), &secret);
        let restricted = scheme.restrict(&cap, Rights::READ, &secret).unwrap();
        // Attacker flips a plaintext rights bit through the ciphertext.
        let forged = restricted.with_rights(Rights::from_bits(
            restricted.rights.bits() ^ Rights::WRITE.bits(),
        ));
        let recovered = scheme.validate(&forged, &secret).unwrap();
        assert!(
            recovered.contains(Rights::WRITE),
            "the attack must succeed against XOR — that is the point"
        );
    }

    #[test]
    fn oneway_scheme_rejects_plaintext_rights_tampering() {
        let scheme = OneWayScheme::new();
        let secret = scheme.new_secret(&mut rng(12));
        let cap = scheme.mint(port(), obj(), &secret);
        let restricted = scheme.restrict(&cap, Rights::READ, &secret).unwrap();
        let forged = restricted.with_rights(Rights::ALL);
        assert_eq!(
            scheme.validate(&forged, &secret).unwrap_err(),
            CapError::Forged
        );
    }

    #[test]
    fn commutative_diminish_then_validate() {
        let scheme = CommutativeScheme::standard();
        let secret = scheme.new_secret(&mut rng(13));
        let cap = scheme.mint(port(), obj(), &secret);
        let ro = scheme
            .diminish(&cap, Rights::ALL.without(Rights::READ))
            .unwrap();
        assert_eq!(scheme.validate(&ro, &secret).unwrap(), Rights::READ);
    }

    #[test]
    fn commutative_diminish_is_idempotent_on_absent_rights() {
        let scheme = CommutativeScheme::standard();
        let secret = scheme.new_secret(&mut rng(14));
        let cap = scheme.mint(port(), obj(), &secret);
        let once = scheme.diminish(&cap, Rights::WRITE).unwrap();
        let twice = scheme.diminish(&once, Rights::WRITE).unwrap();
        assert_eq!(once, twice, "dropping an absent right must be a no-op");
        assert!(scheme.validate(&twice, &secret).is_ok());
    }

    #[test]
    fn commutative_rights_bit_cannot_be_turned_back_on() {
        let scheme = CommutativeScheme::standard();
        let secret = scheme.new_secret(&mut rng(15));
        let cap = scheme.mint(port(), obj(), &secret);
        let ro = scheme
            .diminish(&cap, Rights::ALL.without(Rights::READ))
            .unwrap();
        let forged = ro.with_rights(Rights::ALL);
        assert_eq!(
            scheme.validate(&forged, &secret).unwrap_err(),
            CapError::Forged
        );
    }

    #[test]
    fn commutative_bruteforce_recovers_rights() {
        let scheme = CommutativeScheme::standard();
        let secret = scheme.new_secret(&mut rng(16));
        let cap = scheme.mint(port(), obj(), &secret);
        let target = Rights::READ | Rights::DELETE;
        let reduced = scheme.diminish(&cap, Rights::ALL.without(target)).unwrap();
        // Erase the rights field entirely; brute force must recover it.
        let anonymous = reduced.with_rights(Rights::NONE);
        assert_eq!(
            scheme.validate_bruteforce(&anonymous, &secret, 8),
            Some(target)
        );
    }

    #[test]
    fn commutative_bruteforce_rejects_forgery() {
        let scheme = CommutativeScheme::standard();
        let secret = scheme.new_secret(&mut rng(17));
        let cap = scheme.mint(port(), obj(), &secret);
        let forged = cap.with_check(cap.check ^ 0xDEAD);
        assert_eq!(scheme.validate_bruteforce(&forged, &secret, 8), None);
    }

    #[test]
    fn monte_carlo_random_checks_never_validate() {
        // The sparseness argument: a guessed 48-bit check field has
        // probability 2^-48 per try. 100k random tries must all fail.
        let mut r = rng(18);
        for kind in SchemeKind::ALL {
            let scheme = kind.instantiate();
            let secret = scheme.new_secret(&mut r);
            let genuine = scheme.mint(port(), obj(), &secret);
            let mut hits = 0u32;
            for _ in 0..100_000 {
                use rand::Rng;
                let guess = genuine.with_check(r.gen::<u64>());
                if guess.check != genuine.check && scheme.validate(&guess, &secret).is_ok() {
                    hits += 1;
                }
            }
            assert_eq!(hits, 0, "{kind}: forged a capability by guessing");
        }
    }

    #[test]
    fn scheme_kind_display_and_names_agree() {
        for kind in SchemeKind::ALL {
            assert_eq!(kind.to_string(), kind.instantiate().name());
        }
    }

    proptest! {
        #[test]
        fn prop_tampered_rights_always_detected(seed: u64, tamper: u8) {
            // Across schemes 1-3: flipping any nonzero rights pattern on
            // a restricted capability is detected.
            if tamper != 0 {
                for kind in [SchemeKind::Encrypted, SchemeKind::OneWay, SchemeKind::Commutative] {
                    let scheme = kind.instantiate();
                    let secret = scheme.new_secret(&mut rng(seed));
                    let cap = scheme.mint(port(), obj(), &secret);
                    let restricted = scheme.restrict(&cap, Rights::READ, &secret).unwrap();
                    let forged = restricted.with_rights(
                        Rights::from_bits(restricted.rights.bits() ^ tamper));
                    let validated = scheme.validate(&forged, &secret);
                    prop_assert!(validated.is_err(), "{} tamper={tamper:#010b}", kind);
                }
            }
        }

        #[test]
        fn prop_diminish_order_independent(seed: u64, mask_a: u8, mask_b: u8) {
            let scheme = CommutativeScheme::standard();
            let secret = scheme.new_secret(&mut rng(seed));
            let cap = scheme.mint(port(), obj(), &secret);
            let a_then_b = scheme
                .diminish(&scheme.diminish(&cap, Rights::from_bits(mask_a)).unwrap(),
                          Rights::from_bits(mask_b)).unwrap();
            let b_then_a = scheme
                .diminish(&scheme.diminish(&cap, Rights::from_bits(mask_b)).unwrap(),
                          Rights::from_bits(mask_a)).unwrap();
            prop_assert_eq!(a_then_b, b_then_a);
            // Both validate to the same reduced rights.
            let scheme_ref = &scheme;
            prop_assert_eq!(
                scheme_ref.validate(&a_then_b, &secret).unwrap(),
                Rights::ALL.without(Rights::from_bits(mask_a)).without(Rights::from_bits(mask_b))
            );
        }

        #[test]
        fn prop_restrict_matches_diminish(seed: u64, keep_bits: u8) {
            // Scheme 3: server-side restrict and client-side diminish
            // must produce the *identical* capability.
            let scheme = CommutativeScheme::standard();
            let secret = scheme.new_secret(&mut rng(seed));
            let cap = scheme.mint(port(), obj(), &secret);
            let keep = Rights::from_bits(keep_bits);
            let via_server = scheme.restrict(&cap, keep, &secret).unwrap();
            let via_client = scheme.diminish(&cap, !keep).unwrap();
            prop_assert_eq!(via_server, via_client);
        }

        #[test]
        fn prop_validated_rights_equal_requested_subset(seed: u64, keep_bits: u8) {
            for kind in [SchemeKind::Encrypted, SchemeKind::OneWay, SchemeKind::Commutative] {
                let scheme = kind.instantiate();
                let secret = scheme.new_secret(&mut rng(seed));
                let cap = scheme.mint(port(), obj(), &secret);
                let keep = Rights::from_bits(keep_bits);
                let restricted = scheme.restrict(&cap, keep, &secret).unwrap();
                prop_assert_eq!(scheme.validate(&restricted, &secret).unwrap(), keep);
            }
        }
    }
}
