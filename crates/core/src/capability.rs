//! The 128-bit capability of Fig 2.

use crate::rights::Rights;
use amoeba_net::Port;
use std::fmt;

/// Mask of the 48-bit check field.
pub(crate) const CHECK_MASK: u64 = (1 << 48) - 1;

/// A 24-bit object number, "meaningful only to the server managing the
/// object" — e.g. an i-number for a UNIX-like file server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectNum(u32);

impl ObjectNum {
    /// Largest representable object number (24 bits).
    pub const MAX: u32 = (1 << 24) - 1;

    /// Creates an object number, `None` if it exceeds 24 bits.
    pub fn new(value: u32) -> Option<ObjectNum> {
        (value <= Self::MAX).then_some(ObjectNum(value))
    }

    /// The raw value.
    pub fn value(self) -> u32 {
        self.0
    }
}

impl fmt::Display for ObjectNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj:{}", self.0)
    }
}

/// An Amoeba capability: `(server port, object, rights, check)`,
/// 48 + 24 + 8 + 48 = 128 bits (Fig 2).
///
/// Capabilities are plain bits: they live in user address spaces, travel
/// in message payloads and can be copied freely. All protection is in
/// the cryptographic relationship between `rights`, `check` and the
/// server's per-object secret — see [`crate::schemes`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Capability {
    /// The put-port of the managing server.
    pub port: Port,
    /// The object number within that server.
    pub object: ObjectNum,
    /// The (scheme-interpreted) rights field.
    pub rights: Rights,
    /// The (scheme-interpreted) 48-bit check field.
    pub check: u64,
}

impl Capability {
    /// Assembles a capability. `check` is truncated to 48 bits.
    pub fn new(port: Port, object: ObjectNum, rights: Rights, check: u64) -> Capability {
        Capability {
            port,
            object,
            rights,
            check: check & CHECK_MASK,
        }
    }

    /// A copy with different rights bits (used by delegation — and by
    /// attackers; the schemes must detect the latter).
    pub fn with_rights(mut self, rights: Rights) -> Capability {
        self.rights = rights;
        self
    }

    /// A copy with a different check field (again: delegation or
    /// tampering).
    pub fn with_check(mut self, check: u64) -> Capability {
        self.check = check & CHECK_MASK;
        self
    }

    /// Serialises to the canonical 16-byte wire form:
    /// port ‖ object ‖ rights ‖ check, all big-endian.
    pub fn encode(&self) -> [u8; 16] {
        let mut out = [0u8; 16];
        out[..6].copy_from_slice(&self.port.value().to_be_bytes()[2..]);
        out[6..9].copy_from_slice(&self.object.0.to_be_bytes()[1..]);
        out[9] = self.rights.bits();
        out[10..16].copy_from_slice(&self.check.to_be_bytes()[2..]);
        out
    }

    /// Parses the canonical 16-byte form. Returns `None` if the port
    /// field holds a reserved value.
    pub fn decode(bytes: &[u8; 16]) -> Option<Capability> {
        let mut port_raw = [0u8; 8];
        port_raw[2..].copy_from_slice(&bytes[..6]);
        let port = Port::new(u64::from_be_bytes(port_raw))?;
        let mut obj_raw = [0u8; 4];
        obj_raw[1..].copy_from_slice(&bytes[6..9]);
        let object = ObjectNum(u32::from_be_bytes(obj_raw));
        let rights = Rights::from_bits(bytes[9]);
        let mut check_raw = [0u8; 8];
        check_raw[2..].copy_from_slice(&bytes[10..16]);
        let check = u64::from_be_bytes(check_raw);
        Some(Capability {
            port,
            object,
            rights,
            check,
        })
    }

    /// Parses from a slice, `None` unless it is exactly 16 valid bytes.
    pub fn decode_slice(bytes: &[u8]) -> Option<Capability> {
        let arr: &[u8; 16] = bytes.try_into().ok()?;
        Self::decode(arr)
    }

    /// Renders the capability as 32 hex digits — the form users paste
    /// into tools and mail to each other (capabilities are bearer
    /// tokens; the string *is* the authority).
    pub fn to_hex(&self) -> String {
        self.encode().iter().map(|b| format!("{b:02x}")).collect()
    }

    /// Parses the [`to_hex`](Self::to_hex) form.
    pub fn from_hex(hex: &str) -> Option<Capability> {
        if hex.len() != 32 || !hex.is_ascii() {
            return None;
        }
        let mut bytes = [0u8; 16];
        for (i, chunk) in hex.as_bytes().chunks(2).enumerate() {
            let s = std::str::from_utf8(chunk).ok()?;
            bytes[i] = u8::from_str_radix(s, 16).ok()?;
        }
        Self::decode(&bytes)
    }

    /// The whole capability as one 128-bit number (handy for the DES
    /// encryption in `amoeba-softprot`).
    pub fn as_u128(&self) -> u128 {
        u128::from_be_bytes(self.encode())
    }

    /// Inverse of [`as_u128`](Self::as_u128).
    pub fn from_u128(v: u128) -> Option<Capability> {
        Self::decode(&v.to_be_bytes())
    }
}

impl std::str::FromStr for Capability {
    type Err = ParseCapabilityError;

    fn from_str(s: &str) -> Result<Capability, ParseCapabilityError> {
        Capability::from_hex(s).ok_or(ParseCapabilityError)
    }
}

/// Error parsing a capability from its hex form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseCapabilityError;

impl fmt::Display for ParseCapabilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid capability hex string")
    }
}

impl std::error::Error for ParseCapabilityError {}

impl fmt::Display for Capability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cap[{} {} rights={} check={:012x}]",
            self.port, self.object, self.rights, self.check
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample() -> Capability {
        Capability::new(
            Port::new(0xABCD_EF12_3456).unwrap(),
            ObjectNum::new(0x00AB_CDEF).unwrap(),
            Rights::READ | Rights::OWNER,
            0x1234_5678_9ABC,
        )
    }

    #[test]
    fn object_num_bounds() {
        assert!(ObjectNum::new(ObjectNum::MAX).is_some());
        assert!(ObjectNum::new(ObjectNum::MAX + 1).is_none());
        assert_eq!(ObjectNum::new(5).unwrap().value(), 5);
    }

    #[test]
    fn encode_is_exactly_fig2_layout() {
        let cap = sample();
        let bytes = cap.encode();
        assert_eq!(&bytes[..6], &[0xAB, 0xCD, 0xEF, 0x12, 0x34, 0x56]);
        assert_eq!(&bytes[6..9], &[0xAB, 0xCD, 0xEF]);
        assert_eq!(bytes[9], (Rights::READ | Rights::OWNER).bits());
        assert_eq!(&bytes[10..], &[0x12, 0x34, 0x56, 0x78, 0x9A, 0xBC]);
    }

    #[test]
    fn decode_roundtrip() {
        let cap = sample();
        assert_eq!(Capability::decode(&cap.encode()), Some(cap));
    }

    #[test]
    fn u128_roundtrip() {
        let cap = sample();
        assert_eq!(Capability::from_u128(cap.as_u128()), Some(cap));
    }

    #[test]
    fn decode_slice_wrong_length_fails() {
        assert!(Capability::decode_slice(&[0u8; 15]).is_none());
        assert!(Capability::decode_slice(&[0u8; 17]).is_none());
    }

    #[test]
    fn decode_reserved_port_fails() {
        let mut bytes = sample().encode();
        bytes[..6].copy_from_slice(&[0; 6]); // broadcast port
        assert!(Capability::decode(&bytes).is_none());
    }

    #[test]
    fn hex_roundtrip_and_fromstr() {
        let cap = sample();
        let hex = cap.to_hex();
        assert_eq!(hex.len(), 32);
        assert_eq!(Capability::from_hex(&hex), Some(cap));
        assert_eq!(hex.parse::<Capability>().unwrap(), cap);
        assert!(Capability::from_hex("short").is_none());
        assert!(Capability::from_hex(&"g".repeat(32)).is_none());
        assert!("not a capability".parse::<Capability>().is_err());
    }

    #[test]
    fn check_is_truncated_to_48_bits() {
        let cap = Capability::new(
            Port::new(1).unwrap(),
            ObjectNum::new(0).unwrap(),
            Rights::NONE,
            u64::MAX,
        );
        assert_eq!(cap.check, CHECK_MASK);
    }

    #[test]
    fn display_is_informative() {
        let s = sample().to_string();
        assert!(s.contains("obj:"));
        assert!(s.contains("rights="));
    }

    proptest! {
        #[test]
        fn roundtrip_random(port in 1u64..(1u64 << 48) - 1, obj in 0u32..=ObjectNum::MAX,
                            rights: u8, check: u64) {
            let cap = Capability::new(
                Port::new(port).unwrap(),
                ObjectNum::new(obj).unwrap(),
                Rights::from_bits(rights),
                check,
            );
            prop_assert_eq!(Capability::decode(&cap.encode()), Some(cap));
            prop_assert_eq!(Capability::from_u128(cap.as_u128()), Some(cap));
        }
    }
}
