//! The 8-bit rights field: "a 1 bit for each permitted operation".

use std::fmt;
use std::ops::{BitAnd, BitOr, BitXor, Not};

/// A set of up to eight permitted operations.
///
/// The bit *positions* are what the protection schemes care about; the
/// named constants are the conventional Amoeba assignments used by the
/// servers in this repository. Bit 7 ([`Rights::OWNER`]) guards
/// administrative operations — notably revocation, which the paper says
/// "must be protected with a bit in the RIGHTS field".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Rights(u8);

impl Rights {
    /// No operations permitted.
    pub const NONE: Rights = Rights(0);
    /// Every operation permitted — how capabilities are minted.
    pub const ALL: Rights = Rights(0xFF);
    /// Read the object.
    pub const READ: Rights = Rights(1 << 0);
    /// Modify the object.
    pub const WRITE: Rights = Rights(1 << 1);
    /// Destroy the object.
    pub const DELETE: Rights = Rights(1 << 2);
    /// Create subordinate objects (e.g. directory entries).
    pub const CREATE: Rights = Rights(1 << 3);
    /// Administrative rights, including revocation.
    pub const OWNER: Rights = Rights(1 << 7);

    /// Number of rights bits.
    pub const BITS: usize = 8;

    /// A set from a raw bit pattern.
    pub const fn from_bits(bits: u8) -> Rights {
        Rights(bits)
    }

    /// A set containing only bit `k`.
    ///
    /// # Panics
    /// Panics if `k >= 8`.
    pub fn bit(k: usize) -> Rights {
        assert!(k < Self::BITS, "rights bit {k} out of range");
        Rights(1 << k)
    }

    /// The raw bit pattern.
    pub const fn bits(self) -> u8 {
        self.0
    }

    /// Whether every right in `other` is present in `self`.
    pub const fn contains(self, other: Rights) -> bool {
        self.0 & other.0 == other.0
    }

    /// Whether no rights are set.
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// `self` with the rights of `other` removed.
    pub const fn without(self, other: Rights) -> Rights {
        Rights(self.0 & !other.0)
    }

    /// `self` with the rights of `other` added.
    pub const fn with(self, other: Rights) -> Rights {
        Rights(self.0 | other.0)
    }

    /// Iterates over the positions of the set bits.
    pub fn iter_bits(self) -> impl Iterator<Item = usize> {
        (0..Self::BITS).filter(move |k| self.0 & (1 << k) != 0)
    }

    /// Number of set bits.
    pub const fn count(self) -> u32 {
        self.0.count_ones()
    }
}

impl BitOr for Rights {
    type Output = Rights;
    fn bitor(self, rhs: Rights) -> Rights {
        Rights(self.0 | rhs.0)
    }
}

impl BitAnd for Rights {
    type Output = Rights;
    fn bitand(self, rhs: Rights) -> Rights {
        Rights(self.0 & rhs.0)
    }
}

impl BitXor for Rights {
    type Output = Rights;
    fn bitxor(self, rhs: Rights) -> Rights {
        Rights(self.0 ^ rhs.0)
    }
}

impl Not for Rights {
    type Output = Rights;
    fn not(self) -> Rights {
        Rights(!self.0)
    }
}

impl fmt::Display for Rights {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "-");
        }
        let names = [
            (Rights::READ, "r"),
            (Rights::WRITE, "w"),
            (Rights::DELETE, "d"),
            (Rights::CREATE, "c"),
            (Rights::bit(4), "4"),
            (Rights::bit(5), "5"),
            (Rights::bit(6), "6"),
            (Rights::OWNER, "o"),
        ];
        for (right, name) in names {
            if self.contains(right) {
                write!(f, "{name}")?;
            }
        }
        Ok(())
    }
}

impl fmt::Binary for Rights {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn named_constants_are_distinct_bits() {
        let all = [
            Rights::READ,
            Rights::WRITE,
            Rights::DELETE,
            Rights::CREATE,
            Rights::OWNER,
        ];
        for (i, a) in all.iter().enumerate() {
            assert_eq!(a.count(), 1);
            for b in &all[i + 1..] {
                assert!((*a & *b).is_empty());
            }
        }
    }

    #[test]
    fn contains_and_without() {
        let rw = Rights::READ | Rights::WRITE;
        assert!(rw.contains(Rights::READ));
        assert!(rw.contains(Rights::WRITE));
        assert!(!rw.contains(Rights::DELETE));
        assert!(rw.contains(Rights::NONE));
        assert_eq!(rw.without(Rights::WRITE), Rights::READ);
        assert_eq!(Rights::ALL.without(Rights::NONE), Rights::ALL);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Rights::NONE.to_string(), "-");
        assert_eq!((Rights::READ | Rights::WRITE).to_string(), "rw");
        assert_eq!(Rights::ALL.to_string(), "rwdc456o");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bit_out_of_range_panics() {
        Rights::bit(8);
    }

    #[test]
    fn iter_bits_matches_bits() {
        let r = Rights::from_bits(0b1010_0101);
        let positions: Vec<usize> = r.iter_bits().collect();
        assert_eq!(positions, vec![0, 2, 5, 7]);
    }

    proptest! {
        #[test]
        fn without_then_never_contains(a: u8, b: u8) {
            let a = Rights::from_bits(a);
            let b = Rights::from_bits(b);
            let reduced = a.without(b);
            prop_assert!((reduced & b).is_empty());
            prop_assert!(a.contains(reduced));
        }

        #[test]
        fn with_is_union(a: u8, b: u8) {
            let a = Rights::from_bits(a);
            let b = Rights::from_bits(b);
            prop_assert!(a.with(b).contains(a));
            prop_assert!(a.with(b).contains(b));
            prop_assert_eq!(a.with(b), a | b);
        }

        #[test]
        fn count_matches_iter(a: u8) {
            let r = Rights::from_bits(a);
            prop_assert_eq!(r.count() as usize, r.iter_bits().count());
        }
    }
}
