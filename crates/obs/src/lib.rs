//! **amoeba-obs** — zero-cost-when-disabled observability for the
//! Amoeba reproduction: transaction tracing, a lock-free flight
//! recorder, and an alloc-free metrics registry.
//!
//! The crate is a dependency-free leaf so every layer (`net` upward)
//! can hold an [`Obs`] handle. Design constraints, in order:
//!
//! 1. **Disabled is literally free.** An [`Obs`] starts disabled;
//!    every record call is then a single `OnceLock` load and a
//!    branch — no allocation, no lock, no atomic write. The CI-gated
//!    hot-path invariants (0 allocs/op, 0 locks/op) hold with the
//!    layer compiled in and switched off, and a scale-test gate
//!    proves it.
//! 2. **Enabled stays off the lock path.** [`Obs::enable`] allocates
//!    the [`Metrics`] registry and the flight-recorder ring once;
//!    after that, recording an event or bumping a counter is a
//!    handful of relaxed atomics. No mutex is ever taken to record.
//! 3. **Traces are causal under every clock.** Events carry timeline
//!    timestamps (nanoseconds since the shared `Clock` epoch) handed
//!    in by the instrumented layer, so wall, virtual and
//!    deterministic-sim runs all produce ordered span timelines, and
//!    a failing sim seed replays to the byte-identical trace.
//!
//! # Trace ids
//!
//! A trace id is **client-local**: the RPC client stamps each
//! transaction from a per-client counter (machine id in the high 32
//! bits, so spans from different clients never alias in one shared
//! recording) and records every span event (start, encode,
//! frame-on-wire, retransmit, reply-demux, completion wake) itself,
//! sequentially. Network- and server-side events carry trace 0 and
//! correlate by port/machine operands instead — nothing is added to
//! the wire format.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod metrics;
mod recorder;

pub use metrics::{Counter, Histogram, Metrics, MetricsSnapshot, HISTOGRAM_BUCKETS};
pub use recorder::{FlightEvent, RING_CAPACITY};

use recorder::Ring;
use std::sync::{Arc, OnceLock};

/// What a flight-recorder event describes. Discriminants are stable
/// (they are stored raw in the ring).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u64)]
pub enum EventKind {
    /// Recovered from a slot whose kind field was unrecognized.
    Unknown = 0,
    /// A client transaction started (`a` = dest port, `b` = payload len).
    TransStart = 1,
    /// The request frame was encoded (`a` = reply wire port).
    Encode = 2,
    /// A frame left the client (`a` = dest port, `b` = transmit count).
    FrameOnWire = 3,
    /// A retransmission of an in-flight attempt (`a` = dest port,
    /// `b` = transmit count).
    Retransmit = 4,
    /// The sim delivery gate parked a copy (`a` = dest port,
    /// `b` = target machine).
    DeliveryGate = 5,
    /// The sim fault plan lost a frame (`a` = dest port, `b` = target).
    Loss = 6,
    /// The sim fault plan duplicated a frame (`a` = dest port,
    /// `b` = target machine).
    Duplicate = 7,
    /// The sim fault plan delay-spiked a frame (`a` = dest port,
    /// `b` = target machine).
    Spike = 8,
    /// A crash window dropped a frame (`a` = dest port, `b` = target).
    CrashDrop = 9,
    /// A partition window dropped a frame (`a` = dest port,
    /// `b` = target machine).
    PartitionDrop = 10,
    /// The sim released a delivery into a machine queue (`a` = dest
    /// port, `b` = target machine).
    Delivered = 11,
    /// A server pump dequeued a request (`a` = put port, `b` = machine).
    PumpDequeue = 12,
    /// A service handler started (`a` = put port, `b` = machine).
    HandlerStart = 13,
    /// A service handler finished (`a` = put port, `b` = machine).
    HandlerEnd = 14,
    /// A reply matched the client's demux (`a` = reply wire port).
    ReplyDemux = 15,
    /// A transaction completed and its waiter woke (`a` = latency ns).
    CompletionWake = 16,
    /// A cluster client failed over off a dead replica (`a` = machine).
    Failover = 17,
    /// A batched path resolution completed (`a` = server hops,
    /// `b` = segments consumed). Recorded under the first hop's trace
    /// id, so a flight recording shows each hop-chain's fan-out;
    /// trace 0 marks a pure cache hit (no transaction ran).
    PathResolve = 18,
    /// A shard migration opened (`a` = shard index, `b` = transfer id).
    MigrateBegin = 19,
    /// One transfer chunk shipped (`a` = chunk seq, `b` = record
    /// bytes).
    MigrateChunk = 20,
    /// A shard migration committed on the target and cut over
    /// (`a` = shard index, `b` = transfer id).
    MigrateCommit = 21,
    /// A shard migration aborted; the source kept ownership
    /// (`a` = shard index, `b` = transfer id).
    MigrateAbort = 22,
    /// The old owner relayed an in-flight request to the new owner
    /// during cutover (`a` = destination port, `b` = client reply
    /// port).
    RequestForwarded = 23,
}

impl EventKind {
    /// The stable display name (used in JSON dumps).
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Unknown => "Unknown",
            EventKind::TransStart => "TransStart",
            EventKind::Encode => "Encode",
            EventKind::FrameOnWire => "FrameOnWire",
            EventKind::Retransmit => "Retransmit",
            EventKind::DeliveryGate => "DeliveryGate",
            EventKind::Loss => "Loss",
            EventKind::Duplicate => "Duplicate",
            EventKind::Spike => "Spike",
            EventKind::CrashDrop => "CrashDrop",
            EventKind::PartitionDrop => "PartitionDrop",
            EventKind::Delivered => "Delivered",
            EventKind::PumpDequeue => "PumpDequeue",
            EventKind::HandlerStart => "HandlerStart",
            EventKind::HandlerEnd => "HandlerEnd",
            EventKind::ReplyDemux => "ReplyDemux",
            EventKind::CompletionWake => "CompletionWake",
            EventKind::Failover => "Failover",
            EventKind::PathResolve => "PathResolve",
            EventKind::MigrateBegin => "MigrateBegin",
            EventKind::MigrateChunk => "MigrateChunk",
            EventKind::MigrateCommit => "MigrateCommit",
            EventKind::MigrateAbort => "MigrateAbort",
            EventKind::RequestForwarded => "RequestForwarded",
        }
    }

    /// Decodes a raw ring value back to a kind.
    pub fn from_u64(v: u64) -> EventKind {
        match v {
            1 => EventKind::TransStart,
            2 => EventKind::Encode,
            3 => EventKind::FrameOnWire,
            4 => EventKind::Retransmit,
            5 => EventKind::DeliveryGate,
            6 => EventKind::Loss,
            7 => EventKind::Duplicate,
            8 => EventKind::Spike,
            9 => EventKind::CrashDrop,
            10 => EventKind::PartitionDrop,
            11 => EventKind::Delivered,
            12 => EventKind::PumpDequeue,
            13 => EventKind::HandlerStart,
            14 => EventKind::HandlerEnd,
            15 => EventKind::ReplyDemux,
            16 => EventKind::CompletionWake,
            17 => EventKind::Failover,
            18 => EventKind::PathResolve,
            19 => EventKind::MigrateBegin,
            20 => EventKind::MigrateChunk,
            21 => EventKind::MigrateCommit,
            22 => EventKind::MigrateAbort,
            23 => EventKind::RequestForwarded,
            _ => EventKind::Unknown,
        }
    }
}

/// The enabled half of an [`Obs`]: the metrics registry plus the
/// flight-recorder ring, allocated once on enable.
#[derive(Debug)]
struct Live {
    metrics: Metrics,
    ring: Ring,
}

#[derive(Debug, Default)]
struct ObsCore {
    /// Lazily initialized on [`Obs::enable`]: ~200 KiB of atomics that
    /// disabled networks (the common case — unit tests build hundreds)
    /// never pay for.
    live: OnceLock<Box<Live>>,
}

/// A cloneable observability handle. Starts **disabled**: recording
/// and counting are no-ops costing one atomic load. [`enable`]
/// switches the handle (and every clone of it) live, irreversibly.
///
/// [`enable`]: Obs::enable
#[derive(Debug, Clone, Default)]
pub struct Obs {
    core: Arc<ObsCore>,
}

impl Obs {
    /// A fresh, disabled handle.
    pub fn new() -> Obs {
        Obs::default()
    }

    /// Switches this handle live, allocating the metrics registry and
    /// the flight-recorder ring. Idempotent; never disables.
    pub fn enable(&self) {
        let _ = self.core.live.set(Box::new(Live {
            metrics: Metrics::default(),
            ring: Ring::new(),
        }));
    }

    /// Whether the handle is live.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.core.live.get().is_some()
    }

    /// The live metrics registry, or `None` while disabled. Call
    /// sites gate their counter bumps on this, so the disabled path
    /// is one load and a branch.
    #[inline]
    pub fn metrics(&self) -> Option<&Metrics> {
        self.core.live.get().map(|l| &l.metrics)
    }

    /// Records one flight-recorder event. A no-op while disabled;
    /// lock-free and alloc-free while enabled. `t_nanos` is timeline
    /// time (nanoseconds since the clock epoch), `trace` the
    /// client-local trace id (0 when not transaction-scoped), `a`/`b`
    /// event-specific operands (see [`EventKind`]).
    #[inline]
    pub fn record(&self, kind: EventKind, t_nanos: u64, trace: u64, a: u64, b: u64) {
        if let Some(live) = self.core.live.get() {
            live.ring.push(kind, t_nanos, trace, a, b);
        }
    }

    /// Snapshots the metrics registry, or `None` while disabled.
    pub fn snapshot(&self) -> Option<MetricsSnapshot> {
        self.metrics().map(Metrics::snapshot)
    }

    /// The flight recorder's surviving events in recording order
    /// (empty while disabled).
    pub fn events(&self) -> Vec<FlightEvent> {
        self.core
            .live
            .get()
            .map(|l| l.ring.events())
            .unwrap_or_default()
    }

    /// The flight recorder as JSON lines — one event object per line,
    /// oldest first (empty while disabled).
    pub fn flight_json(&self) -> String {
        let evs = self.events();
        let mut out = String::with_capacity(evs.len() * 96);
        for e in &evs {
            out.push_str(&e.to_json());
            out.push('\n');
        }
        out
    }

    /// Dumps the flight recorder and a metrics snapshot to stderr,
    /// and — when the `OBS_DUMP_DIR` environment variable names a
    /// directory — to `flight-<pid>-<reason>.json` inside it (the
    /// artifact CI uploads on a failed sim seed). The directory is
    /// created if missing. No-op while disabled.
    pub fn dump(&self, reason: &str) {
        if !self.enabled() {
            return;
        }
        let flight = self.flight_json();
        let metrics = self.snapshot().unwrap_or_default().to_json();
        eprintln!("=== flight recorder dump: {reason} ===");
        eprint!("{flight}");
        eprintln!("=== metrics ===");
        eprintln!("{metrics}");
        eprintln!("=== end dump ===");
        if let Some(dir) = std::env::var_os("OBS_DUMP_DIR") {
            // Best effort: a dump must never turn one failure into two.
            let _ = std::fs::create_dir_all(&dir);
            let path = std::path::Path::new(&dir).join(format!(
                "flight-{}-{}.json",
                std::process::id(),
                sanitize(reason)
            ));
            let body = format!(
                "{{\"reason\":\"{}\",\"metrics\":{},\"events\":[\n{}]}}\n",
                sanitize(reason),
                metrics,
                join_events(&flight)
            );
            if let Err(e) = std::fs::write(&path, body) {
                eprintln!("flight dump write failed ({}): {e}", path.display());
            }
        }
    }
}

/// Keeps dump reasons filesystem- and JSON-safe.
fn sanitize(reason: &str) -> String {
    reason
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
        .collect()
}

/// Turns newline-separated JSON objects into a comma-separated array
/// body.
fn join_events(lines: &str) -> String {
    let items: Vec<&str> = lines.lines().filter(|l| !l.is_empty()).collect();
    items.join(",\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_records_nothing() {
        let obs = Obs::new();
        assert!(!obs.enabled());
        obs.record(EventKind::TransStart, 1, 1, 1, 1);
        assert!(obs.events().is_empty());
        assert!(obs.snapshot().is_none());
        assert!(obs.metrics().is_none());
        assert_eq!(obs.flight_json(), "");
    }

    #[test]
    fn enable_is_shared_across_clones_and_idempotent() {
        let obs = Obs::new();
        let clone = obs.clone();
        obs.enable();
        obs.enable();
        assert!(clone.enabled());
        clone.record(EventKind::Encode, 5, 9, 0, 0);
        let evs = obs.events();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].kind, EventKind::Encode);
        assert_eq!(evs[0].trace, 9);
    }

    #[test]
    fn metrics_flow_through_the_handle() {
        let obs = Obs::new();
        obs.enable();
        let m = obs.metrics().unwrap();
        m.retransmits.add(2);
        m.trans_latency_ns.record(10_000);
        let snap = obs.snapshot().unwrap();
        assert_eq!(snap.retransmits, 2);
        assert_eq!(snap.latency_count, 1);
        assert!(snap.to_json().contains("\"retransmits\": 2"));
    }

    #[test]
    fn event_kinds_round_trip_through_raw_values() {
        for k in [
            EventKind::TransStart,
            EventKind::Encode,
            EventKind::FrameOnWire,
            EventKind::Retransmit,
            EventKind::DeliveryGate,
            EventKind::Loss,
            EventKind::Duplicate,
            EventKind::Spike,
            EventKind::CrashDrop,
            EventKind::PartitionDrop,
            EventKind::Delivered,
            EventKind::PumpDequeue,
            EventKind::HandlerStart,
            EventKind::HandlerEnd,
            EventKind::ReplyDemux,
            EventKind::CompletionWake,
            EventKind::Failover,
            EventKind::PathResolve,
            EventKind::MigrateBegin,
            EventKind::MigrateChunk,
            EventKind::MigrateCommit,
            EventKind::MigrateAbort,
            EventKind::RequestForwarded,
        ] {
            assert_eq!(EventKind::from_u64(k as u64), k);
            assert_ne!(k.name(), "Unknown");
        }
        assert_eq!(EventKind::from_u64(4096), EventKind::Unknown);
    }

    #[test]
    fn flight_json_is_one_object_per_line() {
        let obs = Obs::new();
        obs.enable();
        obs.record(EventKind::FrameOnWire, 100, 7, 42, 1);
        obs.record(EventKind::ReplyDemux, 200, 7, 42, 0);
        let json = obs.flight_json();
        let lines: Vec<&str> = json.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"kind\":\"FrameOnWire\""));
        assert!(lines[1].contains("\"t_ns\":200"));
    }

    #[test]
    fn dump_writes_the_ci_artifact_file() {
        // Only this test touches OBS_DUMP_DIR in this binary, and the
        // dump filename carries the (sanitized) reason, so a unique
        // reason keeps reruns from reading a stale file.
        let dir = std::env::temp_dir().join(format!("obs-dump-test-{}", std::process::id()));
        std::env::set_var("OBS_DUMP_DIR", &dir);
        let obs = Obs::new();
        obs.enable();
        obs.record(EventKind::Loss, 50, 0, 11, 0);
        obs.record(EventKind::CompletionWake, 90, 3, 40, 1);
        obs.dump("seed 0xBAD panicked");
        std::env::remove_var("OBS_DUMP_DIR");

        let path = dir.join(format!(
            "flight-{}-seed-0xBAD-panicked.json",
            std::process::id()
        ));
        let body = std::fs::read_to_string(&path).expect("dump file written");
        assert!(body.contains("\"reason\":\"seed-0xBAD-panicked\""));
        assert!(
            body.contains("\"kind\":\"Loss\""),
            "injected fault recorded"
        );
        assert!(body.contains("\"kind\":\"CompletionWake\""));
        assert!(body.contains("\"trans_completed\""), "metrics embedded");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
