//! The lock-free metrics registry: atomic counters and fixed-bucket
//! log-scale histograms, alloc-free and lock-free on the record path.
//!
//! Everything here is a plain field on [`Metrics`] — no registration,
//! no string lookups, no maps. A record is one or two `fetch_add`s on
//! pre-existing atomics, which is what lets the RPC hot path keep its
//! CI-gated *0 allocs/op, 0 locks/op* steady-state invariants with
//! metrics enabled. Reading is the cold path:
//! [`Metrics::snapshot`] copies every atomic into a plain
//! [`MetricsSnapshot`], and [`MetricsSnapshot::to_json`] formats it.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing event counter.
///
/// `add` is a single relaxed `fetch_add`; `get` a single load. Both
/// are alloc-free and lock-free.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current count.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: 16 linear buckets for values `0..16`,
/// then 16 log-linear sub-buckets per power of two up to `u64::MAX`
/// (HDR-histogram style), which tops out at index 975.
pub const HISTOGRAM_BUCKETS: usize = 1024;

/// A fixed-bucket log-scale histogram of `u64` samples (latencies in
/// nanoseconds or microseconds, queue depths, ...).
///
/// Buckets are log₂ groups split into 16 linear sub-buckets, so the
/// relative bucket resolution is ≤ 1/16 (6.25 %) everywhere above 16.
/// Recording is three relaxed `fetch_add`s plus a `fetch_min`/
/// `fetch_max` — no locks, no allocation, no floats.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Histogram {
        #[allow(clippy::declare_interior_mutable_const)] // repeat seed
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram {
            buckets: [ZERO; HISTOGRAM_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// The bucket index covering `v`: identity below 16, then
    /// `16·(msb-3) + next-4-bits`.
    #[inline]
    pub fn bucket_index(v: u64) -> usize {
        if v < 16 {
            return v as usize;
        }
        let msb = 63 - v.leading_zeros() as usize; // >= 4 here
        let group = msb - 3;
        let sub = ((v >> (msb - 4)) & 0xF) as usize;
        group * 16 + sub
    }

    /// The half-open value range `[lo, hi)` of bucket `idx`.
    pub fn bucket_bounds(idx: usize) -> (u64, u64) {
        if idx < 16 {
            return (idx as u64, idx as u64 + 1);
        }
        let group = (idx / 16) as u32;
        let sub = (idx % 16) as u64;
        let lo = (16 + sub) << (group - 1);
        let hi = lo.saturating_add(1u64 << (group - 1));
        (lo, hi)
    }

    /// Records one sample. Lock-free and alloc-free.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples (wrapping).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Smallest recorded sample, or `None` if empty.
    pub fn min(&self) -> Option<u64> {
        let v = self.min.load(Ordering::Relaxed);
        (v != u64::MAX || self.count() > 0).then_some(v)
    }

    /// Largest recorded sample, or `None` if empty.
    pub fn max(&self) -> Option<u64> {
        (self.count() > 0).then(|| self.max.load(Ordering::Relaxed))
    }

    /// The bucket `[lo, hi)` containing the `per_mille`-th percentile
    /// sample (rank `ceil(count · per_mille / 1000)`, matching a
    /// sorted-vector percentile), or `None` if the histogram is empty.
    ///
    /// The exact sample at that rank is guaranteed to lie inside the
    /// returned bounds — the contract the swarm-bench cross-check
    /// asserts against its sorted open-loop sampler.
    pub fn percentile_bounds(&self, per_mille: u64) -> Option<(u64, u64)> {
        let count = self.count();
        if count == 0 {
            return None;
        }
        let rank = ((count * per_mille).div_ceil(1000)).max(1);
        let mut cum = 0u64;
        for idx in 0..HISTOGRAM_BUCKETS {
            cum += self.buckets[idx].load(Ordering::Relaxed);
            if cum >= rank {
                return Some(Self::bucket_bounds(idx));
            }
        }
        // Races between count and bucket loads can leave the walk one
        // short; the answer is then in the last non-empty bucket.
        (0..HISTOGRAM_BUCKETS)
            .rev()
            .find(|&idx| self.buckets[idx].load(Ordering::Relaxed) > 0)
            .map(Self::bucket_bounds)
    }

    /// A point estimate of the `per_mille`-th percentile: the upper
    /// bound of its bucket, clamped to the recorded min/max. Within
    /// one bucket (≤ 6.25 %) of the exact sorted-sample percentile.
    pub fn percentile(&self, per_mille: u64) -> Option<u64> {
        let (lo, hi) = self.percentile_bounds(per_mille)?;
        let est = hi.saturating_sub(1).max(lo);
        let est = self.max().map_or(est, |m| est.min(m));
        Some(self.min().map_or(est, |m| est.max(m)))
    }
}

/// The fixed registry of live metrics. One instance per enabled
/// [`Obs`](crate::Obs); every field is lock-free to record.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Client transactions started.
    pub trans_started: Counter,
    /// Client transactions completed with a reply.
    pub trans_completed: Counter,
    /// Client transactions that exhausted every attempt.
    pub trans_timeouts: Counter,
    /// Per-attempt retransmissions (transmits beyond the first).
    pub retransmits: Counter,
    /// Reply ports minted fresh from the demux slot table.
    pub reply_ports_fresh: Counter,
    /// Reply ports recycled from a parked slot (warm-path reuse).
    pub reply_ports_recycled: Counter,
    /// Reply ports adopted from a cross-client port lease.
    pub reply_ports_leased: Counter,
    /// Recycled identities offered back to a lease broker.
    pub lease_offers: Counter,
    /// Transactions that fell off the demux slot table into the
    /// locked overflow map (the gated slow path).
    pub demux_overflows: Counter,
    /// Cluster-client failovers (a replica timed out or disconnected
    /// and the call moved on).
    pub failovers: Counter,
    /// Frames lost by the sim fault plan.
    pub faults_lost: Counter,
    /// Duplicate frame copies injected by the sim fault plan.
    pub faults_duplicated: Counter,
    /// Frames delay-spiked by the sim fault plan.
    pub faults_spiked: Counter,
    /// Frames dropped by sim crash windows.
    pub faults_crash_dropped: Counter,
    /// Frames dropped by sim partition windows.
    pub faults_partition_dropped: Counter,
    /// Requests dequeued by server pumps.
    pub server_requests: Counter,
    /// Service handler invocations completed.
    pub handlers_completed: Counter,
    /// End-to-end transaction latency (start → completion wake), in
    /// nanoseconds of timeline time.
    pub trans_latency_ns: Histogram,
}

impl Metrics {
    /// Copies every metric into a plain [`MetricsSnapshot`].
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            trans_started: self.trans_started.get(),
            trans_completed: self.trans_completed.get(),
            trans_timeouts: self.trans_timeouts.get(),
            retransmits: self.retransmits.get(),
            reply_ports_fresh: self.reply_ports_fresh.get(),
            reply_ports_recycled: self.reply_ports_recycled.get(),
            reply_ports_leased: self.reply_ports_leased.get(),
            lease_offers: self.lease_offers.get(),
            demux_overflows: self.demux_overflows.get(),
            failovers: self.failovers.get(),
            faults_lost: self.faults_lost.get(),
            faults_duplicated: self.faults_duplicated.get(),
            faults_spiked: self.faults_spiked.get(),
            faults_crash_dropped: self.faults_crash_dropped.get(),
            faults_partition_dropped: self.faults_partition_dropped.get(),
            server_requests: self.server_requests.get(),
            handlers_completed: self.handlers_completed.get(),
            latency_count: self.trans_latency_ns.count(),
            latency_sum_ns: self.trans_latency_ns.sum(),
            latency_min_ns: self.trans_latency_ns.min().unwrap_or(0),
            latency_max_ns: self.trans_latency_ns.max().unwrap_or(0),
            latency_p50_ns: self.trans_latency_ns.percentile(500).unwrap_or(0),
            latency_p99_ns: self.trans_latency_ns.percentile(990).unwrap_or(0),
            latency_p999_ns: self.trans_latency_ns.percentile(999).unwrap_or(0),
        }
    }
}

/// A point-in-time copy of every metric — plain data, comparable,
/// serializable via [`to_json`](MetricsSnapshot::to_json).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // field names mirror `Metrics` docs 1:1
pub struct MetricsSnapshot {
    pub trans_started: u64,
    pub trans_completed: u64,
    pub trans_timeouts: u64,
    pub retransmits: u64,
    pub reply_ports_fresh: u64,
    pub reply_ports_recycled: u64,
    pub reply_ports_leased: u64,
    pub lease_offers: u64,
    pub demux_overflows: u64,
    pub failovers: u64,
    pub faults_lost: u64,
    pub faults_duplicated: u64,
    pub faults_spiked: u64,
    pub faults_crash_dropped: u64,
    pub faults_partition_dropped: u64,
    pub server_requests: u64,
    pub handlers_completed: u64,
    pub latency_count: u64,
    pub latency_sum_ns: u64,
    pub latency_min_ns: u64,
    pub latency_max_ns: u64,
    pub latency_p50_ns: u64,
    pub latency_p99_ns: u64,
    pub latency_p999_ns: u64,
}

impl MetricsSnapshot {
    /// Formats the snapshot as a flat JSON object (cold path; this is
    /// the one place in the crate that allocates).
    pub fn to_json(&self) -> String {
        let fields: [(&str, u64); 24] = [
            ("trans_started", self.trans_started),
            ("trans_completed", self.trans_completed),
            ("trans_timeouts", self.trans_timeouts),
            ("retransmits", self.retransmits),
            ("reply_ports_fresh", self.reply_ports_fresh),
            ("reply_ports_recycled", self.reply_ports_recycled),
            ("reply_ports_leased", self.reply_ports_leased),
            ("lease_offers", self.lease_offers),
            ("demux_overflows", self.demux_overflows),
            ("failovers", self.failovers),
            ("faults_lost", self.faults_lost),
            ("faults_duplicated", self.faults_duplicated),
            ("faults_spiked", self.faults_spiked),
            ("faults_crash_dropped", self.faults_crash_dropped),
            ("faults_partition_dropped", self.faults_partition_dropped),
            ("server_requests", self.server_requests),
            ("handlers_completed", self.handlers_completed),
            ("latency_count", self.latency_count),
            ("latency_sum_ns", self.latency_sum_ns),
            ("latency_min_ns", self.latency_min_ns),
            ("latency_max_ns", self.latency_max_ns),
            ("latency_p50_ns", self.latency_p50_ns),
            ("latency_p99_ns", self.latency_p99_ns),
            ("latency_p999_ns", self.latency_p999_ns),
        ];
        let mut out = String::with_capacity(512);
        out.push_str("{\n");
        for (i, (name, v)) in fields.iter().enumerate() {
            out.push_str("  \"");
            out.push_str(name);
            out.push_str("\": ");
            out.push_str(&v.to_string());
            if i + 1 < fields.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_and_bounds_agree() {
        for v in [
            0u64,
            1,
            15,
            16,
            17,
            31,
            32,
            33,
            100,
            1_000,
            12_345,
            1 << 20,
            (1 << 20) + 7,
            u64::MAX / 3,
            u64::MAX,
        ] {
            let idx = Histogram::bucket_index(v);
            assert!(idx < HISTOGRAM_BUCKETS, "idx {idx} for {v}");
            let (lo, hi) = Histogram::bucket_bounds(idx);
            assert!(lo <= v, "lo {lo} > v {v}");
            // The topmost bucket's upper bound saturates at u64::MAX.
            assert!(v < hi || hi == u64::MAX, "v {v} >= hi {hi}");
        }
    }

    #[test]
    fn bucket_indices_are_monotone() {
        let mut last = 0;
        let mut v = 1u64;
        while v < u64::MAX / 4 {
            let idx = Histogram::bucket_index(v);
            assert!(idx >= last, "index regressed at {v}");
            last = idx;
            v = v + v / 2 + 1;
        }
    }

    #[test]
    fn percentiles_track_a_known_distribution() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(1000));
        let (lo, hi) = h.percentile_bounds(500).unwrap();
        assert!(lo <= 500 && 500 < hi, "p50 bucket [{lo},{hi}) misses 500");
        let (lo, hi) = h.percentile_bounds(999).unwrap();
        assert!(lo <= 999 && 999 < hi, "p999 bucket [{lo},{hi}) misses 999");
        let p50 = h.percentile(500).unwrap();
        assert!((450..=560).contains(&p50), "p50 estimate {p50}");
    }

    #[test]
    fn percentile_matches_sorted_rank_bucket() {
        // The cross-check contract: for any sample set, the sorted
        // rank-th sample falls inside the histogram's percentile
        // bucket, because both use rank = ceil(n*pm/1000).
        let mut samples: Vec<u64> = (0..997).map(|i| (i * 7919 + 13) % 100_000).collect();
        let h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        samples.sort_unstable();
        for pm in [500u64, 900, 990, 999] {
            let rank = ((samples.len() as u64 * pm).div_ceil(1000)).max(1) as usize;
            let exact = samples[rank - 1];
            let (lo, hi) = h.percentile_bounds(pm).unwrap();
            assert!(
                lo <= exact && exact < hi,
                "pm {pm}: exact {exact} outside [{lo},{hi})"
            );
        }
    }

    #[test]
    fn snapshot_json_is_well_formed() {
        let m = Metrics::default();
        m.trans_started.add(3);
        m.trans_latency_ns.record(1500);
        let json = m.snapshot().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"trans_started\": 3"));
        assert!(json.contains("\"latency_count\": 1"));
    }
}
