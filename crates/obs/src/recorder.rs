//! The flight recorder: a fixed-capacity lock-free ring of recent
//! events, cheap enough to leave on for an entire fault-seed run and
//! dumped only when something goes wrong.
//!
//! Writers claim a slot with one `fetch_add` on the head counter and
//! publish fields under a per-slot sequence stamp (a seqlock): readers
//! that observe the same non-zero stamp before and after reading the
//! fields know the slot was not being rewritten mid-read. A torn slot
//! is simply skipped — this is forensics, not accounting; the metrics
//! registry owns exact counts.

use crate::EventKind;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of events the flight recorder retains. Power of two so the
/// slot index is one mask. 4096 events at 48 bytes/slot ≈ 192 KiB per
/// enabled recorder, allocated only on [`Obs::enable`](crate::Obs::enable).
pub const RING_CAPACITY: usize = 4096;

#[derive(Debug)]
struct Slot {
    /// 0 = never written; otherwise `seq + 1` of the event it holds.
    stamp: AtomicU64,
    t_nanos: AtomicU64,
    kind: AtomicU64,
    trace: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
}

impl Slot {
    const fn empty() -> Slot {
        Slot {
            stamp: AtomicU64::new(0),
            t_nanos: AtomicU64::new(0),
            kind: AtomicU64::new(0),
            trace: AtomicU64::new(0),
            a: AtomicU64::new(0),
            b: AtomicU64::new(0),
        }
    }
}

/// One event recovered from the ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightEvent {
    /// Global record sequence number (total order of recording).
    pub seq: u64,
    /// Timeline time of the event, in nanoseconds since the epoch.
    pub t_nanos: u64,
    /// What happened.
    pub kind: EventKind,
    /// The client-local trace id (0 = not transaction-scoped).
    pub trace: u64,
    /// Event-specific operand (port value, machine id, ...).
    pub a: u64,
    /// Second event-specific operand (payload length, attempt, ...).
    pub b: u64,
}

impl FlightEvent {
    /// One JSON object describing the event.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"seq\":{},\"t_ns\":{},\"kind\":\"{}\",\"trace\":{},\"a\":{},\"b\":{}}}",
            self.seq,
            self.t_nanos,
            self.kind.name(),
            self.trace,
            self.a,
            self.b
        )
    }
}

/// The lock-free event ring. Writers never block or allocate; readers
/// reconstruct a best-effort ordered timeline.
#[derive(Debug)]
pub(crate) struct Ring {
    head: AtomicU64,
    slots: [Slot; RING_CAPACITY],
}

impl Ring {
    pub(crate) fn new() -> Ring {
        #[allow(clippy::declare_interior_mutable_const)] // repeat seed
        const EMPTY: Slot = Slot::empty();
        Ring {
            head: AtomicU64::new(0),
            slots: [EMPTY; RING_CAPACITY],
        }
    }

    /// Records one event: one `fetch_add` plus six relaxed stores.
    #[inline]
    pub(crate) fn push(&self, kind: EventKind, t_nanos: u64, trace: u64, a: u64, b: u64) {
        let seq = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(seq as usize) & (RING_CAPACITY - 1)];
        // Invalidate, write fields, then publish the new stamp: a
        // concurrent reader either sees stamp 0 / a mismatched stamp
        // (and skips the slot) or a stable stamp bracketing its reads.
        // Every store is Release so the chain retains program order
        // (a later relaxed store may legally hoist above a release
        // store, which would let a reader accept a torn slot).
        slot.stamp.store(0, Ordering::Release);
        slot.t_nanos.store(t_nanos, Ordering::Release);
        slot.kind.store(kind as u64, Ordering::Release);
        slot.trace.store(trace, Ordering::Release);
        slot.a.store(a, Ordering::Release);
        slot.b.store(b, Ordering::Release);
        slot.stamp.store(seq + 1, Ordering::Release);
    }

    /// Snapshots the ring's surviving events in recording order.
    pub(crate) fn events(&self) -> Vec<FlightEvent> {
        let mut out = Vec::with_capacity(RING_CAPACITY);
        for slot in &self.slots {
            let s1 = slot.stamp.load(Ordering::Acquire);
            if s1 == 0 {
                continue;
            }
            let ev = FlightEvent {
                seq: s1 - 1,
                t_nanos: slot.t_nanos.load(Ordering::Relaxed),
                kind: EventKind::from_u64(slot.kind.load(Ordering::Relaxed)),
                trace: slot.trace.load(Ordering::Relaxed),
                a: slot.a.load(Ordering::Relaxed),
                b: slot.b.load(Ordering::Relaxed),
            };
            // Field loads must complete before the validation load.
            std::sync::atomic::fence(Ordering::Acquire);
            let s2 = slot.stamp.load(Ordering::Acquire);
            if s1 == s2 {
                out.push(ev);
            }
        }
        out.sort_unstable_by_key(|e| e.seq);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_come_back_in_order() {
        let ring = Ring::new();
        for i in 0..100u64 {
            ring.push(EventKind::FrameOnWire, i * 10, i, i, i);
        }
        let evs = ring.events();
        assert_eq!(evs.len(), 100);
        for (i, e) in evs.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
            assert_eq!(e.trace, i as u64);
            assert_eq!(e.kind, EventKind::FrameOnWire);
        }
    }

    #[test]
    fn ring_keeps_only_the_most_recent_capacity_events() {
        let ring = Ring::new();
        let total = RING_CAPACITY as u64 + 500;
        for i in 0..total {
            ring.push(EventKind::Delivered, i, 0, 0, 0);
        }
        let evs = ring.events();
        assert_eq!(evs.len(), RING_CAPACITY);
        assert_eq!(evs.first().unwrap().seq, 500);
        assert_eq!(evs.last().unwrap().seq, total - 1);
    }

    #[test]
    fn concurrent_writers_never_corrupt_the_ring() {
        use std::sync::Arc;
        let ring = Arc::new(Ring::new());
        let handles: Vec<_> = (0..4)
            .map(|w| {
                let ring = Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        ring.push(EventKind::ReplyDemux, i, w, i, i * 2);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let evs = ring.events();
        assert!(!evs.is_empty());
        for e in evs {
            assert_eq!(e.kind, EventKind::ReplyDemux);
            assert_eq!(e.b, e.a * 2, "torn slot survived the seqlock");
        }
    }
}
