//! Timing fidelity of the RPC stack under the virtual clock: modeled
//! latency shows up on the timeline, overlapping flows overlap, and
//! host scheduling does not serialise what the model runs in parallel.
//!
//! Timeline measurements take the minimum over a few runs where noted:
//! host-scheduling lag can only *inflate* the virtual timeline (a late
//! thread stamps later sends), never deflate it, so the minimum is the
//! faithful figure on an oversubscribed machine.

use amoeba_net::{Network, Port};
use amoeba_rpc::{Client, RpcConfig, ServerPort};
use bytes::Bytes;
use std::sync::Arc;
use std::time::Duration;

const HOP: Duration = Duration::from_millis(200);

fn patient() -> RpcConfig {
    RpcConfig {
        timeout: Duration::from_secs(60),
        attempts: 2,
    }
}

/// Four concurrent transactions on one shared client must cost one
/// RTT of timeline, not four: the demux overlaps them.
#[test]
fn concurrent_trans_on_one_client_cost_one_rtt() {
    let run = || {
        let net = Network::new_virtual();
        let server = Arc::new(ServerPort::bind(
            net.attach_open(),
            Port::new(0xEE).unwrap(),
        ));
        let p = server.put_port();
        let workers: Vec<_> = (0..4)
            .map(|_| {
                let server = Arc::clone(&server);
                std::thread::spawn(move || {
                    while let Ok(req) = server.next_request_timeout(Duration::from_secs(2)) {
                        server.reply(&req, req.payload.clone());
                    }
                })
            })
            .collect();
        let client = Arc::new(Client::with_config(net.attach_open(), patient()));
        net.set_latency(HOP);
        let v0 = net.now();
        let calls: Vec<_> = (0..4u32)
            .map(|i| {
                let client = Arc::clone(&client);
                std::thread::spawn(move || {
                    let body = Bytes::from(i.to_be_bytes().to_vec());
                    assert_eq!(client.trans(p, body.clone()).unwrap(), body);
                })
            })
            .collect();
        for c in calls {
            c.join().unwrap();
        }
        let elapsed = net.now().saturating_duration_since(v0);
        net.set_latency(Duration::ZERO);
        for w in workers {
            w.join().unwrap();
        }
        elapsed
    };
    let best = (0..5).map(|_| run()).min().unwrap();
    assert!(
        best >= 2 * HOP,
        "one RTT of modeled latency must appear on the timeline: {best:?}"
    );
    // Full serialisation would cost 4 RTTs (1.6 s); allow inflation
    // headroom for an oversubscribed host while still ruling it out.
    assert!(
        best < 5 * HOP,
        "4 concurrent transactions must overlap, not serialise: {best:?}"
    );
}

/// The nested shape (frontend workers calling a backend through one
/// shared embedded client — the metered-create pattern): four outer
/// calls must cost ~2 RTTs of timeline, not 5.
#[test]
fn nested_service_calls_overlap() {
    let run = || {
        let net = Network::new_virtual();
        let backend = Arc::new(ServerPort::bind(
            net.attach_open(),
            Port::new(0xB1).unwrap(),
        ));
        let bp = backend.put_port();
        let backend_workers: Vec<_> = (0..4)
            .map(|_| {
                let backend = Arc::clone(&backend);
                std::thread::spawn(move || {
                    while let Ok(req) = backend.next_request_timeout(Duration::from_secs(2)) {
                        backend.reply(&req, req.payload.clone());
                    }
                })
            })
            .collect();
        let frontend = Arc::new(ServerPort::bind(
            net.attach_open(),
            Port::new(0xF1).unwrap(),
        ));
        let fp = frontend.put_port();
        let nested = Arc::new(Client::with_config(net.attach_open(), patient()));
        let frontend_workers: Vec<_> = (0..4)
            .map(|_| {
                let frontend = Arc::clone(&frontend);
                let nested = Arc::clone(&nested);
                std::thread::spawn(move || {
                    while let Ok(req) = frontend.next_request_timeout(Duration::from_secs(2)) {
                        let inner = nested.trans(bp, req.payload.clone()).unwrap();
                        frontend.reply(&req, inner);
                    }
                })
            })
            .collect();

        net.set_latency(HOP);
        let v0 = net.now();
        let calls: Vec<_> = (0..4u32)
            .map(|i| {
                let net = net.clone();
                std::thread::spawn(move || {
                    let client = Client::with_config(net.attach_open(), patient());
                    let body = Bytes::from(i.to_be_bytes().to_vec());
                    assert_eq!(client.trans(fp, body.clone()).unwrap(), body);
                })
            })
            .collect();
        for c in calls {
            c.join().unwrap();
        }
        let elapsed = net.now().saturating_duration_since(v0);
        net.set_latency(Duration::ZERO);
        for w in frontend_workers.into_iter().chain(backend_workers) {
            w.join().unwrap();
        }
        elapsed
    };
    let best = (0..5).map(|_| run()).min().unwrap();
    assert!(best >= 4 * HOP, "2 nested RTTs on the timeline: {best:?}");
    // Serialised inner transactions would cost ≥ 2 s (outer RTT plus
    // four back-to-back inner RTTs); stay clearly below that.
    assert!(
        best < 9 * HOP,
        "4 nested calls must overlap their inner transactions: {best:?}"
    );
}
