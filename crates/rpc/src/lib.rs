//! Amoeba remote operations (§2.1–2.2): blocking request/reply over
//! ports, with no connections or other long-lived communication state.
//!
//! * A **server** does `GET(G)` on its secret get-port and loops over
//!   [`ServerPort::next_request`].
//! * A **client** calls [`Client::trans`] with the server's published
//!   put-port `P = F(G)`: it claims a fresh reply get-port `G′`, sends
//!   the request (its F-box transmits `F(G′)` in the reply field), and
//!   blocks until the reply lands on `F(G′)` — "a simple remote
//!   procedure call mechanism".
//! * **Signatures**: a client may attach its secret signature `S`; the
//!   F-box transmits `F(S)` and the server compares that against the
//!   sender's published `F(S)` — digital signatures for free (§2.2).
//! * **LOCATE** (§2.2): when asked, a client can resolve which machine
//!   serves a port by broadcasting a LOCATE message; servers answer for
//!   ports they have claimed. One port may be served by several
//!   machines (service replicas): the [`Locator`] caches the full
//!   replica set, picks one per call under a [`PlacementPolicy`], and
//!   exposes [`Locator::invalidate_machine`] so failover code can drop
//!   a dead replica without losing the survivors. The hit/miss
//!   counters feed the match-making benchmark.
//! * **Batching** ([`Client::trans_batch`]) ships many request bodies
//!   in one wire frame, and a **pipelined** client
//!   ([`Client::with_pipeline`]) opportunistically coalesces concurrent
//!   [`Client::trans`] calls into batch frames; servers explode batches
//!   across their worker pool and fan replies back into one frame. The
//!   wire layout is specified in `docs/PROTOCOL.md`.
//!
//! # Example
//!
//! ```
//! use amoeba_crypto::oneway::ShaOneWay;
//! use amoeba_fbox::FBox;
//! use amoeba_net::{Network, Port};
//! use amoeba_rpc::{Client, ServerPort};
//! use bytes::Bytes;
//! use std::sync::Arc;
//!
//! let net = Network::new();
//! let server_ep = net.attach(Arc::new(FBox::hardware(ShaOneWay)));
//! let g = Port::new(0xFEED).unwrap();
//! let server = ServerPort::bind(server_ep, g);
//! let p = server.put_port();
//!
//! let handle = std::thread::spawn(move || {
//!     let req = server.next_request().unwrap();
//!     let mut data = req.payload.to_vec();
//!     data.reverse();
//!     server.reply(&req, Bytes::from(data));
//! });
//!
//! let client_ep = net.attach(Arc::new(FBox::hardware(ShaOneWay)));
//! let client = Client::new(client_ep);
//! let reply = client.trans(p, Bytes::from_static(b"abc")).unwrap();
//! assert_eq!(&reply[..], b"cba");
//! handle.join().unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod client;
mod demux;
mod frame;
mod lease;
mod locate;
pub mod matchmaker;
mod server;

pub use client::{
    BatchResult, Client, CodecConfig, Completion, DemuxPolicy, PipelineConfig, RpcConfig, RpcError,
};
pub use lease::PortLeaseBroker;

pub use frame::{
    BatchReplyEntry, BatchStatus, Frame, FrameKind, ReplicaInfo, TransferOp, BATCH_VERSION,
    CLUSTER_VERSION, MAX_BATCH_ENTRIES, MAX_LOCATE_REPLICAS, TRANSFER_VERSION,
};
pub use locate::{Locator, PlacementPolicy, Replica, ReplicaCache};
pub use matchmaker::{Matchmaker, RendezvousNode};
pub use server::{IncomingRequest, ServerPort, PUMP_TAKEOVER_TICK};
