//! The cross-client **port-lease broker**.
//!
//! PR 5 recycles reply ports *within* one client. A swarm of
//! short-lived clients (the paper's many-small-transactions shape)
//! still pays the cold-start tax per client: mint a fresh get-port,
//! evaluate F to claim it, and broadcast-LOCATE every service it
//! talks to. The broker amortises that across client lifetimes:
//!
//! * A dying client **offers** its clean parked reply ports (the PR 5
//!   recycling rules: machine-targeted, single-transmit, straggler
//!   free — see `docs/ARCHITECTURE.md`) and a snapshot of its route
//!   cache.
//! * A newborn client **leases** one pre-warmed port plus the route
//!   snapshot, claims the port on its own interface (F is
//!   deterministic, so the same get-port yields the same wire port),
//!   and seeds its route cache — its first transaction already runs
//!   the warm path: no fresh mint, no LOCATE broadcast.
//!
//! # Soundness
//!
//! Leasing a port value is safe for the same reason in-client
//! recycling is: only *clean* bindings are offered, so no straggler
//! addressed to the port can exist, and interface claims die with the
//! old client's endpoint, so the port is deliverable only to its new
//! owner. Two extra guards cover the cross-client window:
//!
//! * **Expiry**: offers carry a TTL. A port parked long ago is more
//!   likely to have leaked (logs, debuggers) and its routes to be
//!   stale, so expired offers are pruned, never granted.
//! * **Generation continuity**: a leased port keeps the generation
//!   tag engraved at its original mint (see `demux`), so once the new
//!   owner burns it, packets bearing the old tag are rejected by the
//!   same stale-generation rule as in-client reuse.

use amoeba_net::{HotMutex, LockMeter, Port};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Most ports the broker will hold; excess offers are dropped (the
/// ports were released by their owner anyway).
const MAX_LEASED_PORTS: usize = 256;

/// Most route hints the broker will hold.
const MAX_BROKER_ROUTES: usize = 1024;

/// Default lease lifetime.
const DEFAULT_TTL: Duration = Duration::from_secs(30);

#[derive(Debug)]
struct Offer {
    get: Port,
    born: Instant,
}

#[derive(Debug, Default)]
struct BrokerInner {
    /// LIFO: the most recently parked port is the warmest.
    ports: Vec<Offer>,
    /// put-port value → cached machine id + 1 (the route-cache value
    /// encoding), with the time it was last refreshed.
    routes: HashMap<u64, (u64, Instant)>,
}

/// A pre-warmed identity granted to a newborn client: a recycled
/// reply get-port and the route hints that came with it.
#[derive(Debug)]
pub(crate) struct LeaseGrant {
    pub get: Port,
    /// `(put-port value, machine id + 1)` pairs to seed the route
    /// cache with.
    pub routes: Vec<(u64, u64)>,
}

/// Hands warm ports and route hints from dying clients to newborn
/// ones. Share one broker (in an `Arc`) across the clients of a
/// fleet; see [`Client::with_broker`](crate::Client::with_broker).
///
/// The broker's lock is a counted [`HotMutex`], but it is only taken
/// at client birth and death — never per transaction — so it does not
/// appear in steady-state lock counts.
#[derive(Debug)]
pub struct PortLeaseBroker {
    inner: HotMutex<BrokerInner>,
    ttl: Duration,
}

impl Default for PortLeaseBroker {
    fn default() -> PortLeaseBroker {
        PortLeaseBroker::new()
    }
}

impl PortLeaseBroker {
    /// A broker with the default lease TTL.
    pub fn new() -> PortLeaseBroker {
        PortLeaseBroker::with_ttl(DEFAULT_TTL)
    }

    /// A broker whose offers expire `ttl` after being made. A zero
    /// TTL expires everything immediately (useful in tests).
    pub fn with_ttl(ttl: Duration) -> PortLeaseBroker {
        PortLeaseBroker {
            inner: HotMutex::with_meter(BrokerInner::default(), LockMeter::new()),
            ttl,
        }
    }

    /// Offers a clean parked reply port. Called by `Client::drop`;
    /// offers beyond capacity are silently dropped.
    pub(crate) fn offer_port(&self, get: Port) {
        let now = Instant::now();
        let mut inner = self.inner.lock();
        Self::prune(&mut inner, now, self.ttl);
        if inner.ports.len() < MAX_LEASED_PORTS {
            inner.ports.push(Offer { get, born: now });
        }
    }

    /// Merges a dying client's route hints into the broker's pool.
    pub(crate) fn offer_routes(&self, routes: &[(u64, u64)]) {
        let now = Instant::now();
        let mut inner = self.inner.lock();
        Self::prune(&mut inner, now, self.ttl);
        for &(key, val) in routes {
            if inner.routes.len() >= MAX_BROKER_ROUTES && !inner.routes.contains_key(&key) {
                break;
            }
            inner.routes.insert(key, (val, now));
        }
    }

    /// Grants the warmest unexpired lease, if any.
    pub(crate) fn lease(&self) -> Option<LeaseGrant> {
        let now = Instant::now();
        let mut inner = self.inner.lock();
        Self::prune(&mut inner, now, self.ttl);
        let offer = inner.ports.pop()?;
        let routes = inner.routes.iter().map(|(&k, &(v, _))| (k, v)).collect();
        Some(LeaseGrant {
            get: offer.get,
            routes,
        })
    }

    /// Unexpired ports currently available for lease.
    pub fn available_ports(&self) -> usize {
        let now = Instant::now();
        let mut inner = self.inner.lock();
        Self::prune(&mut inner, now, self.ttl);
        inner.ports.len()
    }

    /// Unexpired route hints currently pooled.
    pub fn pooled_routes(&self) -> usize {
        let now = Instant::now();
        let mut inner = self.inner.lock();
        Self::prune(&mut inner, now, self.ttl);
        inner.routes.len()
    }

    fn prune(inner: &mut BrokerInner, now: Instant, ttl: Duration) {
        inner
            .ports
            .retain(|o| now.saturating_duration_since(o.born) < ttl);
        inner
            .routes
            .retain(|_, (_, born)| now.saturating_duration_since(*born) < ttl);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn port(v: u64) -> Port {
        Port::new(v).unwrap()
    }

    #[test]
    fn lifo_grant_with_routes() {
        let broker = PortLeaseBroker::new();
        broker.offer_port(port(0x10));
        broker.offer_port(port(0x20));
        broker.offer_routes(&[(0xAAA, 4), (0xBBB, 5)]);
        assert_eq!(broker.available_ports(), 2);
        assert_eq!(broker.pooled_routes(), 2);

        let grant = broker.lease().expect("an offer is pooled");
        assert_eq!(grant.get, port(0x20), "warmest (most recent) first");
        let mut routes = grant.routes.clone();
        routes.sort_unstable();
        assert_eq!(routes, vec![(0xAAA, 4), (0xBBB, 5)]);
        assert_eq!(broker.available_ports(), 1);
    }

    #[test]
    fn expired_offers_are_never_granted() {
        let broker = PortLeaseBroker::with_ttl(Duration::ZERO);
        broker.offer_port(port(0x30));
        broker.offer_routes(&[(0xCCC, 2)]);
        assert!(broker.lease().is_none(), "zero TTL expires immediately");
        assert_eq!(broker.available_ports(), 0);
        assert_eq!(broker.pooled_routes(), 0);
    }

    #[test]
    fn port_pool_is_bounded() {
        let broker = PortLeaseBroker::new();
        for v in 1..=(MAX_LEASED_PORTS as u64 + 50) {
            broker.offer_port(port(v));
        }
        assert_eq!(broker.available_ports(), MAX_LEASED_PORTS);
    }

    #[test]
    fn route_pool_is_bounded_but_refreshable() {
        let broker = PortLeaseBroker::new();
        let routes: Vec<(u64, u64)> = (1..=(MAX_BROKER_ROUTES as u64 + 10))
            .map(|k| (k, 1))
            .collect();
        broker.offer_routes(&routes);
        assert_eq!(broker.pooled_routes(), MAX_BROKER_ROUTES);
        // A known key still updates at capacity.
        broker.offer_routes(&[(1, 9)]);
        let grant_routes = {
            broker.offer_port(port(0xF00));
            broker.lease().unwrap().routes
        };
        assert!(grant_routes.contains(&(1, 9)));
    }
}
