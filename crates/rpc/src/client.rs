//! The client side: blocking transactions.

use crate::frame::Frame;
use amoeba_net::{Endpoint, Header, Packet, Port, RecvError};
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::time::Duration;

/// Tunables for [`Client::trans`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RpcConfig {
    /// How long to wait for a reply before retransmitting.
    pub timeout: Duration,
    /// Total attempts (first try + retries). At-least-once semantics:
    /// servers whose operations are not idempotent must deduplicate.
    pub attempts: u32,
}

impl Default for RpcConfig {
    fn default() -> Self {
        RpcConfig {
            timeout: Duration::from_millis(500),
            attempts: 3,
        }
    }
}

/// Errors from a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RpcError {
    /// No reply after all attempts.
    Timeout,
    /// The local endpoint is detached from the network.
    Disconnected,
}

impl std::fmt::Display for RpcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RpcError::Timeout => write!(f, "no reply from server after all attempts"),
            RpcError::Disconnected => write!(f, "endpoint detached from network"),
        }
    }
}

impl std::error::Error for RpcError {}

/// A client able to perform blocking transactions on a network endpoint.
///
/// "After making a request, a client blocks until the reply comes in"
/// (§2.1). The endpoint must not concurrently be used as a server — an
/// Amoeba process is one addressable party.
///
/// `trans` is safe to call from many threads at once: every in-flight
/// transaction registers its private reply port in a demux table, and
/// whichever waiter pulls a packet off the shared endpoint routes it to
/// the transaction it belongs to. This is what lets a service embed a
/// client (file server → bank server, file server → block server) and
/// still run on a dispatch worker pool.
#[derive(Debug)]
pub struct Client {
    endpoint: Endpoint,
    config: RpcConfig,
    signature: Option<Port>,
    rng: Mutex<StdRng>,
    /// In-flight transactions: wire reply port → that waiter's mailbox.
    pending: Mutex<HashMap<Port, Sender<Packet>>>,
}

/// How long a waiter blocks on the shared endpoint before re-checking
/// its private mailbox when peers are in flight (a peer may have
/// routed its reply there while it was blocked).
const DEMUX_TICK: Duration = Duration::from_millis(1);

/// The much coarser tick used when this is the only in-flight
/// transaction: nobody can steal its reply, so frequent wake-ups would
/// be pure overhead — the residual tick only covers a peer *starting*
/// mid-block.
const IDLE_TICK: Duration = Duration::from_millis(25);

impl Client {
    /// Wraps an endpoint with default configuration.
    pub fn new(endpoint: Endpoint) -> Client {
        Self::with_config(endpoint, RpcConfig::default())
    }

    /// Wraps an endpoint with explicit timeouts/retries.
    pub fn with_config(endpoint: Endpoint, config: RpcConfig) -> Client {
        Client {
            endpoint,
            config,
            signature: None,
            rng: Mutex::new(StdRng::from_entropy()),
            pending: Mutex::new(HashMap::new()),
        }
    }

    /// Attaches a secret signature `S` to every outgoing request; the
    /// F-box will transmit `F(S)`, which servers can compare against
    /// this principal's published `F(S)`.
    pub fn set_signature(&mut self, s: Port) {
        self.signature = Some(s);
    }

    /// The underlying endpoint.
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// Performs a blocking transaction: send `request` to put-port
    /// `dest`, await the reply.
    ///
    /// # Errors
    /// [`RpcError::Timeout`] if no reply arrives within
    /// `config.attempts × config.timeout`; [`RpcError::Disconnected`] if
    /// the endpoint is detached.
    pub fn trans(&self, dest: Port, request: Bytes) -> Result<Bytes, RpcError> {
        // Fresh reply get-port per transaction; stable across retries so
        // a late first reply satisfies a retransmitted request.
        let reply_get = Port::random(&mut *self.rng.lock());
        let reply_wire = self.endpoint.claim(reply_get);
        let (tx, rx) = unbounded();
        self.pending.lock().insert(reply_wire, tx);
        let result = self.trans_on(dest, request, reply_get, reply_wire, &rx);
        self.pending.lock().remove(&reply_wire);
        self.endpoint.release(reply_get);
        result
    }

    /// Routes a packet that is not ours to whichever in-flight
    /// transaction owns its destination port (concurrent `trans` calls
    /// share one endpoint queue). Unclaimed packets are stale noise and
    /// are dropped.
    fn route_foreign(&self, pkt: Packet) {
        if let Some(waiter) = self.pending.lock().get(&pkt.header.dest) {
            let _ = waiter.send(pkt);
        }
    }

    fn trans_on(
        &self,
        dest: Port,
        request: Bytes,
        reply_get: Port,
        reply_wire: Port,
        mailbox: &Receiver<Packet>,
    ) -> Result<Bytes, RpcError> {
        let payload = Frame::Request(request).encode();
        let mut header = Header::to(dest).with_reply(reply_get);
        if let Some(s) = self.signature {
            header = header.with_signature(s);
        }
        for _ in 0..self.config.attempts.max(1) {
            self.endpoint.send(header, payload.clone());
            let deadline = std::time::Instant::now() + self.config.timeout;
            loop {
                let remaining = deadline.saturating_duration_since(std::time::Instant::now());
                if remaining.is_zero() {
                    break; // retransmit
                }
                // A peer waiter may have claimed our reply from the
                // shared endpoint and routed it to our mailbox.
                if let Ok(pkt) = mailbox.try_recv() {
                    if let Some(Frame::Reply(body)) = Frame::decode(&pkt.payload) {
                        return Ok(body);
                    }
                    continue;
                }
                let tick = if self.pending.lock().len() > 1 {
                    DEMUX_TICK
                } else {
                    IDLE_TICK
                };
                match self.endpoint.recv_timeout(remaining.min(tick)) {
                    Ok(pkt) => {
                        if pkt.header.dest != reply_wire {
                            self.route_foreign(pkt);
                            continue;
                        }
                        match Frame::decode(&pkt.payload) {
                            Some(Frame::Reply(body)) => return Ok(body),
                            _ => continue, // noise
                        }
                    }
                    Err(RecvError::Timeout) => continue, // tick: re-check mailbox
                    Err(RecvError::Disconnected) => return Err(RpcError::Disconnected),
                }
            }
        }
        Err(RpcError::Timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amoeba_net::Network;
    use std::sync::Arc;

    #[test]
    fn trans_times_out_when_nobody_listens() {
        let net = Network::new();
        let client = Client::with_config(
            net.attach_open(),
            RpcConfig {
                timeout: Duration::from_millis(5),
                attempts: 2,
            },
        );
        let before = net.stats().snapshot();
        let err = client
            .trans(Port::new(0x5050).unwrap(), Bytes::from_static(b"x"))
            .unwrap_err();
        assert_eq!(err, RpcError::Timeout);
        // Both attempts were transmitted.
        assert_eq!(net.stats().snapshot().packets_sent - before.packets_sent, 2);
    }

    #[test]
    fn concurrent_transactions_on_one_client_all_complete() {
        // The demux table must route every reply to its own waiter even
        // though all waiters share one endpoint queue.
        let net = Network::new();
        let server = crate::ServerPort::bind(net.attach_open(), Port::new(0xCC).unwrap());
        let p = server.put_port();
        let server_thread = std::thread::spawn(move || {
            // Echo each request body back, out of order in bursts.
            let mut backlog = Vec::new();
            loop {
                match server.next_request_timeout(Duration::from_millis(300)) {
                    Ok(req) => {
                        backlog.push(req);
                        if backlog.len() >= 4 {
                            for req in backlog.drain(..).rev() {
                                server.reply(&req, req.payload.clone());
                            }
                        }
                    }
                    Err(_) => {
                        for req in backlog.drain(..) {
                            server.reply(&req, req.payload.clone());
                        }
                        break;
                    }
                }
            }
        });
        let client = Arc::new(Client::with_config(
            net.attach_open(),
            RpcConfig {
                timeout: Duration::from_secs(2),
                attempts: 2,
            },
        ));
        let workers: Vec<_> = (0..8u32)
            .map(|i| {
                let client = Arc::clone(&client);
                std::thread::spawn(move || {
                    let body = Bytes::from(i.to_be_bytes().to_vec());
                    let reply = client.trans(p, body.clone()).unwrap();
                    assert_eq!(reply, body, "worker {i} got someone else's reply");
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        server_thread.join().unwrap();
    }

    #[test]
    fn config_default_is_sane() {
        let c = RpcConfig::default();
        assert!(c.attempts >= 1);
        assert!(c.timeout > Duration::ZERO);
    }
}
