//! The client side: blocking transactions, explicit batches, and the
//! opportunistic pipeliner.
//!
//! # The demultiplexer and its back-off policy
//!
//! One [`Client`] may serve many threads at once (a dispatch worker
//! pool embedding a client does exactly that). All in-flight
//! transactions share the endpoint's single packet queue, so whichever
//! waiter happens to pull a packet routes it to the transaction that
//! owns its destination port via the lock-free demux slot table (see
//! the `demux` module: resolution is one atomic load plus one
//! generation compare — no lock, no hash), and every waiter
//! alternates between two waits:
//!
//! 1. a non-blocking check of its private mailbox (a peer may have
//!    routed its reply there), then
//! 2. a bounded block on the shared endpoint queue.
//!
//! The bound on (2) is the **demux tick**. It back-offs in two steps,
//! both configurable via [`DemuxPolicy`]:
//!
//! * **contended** ([`DemuxPolicy::contended_tick`], default
//!   [`DemuxPolicy::DEFAULT_CONTENDED_TICK`]): while more than one
//!   transaction is in flight, a waiter's reply can be claimed by a
//!   peer at any moment, so it re-checks its mailbox frequently.
//! * **idle** ([`DemuxPolicy::idle_tick`], default
//!   [`DemuxPolicy::DEFAULT_IDLE_TICK`]): when a waiter is the *only*
//!   in-flight transaction nobody can steal its reply, so frequent
//!   wake-ups would be pure overhead; the residual coarse tick only
//!   covers a peer *starting* mid-block.
//!
//! # Batching and pipelining
//!
//! [`Client::trans_batch`] ships many request bodies in one
//! `BATCH_REQUEST` frame and demultiplexes the matching `BATCH_REPLY`
//! by `(batch id, entry index)` — see `docs/PROTOCOL.md`. On top of it,
//! a client built with [`Client::with_pipeline`] coalesces *concurrent*
//! [`Client::trans`] calls opportunistically: the first caller into an
//! empty per-destination queue becomes the flusher, waits one
//! [`PipelineConfig::flush_window`], then ships everything queued for
//! that destination as a single wire frame and hands each caller its
//! own reply. Callers that arrive alone still progress (the window
//! bounds their extra latency); callers that arrive together share one
//! frame — exactly the pool-worker fan-in pattern the dispatch engine
//! produces.

use crate::demux::{decode_reply_port, encode_reply_port, DemuxTable, RouteCache, SlotToken};
use crate::frame::{self, BatchStatus, Frame, TransferOp, MAX_BATCH_ENTRIES};
use crate::lease::PortLeaseBroker;
use amoeba_net::{
    BufPool, Endpoint, EventKind, Header, MachineId, Packet, Port, RecvError, Timestamp,
};
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use rand::{RngCore, SeedableRng};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Tunables for [`Client::trans`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RpcConfig {
    /// How long to wait for a reply before retransmitting.
    pub timeout: Duration,
    /// Total attempts (first try + retries). At-least-once semantics:
    /// servers whose operations are not idempotent must deduplicate.
    pub attempts: u32,
}

impl Default for RpcConfig {
    fn default() -> Self {
        RpcConfig {
            timeout: Duration::from_millis(500),
            attempts: 3,
        }
    }
}

/// The two-step back-off a waiter applies while blocking on the shared
/// endpoint queue (see the module docs for the policy rationale).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DemuxPolicy {
    /// Re-check period while *other* transactions are in flight and a
    /// peer may have routed this waiter's reply to its mailbox.
    pub contended_tick: Duration,
    /// Re-check period while this is the only in-flight transaction.
    pub idle_tick: Duration,
}

impl DemuxPolicy {
    /// Default contended tick: 1 ms. Short enough that a reply parked
    /// in a waiter's mailbox by a peer is picked up promptly; long
    /// enough that a pool of blocked waiters is not a spin loop.
    pub const DEFAULT_CONTENDED_TICK: Duration = Duration::from_millis(1);

    /// Default idle tick: 25 ms. A lone waiter's reply can only arrive
    /// via the endpoint queue it is already blocked on, so this only
    /// bounds how stale its "am I still alone?" view may get.
    pub const DEFAULT_IDLE_TICK: Duration = Duration::from_millis(25);
}

impl Default for DemuxPolicy {
    fn default() -> Self {
        DemuxPolicy {
            contended_tick: Self::DEFAULT_CONTENDED_TICK,
            idle_tick: Self::DEFAULT_IDLE_TICK,
        }
    }
}

/// Tunables for the opportunistic pipeliner
/// ([`Client::with_pipeline`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineConfig {
    /// How long the flusher waits for concurrent callers to pile onto
    /// the queue before shipping the accumulated frame. Also the upper
    /// bound on the extra latency a lone call pays for pipelining.
    pub flush_window: Duration,
    /// Maximum entries per shipped frame; a longer queue is split into
    /// several frames. Must be `1..=`[`MAX_BATCH_ENTRIES`].
    pub max_entries: usize,
}

impl PipelineConfig {
    /// Default flush window: 500 µs — wide enough to catch pool workers
    /// that blocked on the same hop, narrow next to any real wire RTT.
    pub const DEFAULT_FLUSH_WINDOW: Duration = Duration::from_micros(500);

    /// Default per-frame entry cap.
    pub const DEFAULT_MAX_ENTRIES: usize = 16;
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            flush_window: Self::DEFAULT_FLUSH_WINDOW,
            max_entries: Self::DEFAULT_MAX_ENTRIES,
        }
    }
}

/// How the codec allocates and addresses on the hot path — shared by
/// [`Client`] and [`ServerPort`](crate::ServerPort).
///
/// The default is the zero-copy fast path: wire frames are encoded into
/// recycled [`BufPool`] buffers (steady-state sends allocate nothing)
/// and a client reuses the reply ports of cleanly completed
/// transactions instead of minting a fresh random port — which also
/// lets an F-box's `F` memo table hit instead of hashing a
/// never-seen-before port on every send. [`CodecConfig::legacy`] is the
/// pre-pool behaviour, kept callable so the `hot_path` bench and the
/// acceptance gates in `tests/scale.rs` can measure exactly what the
/// fast path buys. Wire bytes are identical either way.
#[derive(Debug, Clone)]
pub struct CodecConfig {
    /// The frame-buffer pool ([`BufPool::disabled`] for the
    /// allocate-every-frame baseline). Share one handle across
    /// cooperating parties to aggregate their allocation counters.
    pub pool: BufPool,
    /// Whether a client may reuse the private reply port of a
    /// transaction that completed on its first transmission — and, as
    /// the precondition that makes reuse sound, whether it may keep the
    /// §2.1 kernel cache of `(put-port, machine)` answers that turns
    /// untargeted calls into machine-targeted ones.
    ///
    /// Only a **machine-targeted** transaction can prove its reply port
    /// quiescent: an untargeted request is *offered* to every machine
    /// claiming the destination port, so N replicas produce N replies
    /// and N−1 stragglers may still be in flight when the transaction
    /// completes. Ports of untargeted, timed-out, retransmitted or
    /// abandoned transactions are therefore never reused (a straggler
    /// reply could alias a later transaction), which keeps recycling
    /// invisible to correctness — it only removes the per-transaction
    /// random-port mint and its one-way-function evaluations.
    pub recycle_reply_ports: bool,
}

impl Default for CodecConfig {
    fn default() -> Self {
        CodecConfig {
            pool: BufPool::new(),
            recycle_reply_ports: true,
        }
    }
}

impl CodecConfig {
    /// The pre-pool codec: a fresh allocation per frame, a fresh random
    /// reply port per transaction. The measurement baseline.
    pub fn legacy() -> Self {
        CodecConfig {
            pool: BufPool::disabled(),
            recycle_reply_ports: false,
        }
    }
}

/// Upper bound on recycled reply-port bindings a client parks between
/// transactions; beyond it ports are released normally. Bounds both the
/// claim table and the concurrency level that benefits from recycling.
const MAX_RECYCLED_REPLY_PORTS: u32 = 64;

/// Route hints a dying client exports to its lease broker.
const MAX_EXPORTED_ROUTES: usize = 256;

/// Errors from a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RpcError {
    /// No reply after all attempts.
    Timeout,
    /// The local endpoint is detached from the network.
    Disconnected,
    /// The server's RPC layer rejected this batch entry before
    /// dispatch (transport-level rejection; see `docs/PROTOCOL.md`,
    /// "Error and partial-failure semantics").
    Rejected,
}

impl std::fmt::Display for RpcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RpcError::Timeout => write!(f, "no reply from server after all attempts"),
            RpcError::Disconnected => write!(f, "endpoint detached from network"),
            RpcError::Rejected => write!(f, "server rejected the batch entry as malformed"),
        }
    }
}

impl std::error::Error for RpcError {}

/// Per-entry result of a batch transaction.
pub type BatchResult = Result<Bytes, RpcError>;

type WaiterTx = Sender<BatchResult>;

/// A queued-but-unflushed pipeline call for one destination.
#[derive(Debug, Default)]
struct DestQueue {
    entries: Vec<(Bytes, WaiterTx)>,
    /// Whether some caller is already sitting out the flush window for
    /// this destination (there is at most one flusher per destination
    /// at a time).
    flusher_active: bool,
}

#[derive(Debug)]
struct PipelineState {
    config: PipelineConfig,
    queues: Mutex<HashMap<Port, DestQueue>>,
}

/// A client able to perform blocking transactions on a network endpoint.
///
/// "After making a request, a client blocks until the reply comes in"
/// (§2.1). The endpoint must not concurrently be used as a server — an
/// Amoeba process is one addressable party.
///
/// `trans` is safe to call from many threads at once: every in-flight
/// transaction registers its private reply port in a demux table, and
/// whichever waiter pulls a packet off the shared endpoint routes it to
/// the transaction it belongs to. This is what lets a service embed a
/// client (file server → bank server, file server → block server) and
/// still run on a dispatch worker pool. The waiting cadence is governed
/// by the [`DemuxPolicy`] (see the module docs).
#[derive(Debug)]
pub struct Client {
    endpoint: Endpoint,
    config: RpcConfig,
    demux: DemuxPolicy,
    signature: Option<Port>,
    /// splitmix64 state: a lock-free source of port salts, replacing
    /// the mutex-guarded `StdRng` of earlier revisions. Reply-port
    /// secrecy rests on the 48-bit sparseness argument of §2.2, not on
    /// cryptographic stream quality, so a statistically-uniform mixer
    /// seeded from entropy is the right tool on the hot path.
    rng_state: AtomicU64,
    /// Monotonic source of batch ids; uniqueness per client plus the
    /// per-batch private reply port makes `(reply port, id)` unique on
    /// the wire.
    next_batch_id: AtomicU32,
    pipeline: Option<PipelineState>,
    /// In-flight transactions: the lock-free slot table (see the
    /// `demux` module) that routes each wire reply port to its
    /// waiter's pooled mailbox, parks recycled bindings on an indexed
    /// freelist, and falls back to a counted-mutex map only on
    /// overflow.
    table: DemuxTable,
    /// Hot-path knobs: frame-buffer pool + reply-port recycling.
    codec: CodecConfig,
    /// The §2.1 kernel cache: put-port → the machine that last answered
    /// it. "To avoid having to broadcast the LOCATE message for every
    /// transaction, each kernel maintains a cache of (port, machine)
    /// pairs" — here it upgrades associative sends to machine-targeted
    /// ones, which is also what makes reply-port recycling sound (a
    /// targeted request reaches one machine, so at most one reply ever
    /// exists). A hint, never load-bearing: a timed-out hinted attempt
    /// evicts the entry and retransmits associatively, so replica
    /// failover still works. Lock-free (see `demux::RouteCache`).
    routes: RouteCache,
    /// Fresh reply-port mints performed (excludes recycled and leased
    /// bindings) — observability for the warm-path guarantees.
    minted_ports: AtomicU64,
    /// Where parked ports and route hints go when this client dies.
    broker: Option<Arc<PortLeaseBroker>>,
    /// Client-local trace-id mint (no cross-client coordination): the
    /// endpoint's machine id occupies the high 32 bits, a per-client
    /// counter the low 32, so spans from different clients never alias
    /// in a shared flight recording. Never on the wire.
    next_trace: AtomicU64,
}

impl Client {
    /// Wraps an endpoint with default configuration.
    pub fn new(endpoint: Endpoint) -> Client {
        Self::with_config(endpoint, RpcConfig::default())
    }

    /// Wraps an endpoint with explicit timeouts/retries.
    pub fn with_config(endpoint: Endpoint, config: RpcConfig) -> Client {
        let codec = CodecConfig::default();
        let trace_base = (u64::from(endpoint.id().as_u32()) << 32) | 1;
        Client {
            endpoint,
            config,
            demux: DemuxPolicy::default(),
            signature: None,
            rng_state: AtomicU64::new(rand::rngs::StdRng::from_entropy().next_u64()),
            next_batch_id: AtomicU32::new(1),
            pipeline: None,
            table: DemuxTable::new(codec.pool.lock_meter()),
            codec,
            routes: RouteCache::new(),
            minted_ports: AtomicU64::new(0),
            broker: None,
            next_trace: AtomicU64::new(trace_base),
        }
    }

    /// Builder knob: pins the client's reply-port/request-id RNG
    /// stream to a seed. Every port mint and request id becomes a
    /// deterministic function of the seed — required for reproducible
    /// runs under the deterministic simulation executor, where the
    /// default entropy seeding would diverge between replays.
    pub fn with_rng_seed(mut self, seed: u64) -> Client {
        *self.rng_state.get_mut() = seed;
        self
    }

    /// Builder knob: replaces the hot-path codec configuration (frame
    /// pooling, reply-port recycling). See [`CodecConfig`].
    pub fn with_codec(mut self, codec: CodecConfig) -> Client {
        // Re-key the (still empty) demux table so its overflow-map
        // lock counts against the new pool's meter.
        self.table = DemuxTable::new(codec.pool.lock_meter());
        self.codec = codec;
        self
    }

    /// Builder knob: connects this client to a fleet-wide
    /// [`PortLeaseBroker`] and immediately tries to lease a pre-warmed
    /// identity from it: a recycled reply get-port (claimed here and
    /// parked, so the first transaction skips the mint entirely) and
    /// the route hints that travelled with it (so that first
    /// transaction is already machine-targeted — no LOCATE broadcast,
    /// and its port recycles again). On drop the client offers its own
    /// clean parked ports and routes back.
    ///
    /// No-op (beyond registering the broker) on a
    /// [legacy codec](CodecConfig::legacy), which never recycles.
    pub fn with_broker(mut self, broker: Arc<PortLeaseBroker>) -> Client {
        if self.codec.recycle_reply_ports {
            if let Some(grant) = broker.lease() {
                if let Some(m) = self.endpoint.obs().metrics() {
                    m.reply_ports_leased.add(1);
                }
                self.adopt_leased_port(grant.get);
                for (key, val) in grant.routes {
                    self.routes.insert(key, val);
                }
            }
        }
        self.broker = Some(broker);
        self
    }

    /// Claims a leased get-port on this endpoint and parks it, ready
    /// for the first transaction. F is deterministic, so the claim
    /// yields the same wire port the previous owner answered to —
    /// which is what makes the pooled route hints line up with it.
    fn adopt_leased_port(&self, get: Port) {
        let Some((idx, _)) = self.table.reserve_fresh() else {
            return;
        };
        // The binding keeps the generation engraved at its original
        // mint (generation continuity across owners; see `lease`).
        let (_, gen8, _) = decode_reply_port(get);
        self.table.set_reserved_gen(idx, gen8);
        let wire = self.endpoint.claim(get);
        let reactor = self.endpoint.reactor();
        match self.table.activate_fresh(idx, get, wire) {
            Some(token) => {
                if !self
                    .table
                    .try_park(token, reactor, MAX_RECYCLED_REPLY_PORTS)
                {
                    self.table.burn(token, reactor);
                    self.endpoint.release(get);
                }
            }
            None => {
                self.table.abort_reserved(idx);
                self.endpoint.release(get);
            }
        }
    }

    /// The next value of the lock-free splitmix64 stream.
    fn next_rand(&self) -> u64 {
        let mut z = self
            .rng_state
            .fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed)
            .wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The frame-buffer pool this client encodes into. Callers that
    /// build request bodies can take/retire buffers here so body
    /// allocations ride the same recycling as frame allocations.
    pub fn buf_pool(&self) -> &BufPool {
        &self.codec.pool
    }

    /// The trace id the *next* transaction on this client will mint
    /// (meaningful only while the recorder is enabled — a disabled
    /// recorder mints nothing). Multi-RPC operations (e.g. a batched
    /// path resolution) peek this before their first hop to stamp
    /// their own span events with the hop-chain's trace id.
    pub fn trace_peek(&self) -> u64 {
        self.next_trace.load(Ordering::Relaxed)
    }

    /// Builder knob: replaces the demux back-off policy (see
    /// [`DemuxPolicy`]). The pipeliner benches set a tighter contended
    /// tick so batch replies are routed with minimal added latency.
    pub fn with_demux_policy(mut self, demux: DemuxPolicy) -> Client {
        self.demux = demux;
        self
    }

    /// Builder knob: enables the opportunistic pipeliner. Concurrent
    /// [`trans`](Self::trans) calls to the same destination are
    /// coalesced into one wire frame per flush window.
    ///
    /// # Panics
    /// Panics if `config.max_entries` is zero or exceeds
    /// [`MAX_BATCH_ENTRIES`].
    pub fn with_pipeline(mut self, config: PipelineConfig) -> Client {
        assert!(
            (1..=MAX_BATCH_ENTRIES).contains(&config.max_entries),
            "pipeline max_entries must be in 1..={MAX_BATCH_ENTRIES}"
        );
        self.pipeline = Some(PipelineState {
            config,
            queues: Mutex::new(HashMap::new()),
        });
        self
    }

    /// Attaches a secret signature `S` to every outgoing request; the
    /// F-box will transmit `F(S)`, which servers can compare against
    /// this principal's published `F(S)`.
    pub fn set_signature(&mut self, s: Port) {
        self.signature = Some(s);
    }

    /// The underlying endpoint.
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// Performs a blocking transaction: send `request` to put-port
    /// `dest`, await the reply.
    ///
    /// On a pipelined client ([`with_pipeline`](Self::with_pipeline))
    /// the call may share a wire frame with concurrent `trans` calls to
    /// the same destination; semantics are unchanged.
    ///
    /// # Errors
    /// [`RpcError::Timeout`] if no reply arrives within
    /// `config.attempts × config.timeout`; [`RpcError::Disconnected`] if
    /// the endpoint is detached.
    pub fn trans(&self, dest: Port, request: Bytes) -> Result<Bytes, RpcError> {
        match &self.pipeline {
            Some(_) => self.trans_pipelined(dest, request),
            None => self.trans_single(dest, request),
        }
    }

    /// Performs a blocking transaction addressed to one specific
    /// machine: the frame is delivered only to `machine` (if it claims
    /// `dest`), not to every claimer of the port.
    ///
    /// This is how a placement-aware caller turns a cached
    /// `(port, machine)` LOCATE answer into routing when several
    /// replicas serve one put-port. Targeted calls never share a
    /// pipeline frame — the batch would have a single destination
    /// machine, defeating the placement choice of its other entries.
    ///
    /// # Errors
    /// As for [`trans`](Self::trans); in particular a dead or detached
    /// `machine` surfaces as [`RpcError::Timeout`], which failover
    /// callers treat as "invalidate this replica and try the next".
    pub fn trans_to(
        &self,
        dest: Port,
        machine: MachineId,
        request: Bytes,
    ) -> Result<Bytes, RpcError> {
        let payload = self.encode_request_frame(request);
        self.transact(dest, Some(machine), payload, |frame| match frame {
            Frame::Reply(body) => Some(body),
            _ => None,
        })
    }

    /// Performs a blocking shard-transfer transaction: send `op` to
    /// put-port `dest` (targeted at `machine` when given) and await the
    /// acknowledging reply body. Transfer frames ride the same
    /// at-least-once machinery as requests — the receiving side keeps
    /// every op idempotent (see [`TransferOp`]), so a retransmitted
    /// chunk or commit is harmless.
    ///
    /// # Errors
    /// As for [`trans`](Self::trans).
    pub fn trans_transfer_to(
        &self,
        dest: Port,
        machine: Option<MachineId>,
        op: &TransferOp,
    ) -> Result<Bytes, RpcError> {
        self.start_transfer_to(dest, machine, op).wait()
    }

    /// The non-blocking form of
    /// [`trans_transfer_to`](Self::trans_transfer_to): returns the
    /// in-flight [`Completion`], for pollable migration drivers running
    /// under the simulation executor.
    pub fn start_transfer_to(
        &self,
        dest: Port,
        machine: Option<MachineId>,
        op: &TransferOp,
    ) -> Completion<'_, Bytes> {
        let payload = {
            let mut buf = self.codec.pool.take();
            frame::encode_transfer_into(&mut buf, op);
            buf.freeze()
        };
        self.start(dest, machine, payload, |frame| match frame {
            Frame::Reply(body) => Some(body),
            _ => None,
        })
    }

    /// Encodes a REQUEST frame into a pooled buffer and retires the
    /// body — the frame carries its own copy of the bytes, so the
    /// body's storage can be recycled once every other holder drops it.
    fn encode_request_frame(&self, request: Bytes) -> Bytes {
        let mut buf = self.codec.pool.take();
        frame::encode_request_into(&mut buf, &request);
        self.codec.pool.retire(request);
        buf.freeze()
    }

    /// Performs a batch transaction: ships every request body in one
    /// `BATCH_REQUEST` frame (several frames if `requests` exceeds
    /// [`MAX_BATCH_ENTRIES`]) and returns one result per entry, in
    /// request order.
    ///
    /// Partial failure is per entry: an entry the server rejected
    /// before dispatch comes back as [`RpcError::Rejected`]; entries
    /// missing from a (hostile or truncated) reply come back as
    /// [`RpcError::Timeout`]. Application-level failures are ordinary
    /// reply bodies.
    ///
    /// # Errors
    /// [`RpcError::Timeout`]/[`RpcError::Disconnected`] as for
    /// [`trans`](Self::trans), applied per wire frame: if one chunk's
    /// frame times out the whole call fails, since the caller can no
    /// longer line results up with requests.
    pub fn trans_batch(
        &self,
        dest: Port,
        requests: Vec<Bytes>,
    ) -> Result<Vec<BatchResult>, RpcError> {
        let mut results = Vec::with_capacity(requests.len());
        if requests.is_empty() {
            return Ok(results);
        }
        let mut outcome = Ok(());
        for chunk in requests.chunks(MAX_BATCH_ENTRIES) {
            match self.trans_batch_chunk(dest, chunk) {
                Ok(chunk_results) => results.extend(chunk_results),
                Err(e) => {
                    outcome = Err(e);
                    break;
                }
            }
        }
        // The wire frames carried copies of every body; recycle the
        // body buffers — on the failure path too, where the frames are
        // just as spent.
        for body in requests {
            self.codec.pool.retire(body);
        }
        outcome.map(|()| results)
    }

    /// The plain single-frame transaction path.
    fn trans_single(&self, dest: Port, request: Bytes) -> Result<Bytes, RpcError> {
        let payload = self.encode_request_frame(request);
        self.transact(dest, None, payload, |frame| match frame {
            Frame::Reply(body) => Some(body),
            _ => None,
        })
    }

    /// One wire frame's worth of a batch transaction.
    fn trans_batch_chunk(
        &self,
        dest: Port,
        requests: &[Bytes],
    ) -> Result<Vec<BatchResult>, RpcError> {
        let id = self.next_batch_id.fetch_add(1, Ordering::Relaxed);
        // Encoded straight from the borrowed entry table into a pooled
        // buffer — no owned Frame, no per-chunk entry-table copy.
        let payload = {
            let mut buf = self.codec.pool.take();
            frame::encode_batch_request_into(&mut buf, id, requests);
            buf.freeze()
        };
        let n = requests.len();
        self.transact(dest, None, payload, move |frame| match frame {
            Frame::BatchReply { id: rid, entries } if rid == id => {
                // Entries the server never answered (impossible from
                // our server, conceivable from a hostile one) surface
                // as per-entry timeouts rather than misaligned bodies.
                let mut results: Vec<BatchResult> = vec![Err(RpcError::Timeout); n];
                for e in entries {
                    if let Some(slot) = results.get_mut(e.index as usize) {
                        *slot = match e.status {
                            BatchStatus::Ok => Ok(e.body),
                            BatchStatus::Rejected => Err(RpcError::Rejected),
                        };
                    }
                }
                Some(results)
            }
            _ => None,
        })
    }

    /// The pipelined path of [`trans`](Self::trans): enqueue, and either
    /// become the flusher for this destination or wait for the current
    /// flusher to deliver the reply.
    fn trans_pipelined(&self, dest: Port, request: Bytes) -> Result<Bytes, RpcError> {
        let state = self.pipeline.as_ref().expect("pipelined path");
        let (tx, rx) = unbounded();
        let flusher = {
            let mut queues = state.queues.lock();
            let q = queues.entry(dest).or_default();
            q.entries.push((request, tx));
            !std::mem::replace(&mut q.flusher_active, true)
        };
        if flusher {
            // Timeline sleep: real under the wall clock, a scheduled
            // reactor wakeup under the virtual one.
            self.endpoint.sleep(state.config.flush_window);
            let entries = {
                let mut queues = state.queues.lock();
                // Everything queued so far (ours included) ships in
                // this flush, so drop the whole map entry: a long-lived
                // client must not grow one dead queue per destination.
                let q = queues.remove(&dest).expect("flusher owns a queue");
                q.entries
            };
            self.flush(dest, entries, state.config.max_entries);
        }
        // A dropped sender means the flusher died mid-flight (its
        // thread panicked); treat it like a torn-down endpoint.
        rx.recv().unwrap_or(Err(RpcError::Disconnected))
    }

    /// Ships a drained pipeline queue as one or more wire frames and
    /// hands every waiter its own result.
    fn flush(&self, dest: Port, mut entries: Vec<(Bytes, WaiterTx)>, max_entries: usize) {
        while !entries.is_empty() {
            let mut chunk: Vec<(Bytes, WaiterTx)> =
                entries.drain(..entries.len().min(max_entries)).collect();
            if chunk.len() == 1 {
                // A lone call needs no batch container.
                let (request, tx) = chunk.pop().expect("one entry");
                let _ = tx.send(self.trans_single(dest, request));
                continue;
            }
            // Must copy the entry table: the encoder wants a contiguous
            // `&[Bytes]` while each body stays paired with its waiter
            // for reply delivery. Bytes clones are refcount bumps.
            let bodies: Vec<Bytes> = chunk.iter().map(|(b, _)| b.clone()).collect();
            match self.trans_batch_chunk(dest, &bodies) {
                Ok(results) => {
                    for ((body, tx), result) in chunk.into_iter().zip(results) {
                        let _ = tx.send(result);
                        self.codec.pool.retire(body);
                    }
                }
                Err(e) => {
                    for (body, tx) in chunk {
                        let _ = tx.send(Err(e));
                        self.codec.pool.retire(body);
                    }
                }
            }
        }
    }

    /// Routes a packet that is not ours to whichever in-flight
    /// transaction owns its destination port (concurrent `trans` calls
    /// share one endpoint queue) — one index load plus one generation
    /// compare, no lock. Unclaimed packets are stale noise and are
    /// dropped.
    fn route_foreign(&self, pkt: Packet) {
        // A failed deposit means nobody owns the port (a straggler or
        // forged packet): drop it. Its delivery gate was already
        // released when the puller consumed it; deposit re-gates only
        // the packets it actually hands off.
        let _ = self.table.deposit(pkt, self.endpoint.reactor());
    }

    /// Records `machine` as the route-cache answer for put-port `dest`.
    /// No-op for broadcasts and on the legacy codec, which keeps pure
    /// associative addressing.
    fn note_route(&self, dest: Port, machine: MachineId) {
        if !self.codec.recycle_reply_ports || dest.is_broadcast() {
            return;
        }
        self.routes
            .insert(dest.value(), u64::from(machine.as_u32()) + 1);
    }

    /// The machine the route cache currently names for put-port `dest`.
    pub fn cached_route(&self, dest: Port) -> Option<MachineId> {
        self.routes
            .lookup(dest.value())
            .map(|v| MachineId::from((v - 1) as u32))
    }

    /// Occupied route-cache entries.
    pub fn cached_routes(&self) -> usize {
        self.routes.len()
    }

    /// Transactions currently in flight on this client.
    pub fn active_transactions(&self) -> u32 {
        self.table.active()
    }

    /// Reply-port bindings currently parked for recycling.
    pub fn parked_reply_ports(&self) -> u32 {
        self.table.parked()
    }

    /// Fresh reply ports minted so far (recycled and leased bindings
    /// don't count — this is the cold-start cost the port-lease broker
    /// removes).
    pub fn minted_reply_ports(&self) -> u64 {
        self.minted_ports.load(Ordering::Relaxed)
    }

    /// Starts a transaction and returns its completion handle without
    /// blocking: the request frame is already on the wire when this
    /// returns, and the caller decides when (and whether) to
    /// [`wait`](Completion::wait) or [`poll`](Completion::poll) for the
    /// reply. [`trans`](Self::trans) is exactly
    /// `trans_async(..).wait()`; batch and pipelined transactions wrap
    /// the same engine.
    ///
    /// Dropping the handle abandons the transaction (the reply port is
    /// released; a late reply is dropped as stale noise).
    pub fn trans_async(&self, dest: Port, request: Bytes) -> Completion<'_, Bytes> {
        let payload = self.encode_request_frame(request);
        self.start(dest, None, payload, |frame| match frame {
            Frame::Reply(body) => Some(body),
            _ => None,
        })
    }

    /// The machine-targeted variant of [`trans_async`](Self::trans_async).
    pub fn trans_async_to(
        &self,
        dest: Port,
        machine: MachineId,
        request: Bytes,
    ) -> Completion<'_, Bytes> {
        let payload = self.encode_request_frame(request);
        self.start(dest, Some(machine), payload, |frame| match frame {
            Frame::Reply(body) => Some(body),
            _ => None,
        })
    }

    /// The shared request/await/retransmit engine behind every
    /// transaction shape: registers a fresh reply port in the demux
    /// table, transmits `payload`, and blocks on the completion.
    fn transact<T>(
        &self,
        dest: Port,
        target: Option<MachineId>,
        payload: Bytes,
        accept: impl Fn(Frame) -> Option<T> + Send + Sync + 'static,
    ) -> Result<T, RpcError> {
        self.start(dest, target, payload, accept).wait()
    }

    /// Binds a reply port in the slot table (recycled when possible,
    /// minted otherwise). Returns the binding plus its get/wire ports.
    fn bind_reply_port(&self) -> (Binding, Port, Port, Receiver<Packet>) {
        let reactor = self.endpoint.reactor();
        // Recycled from a cleanly completed transaction when allowed:
        // the port is then already claimed (an F-box has its F values
        // memoized) and still resolvable in the index — claiming it is
        // one O(1) freelist pop.
        if self.codec.recycle_reply_ports {
            if let Some((token, get, wire)) = self.table.claim_parked(reactor) {
                if let Some(m) = self.endpoint.obs().metrics() {
                    m.reply_ports_recycled.add(1);
                }
                let rx = self.table.receiver(token);
                return (Binding::Slot(token), get, wire, rx);
            }
        }
        // Fresh mint: reserve a slot and engrave its (index, gen) in
        // the minted get-port.
        if let Some((idx, gen8)) = self.table.reserve_fresh() {
            let get = encode_reply_port(idx as u8, gen8, self.next_rand() as u32);
            self.minted_ports.fetch_add(1, Ordering::Relaxed);
            let wire = self.endpoint.claim(get);
            if let Some(token) = self.table.activate_fresh(idx, get, wire) {
                if let Some(m) = self.endpoint.obs().metrics() {
                    m.reply_ports_fresh.add(1);
                }
                let rx = self.table.receiver(token);
                return (Binding::Slot(token), get, wire, rx);
            }
            // Index probe window full: give the slot back and fall
            // through to the overflow map.
            self.table.abort_reserved(idx);
            self.endpoint.release(get);
        }
        // Overflow (more concurrent transactions than slots, or a
        // pathological index collision run): a plain random port and a
        // per-transaction mailbox under the counted overflow lock.
        let get = Port::from_raw(self.next_rand());
        self.minted_ports.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = self.endpoint.obs().metrics() {
            m.reply_ports_fresh.add(1);
            m.demux_overflows.add(1);
        }
        let wire = self.endpoint.claim(get);
        let rx = self.table.register_overflow(wire);
        (Binding::Overflow, get, wire, rx)
    }

    /// Registers the demux entry, transmits the first attempt, and
    /// hands back the in-flight transaction state.
    fn start<T>(
        &self,
        dest: Port,
        target: Option<MachineId>,
        payload: Bytes,
        accept: impl Fn(Frame) -> Option<T> + Send + Sync + 'static,
    ) -> Completion<'_, T> {
        // Reply get-port per transaction, stable across retries so a
        // late first reply satisfies a retransmitted request.
        let (binding, reply_get, reply_wire, mailbox) = self.bind_reply_port();
        let mut header = Header::to(dest).with_reply(reply_get);
        let mut hinted = false;
        match target {
            Some(machine) => header = header.targeted(machine),
            // Untargeted: upgrade to a targeted send when the route
            // cache knows which machine answers this port. Broadcasts
            // stay broadcasts — the network ignores the hint for them
            // anyway, so a cached target would be a lie.
            None if self.codec.recycle_reply_ports && !dest.is_broadcast() => {
                if let Some(val) = self.routes.lookup(dest.value()) {
                    header = header.targeted(MachineId::from((val - 1) as u32));
                    hinted = true;
                }
            }
            None => {}
        }
        if let Some(s) = self.signature {
            header = header.with_signature(s);
        }
        // Span root: a trace id is minted only when the recorder is
        // live, so the disabled path never touches the mint counter.
        let started_at = self.endpoint.now();
        let obs = self.endpoint.obs();
        let mut trace = 0;
        if obs.enabled() {
            trace = self.next_trace.fetch_add(1, Ordering::Relaxed);
            let t = started_at.since_epoch().as_nanos() as u64;
            obs.record(
                EventKind::TransStart,
                t,
                trace,
                dest.value(),
                payload.len() as u64,
            );
            obs.record(EventKind::Encode, t, trace, reply_wire.value(), 0);
            if let Some(m) = obs.metrics() {
                m.trans_started.add(1);
            }
        }
        let mut completion = Completion {
            client: self,
            header,
            payload,
            reply_get,
            reply_wire,
            binding,
            mailbox,
            accept: Box::new(accept),
            attempts_left: self.config.attempts.max(1),
            attempt_deadline: Timestamp::ZERO,
            transmits: 0,
            completed: false,
            hinted,
            trace,
            started_at,
        };
        completion.transmit();
        completion
    }
}

impl Drop for Client {
    fn drop(&mut self) {
        let reactor = self.endpoint.reactor().clone();
        // No transaction can be in flight (completions borrow the
        // client), but parked bindings and stale mailbox deposits
        // remain. Export the clean parked ports — and a route-cache
        // snapshot — to the broker, if any; their interface claims die
        // with this endpoint either way.
        let parked = self.table.drain_parked_for_export(&reactor);
        if let Some(broker) = &self.broker {
            if self.codec.recycle_reply_ports {
                broker.offer_routes(&self.routes.export(MAX_EXPORTED_ROUTES));
                if let Some(m) = self.endpoint.obs().metrics() {
                    m.lease_offers.add(parked.len() as u64);
                }
                for (get, _wire) in parked {
                    broker.offer_port(get);
                }
            }
        }
        // Any still-gated deposit left anywhere would wedge the
        // virtual timeline.
        self.table.drain_all(&reactor);
    }
}

/// How a completion's replies are routed: a slot-table binding (the
/// hot path) or an overflow-map entry.
#[derive(Debug, Clone, Copy)]
enum Binding {
    Slot(SlotToken),
    Overflow,
}

/// An in-flight transaction: the completion side of
/// [`Client::trans_async`].
///
/// The handle owns the transaction's demux registration and drives the
/// retransmission schedule. Progress is made whenever the caller calls
/// [`poll`](Self::poll) (non-blocking) or [`wait`](Self::wait)
/// (blocking, reactor-parked under a virtual clock) — there is no
/// hidden thread. Dropping the handle abandons the transaction.
pub struct Completion<'c, T> {
    client: &'c Client,
    header: Header,
    payload: Bytes,
    reply_get: Port,
    reply_wire: Port,
    /// The demux registration this transaction owns.
    binding: Binding,
    /// Replies claimed from the shared endpoint by *peer* waiters and
    /// routed here: a clone of the slot's pooled mailbox receiver (no
    /// channel is constructed per transaction), or the overflow
    /// mailbox.
    mailbox: Receiver<Packet>,
    accept: Box<dyn Fn(Frame) -> Option<T> + Send + Sync>,
    /// Attempts not yet transmitted (the first transmit happens in
    /// [`Client::start`]).
    attempts_left: u32,
    attempt_deadline: Timestamp,
    /// Attempts actually put on the wire.
    transmits: u32,
    /// Whether the transaction finished with an accepted reply. Only a
    /// `completed && transmits == 1` **machine-targeted** transaction
    /// may recycle its reply port: exactly one request frame existed
    /// and reached exactly one machine, so exactly one reply could ever
    /// have been produced — and it was consumed. An untargeted request
    /// is offered to every claimer of the destination port, so replicas
    /// can leave straggler replies in flight and the port must burn.
    completed: bool,
    /// Whether `header.target` came from the client's route cache
    /// rather than the caller. A hinted attempt that times out evicts
    /// the cache entry and falls back to associative addressing.
    hinted: bool,
    /// Flight-recorder span id (0 when the recorder was disabled at
    /// start — events are suppressed for the whole span then, so a
    /// mid-flight enable never produces a headless trace).
    trace: u64,
    /// When the span opened; completion latency is measured from here.
    started_at: Timestamp,
}

impl<T> std::fmt::Debug for Completion<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Completion")
            .field("dest", &self.header.dest)
            .field("attempts_left", &self.attempts_left)
            .finish()
    }
}

impl<T> Completion<'_, T> {
    /// The current attempt's retransmission deadline. A poll-driven
    /// caller (the deterministic simulation executor's actors) that
    /// got `None` from [`poll`](Self::poll) need not be polled again
    /// until a packet arrives or the timeline reaches this instant.
    pub fn deadline(&self) -> Timestamp {
        self.attempt_deadline
    }

    /// Transmits one attempt and arms its retransmission deadline.
    fn transmit(&mut self) {
        self.attempts_left -= 1;
        self.transmits += 1;
        // Must clone: the payload is retained for retransmission until
        // the transaction completes (a refcount bump, no byte copy).
        self.client.endpoint.send(self.header, self.payload.clone());
        self.attempt_deadline = self.client.endpoint.now() + self.client.config.timeout;
        if self.trace != 0 {
            let obs = self.client.endpoint.obs();
            let t = self.client.endpoint.now().since_epoch().as_nanos() as u64;
            if self.transmits > 1 {
                obs.record(
                    EventKind::Retransmit,
                    t,
                    self.trace,
                    self.header.dest.value(),
                    u64::from(self.transmits),
                );
                if let Some(m) = obs.metrics() {
                    m.retransmits.add(1);
                }
            } else {
                obs.record(
                    EventKind::FrameOnWire,
                    t,
                    self.trace,
                    self.header.dest.value(),
                    u64::from(self.transmits),
                );
            }
        }
    }

    /// Closes the span: records the completion wake-up (with the
    /// start-to-finish latency as payload) and feeds the latency
    /// histogram. Shared by the poll and wait completion sites so
    /// bench percentiles and live metrics come from one code path.
    fn note_completed(&self) {
        let obs = self.client.endpoint.obs();
        if !obs.enabled() {
            return;
        }
        let now = self.client.endpoint.now();
        let latency = now.saturating_duration_since(self.started_at).as_nanos() as u64;
        if self.trace != 0 {
            obs.record(
                EventKind::CompletionWake,
                now.since_epoch().as_nanos() as u64,
                self.trace,
                latency,
                u64::from(self.transmits),
            );
        }
        if let Some(m) = obs.metrics() {
            m.trans_completed.add(1);
            m.trans_latency_ns.record(latency);
        }
    }

    /// Decodes a packet against this transaction; foreign packets are
    /// routed to their owner and yield `None`.
    fn check_packet(&self, pkt: Packet) -> Option<T> {
        if pkt.header.dest != self.reply_wire {
            self.client.route_foreign(pkt);
            return None;
        }
        let source = pkt.source;
        let value = Frame::decode(&pkt.payload).and_then(&*self.accept)?;
        if self.trace != 0 {
            self.client.endpoint.obs().record(
                EventKind::ReplyDemux,
                self.client.endpoint.now().since_epoch().as_nanos() as u64,
                self.trace,
                self.reply_wire.value(),
                u64::from(source.as_u32()),
            );
        }
        // Feed the route cache: this machine answers for `dest`, so the
        // next transaction to it can be machine-targeted (and thereby
        // recycle its reply port).
        self.client.note_route(self.header.dest, source);
        Some(value)
    }

    /// Makes all currently-possible progress: drains the mailbox and
    /// the shared endpoint queue, and retransmits (or gives up) when
    /// the attempt deadline has passed.
    ///
    /// Non-blocking caveat: consuming an arrived packet advances the
    /// clock over its remaining simulated latency — a jump under the
    /// virtual clock, but a **real wait** under the wall clock (and a
    /// brief ordered-delivery wait under the virtual one). A caller
    /// multiplexing other work on its thread should poll on a
    /// virtual-clock network, where this returns promptly.
    ///
    /// Returns `Some(result)` once the transaction completed, `None`
    /// while it is still in flight. After `Some` is returned the
    /// handle is spent and must be dropped.
    pub fn poll(&mut self) -> Option<Result<T, RpcError>> {
        loop {
            // A peer waiter may have claimed our reply from the shared
            // endpoint and routed it to our mailbox.
            while let Ok(pkt) = self.mailbox.try_recv() {
                self.client.endpoint.reactor().deliver(&pkt);
                if let Some(value) = self.check_packet(pkt) {
                    self.completed = true;
                    self.note_completed();
                    return Some(Ok(value));
                }
            }
            if let Some(pkt) = self.client.endpoint.poll_arrival() {
                self.client.endpoint.reactor().deliver(&pkt);
                if let Some(value) = self.check_packet(pkt) {
                    self.completed = true;
                    self.note_completed();
                    return Some(Ok(value));
                }
                continue; // keep draining
            }
            if self.client.endpoint.now() >= self.attempt_deadline {
                if self.hinted {
                    // The cached machine never answered — crashed, or
                    // the service moved. Evict the route (unless a peer
                    // already learned a newer one) and fall back to
                    // associative addressing, so a surviving replica
                    // can take the retransmission — or, when this was
                    // the last attempt, the *next* transaction: the
                    // cache is a hint, never load-bearing for
                    // reachability, which is why eviction must happen
                    // before the out-of-attempts return below.
                    if let Some(stale) = self.header.target.take() {
                        self.client
                            .routes
                            .evict_if(self.header.dest.value(), u64::from(stale.as_u32()) + 1);
                    }
                    self.hinted = false;
                }
                if self.attempts_left == 0 {
                    if let Some(m) = self.client.endpoint.obs().metrics() {
                        m.trans_timeouts.add(1);
                    }
                    return Some(Err(RpcError::Timeout));
                }
                self.transmit();
                continue;
            }
            return None;
        }
    }

    /// Blocks until the transaction completes: the blocking face of
    /// the completion. Under a [`VirtualClock`](amoeba_net::VirtualClock)
    /// the waiter parks on the reactor and wakes per event; under the
    /// wall clock it blocks on the shared endpoint queue in
    /// [`DemuxPolicy`] ticks (re-checking its mailbox each tick),
    /// exactly the pre-reactor cadence.
    ///
    /// # Errors
    /// [`RpcError::Timeout`] after all attempts,
    /// [`RpcError::Disconnected`] if the endpoint is detached.
    pub fn wait(mut self) -> Result<T, RpcError> {
        let client = self.client;
        let endpoint = &client.endpoint;
        loop {
            if let Some(result) = self.poll() {
                return result;
            }
            if endpoint.reactor().is_virtual() {
                // Reactor-parked: wake on any mailbox deposit or
                // endpoint arrival, or at the attempt deadline
                // (whichever the timeline reaches first). poll() then
                // classifies what happened.
                let deadline = self.attempt_deadline;
                let mailbox = &self.mailbox;
                let _woke: Option<()> = endpoint.reactor().park_until(Some(deadline), || {
                    (!mailbox.is_empty() || endpoint.has_arrivals()).then_some(())
                });
            } else {
                let tick = if client.table.active() > 1 {
                    client.demux.contended_tick
                } else {
                    client.demux.idle_tick
                };
                let deadline = self.attempt_deadline.min(endpoint.now() + tick);
                match endpoint.recv_deadline(deadline) {
                    Ok(pkt) => {
                        if let Some(value) = self.check_packet(pkt) {
                            self.completed = true;
                            self.note_completed();
                            return Ok(value);
                        }
                    }
                    Err(RecvError::Timeout) => {} // tick: poll() re-checks
                    Err(RecvError::Disconnected) => return Err(RpcError::Disconnected),
                }
            }
        }
    }
}

impl<T> Drop for Completion<'_, T> {
    fn drop(&mut self) {
        let reactor = self.client.endpoint.reactor();
        // The frame buffer returns to the pool for the next encode.
        self.client
            .codec
            .pool
            .retire(std::mem::take(&mut self.payload));
        // A machine-targeted transaction that completed on its single
        // transmission and left no stragglers can park its reply port
        // (still claimed, still indexed) for reuse — one frame reached
        // one machine, so the one possible reply could ever have been
        // produced — and it was consumed. Untargeted (or broadcast)
        // requests are offered to every claimer of the destination
        // port: N replicas send N replies, and stragglers still in
        // flight would alias whatever transaction reused the port —
        // check_packet correlates by reply port alone. Those ports, and
        // those of timed-out, retransmitted or abandoned transactions,
        // are burned instead: a late reply must find a dead port,
        // never a recycled one. Unconsumed deposits are detected (and
        // their gates released) inside try_park/burn; either path
        // leaves no gated packet behind, or the virtual timeline would
        // wedge.
        match self.binding {
            Binding::Slot(token) => {
                let unicast = self.header.target.is_some() && !self.header.dest.is_broadcast();
                // "One transmit, one machine ⇒ at most one reply" is
                // only a theorem on a network that never duplicates
                // frames. A simulation fault plan that duplicates can
                // turn one targeted request into two served requests —
                // two replies — so recycling is unsound there and every
                // port burns.
                let at_most_once = !self.client.endpoint.network().may_duplicate();
                let clean = self.completed && self.transmits == 1 && unicast && at_most_once;
                if clean
                    && self.client.codec.recycle_reply_ports
                    && self
                        .client
                        .table
                        .try_park(token, reactor, MAX_RECYCLED_REPLY_PORTS)
                {
                    return;
                }
                self.client.table.burn(token, reactor);
                self.client.endpoint.release(self.reply_get);
            }
            Binding::Overflow => {
                self.client.table.remove_overflow(self.reply_wire);
                while let Ok(pkt) = self.mailbox.try_recv() {
                    reactor.discard(&pkt);
                }
                self.client.endpoint.release(self.reply_get);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amoeba_net::Network;
    use std::sync::Arc;

    #[test]
    fn trans_times_out_when_nobody_listens() {
        let net = Network::new();
        let client = Client::with_config(
            net.attach_open(),
            RpcConfig {
                timeout: Duration::from_millis(5),
                attempts: 2,
            },
        );
        let before = net.stats().snapshot();
        let err = client
            .trans(Port::new(0x5050).unwrap(), Bytes::from_static(b"x"))
            .unwrap_err();
        assert_eq!(err, RpcError::Timeout);
        // Both attempts were transmitted.
        assert_eq!(net.stats().snapshot().packets_sent - before.packets_sent, 2);
    }

    #[test]
    fn concurrent_transactions_on_one_client_all_complete() {
        // The demux table must route every reply to its own waiter even
        // though all waiters share one endpoint queue.
        let net = Network::new();
        let server = crate::ServerPort::bind(net.attach_open(), Port::new(0xCC).unwrap());
        let p = server.put_port();
        let server_thread = std::thread::spawn(move || {
            // Echo each request body back, out of order in bursts.
            let mut backlog = Vec::new();
            loop {
                match server.next_request_timeout(Duration::from_millis(300)) {
                    Ok(req) => {
                        backlog.push(req);
                        if backlog.len() >= 4 {
                            for req in backlog.drain(..).rev() {
                                server.reply(&req, req.payload.clone());
                            }
                        }
                    }
                    Err(_) => {
                        for req in backlog.drain(..) {
                            server.reply(&req, req.payload.clone());
                        }
                        break;
                    }
                }
            }
        });
        let client = Arc::new(Client::with_config(
            net.attach_open(),
            RpcConfig {
                timeout: Duration::from_secs(2),
                attempts: 2,
            },
        ));
        let workers: Vec<_> = (0..8u32)
            .map(|i| {
                let client = Arc::clone(&client);
                std::thread::spawn(move || {
                    let body = Bytes::from(i.to_be_bytes().to_vec());
                    let reply = client.trans(p, body.clone()).unwrap();
                    assert_eq!(reply, body, "worker {i} got someone else's reply");
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        server_thread.join().unwrap();
    }

    #[test]
    fn targeted_trans_reaches_only_the_named_replica() {
        // Two servers bind the same put-port; a targeted transaction
        // must be served by the named machine and leave the other
        // replica's queue untouched.
        let net = Network::new();
        let a = crate::ServerPort::bind(net.attach_open(), Port::new(0xEE).unwrap());
        let b = crate::ServerPort::bind(net.attach_open(), Port::new(0xEE).unwrap());
        let p = a.put_port();
        let a_machine = a.endpoint().id();
        let t = std::thread::spawn(move || {
            let req = a.next_request().unwrap();
            a.reply(&req, Bytes::from_static(b"from-a"));
        });
        let client = Client::with_config(
            net.attach_open(),
            RpcConfig {
                timeout: Duration::from_secs(2),
                attempts: 2,
            },
        );
        let reply = client
            .trans_to(p, a_machine, Bytes::from_static(b"hi"))
            .unwrap();
        assert_eq!(&reply[..], b"from-a");
        t.join().unwrap();
        // Replica b never even saw the frame.
        assert_eq!(
            b.next_request_timeout(Duration::from_millis(30))
                .unwrap_err(),
            amoeba_net::RecvError::Timeout
        );
    }

    #[test]
    fn targeted_trans_to_dead_machine_times_out() {
        let net = Network::new();
        let server = crate::ServerPort::bind(net.attach_open(), Port::new(0xEF).unwrap());
        let p = server.put_port();
        let ghost = net.attach_open().id(); // detached immediately
        let client = Client::with_config(
            net.attach_open(),
            RpcConfig {
                timeout: Duration::from_millis(20),
                attempts: 2,
            },
        );
        assert_eq!(
            client.trans_to(p, ghost, Bytes::new()).unwrap_err(),
            RpcError::Timeout,
            "failover callers need Timeout, not a hang"
        );
        drop(server);
    }

    #[test]
    fn replica_fanout_burns_the_reply_port_then_the_learned_route_recycles() {
        // An untargeted request to a replicated port is answered by
        // every replica, so a straggler reply may still be in flight
        // when the transaction completes: its reply port must burn,
        // never park. The answering machine is cached, making the next
        // call machine-targeted — and that one may recycle its port.
        let net = Network::new();
        let g = Port::new(0xD0).unwrap();
        let a = crate::ServerPort::bind(net.attach_open(), g);
        let b = crate::ServerPort::bind(net.attach_open(), g);
        let p = a.put_port();
        let a_machine = a.endpoint().id();
        let serve = |s: crate::ServerPort, tag: &'static [u8]| {
            std::thread::spawn(move || {
                while let Ok(req) = s.next_request_timeout(Duration::from_millis(200)) {
                    s.reply(&req, Bytes::from_static(tag));
                }
            })
        };
        let ta = serve(a, b"replica-a");
        let tb = serve(b, b"replica-b");
        let client = Client::with_config(
            net.attach_open(),
            RpcConfig {
                timeout: Duration::from_secs(2),
                attempts: 2,
            },
        );
        let first = client.trans(p, Bytes::from_static(b"one")).unwrap();
        assert_eq!(
            client.parked_reply_ports(),
            0,
            "fan-out reply port was recycled"
        );
        let learned = client.cached_route(p).expect("route cached");
        let expected: &[u8] = if learned == a_machine {
            b"replica-a"
        } else {
            b"replica-b"
        };
        assert_eq!(
            &first[..],
            expected,
            "cached machine must be the one that answered"
        );
        let second = client.trans(p, Bytes::from_static(b"two")).unwrap();
        assert_eq!(second, first, "hinted call must hit the learned replica");
        assert_eq!(
            client.parked_reply_ports(),
            1,
            "targeted call must recycle its reply port"
        );
        ta.join().unwrap();
        tb.join().unwrap();
    }

    #[test]
    fn stale_route_evicts_even_when_out_of_attempts() {
        // A one-attempt client (the replicated-service shape) whose
        // cached machine died must not stay wedged on it: the timed-out
        // hinted transaction evicts the route even though it has no
        // retransmission left, so the *next* call goes associative and
        // reaches a live server.
        let net = Network::new();
        let g = Port::new(0xD3).unwrap();
        let server = crate::ServerPort::bind(net.attach_open(), g);
        let t = std::thread::spawn(move || {
            while let Ok(req) = server.next_request_timeout(Duration::from_millis(300)) {
                server.reply(&req, Bytes::from_static(b"alive"));
            }
        });
        let ghost = net.attach_open().id(); // detached immediately
        let client = Client::with_config(
            net.attach_open(),
            RpcConfig {
                timeout: Duration::from_millis(20),
                attempts: 1,
            },
        );
        client.note_route(g, ghost);
        assert_eq!(
            client.trans(g, Bytes::from_static(b"x")).unwrap_err(),
            RpcError::Timeout
        );
        assert!(
            client.cached_route(g).is_none(),
            "stale route must evict on the final attempt"
        );
        assert_eq!(
            &client.trans(g, Bytes::from_static(b"y")).unwrap()[..],
            b"alive"
        );
        t.join().unwrap();
    }

    #[test]
    fn route_cache_stays_bounded() {
        use crate::demux::MAX_CACHED_ROUTES;
        let net = Network::new();
        let client = Client::new(net.attach_open());
        let machine = client.endpoint().id();
        for v in 1..=(MAX_CACHED_ROUTES as u64 + 7) {
            client.note_route(Port::new(v).unwrap(), machine);
        }
        let cached = client.cached_routes();
        assert!(
            cached <= MAX_CACHED_ROUTES,
            "route cache exceeded its bound: {cached}"
        );
        // Broadcast and legacy-codec notes are dropped, not cached.
        client.note_route(Port::BROADCAST, machine);
        assert!(client.cached_route(Port::BROADCAST).is_none());
    }

    #[test]
    fn straggler_replica_reply_never_aliases_a_later_transaction() {
        // Two replicas answer call 1; the straggler reply is still in
        // flight when the transaction completes. Call 2 — which under
        // unsound recycling would inherit call 1's reply port — must
        // return its own server's body, not the straggler.
        let net = Network::new();
        net.set_latency(Duration::from_millis(10));
        let g1 = Port::new(0xD1).unwrap();
        let g2 = Port::new(0xD2).unwrap();
        let serve = |s: crate::ServerPort, tag: &'static [u8]| {
            std::thread::spawn(move || {
                while let Ok(req) = s.next_request_timeout(Duration::from_millis(200)) {
                    s.reply(&req, Bytes::from_static(tag));
                }
            })
        };
        let ta = serve(crate::ServerPort::bind(net.attach_open(), g1), b"dup");
        let tb = serve(crate::ServerPort::bind(net.attach_open(), g1), b"dup");
        let tc = serve(crate::ServerPort::bind(net.attach_open(), g2), b"fresh");
        let client = Client::with_config(
            net.attach_open(),
            RpcConfig {
                timeout: Duration::from_secs(2),
                attempts: 2,
            },
        );
        assert_eq!(
            &client.trans(g1, Bytes::from_static(b"x")).unwrap()[..],
            b"dup"
        );
        assert_eq!(
            &client.trans(g2, Bytes::from_static(b"y")).unwrap()[..],
            b"fresh",
            "straggler reply aliased a later transaction"
        );
        net.set_latency(Duration::ZERO);
        for t in [ta, tb, tc] {
            t.join().unwrap();
        }
    }

    #[test]
    fn trans_async_completes_via_poll_and_wait() {
        let net = Network::new();
        let server = crate::ServerPort::bind(net.attach_open(), Port::new(0xA5).unwrap());
        let p = server.put_port();
        let t = std::thread::spawn(move || {
            for _ in 0..2 {
                let req = server.next_request().unwrap();
                server.reply(&req, req.payload.clone());
            }
        });
        let client = Client::with_config(
            net.attach_open(),
            RpcConfig {
                timeout: Duration::from_secs(2),
                attempts: 2,
            },
        );
        // Completion via wait().
        let pending = client.trans_async(p, Bytes::from_static(b"one"));
        assert_eq!(&pending.wait().unwrap()[..], b"one");
        // Completion via poll(): the caller drives progress.
        let mut pending = client.trans_async(p, Bytes::from_static(b"two"));
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let result = loop {
            if let Some(r) = pending.poll() {
                break r;
            }
            assert!(std::time::Instant::now() < deadline, "poll never completed");
            std::thread::yield_now();
        };
        drop(pending);
        assert_eq!(&result.unwrap()[..], b"two");
        t.join().unwrap();
    }

    #[test]
    fn dropping_a_completion_abandons_the_transaction() {
        let net = Network::new();
        let client = Client::new(net.attach_open());
        let pending = client.trans_async(Port::new(0xAB).unwrap(), Bytes::from_static(b"x"));
        assert_eq!(client.active_transactions(), 1);
        drop(pending); // releases the demux entry and the reply port
        assert_eq!(client.active_transactions(), 0, "demux entry must be gone");
    }

    #[test]
    fn virtual_clock_transactions_round_trip_without_real_latency_cost() {
        // A 50 ms-per-hop network under the virtual clock: the
        // request/reply pair covers ≥100 ms of timeline but only
        // microseconds-to-milliseconds of wall-clock.
        let net = Network::new_virtual();
        net.set_latency(Duration::from_millis(50));
        let server = crate::ServerPort::bind(net.attach_open(), Port::new(0xC3).unwrap());
        let p = server.put_port();
        let t = std::thread::spawn(move || {
            for _ in 0..4 {
                let req = server.next_request().unwrap();
                server.reply(&req, req.payload.clone());
            }
        });
        let client = Client::with_config(
            net.attach_open(),
            RpcConfig {
                timeout: Duration::from_secs(2),
                attempts: 2,
            },
        );
        let t0 = std::time::Instant::now();
        let v0 = net.now();
        for i in 0..4u32 {
            let body = Bytes::from(i.to_be_bytes().to_vec());
            assert_eq!(client.trans(p, body.clone()).unwrap(), body);
        }
        assert!(
            net.now().saturating_duration_since(v0) >= Duration::from_millis(400),
            "4 transactions × 2 hops × 50 ms must show on the timeline"
        );
        assert!(
            t0.elapsed() < Duration::from_millis(200),
            "virtual hops must not cost wall-clock: {:?}",
            t0.elapsed()
        );
        t.join().unwrap();
    }

    #[test]
    fn virtual_clock_timeout_expires_fast_in_real_time() {
        let net = Network::new_virtual();
        let client = Client::with_config(
            net.attach_open(),
            RpcConfig {
                timeout: Duration::from_millis(500),
                attempts: 3,
            },
        );
        let before = net.stats().snapshot();
        let t0 = std::time::Instant::now();
        let err = client
            .trans(Port::new(0x5051).unwrap(), Bytes::from_static(b"x"))
            .unwrap_err();
        assert_eq!(err, RpcError::Timeout);
        assert_eq!(
            net.stats().snapshot().packets_sent - before.packets_sent,
            3,
            "all attempts must still be transmitted"
        );
        assert!(
            t0.elapsed() < Duration::from_millis(750),
            "1.5 s of virtual timeout must not block wall-clock: {:?}",
            t0.elapsed()
        );
    }

    #[test]
    fn config_default_is_sane() {
        let c = RpcConfig::default();
        assert!(c.attempts >= 1);
        assert!(c.timeout > Duration::ZERO);
    }

    #[test]
    fn demux_policy_defaults_back_off() {
        let p = DemuxPolicy::default();
        assert!(
            p.contended_tick < p.idle_tick,
            "idle must be the coarser tick"
        );
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let net = Network::new();
        let client = Client::new(net.attach_open());
        let before = net.stats().snapshot();
        let results = client
            .trans_batch(Port::new(0x7).unwrap(), Vec::new())
            .unwrap();
        assert!(results.is_empty());
        assert_eq!(net.stats().snapshot().packets_sent, before.packets_sent);
    }

    #[test]
    fn batch_round_trip_uses_one_frame_each_way() {
        let net = Network::new();
        let server = crate::ServerPort::bind(net.attach_open(), Port::new(0xB0).unwrap());
        let p = server.put_port();
        let t = std::thread::spawn(move || {
            for _ in 0..8 {
                let req = server.next_request().unwrap();
                let mut body = req.payload.to_vec();
                body.reverse();
                server.reply(&req, Bytes::from(body));
            }
        });
        let client = Client::with_config(
            net.attach_open(),
            RpcConfig {
                timeout: Duration::from_secs(2),
                attempts: 2,
            },
        );
        let before = net.stats().snapshot();
        let results = client
            .trans_batch(p, (0..8u8).map(|i| Bytes::from(vec![i, b'x'])).collect())
            .unwrap();
        let frames = net.stats().snapshot().packets_sent - before.packets_sent;
        assert_eq!(
            frames, 2,
            "8 transactions must cost 1 request + 1 reply frame"
        );
        for (i, r) in results.into_iter().enumerate() {
            assert_eq!(r.unwrap(), Bytes::from(vec![b'x', i as u8]));
        }
        t.join().unwrap();
    }

    #[test]
    fn pipelined_client_coalesces_concurrent_trans_calls() {
        let net = Network::new();
        let server = crate::ServerPort::bind(net.attach_open(), Port::new(0xAB).unwrap());
        let p = server.put_port();
        let t = std::thread::spawn(move || {
            let mut served = 0;
            while served < 6 {
                let req = server.next_request().unwrap();
                served += 1;
                server.reply(&req, req.payload.clone());
            }
        });
        let client = Arc::new(
            Client::with_config(
                net.attach_open(),
                RpcConfig {
                    timeout: Duration::from_secs(2),
                    attempts: 2,
                },
            )
            .with_pipeline(PipelineConfig {
                flush_window: Duration::from_millis(5),
                max_entries: 16,
            }),
        );
        let before = net.stats().snapshot();
        let workers: Vec<_> = (0..6u32)
            .map(|i| {
                let client = Arc::clone(&client);
                std::thread::spawn(move || {
                    let body = Bytes::from(i.to_be_bytes().to_vec());
                    assert_eq!(client.trans(p, body.clone()).unwrap(), body);
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        let frames = net.stats().snapshot().packets_sent - before.packets_sent;
        assert!(
            frames < 12,
            "6 concurrent calls should coalesce below 6 request + 6 reply frames, used {frames}"
        );
        t.join().unwrap();
    }

    #[test]
    fn pipelined_lone_call_still_completes() {
        let net = Network::new();
        let server = crate::ServerPort::bind(net.attach_open(), Port::new(0xA1).unwrap());
        let p = server.put_port();
        let t = std::thread::spawn(move || {
            let req = server.next_request().unwrap();
            server.reply(&req, Bytes::from_static(b"solo"));
        });
        let client = Client::new(net.attach_open()).with_pipeline(PipelineConfig::default());
        assert_eq!(
            &client.trans(p, Bytes::from_static(b"one")).unwrap()[..],
            b"solo"
        );
        t.join().unwrap();
    }

    #[test]
    #[should_panic(expected = "max_entries")]
    fn zero_max_entries_rejected() {
        let net = Network::new();
        let _ = Client::new(net.attach_open()).with_pipeline(PipelineConfig {
            flush_window: Duration::from_millis(1),
            max_entries: 0,
        });
    }

    fn echo_server(
        net: &Network,
        g: Port,
        lifetime: Duration,
    ) -> (Port, std::thread::JoinHandle<()>) {
        let server = crate::ServerPort::bind(net.attach_open(), g);
        let p = server.put_port();
        let t = std::thread::spawn(move || {
            while let Ok(req) = server.next_request_timeout(lifetime) {
                server.reply(&req, req.payload.clone());
            }
        });
        (p, t)
    }

    #[test]
    fn leased_client_runs_warm_from_its_first_transaction() {
        // The cross-client hand-off: client A parks a clean reply port
        // and a learned route, dies, and offers both to the broker.
        // A newborn client B leases them and its very first
        // transaction takes the warm path — no fresh mint (the leased
        // port is parked and ready) and no associative fan-out (the
        // seeded route targets the machine directly), which in turn
        // lets that first transaction re-park the port.
        let net = Network::new();
        let (p, t) = echo_server(&net, Port::new(0xE0).unwrap(), Duration::from_millis(400));
        let cfg = RpcConfig {
            timeout: Duration::from_secs(2),
            attempts: 2,
        };
        let broker = Arc::new(PortLeaseBroker::new());
        {
            let a = Client::with_config(net.attach_open(), cfg).with_broker(Arc::clone(&broker));
            // Call 1 learns the route (its port burns — untargeted);
            // call 2 is hinted, completes clean, and parks its port.
            a.trans(p, Bytes::from_static(b"a1")).unwrap();
            a.trans(p, Bytes::from_static(b"a2")).unwrap();
            assert_eq!(a.parked_reply_ports(), 1);
        }
        assert_eq!(broker.available_ports(), 1, "drop must offer the port");
        assert!(broker.pooled_routes() >= 1, "drop must offer the routes");

        let b = Client::with_config(net.attach_open(), cfg).with_broker(Arc::clone(&broker));
        assert_eq!(broker.available_ports(), 0, "birth must consume the lease");
        assert_eq!(
            b.parked_reply_ports(),
            1,
            "the leased port must be claimed and parked at birth"
        );
        assert!(b.cached_route(p).is_some(), "the route must be seeded");
        assert_eq!(&b.trans(p, Bytes::from_static(b"b1")).unwrap()[..], b"b1");
        assert_eq!(
            b.minted_reply_ports(),
            0,
            "a leased client's first transaction must not mint a port"
        );
        assert_eq!(
            b.parked_reply_ports(),
            1,
            "the warm first transaction must recycle the leased port"
        );
        t.join().unwrap();
    }

    #[test]
    fn expired_lease_is_never_granted_and_the_client_cold_starts() {
        // TTL zero expires offers instantly: the stale-lease guard. A
        // client born from an empty (all-expired) broker mints fresh.
        let net = Network::new();
        let (p, t) = echo_server(&net, Port::new(0xE1).unwrap(), Duration::from_millis(300));
        let cfg = RpcConfig {
            timeout: Duration::from_secs(2),
            attempts: 2,
        };
        let broker = Arc::new(PortLeaseBroker::with_ttl(Duration::ZERO));
        {
            let a = Client::with_config(net.attach_open(), cfg).with_broker(Arc::clone(&broker));
            a.trans(p, Bytes::from_static(b"a1")).unwrap();
            a.trans(p, Bytes::from_static(b"a2")).unwrap();
            assert_eq!(a.parked_reply_ports(), 1);
        }
        let b = Client::with_config(net.attach_open(), cfg).with_broker(Arc::clone(&broker));
        assert_eq!(
            b.parked_reply_ports(),
            0,
            "an expired lease must never be granted"
        );
        assert_eq!(&b.trans(p, Bytes::from_static(b"b1")).unwrap()[..], b"b1");
        assert_eq!(b.minted_reply_ports(), 1, "cold start mints fresh");
        t.join().unwrap();
    }

    #[test]
    fn dirty_ports_never_enter_the_lease_pool_and_stragglers_never_alias() {
        // The cross-client extension of the PR 5 straggler rule: an
        // untargeted call to a replicated port leaves a straggler reply
        // in flight, so its port is dirty and must be *burned*, never
        // offered to the broker — even though the client dies while
        // the straggler is still on the wire. The next client (born
        // from that broker) must see its own replies only.
        let net = Network::new();
        net.set_latency(Duration::from_millis(10));
        let g1 = Port::new(0xE2).unwrap();
        let g2 = Port::new(0xE3).unwrap();
        let serve = |s: crate::ServerPort, tag: &'static [u8]| {
            std::thread::spawn(move || {
                while let Ok(req) = s.next_request_timeout(Duration::from_millis(250)) {
                    s.reply(&req, Bytes::from_static(tag));
                }
            })
        };
        let ta = serve(crate::ServerPort::bind(net.attach_open(), g1), b"dup");
        let tb = serve(crate::ServerPort::bind(net.attach_open(), g1), b"dup");
        let tc = serve(crate::ServerPort::bind(net.attach_open(), g2), b"fresh");
        let cfg = RpcConfig {
            timeout: Duration::from_secs(2),
            attempts: 2,
        };
        let broker = Arc::new(PortLeaseBroker::new());
        {
            let a = Client::with_config(net.attach_open(), cfg).with_broker(Arc::clone(&broker));
            // Untargeted, two replicas answer: one reply consumed, one
            // straggler in flight when the client dies.
            assert_eq!(&a.trans(g1, Bytes::from_static(b"x")).unwrap()[..], b"dup");
            assert_eq!(a.parked_reply_ports(), 0, "fan-out port must burn");
        }
        assert_eq!(
            broker.available_ports(),
            0,
            "a dirty port must never be offered for lease"
        );
        let b = Client::with_config(net.attach_open(), cfg).with_broker(Arc::clone(&broker));
        assert_eq!(
            &b.trans(g2, Bytes::from_static(b"y")).unwrap()[..],
            b"fresh",
            "a straggler from the dead client aliased the new one"
        );
        net.set_latency(Duration::ZERO);
        for t in [ta, tb, tc] {
            t.join().unwrap();
        }
    }

    #[test]
    fn leases_chain_across_a_generation_of_clients() {
        // A swarm of short-lived clients sharing one broker: after the
        // first client warms the pool, every successor runs mint-free.
        let net = Network::new();
        let (p, t) = echo_server(&net, Port::new(0xE4).unwrap(), Duration::from_millis(600));
        let cfg = RpcConfig {
            timeout: Duration::from_secs(2),
            attempts: 2,
        };
        let broker = Arc::new(PortLeaseBroker::new());
        {
            let warm = Client::with_config(net.attach_open(), cfg).with_broker(Arc::clone(&broker));
            warm.trans(p, Bytes::from_static(b"w1")).unwrap();
            warm.trans(p, Bytes::from_static(b"w2")).unwrap();
        }
        for i in 0..3u8 {
            let c = Client::with_config(net.attach_open(), cfg).with_broker(Arc::clone(&broker));
            assert_eq!(
                &c.trans(p, Bytes::from(vec![i])).unwrap()[..],
                [i],
                "generation {i} reply"
            );
            assert_eq!(
                c.minted_reply_ports(),
                0,
                "generation {i} must run entirely on its lease"
            );
        }
        t.join().unwrap();
    }
}
