//! The client side: blocking transactions.

use crate::frame::Frame;
use amoeba_net::{Endpoint, Header, Port, RecvError};
use bytes::Bytes;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

/// Tunables for [`Client::trans`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RpcConfig {
    /// How long to wait for a reply before retransmitting.
    pub timeout: Duration,
    /// Total attempts (first try + retries). At-least-once semantics:
    /// servers whose operations are not idempotent must deduplicate.
    pub attempts: u32,
}

impl Default for RpcConfig {
    fn default() -> Self {
        RpcConfig {
            timeout: Duration::from_millis(500),
            attempts: 3,
        }
    }
}

/// Errors from a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RpcError {
    /// No reply after all attempts.
    Timeout,
    /// The local endpoint is detached from the network.
    Disconnected,
}

impl std::fmt::Display for RpcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RpcError::Timeout => write!(f, "no reply from server after all attempts"),
            RpcError::Disconnected => write!(f, "endpoint detached from network"),
        }
    }
}

impl std::error::Error for RpcError {}

/// A client able to perform blocking transactions on a network endpoint.
///
/// "After making a request, a client blocks until the reply comes in"
/// (§2.1). The endpoint must not concurrently be used as a server — an
/// Amoeba process is one addressable party.
#[derive(Debug)]
pub struct Client {
    endpoint: Endpoint,
    config: RpcConfig,
    signature: Option<Port>,
    rng: Mutex<StdRng>,
}

impl Client {
    /// Wraps an endpoint with default configuration.
    pub fn new(endpoint: Endpoint) -> Client {
        Self::with_config(endpoint, RpcConfig::default())
    }

    /// Wraps an endpoint with explicit timeouts/retries.
    pub fn with_config(endpoint: Endpoint, config: RpcConfig) -> Client {
        Client {
            endpoint,
            config,
            signature: None,
            rng: Mutex::new(StdRng::from_entropy()),
        }
    }

    /// Attaches a secret signature `S` to every outgoing request; the
    /// F-box will transmit `F(S)`, which servers can compare against
    /// this principal's published `F(S)`.
    pub fn set_signature(&mut self, s: Port) {
        self.signature = Some(s);
    }

    /// The underlying endpoint.
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// Performs a blocking transaction: send `request` to put-port
    /// `dest`, await the reply.
    ///
    /// # Errors
    /// [`RpcError::Timeout`] if no reply arrives within
    /// `config.attempts × config.timeout`; [`RpcError::Disconnected`] if
    /// the endpoint is detached.
    pub fn trans(&self, dest: Port, request: Bytes) -> Result<Bytes, RpcError> {
        // Fresh reply get-port per transaction; stable across retries so
        // a late first reply satisfies a retransmitted request.
        let reply_get = Port::random(&mut *self.rng.lock());
        let reply_wire = self.endpoint.claim(reply_get);
        let result = self.trans_on(dest, request, reply_get, reply_wire);
        self.endpoint.release(reply_get);
        result
    }

    fn trans_on(
        &self,
        dest: Port,
        request: Bytes,
        reply_get: Port,
        reply_wire: Port,
    ) -> Result<Bytes, RpcError> {
        let payload = Frame::Request(request).encode();
        let mut header = Header::to(dest).with_reply(reply_get);
        if let Some(s) = self.signature {
            header = header.with_signature(s);
        }
        for _ in 0..self.config.attempts.max(1) {
            self.endpoint.send(header, payload.clone());
            let deadline = std::time::Instant::now() + self.config.timeout;
            loop {
                let remaining = deadline.saturating_duration_since(std::time::Instant::now());
                if remaining.is_zero() {
                    break; // retransmit
                }
                match self.endpoint.recv_timeout(remaining) {
                    Ok(pkt) => {
                        if pkt.header.dest != reply_wire {
                            continue; // stale traffic for an old port
                        }
                        match Frame::decode(&pkt.payload) {
                            Some(Frame::Reply(body)) => return Ok(body),
                            _ => continue, // noise
                        }
                    }
                    Err(RecvError::Timeout) => break,
                    Err(RecvError::Disconnected) => return Err(RpcError::Disconnected),
                }
            }
        }
        Err(RpcError::Timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amoeba_net::Network;

    #[test]
    fn trans_times_out_when_nobody_listens() {
        let net = Network::new();
        let client = Client::with_config(
            net.attach_open(),
            RpcConfig {
                timeout: Duration::from_millis(5),
                attempts: 2,
            },
        );
        let before = net.stats().snapshot();
        let err = client
            .trans(Port::new(0x5050).unwrap(), Bytes::from_static(b"x"))
            .unwrap_err();
        assert_eq!(err, RpcError::Timeout);
        // Both attempts were transmitted.
        assert_eq!(net.stats().snapshot().packets_sent - before.packets_sent, 2);
    }

    #[test]
    fn config_default_is_sane() {
        let c = RpcConfig::default();
        assert!(c.attempts >= 1);
        assert!(c.timeout > Duration::ZERO);
    }
}
