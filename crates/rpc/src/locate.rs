//! Port location: broadcast LOCATE with a (port, machine) cache.
//!
//! §2.2: "The associative addressing can be simulated in software when
//! the kernels are trusted by having each one maintain a cache of
//! (port, machine-number) pairs. If a port is not in the cache, it can
//! be found by broadcasting a LOCATE message" — the Mullender–Vitányi
//! match-making the paper cites.
//!
//! The cache hit/miss counters feed experiment **E7**.

use crate::frame::Frame;
use amoeba_net::{Endpoint, Header, MachineId, Port, RecvError};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::time::Duration;

/// A locate cache bound to an endpoint.
#[derive(Debug)]
pub struct Locator {
    cache: Mutex<HashMap<Port, MachineId>>,
    hits: std::sync::atomic::AtomicU64,
    misses: std::sync::atomic::AtomicU64,
    rng: Mutex<StdRng>,
    timeout: Duration,
}

impl Default for Locator {
    fn default() -> Self {
        Self::new()
    }
}

impl Locator {
    /// An empty cache with the default 200 ms query timeout.
    pub fn new() -> Locator {
        Self::with_timeout(Duration::from_millis(200))
    }

    /// An empty cache with an explicit query timeout.
    pub fn with_timeout(timeout: Duration) -> Locator {
        Locator {
            cache: Mutex::new(HashMap::new()),
            hits: Default::default(),
            misses: Default::default(),
            rng: Mutex::new(StdRng::from_entropy()),
            timeout,
        }
    }

    /// Resolves which machine serves `port`, consulting the cache first
    /// and broadcasting a LOCATE on a miss.
    ///
    /// Returns `None` if nobody answers within the timeout.
    pub fn locate(&self, endpoint: &Endpoint, port: Port) -> Option<MachineId> {
        if let Some(&m) = self.cache.lock().get(&port) {
            self.hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            return Some(m);
        }
        self.misses
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let m = self.broadcast_locate(endpoint, port)?;
        self.cache.lock().insert(port, m);
        Some(m)
    }

    fn broadcast_locate(&self, endpoint: &Endpoint, port: Port) -> Option<MachineId> {
        let reply_get = Port::random(&mut *self.rng.lock());
        let reply_wire = endpoint.claim(reply_get);
        let header = Header::to(Port::BROADCAST).with_reply(reply_get);
        endpoint.send(header, Frame::Locate(port).encode());
        let deadline = std::time::Instant::now() + self.timeout;
        let found = loop {
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            if remaining.is_zero() {
                break None;
            }
            match endpoint.recv_timeout(remaining) {
                Ok(pkt) if pkt.header.dest == reply_wire => {
                    if let Some(Frame::LocateReply(answered_port, machine)) =
                        Frame::decode(&pkt.payload)
                    {
                        if answered_port == port {
                            break Some(machine);
                        }
                    }
                }
                Ok(_) => continue,
                Err(RecvError::Timeout) => break None,
                Err(RecvError::Disconnected) => break None,
            }
        };
        endpoint.release(reply_get);
        found
    }

    /// Drops a cached entry (e.g. after a machine crash).
    pub fn invalidate(&self, port: Port) {
        self.cache.lock().remove(&port);
    }

    /// Empties the entire cache.
    pub fn clear(&self) {
        self.cache.lock().clear();
    }

    /// (cache hits, cache misses) so far.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(std::sync::atomic::Ordering::Relaxed),
            self.misses.load(std::sync::atomic::Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServerPort;
    use amoeba_net::Network;
    use bytes::Bytes;

    #[test]
    fn locate_finds_server_and_caches() {
        let net = Network::new();
        let server = ServerPort::bind(net.attach_open(), Port::new(0x77).unwrap());
        let p = server.put_port();
        let server_machine = server.endpoint().id();
        let t = std::thread::spawn(move || {
            // Serve until a real request ends the loop.
            let req = server.next_request().unwrap();
            server.reply(&req, Bytes::new());
        });

        let client_ep = net.attach_open();
        let locator = Locator::new();
        let before = net.stats().snapshot();
        assert_eq!(locator.locate(&client_ep, p), Some(server_machine));
        let mid = net.stats().snapshot();
        assert_eq!(mid.broadcasts_sent - before.broadcasts_sent, 1);

        // Second lookup: cache hit, no broadcast.
        assert_eq!(locator.locate(&client_ep, p), Some(server_machine));
        let after = net.stats().snapshot();
        assert_eq!(after.broadcasts_sent - mid.broadcasts_sent, 0);
        assert_eq!(locator.stats(), (1, 1));

        // Unblock the server thread.
        let client = crate::Client::new(client_ep);
        client.trans(p, Bytes::new()).unwrap();
        t.join().unwrap();
    }

    #[test]
    fn locate_unknown_port_times_out() {
        let net = Network::new();
        let ep = net.attach_open();
        let locator = Locator::with_timeout(Duration::from_millis(20));
        assert_eq!(locator.locate(&ep, Port::new(0xDEAD).unwrap()), None);
        assert_eq!(locator.stats(), (0, 1));
    }

    #[test]
    fn invalidate_forces_rebroadcast() {
        let net = Network::new();
        let ep = net.attach_open();
        let locator = Locator::with_timeout(Duration::from_millis(10));
        let p = Port::new(0xBEEF).unwrap();
        locator.locate(&ep, p);
        locator.invalidate(p);
        locator.locate(&ep, p);
        assert_eq!(locator.stats(), (0, 2));
    }
}
