//! Port location: broadcast LOCATE with a **replica-set** cache.
//!
//! §2.2: "The associative addressing can be simulated in software when
//! the kernels are trusted by having each one maintain a cache of
//! (port, machine-number) pairs. If a port is not in the cache, it can
//! be found by broadcasting a LOCATE message" — the Mullender–Vitányi
//! match-making the paper cites.
//!
//! Since the cluster subsystem, one port may be served by *several*
//! machines at once (§3.4's transparent distribution, horizontally).
//! The cache therefore maps each port to the full set of live replicas
//! that answered the LOCATE broadcast, and [`Locator::locate`] picks
//! one per call under a [`PlacementPolicy`]. Three hardening rules
//! apply to answers, all exercised by the tests below:
//!
//! * **Asked-for ports only** — a reply naming a port we did not ask
//!   about is dropped, never cached (a hostile node cannot seed the
//!   cache for other services).
//! * **Self-answers only** — on the broadcast path a server answers for
//!   itself, so a reply whose claimed machine differs from the packet's
//!   unforgeable source machine is dropped (a hostile node cannot
//!   divert another port's traffic to a third machine).
//! * **Entries expire** — cached sets older than the TTL are
//!   re-resolved, so a migrated or crashed replica stops being handed
//!   out even if no caller reported a failure.
//!
//! [`Locator::invalidate_machine`] is the explicit
//! invalidate-on-transport-error path: failover code calls it when a
//! transaction against a cached machine times out, dropping that one
//! replica while the survivors keep serving.
//!
//! The cache hit/miss counters feed experiment **E7**.

use crate::frame::Frame;
use amoeba_net::{Endpoint, Header, MachineId, Port, RecvError, Timestamp};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::time::Duration;

/// One live replica of a port, as cached client-side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Replica {
    /// The machine serving the port.
    pub machine: MachineId,
    /// The replica's advertised load at resolution time (0 when the
    /// discovery path carries no load information).
    pub load: u32,
}

impl From<crate::frame::ReplicaInfo> for Replica {
    /// Converts a wire-level replica entry into the cached form; the
    /// single conversion point between the frame layer and the cache.
    fn from(r: crate::frame::ReplicaInfo) -> Replica {
        Replica {
            machine: r.machine,
            load: r.load,
        }
    }
}

/// How [`Locator::locate`] (and the cluster client built on it) picks
/// among the live replicas of a port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlacementPolicy {
    /// Rotate through the replica set — fair without load information
    /// (the broadcast discovery path carries none).
    #[default]
    RoundRobin,
    /// Prefer the replica with the smallest advertised load gauge,
    /// breaking ties by machine id. Only better than round-robin when
    /// the discovery path carries loads (the registry path does).
    LeastLoad,
}

#[derive(Debug)]
struct CacheEntry {
    replicas: Vec<Replica>,
    /// Round-robin cursor over `replicas`.
    cursor: usize,
    /// Timeline point of insertion — TTL expiry runs on the network's
    /// clock (virtual time in virtual tests), not the OS clock.
    inserted: Timestamp,
}

/// The client-side replica-set cache shared by the broadcast
/// [`Locator`] and the rendezvous [`Matchmaker`](crate::Matchmaker).
///
/// Pure state, no I/O: resolution paths insert replica sets, placement
/// picks replicas, and failure reports invalidate single machines. The
/// invariant the cluster layer leans on — **a pick never returns a
/// machine that was invalidated after the last insert** — is pinned by
/// a proptest in this module.
#[derive(Debug)]
pub struct ReplicaCache {
    entries: Mutex<HashMap<Port, CacheEntry>>,
    ttl: Duration,
}

impl ReplicaCache {
    /// An empty cache whose entries expire `ttl` after insertion.
    pub fn new(ttl: Duration) -> ReplicaCache {
        ReplicaCache {
            entries: Mutex::new(HashMap::new()),
            ttl,
        }
    }

    /// Caches the replica set for `port` at timeline point `now`,
    /// replacing any previous set. Duplicate machines are collapsed
    /// (last load wins); an empty set just drops the entry.
    pub fn insert(&self, port: Port, replicas: Vec<Replica>, now: Timestamp) {
        let mut deduped: Vec<Replica> = Vec::with_capacity(replicas.len());
        for r in replicas {
            match deduped.iter_mut().find(|d| d.machine == r.machine) {
                Some(d) => d.load = r.load,
                None => deduped.push(r),
            }
        }
        let mut entries = self.entries.lock();
        if deduped.is_empty() {
            entries.remove(&port);
        } else {
            entries.insert(
                port,
                CacheEntry {
                    replicas: deduped,
                    cursor: 0,
                    inserted: now,
                },
            );
        }
    }

    /// Picks one live replica for `port` under `policy`, or `None` if
    /// the port is uncached or the entry has expired by timeline point
    /// `now` (expired entries are dropped on the way out).
    pub fn pick(&self, port: Port, policy: PlacementPolicy, now: Timestamp) -> Option<Replica> {
        let mut entries = self.entries.lock();
        let entry = entries.get_mut(&port)?;
        if now.saturating_duration_since(entry.inserted) > self.ttl {
            entries.remove(&port);
            return None;
        }
        Some(match policy {
            PlacementPolicy::RoundRobin => {
                let r = entry.replicas[entry.cursor % entry.replicas.len()];
                entry.cursor = entry.cursor.wrapping_add(1);
                r
            }
            PlacementPolicy::LeastLoad => *entry
                .replicas
                .iter()
                .min_by_key(|r| (r.load, r.machine))
                .expect("cached sets are never empty"),
        })
    }

    /// The full cached replica set, or `None` if uncached or expired
    /// by timeline point `now`.
    pub fn all(&self, port: Port, now: Timestamp) -> Option<Vec<Replica>> {
        let mut entries = self.entries.lock();
        let entry = entries.get(&port)?;
        if now.saturating_duration_since(entry.inserted) > self.ttl {
            entries.remove(&port);
            return None;
        }
        // Must copy: callers keep the set past this lock (iterating,
        // diffing against later resolves); entries are small Copy
        // structs, so this is a short memcpy, not a deep clone.
        Some(entry.replicas.clone())
    }

    /// Drops the whole cached set for `port`.
    pub fn invalidate(&self, port: Port) {
        self.entries.lock().remove(&port);
    }

    /// Drops one machine from `port`'s cached set (transport error
    /// observed against it); removes the entry entirely when the last
    /// replica goes.
    pub fn invalidate_machine(&self, port: Port, machine: MachineId) {
        let mut entries = self.entries.lock();
        if let Some(entry) = entries.get_mut(&port) {
            entry.replicas.retain(|r| r.machine != machine);
            if entry.replicas.is_empty() {
                entries.remove(&port);
            }
        }
    }

    /// Empties the cache.
    pub fn clear(&self) {
        self.entries.lock().clear();
    }

    /// Number of cached ports.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.lock().is_empty()
    }
}

/// A locate cache bound to an endpoint.
#[derive(Debug)]
pub struct Locator {
    cache: ReplicaCache,
    policy: PlacementPolicy,
    hits: std::sync::atomic::AtomicU64,
    misses: std::sync::atomic::AtomicU64,
    rng: Mutex<StdRng>,
    timeout: Duration,
    gather: Duration,
    /// Serialises cache-miss resolution: two threads gathering LOCATE
    /// answers on one endpoint would consume each other's replies
    /// (each gather drains the shared receive queue and drops packets
    /// for reply ports it does not own).
    resolving: Mutex<()>,
}

impl Default for Locator {
    fn default() -> Self {
        Self::new()
    }
}

impl Locator {
    /// Default time-to-live of a cached replica set. Long enough that a
    /// steady client almost always hits, short enough that a crashed
    /// replica stops being handed out even when nobody reports it.
    pub const DEFAULT_TTL: Duration = Duration::from_secs(5);

    /// Default extra window spent collecting further answers after the
    /// first LOCATE reply arrives — on a broadcast medium every live
    /// replica answers, but not in the same instant.
    pub const DEFAULT_GATHER_WINDOW: Duration = Duration::from_millis(10);

    /// An empty cache with the default 200 ms query timeout.
    pub fn new() -> Locator {
        Self::with_timeout(Duration::from_millis(200))
    }

    /// An empty cache with an explicit query timeout.
    pub fn with_timeout(timeout: Duration) -> Locator {
        Locator {
            cache: ReplicaCache::new(Self::DEFAULT_TTL),
            policy: PlacementPolicy::default(),
            hits: Default::default(),
            misses: Default::default(),
            rng: Mutex::new(StdRng::from_entropy()),
            timeout,
            gather: Self::DEFAULT_GATHER_WINDOW,
            resolving: Mutex::new(()),
        }
    }

    /// Builder knob: replaces the cache TTL.
    pub fn with_ttl(mut self, ttl: Duration) -> Locator {
        self.cache = ReplicaCache::new(ttl);
        self
    }

    /// Builder knob: replaces the placement policy.
    pub fn with_policy(mut self, policy: PlacementPolicy) -> Locator {
        self.policy = policy;
        self
    }

    /// Builder knob: replaces the reply-gathering window.
    pub fn with_gather_window(mut self, gather: Duration) -> Locator {
        self.gather = gather;
        self
    }

    /// Resolves which machine serves `port`, consulting the cache first
    /// and broadcasting a LOCATE on a miss. With several live replicas
    /// the configured [`PlacementPolicy`] picks one per call.
    ///
    /// Returns `None` if nobody answers within the timeout.
    pub fn locate(&self, endpoint: &Endpoint, port: Port) -> Option<MachineId> {
        if let Some(r) = self.cache.pick(port, self.policy, endpoint.now()) {
            self.hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            return Some(r.machine);
        }
        self.misses
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let _gathering = self.resolving.lock();
        // A peer may have resolved this port while we waited for the
        // resolution lock.
        if let Some(r) = self.cache.pick(port, self.policy, endpoint.now()) {
            return Some(r.machine);
        }
        let found = self.broadcast_locate(endpoint, port);
        self.cache.insert(port, found, endpoint.now());
        self.cache
            .pick(port, self.policy, endpoint.now())
            .map(|r| r.machine)
    }

    /// Picks a replica from the cache alone — no network, no miss
    /// accounting (the endpoint only supplies the timeline point for
    /// TTL expiry). `None` means uncached or expired; callers that can
    /// resolve should then fall back to [`locate`](Self::locate).
    /// This is the fast path a failover client takes without holding
    /// any resolution lock.
    pub fn pick_cached(&self, endpoint: &Endpoint, port: Port) -> Option<MachineId> {
        self.cache
            .pick(port, self.policy, endpoint.now())
            .map(|r| r.machine)
    }

    /// Resolves the **full** live replica set for `port` (cache or
    /// broadcast). Empty if nobody answers.
    pub fn replicas(&self, endpoint: &Endpoint, port: Port) -> Vec<Replica> {
        if let Some(set) = self.cache.all(port, endpoint.now()) {
            self.hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            return set;
        }
        self.misses
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let _gathering = self.resolving.lock();
        if let Some(set) = self.cache.all(port, endpoint.now()) {
            return set; // a peer resolved while we waited
        }
        let found = self.broadcast_locate(endpoint, port);
        self.cache.insert(port, found, endpoint.now());
        self.cache.all(port, endpoint.now()).unwrap_or_default()
    }

    /// Broadcasts one LOCATE and gathers every valid answer: waits up
    /// to the query timeout for the first reply, then keeps collecting
    /// for the gather window so slower replicas make it into the set.
    fn broadcast_locate(&self, endpoint: &Endpoint, port: Port) -> Vec<Replica> {
        let reply_get = Port::random(&mut *self.rng.lock());
        let reply_wire = endpoint.claim(reply_get);
        let header = Header::to(Port::BROADCAST).with_reply(reply_get);
        endpoint.send(header, Frame::Locate(port).encode());
        let hard_deadline = endpoint.now() + self.timeout;
        let mut deadline = hard_deadline;
        let mut found: Vec<Replica> = Vec::new();
        loop {
            if endpoint.now() >= deadline {
                break;
            }
            let pkt = match endpoint.recv_deadline(deadline) {
                Ok(pkt) if pkt.header.dest == reply_wire => pkt,
                Ok(_) => continue,
                Err(RecvError::Timeout) | Err(RecvError::Disconnected) => break,
            };
            // Hostile-reply validation: only answers for the port we
            // asked about, and only machines answering for themselves
            // (the packet source is stamped by the network, unforgeable).
            let mut accepted = false;
            match Frame::decode(&pkt.payload) {
                Some(Frame::LocateReply(answered_port, machine))
                    if answered_port == port && machine == pkt.source =>
                {
                    // Duplicates are fine; `ReplicaCache::insert`
                    // collapses them when the gathered set is cached.
                    found.push(Replica { machine, load: 0 });
                    accepted = true;
                }
                Some(Frame::LocateReplyMulti { port: p, replicas }) if p == port => {
                    for r in replicas {
                        if r.machine == pkt.source {
                            found.push(Replica::from(r));
                            accepted = true;
                        }
                    }
                }
                _ => {} // noise or hostile: drop, keep listening
            }
            if accepted {
                // First valid answer shortens the wait to the gather
                // window: collect the stragglers, then stop. (`min`
                // only ever tightens, so the hard deadline holds.)
                deadline = deadline.min(endpoint.now() + self.gather);
            }
        }
        endpoint.release(reply_get);
        found
    }

    /// Drops the whole cached replica set for a port (e.g. after a
    /// service migration).
    pub fn invalidate(&self, port: Port) {
        self.cache.invalidate(port);
    }

    /// Drops one machine from a port's cached set — the shared
    /// invalidate-on-transport-error path: failover code calls this
    /// when a transaction against the machine timed out, and the next
    /// [`locate`](Self::locate) hands out a surviving replica (or
    /// re-broadcasts once the set is empty).
    pub fn invalidate_machine(&self, port: Port, machine: MachineId) {
        self.cache.invalidate_machine(port, machine);
    }

    /// Empties the entire cache.
    pub fn clear(&self) {
        self.cache.clear();
    }

    /// Direct access to the replica-set cache.
    pub fn cache(&self) -> &ReplicaCache {
        &self.cache
    }

    /// (cache hits, cache misses) so far.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(std::sync::atomic::Ordering::Relaxed),
            self.misses.load(std::sync::atomic::Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServerPort;
    use amoeba_net::Network;
    use bytes::Bytes;

    #[test]
    fn locate_finds_server_and_caches() {
        let net = Network::new();
        let server = ServerPort::bind(net.attach_open(), Port::new(0x77).unwrap());
        let p = server.put_port();
        let server_machine = server.endpoint().id();
        let t = std::thread::spawn(move || {
            // Serve until a real request ends the loop.
            let req = server.next_request().unwrap();
            server.reply(&req, Bytes::new());
        });

        let client_ep = net.attach_open();
        let locator = Locator::new();
        let before = net.stats().snapshot();
        assert_eq!(locator.locate(&client_ep, p), Some(server_machine));
        let mid = net.stats().snapshot();
        assert_eq!(mid.broadcasts_sent - before.broadcasts_sent, 1);

        // Second lookup: cache hit, no broadcast.
        assert_eq!(locator.locate(&client_ep, p), Some(server_machine));
        let after = net.stats().snapshot();
        assert_eq!(after.broadcasts_sent - mid.broadcasts_sent, 0);
        assert_eq!(locator.stats(), (1, 1));

        // Unblock the server thread.
        let client = crate::Client::new(client_ep);
        client.trans(p, Bytes::new()).unwrap();
        t.join().unwrap();
    }

    #[test]
    fn locate_unknown_port_times_out() {
        let net = Network::new();
        let ep = net.attach_open();
        let locator = Locator::with_timeout(Duration::from_millis(20));
        assert_eq!(locator.locate(&ep, Port::new(0xDEAD).unwrap()), None);
        assert_eq!(locator.stats(), (0, 1));
    }

    #[test]
    fn invalidate_forces_rebroadcast() {
        let net = Network::new();
        let ep = net.attach_open();
        let locator = Locator::with_timeout(Duration::from_millis(10));
        let p = Port::new(0xBEEF).unwrap();
        locator.locate(&ep, p);
        locator.invalidate(p);
        locator.locate(&ep, p);
        assert_eq!(locator.stats(), (0, 2));
    }

    #[test]
    fn cache_entries_expire_after_ttl() {
        let net = Network::new();
        let server = ServerPort::bind(net.attach_open(), Port::new(0x88).unwrap());
        let p = server.put_port();
        let t = answer_locates_for(server, 2);

        let ep = net.attach_open();
        let locator = Locator::new().with_ttl(Duration::from_millis(30));
        assert!(locator.locate(&ep, p).is_some());
        std::thread::sleep(Duration::from_millis(50));
        let before = net.stats().snapshot();
        assert!(locator.locate(&ep, p).is_some(), "re-resolves after expiry");
        assert_eq!(
            net.stats().snapshot().broadcasts_sent - before.broadcasts_sent,
            1,
            "expired entry must trigger a fresh broadcast"
        );
        assert_eq!(locator.stats(), (0, 2));
        t.join().unwrap();
    }

    /// Spawns a thread that pumps `n` LOCATE broadcasts through a bound
    /// server port (the pump answers them as a side effect of waiting).
    fn answer_locates_for(server: ServerPort, n: usize) -> std::thread::JoinHandle<()> {
        std::thread::spawn(move || {
            for _ in 0..n {
                // Each locate wakes the pump once; the timeout bounds
                // the test if a broadcast goes missing.
                let _ = server.next_request_timeout(Duration::from_millis(500));
            }
        })
    }

    #[test]
    fn locate_gathers_every_live_replica() {
        // Three servers claim the same put-port: one LOCATE broadcast
        // must discover all of them, and round-robin placement must
        // rotate through the full set.
        let net = Network::new();
        let servers: Vec<ServerPort> = (0..3)
            .map(|_| ServerPort::bind(net.attach_open(), Port::new(0x99).unwrap()))
            .collect();
        let p = servers[0].put_port();
        let machines: std::collections::HashSet<MachineId> =
            servers.iter().map(|s| s.endpoint().id()).collect();
        let threads: Vec<_> = servers
            .into_iter()
            .map(|s| answer_locates_for(s, 1))
            .collect();

        let ep = net.attach_open();
        let locator = Locator::new();
        let set: std::collections::HashSet<MachineId> = locator
            .replicas(&ep, p)
            .into_iter()
            .map(|r| r.machine)
            .collect();
        assert_eq!(set, machines, "every replica must be discovered");

        // Round-robin visits all three across consecutive picks.
        let picks: std::collections::HashSet<MachineId> =
            (0..3).map(|_| locator.locate(&ep, p).unwrap()).collect();
        assert_eq!(picks, machines, "round-robin must rotate the set");
        for t in threads {
            t.join().unwrap();
        }
    }

    #[test]
    fn hostile_replies_are_ignored() {
        // A hostile node answers every LOCATE with (a) a reply for a
        // different port and (b) a reply for the right port naming a
        // third machine. Neither may enter the cache.
        let net = Network::new();
        let victim_port = Port::new(0x600D).unwrap();
        let other_port = Port::new(0xBAD).unwrap();
        let hostile = net.attach_open();
        let third_machine = net.attach_open();
        let third_id = third_machine.id();
        let hostile_thread = std::thread::spawn(move || {
            let pkt = hostile.recv_timeout(Duration::from_secs(1)).unwrap();
            let reply_to = pkt.header.reply;
            // (a) unsolicited port
            hostile.send(
                Header::to(reply_to),
                Frame::LocateReply(other_port, hostile.id()).encode(),
            );
            // (b) right port, diverted to a third machine
            hostile.send(
                Header::to(reply_to),
                Frame::LocateReply(victim_port, third_id).encode(),
            );
        });

        let ep = net.attach_open();
        let locator = Locator::with_timeout(Duration::from_millis(60));
        assert_eq!(
            locator.locate(&ep, victim_port),
            None,
            "diverting reply must be dropped"
        );
        assert!(
            locator.cache().all(other_port, ep.now()).is_none(),
            "unsolicited port must never be cached"
        );
        hostile_thread.join().unwrap();
    }

    #[test]
    fn invalidate_machine_drops_only_that_replica() {
        let cache = ReplicaCache::new(Duration::from_secs(60));
        let now = Timestamp::ZERO;
        let p = Port::new(0x1234).unwrap();
        let m1 = MachineId::from(1);
        let m2 = MachineId::from(2);
        cache.insert(
            p,
            vec![
                Replica {
                    machine: m1,
                    load: 0,
                },
                Replica {
                    machine: m2,
                    load: 0,
                },
            ],
            now,
        );
        cache.invalidate_machine(p, m1);
        for _ in 0..4 {
            assert_eq!(
                cache
                    .pick(p, PlacementPolicy::RoundRobin, now)
                    .unwrap()
                    .machine,
                m2
            );
        }
        cache.invalidate_machine(p, m2);
        assert!(cache.pick(p, PlacementPolicy::RoundRobin, now).is_none());
        assert!(cache.is_empty(), "empty sets drop the entry entirely");
    }

    #[test]
    fn least_load_prefers_idle_replicas() {
        let cache = ReplicaCache::new(Duration::from_secs(60));
        let now = Timestamp::ZERO;
        let p = Port::new(0x4321).unwrap();
        cache.insert(
            p,
            vec![
                Replica {
                    machine: MachineId::from(1),
                    load: 9,
                },
                Replica {
                    machine: MachineId::from(2),
                    load: 2,
                },
                Replica {
                    machine: MachineId::from(3),
                    load: 5,
                },
            ],
            now,
        );
        assert_eq!(
            cache
                .pick(p, PlacementPolicy::LeastLoad, now)
                .unwrap()
                .machine,
            MachineId::from(2)
        );
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// One step of the cache-state machine the proptest drives.
        #[derive(Debug, Clone)]
        enum Op {
            Insert(Vec<u8>),
            InvalidateMachine(u8),
            Invalidate,
            Pick(bool), // true = LeastLoad
        }

        fn op_strategy() -> impl Strategy<Value = Op> {
            prop_oneof![
                proptest::collection::vec(0u8..8, 1..5).prop_map(Op::Insert),
                (0u8..8).prop_map(Op::InvalidateMachine),
                Just(Op::Invalidate),
                any::<bool>().prop_map(Op::Pick),
            ]
        }

        proptest! {
            /// Pinning the failover invariant: after any interleaving
            /// of inserts and invalidations, a pick never returns a
            /// machine invalidated since the last insert of that port.
            #[test]
            fn pick_never_returns_an_invalidated_machine(
                ops in proptest::collection::vec(op_strategy(), 1..40)
            ) {
                let cache = ReplicaCache::new(Duration::from_secs(3600));
                let now = Timestamp::ZERO;
                let port = Port::new(0x7E57).unwrap();
                let mut live: std::collections::HashSet<u8> =
                    std::collections::HashSet::new();
                for op in ops {
                    match op {
                        Op::Insert(machines) => {
                            live = machines.iter().copied().collect();
                            cache.insert(
                                port,
                                machines
                                    .iter()
                                    .map(|&m| Replica {
                                        machine: MachineId::from(m as u32),
                                        load: m as u32,
                                    })
                                    .collect(),
                                now,
                            );
                        }
                        Op::InvalidateMachine(m) => {
                            live.remove(&m);
                            cache.invalidate_machine(port, MachineId::from(m as u32));
                        }
                        Op::Invalidate => {
                            live.clear();
                            cache.invalidate(port);
                        }
                        Op::Pick(least_load) => {
                            let policy = if least_load {
                                PlacementPolicy::LeastLoad
                            } else {
                                PlacementPolicy::RoundRobin
                            };
                            match cache.pick(port, policy, now) {
                                Some(r) => prop_assert!(
                                    live.contains(&(r.machine.as_u32() as u8)),
                                    "picked invalidated machine {:?}",
                                    r.machine
                                ),
                                None => prop_assert!(
                                    live.is_empty(),
                                    "cache empty while {} replicas live",
                                    live.len()
                                ),
                            }
                        }
                    }
                }
            }
        }
    }
}
