//! Match-making **without broadcast** (§2.2's closing pointer to
//! Mullender & Vitányi, "Distributed Match-Making for Processes in
//! Computer Networks", 1984).
//!
//! On networks with no broadcast, LOCATE cannot flood. Instead a set of
//! well-known **rendezvous nodes** is agreed on; a server *posts*
//! (port → my machine) at the node selected by hashing the port, and a
//! client *queries* the same node — both sides hash to the same place,
//! so they meet without any global search. (The cited paper's √n grid
//! generalises this to posting at a row and querying a column; with a
//! single hash-selected node per port the meeting set is a singleton,
//! which suffices to reproduce the mechanism.)
//!
//! ```text
//! server ── Post(P) ──► node[h(P)]  ◄── Locate(P) ── client
//! ```
//!
//! # Demultiplexing
//!
//! A LOCATE query claims a fresh private reply port and matches the
//! answering `LOCATE_REPLY` by `(reply port, queried port)` — the same
//! private-reply-port discipline the RPC client uses for transactions
//! (and, with a batch id added to the key, for batch transactions; see
//! `docs/PROTOCOL.md`, "Demultiplexing keys"). Stale or foreign
//! packets on the reply port are ignored, not errors: ports are cheap
//! and noise is expected on a broadcast medium.

use crate::frame::Frame;
use amoeba_net::{Endpoint, Header, MachineId, Port, RecvError};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A running rendezvous node: stores (port → machine) registrations and
/// answers unicast LOCATE queries for them.
#[derive(Debug)]
pub struct RendezvousNode {
    service_port: Port,
    shutdown: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl RendezvousNode {
    /// Binds `get_port` on `endpoint` and serves registrations and
    /// queries on a background thread.
    pub fn spawn(endpoint: Endpoint, get_port: Port) -> RendezvousNode {
        let service_port = endpoint.claim(get_port);
        let shutdown = Arc::new(AtomicBool::new(false));
        let stop = Arc::clone(&shutdown);
        let handle = std::thread::spawn(move || {
            let mut registry: HashMap<Port, MachineId> = HashMap::new();
            while !stop.load(Ordering::Relaxed) {
                let pkt = match endpoint.recv_timeout(Duration::from_millis(20)) {
                    Ok(p) => p,
                    Err(RecvError::Timeout) => continue,
                    Err(RecvError::Disconnected) => break,
                };
                match Frame::decode(&pkt.payload) {
                    Some(Frame::Post(port)) => {
                        // The registration binds the *source* machine —
                        // unforgeable, so nobody can register a port at
                        // somebody else's address... or rather, they can
                        // only divert lookups to themselves, which the
                        // port system already defends (knowing where a
                        // put-port lives does not let you claim it).
                        registry.insert(port, pkt.source);
                    }
                    Some(Frame::Locate(port)) if !pkt.header.reply.is_null() => {
                        if let Some(&machine) = registry.get(&port) {
                            let reply = Frame::LocateReply(port, machine).encode();
                            endpoint.send(Header::to(pkt.header.reply), reply);
                        }
                        // Unknown ports: silence; the client times out.
                    }
                    _ => {}
                }
            }
        });
        RendezvousNode {
            service_port,
            shutdown,
            handle: Some(handle),
        }
    }

    /// The wire port clients and servers address this node by.
    pub fn service_port(&self) -> Port {
        self.service_port
    }

    /// Stops the node.
    pub fn stop(mut self) {
        self.shutdown_now();
    }

    fn shutdown_now(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for RendezvousNode {
    fn drop(&mut self) {
        self.shutdown_now();
    }
}

/// Client/server side of rendezvous match-making: knows the agreed node
/// list and hashes ports onto it.
#[derive(Debug)]
pub struct Matchmaker {
    nodes: Vec<Port>,
    cache: Mutex<HashMap<Port, MachineId>>,
    rng: Mutex<StdRng>,
    timeout: Duration,
}

impl Matchmaker {
    /// A matchmaker over the agreed rendezvous nodes.
    ///
    /// # Panics
    /// Panics if `nodes` is empty.
    pub fn new(nodes: Vec<Port>) -> Matchmaker {
        assert!(!nodes.is_empty(), "at least one rendezvous node required");
        Matchmaker {
            nodes,
            cache: Mutex::new(HashMap::new()),
            rng: Mutex::new(StdRng::from_entropy()),
            timeout: Duration::from_millis(200),
        }
    }

    /// Which rendezvous node is responsible for `port`.
    fn node_for(&self, port: Port) -> Port {
        // FNV-style mix; both sides must agree, nothing else matters.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in port.value().to_be_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1_0000_01b3);
        }
        self.nodes[(h % self.nodes.len() as u64) as usize]
    }

    /// Server side: registers `served_port` (which `endpoint`'s machine
    /// serves) at its rendezvous node.
    pub fn post(&self, endpoint: &Endpoint, served_port: Port) {
        let node = self.node_for(served_port);
        endpoint.send(Header::to(node), Frame::Post(served_port).encode());
    }

    /// Client side: resolves which machine serves `port` by querying the
    /// responsible rendezvous node (no broadcast anywhere). Cached.
    pub fn locate(&self, endpoint: &Endpoint, port: Port) -> Option<MachineId> {
        if let Some(&m) = self.cache.lock().get(&port) {
            return Some(m);
        }
        let node = self.node_for(port);
        let reply_get = Port::random(&mut *self.rng.lock());
        let reply_wire = endpoint.claim(reply_get);
        endpoint.send(
            Header::to(node).with_reply(reply_get),
            Frame::Locate(port).encode(),
        );
        let deadline = std::time::Instant::now() + self.timeout;
        let found = loop {
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            if remaining.is_zero() {
                break None;
            }
            match endpoint.recv_timeout(remaining) {
                Ok(pkt) if pkt.header.dest == reply_wire => {
                    if let Some(Frame::LocateReply(p, machine)) = Frame::decode(&pkt.payload) {
                        if p == port {
                            break Some(machine);
                        }
                    }
                }
                Ok(_) => continue,
                Err(_) => break None,
            }
        };
        endpoint.release(reply_get);
        if let Some(m) = found {
            self.cache.lock().insert(port, m);
        }
        found
    }

    /// Drops a cached entry.
    pub fn invalidate(&self, port: Port) {
        self.cache.lock().remove(&port);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amoeba_net::Network;

    fn nodes(net: &Network, n: usize) -> (Vec<RendezvousNode>, Vec<Port>) {
        let running: Vec<RendezvousNode> = (0..n)
            .map(|i| {
                RendezvousNode::spawn(net.attach_open(), Port::new(0xAA00 + i as u64).unwrap())
            })
            .collect();
        let ports = running.iter().map(|r| r.service_port()).collect();
        (running, ports)
    }

    #[test]
    fn post_then_locate_without_any_broadcast() {
        let net = Network::new();
        let (running, node_ports) = nodes(&net, 3);
        let mm = Matchmaker::new(node_ports);

        let server = net.attach_open();
        let served = Port::new(0x5E21CE).unwrap();
        server.claim(served);
        mm.post(&server, served);

        let client = net.attach_open();
        let before = net.stats().snapshot();
        let found = mm.locate(&client, served);
        let after = net.stats().snapshot();
        assert_eq!(found, Some(server.id()));
        assert_eq!(
            after.broadcasts_sent - before.broadcasts_sent,
            0,
            "rendezvous match-making must not broadcast"
        );
        for r in running {
            r.stop();
        }
    }

    #[test]
    fn unknown_port_times_out() {
        let net = Network::new();
        let (running, node_ports) = nodes(&net, 2);
        let mm = Matchmaker::new(node_ports);
        let client = net.attach_open();
        assert_eq!(mm.locate(&client, Port::new(0xDEAD).unwrap()), None);
        for r in running {
            r.stop();
        }
    }

    #[test]
    fn cache_answers_repeat_lookups_locally() {
        let net = Network::new();
        let (running, node_ports) = nodes(&net, 1);
        let mm = Matchmaker::new(node_ports);
        let server = net.attach_open();
        let served = Port::new(0xCACE).unwrap();
        mm.post(&server, served);
        let client = net.attach_open();
        assert!(mm.locate(&client, served).is_some());
        let before = net.stats().snapshot();
        assert!(mm.locate(&client, served).is_some());
        let after = net.stats().snapshot();
        assert_eq!(after.packets_sent - before.packets_sent, 0);
        for r in running {
            r.stop();
        }
    }

    #[test]
    fn ports_spread_across_nodes() {
        let net = Network::new();
        let (running, node_ports) = nodes(&net, 4);
        let mm = Matchmaker::new(node_ports.clone());
        let mut used = std::collections::HashSet::new();
        for v in 1..200u64 {
            used.insert(mm.node_for(Port::new(v).unwrap()));
        }
        assert_eq!(used.len(), 4, "hashing should use every node");
        for r in running {
            r.stop();
        }
    }

    #[test]
    fn repost_overrides_after_migration() {
        // A service migrating to another machine re-posts; lookups after
        // cache invalidation find the new home (§2.2's "process
        // migration" pointer).
        let net = Network::new();
        let (running, node_ports) = nodes(&net, 2);
        let mm = Matchmaker::new(node_ports);
        let served = Port::new(0x111333).unwrap();

        let home1 = net.attach_open();
        mm.post(&home1, served);
        let client = net.attach_open();
        assert_eq!(mm.locate(&client, served), Some(home1.id()));

        let home2 = net.attach_open();
        mm.post(&home2, served);
        mm.invalidate(served);
        assert_eq!(mm.locate(&client, served), Some(home2.id()));
        for r in running {
            r.stop();
        }
    }
}
